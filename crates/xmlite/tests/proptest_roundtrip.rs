//! Property tests: any document built from the DOM API must round-trip
//! through rendering and parsing, in both pretty and compact forms.

use proptest::prelude::*;
use xmlite::{Document, Element, Node};

fn arb_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_.-]{0,8}".prop_map(|s| s)
}

fn arb_attr_value() -> impl Strategy<Value = String> {
    // Includes every character that needs escaping plus unicode.
    proptest::collection::vec(
        prop_oneof![
            Just('a'),
            Just('Z'),
            Just('<'),
            Just('>'),
            Just('&'),
            Just('"'),
            Just('\''),
            Just(' '),
            Just('\t'),
            Just('\n'),
            Just('é'),
            Just('名'),
        ],
        0..12,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

fn arb_text() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            Just('x'),
            Just('<'),
            Just('>'),
            Just('&'),
            Just('7'),
            Just('é'),
        ],
        1..16,
    )
    .prop_map(|cs| {
        let s: String = cs.into_iter().collect();
        // Whitespace-only text is intentionally dropped by the parser, and
        // leading/trailing whitespace would be reindented; generate solid
        // runs only.
        s
    })
}

fn arb_element(depth: u32) -> BoxedStrategy<Element> {
    let attrs = proptest::collection::vec((arb_name(), arb_attr_value()), 0..4);
    if depth == 0 {
        (arb_name(), attrs)
            .prop_map(|(name, attrs)| {
                let mut e = Element::new(name);
                for (n, v) in attrs {
                    e.set_attr(n, v);
                }
                e
            })
            .boxed()
    } else {
        let child = prop_oneof![
            arb_element(depth - 1).prop_map(Node::Element),
            arb_text().prop_map(Node::Text),
        ];
        (
            arb_name(),
            attrs,
            proptest::collection::vec(child, 0..4),
        )
            .prop_map(|(name, attrs, children)| {
                let mut e = Element::new(name);
                for (n, v) in attrs {
                    e.set_attr(n, v);
                }
                let mut last_was_text = false;
                for c in children {
                    // Adjacent text nodes merge on reparse; keep one.
                    let is_text = matches!(c, Node::Text(_));
                    if is_text && last_was_text {
                        continue;
                    }
                    last_was_text = is_text;
                    e.push(c);
                }
                e
            })
            .boxed()
    }
}

/// Mixed-content documents only round-trip exactly in compact form (pretty
/// printing reflows text); text-free documents round-trip in both.
fn has_mixed_content(e: &Element) -> bool {
    let has_text = e.children().iter().any(|n| matches!(n, Node::Text(_)));
    let has_elem = e.child_elements().next().is_some();
    (has_text && has_elem) || e.child_elements().any(has_mixed_content)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn compact_roundtrip(root in arb_element(3)) {
        let doc = Document::new(root);
        let rendered = doc.to_compact_string();
        let reparsed = Document::parse(&rendered).unwrap();
        prop_assert_eq!(&doc, &reparsed);
    }

    #[test]
    fn pretty_roundtrip_without_mixed_content(root in arb_element(3)) {
        prop_assume!(!has_mixed_content(&root));
        let doc = Document::new(root);
        let rendered = doc.to_pretty_string();
        let reparsed = Document::parse(&rendered).unwrap();
        prop_assert_eq!(&doc, &reparsed);
    }

    #[test]
    fn parser_never_panics(input in "\\PC{0,64}") {
        let _ = Document::parse(&input);
    }
}
