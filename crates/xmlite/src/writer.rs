//! Rendering of documents back to XML text.

use crate::dom::{Document, Element, Node};
use crate::escape;

/// Controls how [`Document::to_string_with`] renders a document.
///
/// ```
/// use xmlite::{Document, Element, WriteOptions};
/// let doc = Document::new(Element::new("a").with_child(Element::new("b")));
/// let flat = doc.to_string_with(&WriteOptions::compact());
/// assert_eq!(flat, "<a><b/></a>");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteOptions {
    /// Indentation used per nesting level; `None` renders on one line.
    pub indent: Option<String>,
    /// Whether to emit `<?xml version="1.0" encoding="UTF-8"?>` first.
    pub declaration: bool,
}

impl WriteOptions {
    /// Two-space indentation with an XML declaration (the canonical form
    /// used for `loXML` metrics).
    pub fn pretty() -> Self {
        WriteOptions {
            indent: Some("  ".to_string()),
            declaration: true,
        }
    }

    /// Single-line output without a declaration.
    pub fn compact() -> Self {
        WriteOptions {
            indent: None,
            declaration: false,
        }
    }
}

impl Default for WriteOptions {
    fn default() -> Self {
        WriteOptions::pretty()
    }
}

pub(crate) fn write_document(doc: &Document, options: &WriteOptions) -> String {
    let mut out = String::new();
    if options.declaration {
        out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
        push_newline(&mut out, options);
    }
    write_element_into(doc.root(), options, 0, &mut out);
    out
}

pub(crate) fn write_element(element: &Element, options: &WriteOptions) -> String {
    let mut out = String::new();
    write_element_into(element, options, 0, &mut out);
    out
}

fn push_newline(out: &mut String, options: &WriteOptions) {
    if options.indent.is_some() {
        out.push('\n');
    }
}

fn push_indent(out: &mut String, options: &WriteOptions, depth: usize) {
    if let Some(indent) = &options.indent {
        for _ in 0..depth {
            out.push_str(indent);
        }
    }
}

fn write_element_into(element: &Element, options: &WriteOptions, depth: usize, out: &mut String) {
    push_indent(out, options, depth);
    out.push('<');
    out.push_str(element.name());
    for (name, value) in element.attrs() {
        out.push(' ');
        out.push_str(name);
        out.push_str("=\"");
        out.push_str(&escape::escape_attr(value));
        out.push('"');
    }
    if element.children().is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');

    // An element whose only children are text nodes renders inline so that
    // character data round-trips without gaining whitespace.
    let text_only = element.children().iter().all(|n| matches!(n, Node::Text(_)));
    if text_only {
        for node in element.children() {
            if let Node::Text(t) = node {
                out.push_str(&escape::escape_text(t));
            }
        }
    } else {
        for node in element.children() {
            push_newline(out, options);
            match node {
                Node::Element(child) => write_element_into(child, options, depth + 1, out),
                Node::Text(t) => {
                    push_indent(out, options, depth + 1);
                    out.push_str(&escape::escape_text(t));
                }
                Node::Comment(c) => {
                    push_indent(out, options, depth + 1);
                    out.push_str("<!--");
                    out.push_str(c);
                    out.push_str("-->");
                }
            }
        }
        push_newline(out, options);
        push_indent(out, options, depth);
    }
    out.push_str("</");
    out.push_str(element.name());
    out.push('>');
}

#[cfg(test)]
mod tests {
    use crate::dom::{Document, Element};

    fn sample() -> Document {
        Document::new(
            Element::new("fsm")
                .with_attr("name", "ctrl")
                .with_child(Element::new("state").with_attr("id", "s0"))
                .with_child(
                    Element::new("note").with_text("a < b"),
                ),
        )
    }

    #[test]
    fn pretty_output_is_indented() {
        let s = sample().to_pretty_string();
        let lines: Vec<_> = s.lines().collect();
        assert_eq!(lines[0], "<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
        assert_eq!(lines[1], "<fsm name=\"ctrl\">");
        assert_eq!(lines[2], "  <state id=\"s0\"/>");
        assert_eq!(lines[3], "  <note>a &lt; b</note>");
        assert_eq!(lines[4], "</fsm>");
    }

    #[test]
    fn compact_output_is_single_line() {
        let s = sample().to_compact_string();
        assert!(!s.contains('\n'));
        assert!(s.starts_with("<fsm"));
    }

    #[test]
    fn attribute_values_are_escaped() {
        let doc = Document::new(Element::new("a").with_attr("v", "x\"<&>'"));
        let s = doc.to_compact_string();
        assert_eq!(s, "<a v=\"x&quot;&lt;&amp;&gt;&apos;\"/>");
    }

    #[test]
    fn roundtrip_through_parser() {
        let doc = sample();
        let reparsed = Document::parse(&doc.to_pretty_string()).unwrap();
        assert_eq!(doc, reparsed);
        let reparsed2 = Document::parse(&doc.to_compact_string()).unwrap();
        assert_eq!(doc, reparsed2);
    }

    #[test]
    fn comments_render() {
        let doc = Document::new(
            Element::new("a").with_child(crate::Node::Comment("hi".into())).with_child(Element::new("b")),
        );
        assert_eq!(doc.to_compact_string(), "<a><!--hi--><b/></a>");
    }
}
