//! Entity escaping and unescaping for character data and attribute values.
//!
//! Supports the five predefined XML entities (`&lt;`, `&gt;`, `&amp;`,
//! `&apos;`, `&quot;`) and decimal/hexadecimal character references
//! (`&#65;`, `&#x41;`).

/// Escapes `text` for use as element character data.
///
/// Only `<`, `>`, and `&` need escaping in character data.
///
/// ```
/// assert_eq!(xmlite::escape::escape_text("a < b & c"), "a &lt; b &amp; c");
/// ```
pub fn escape_text(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escapes `value` for use inside a double-quoted attribute value.
///
/// ```
/// assert_eq!(xmlite::escape::escape_attr("say \"hi\""), "say &quot;hi&quot;");
/// ```
pub fn escape_attr(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            '\n' => out.push_str("&#10;"),
            '\t' => out.push_str("&#9;"),
            _ => out.push(c),
        }
    }
    out
}

/// Expands entity and character references in `raw`.
///
/// Returns `None` when a reference is malformed (unterminated, unknown
/// entity name, or an invalid character code).
///
/// ```
/// assert_eq!(xmlite::escape::unescape("x &lt; &#65;").as_deref(), Some("x < A"));
/// assert_eq!(xmlite::escape::unescape("bad &unknown;"), None);
/// ```
pub fn unescape(raw: &str) -> Option<String> {
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.char_indices();
    while let Some((i, c)) = chars.next() {
        if c != '&' {
            out.push(c);
            continue;
        }
        let rest = &raw[i + 1..];
        let semi = rest.find(';')?;
        let name = &rest[..semi];
        match name {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "apos" => out.push('\''),
            "quot" => out.push('"'),
            _ => {
                let code = if let Some(hex) = name.strip_prefix("#x").or_else(|| name.strip_prefix("#X")) {
                    u32::from_str_radix(hex, 16).ok()?
                } else if let Some(dec) = name.strip_prefix('#') {
                    dec.parse::<u32>().ok()?
                } else {
                    return None;
                };
                out.push(char::from_u32(code)?);
            }
        }
        // Skip the reference body we just handled.
        for _ in 0..semi + 1 {
            chars.next();
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_unescape_text_roundtrip() {
        let samples = ["", "plain", "a<b", "a&b", "x>y", "mix <&> done", "já 名前"];
        for s in samples {
            assert_eq!(unescape(&escape_text(s)).as_deref(), Some(s), "sample {s:?}");
        }
    }

    #[test]
    fn escape_unescape_attr_roundtrip() {
        let samples = ["", "v", "a\"b", "a'b", "tab\there", "line\nbreak", "<&>"];
        for s in samples {
            assert_eq!(unescape(&escape_attr(s)).as_deref(), Some(s), "sample {s:?}");
        }
    }

    #[test]
    fn numeric_references() {
        assert_eq!(unescape("&#65;&#x42;&#x63;").as_deref(), Some("ABc"));
    }

    #[test]
    fn malformed_references_rejected() {
        assert_eq!(unescape("&lt"), None);
        assert_eq!(unescape("&nosuch;"), None);
        assert_eq!(unescape("&#xZZ;"), None);
        assert_eq!(unescape("&#1114112;"), None); // beyond char::MAX
    }
}
