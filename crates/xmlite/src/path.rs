//! A small path language for selecting elements, in the spirit of the XPath
//! subset that the paper's XSL stylesheets rely on.
//!
//! A path is a sequence of `/`-separated steps applied to the *children* of
//! the context element. Each step is a tag name or `*`, optionally followed
//! by predicates:
//!
//! * `[attr=value]` — keep elements whose attribute equals the value,
//! * `[n]` — keep the n-th match (1-based, applied after other predicates).
//!
//! A leading `//` makes the first step match at any depth below the context.
//!
//! ```
//! use xmlite::{Document, path};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let doc = Document::parse(
//!     "<dp><comp kind='add' id='a0'/><comp kind='mul' id='m0'/></dp>")?;
//! let muls = path::select(doc.root(), "comp[kind=mul]");
//! assert_eq!(muls[0].attr("id"), Some("m0"));
//! assert_eq!(path::select_attr(doc.root(), "comp/@id"), ["a0", "m0"]);
//! # Ok(())
//! # }
//! ```

use crate::dom::Element;
use std::error::Error;
use std::fmt;

/// Error produced when a path expression is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePathError {
    message: String,
}

impl ParsePathError {
    fn new(message: impl Into<String>) -> Self {
        ParsePathError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParsePathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid path expression: {}", self.message)
    }
}

impl Error for ParsePathError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Predicate {
    AttrEquals(String, String),
    Index(usize),
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Step {
    name: String, // "*" means any
    predicates: Vec<Predicate>,
}

/// A parsed, reusable path expression.
///
/// Parse once with [`Path::parse`] and apply repeatedly with
/// [`Path::select`]; the free functions [`select`] and [`select_attr`] are
/// one-shot conveniences for literal paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    steps: Vec<Step>,
    attr: Option<String>,
    deep_first: bool,
}

impl Path {
    /// Parses a path expression.
    ///
    /// # Errors
    ///
    /// Returns [`ParsePathError`] for empty steps, unterminated predicates,
    /// or an `@attr` segment that is not last.
    pub fn parse(expr: &str) -> Result<Self, ParsePathError> {
        let (deep_first, body) = match expr.strip_prefix("//") {
            Some(rest) => (true, rest),
            None => (false, expr),
        };
        if body.is_empty() {
            return Err(ParsePathError::new("empty path"));
        }
        let mut steps = Vec::new();
        let mut attr = None;
        let segments: Vec<&str> = body.split('/').collect();
        for (i, segment) in segments.iter().enumerate() {
            if segment.is_empty() {
                return Err(ParsePathError::new("empty step"));
            }
            if let Some(name) = segment.strip_prefix('@') {
                if i + 1 != segments.len() {
                    return Err(ParsePathError::new("'@attr' must be the final segment"));
                }
                if name.is_empty() {
                    return Err(ParsePathError::new("empty attribute name"));
                }
                attr = Some(name.to_string());
                break;
            }
            steps.push(parse_step(segment)?);
        }
        if steps.is_empty() {
            return Err(ParsePathError::new("path selects no element"));
        }
        Ok(Path {
            steps,
            attr,
            deep_first,
        })
    }

    /// Whether the expression ends in an `@attr` segment.
    pub fn selects_attribute(&self) -> bool {
        self.attr.is_some()
    }

    /// Applies the element-selecting part of the path to `context`.
    pub fn select<'a>(&self, context: &'a Element) -> Vec<&'a Element> {
        let mut current: Vec<&Element> = vec![context];
        for (i, step) in self.steps.iter().enumerate() {
            let mut next = Vec::new();
            for element in &current {
                if i == 0 && self.deep_first {
                    collect_descendants(element, &step.name, &mut next);
                } else {
                    next.extend(
                        element
                            .child_elements()
                            .filter(|c| step.name == "*" || c.name() == step.name),
                    );
                }
            }
            for predicate in &step.predicates {
                match predicate {
                    Predicate::AttrEquals(name, value) => {
                        next.retain(|e| e.attr(name) == Some(value.as_str()));
                    }
                    Predicate::Index(n) => {
                        next = match next.get(n.wrapping_sub(1)) {
                            Some(e) => vec![e],
                            None => Vec::new(),
                        };
                    }
                }
            }
            current = next;
            if current.is_empty() {
                break;
            }
        }
        current
    }

    /// Applies the full path, returning attribute values when the path ends
    /// in `@attr` and element text content otherwise.
    pub fn select_values(&self, context: &Element) -> Vec<String> {
        let elements = self.select(context);
        match &self.attr {
            Some(name) => elements
                .iter()
                .filter_map(|e| e.attr(name).map(str::to_string))
                .collect(),
            None => elements.iter().map(|e| e.text()).collect(),
        }
    }
}

fn parse_step(segment: &str) -> Result<Step, ParsePathError> {
    let (name_part, mut rest) = match segment.find('[') {
        Some(i) => (&segment[..i], &segment[i..]),
        None => (segment, ""),
    };
    if name_part.is_empty() {
        return Err(ParsePathError::new("step has no name"));
    }
    let mut predicates = Vec::new();
    while !rest.is_empty() {
        let inner_end = rest
            .find(']')
            .ok_or_else(|| ParsePathError::new("unterminated predicate"))?;
        let inner = &rest[1..inner_end];
        if let Some(eq) = inner.find('=') {
            let (attr, value) = (&inner[..eq], &inner[eq + 1..]);
            if attr.is_empty() {
                return Err(ParsePathError::new("predicate attribute name is empty"));
            }
            predicates.push(Predicate::AttrEquals(attr.to_string(), value.to_string()));
        } else {
            let index: usize = inner
                .parse()
                .map_err(|_| ParsePathError::new(format!("bad predicate '{inner}'")))?;
            if index == 0 {
                return Err(ParsePathError::new("index predicates are 1-based"));
            }
            predicates.push(Predicate::Index(index));
        }
        rest = &rest[inner_end + 1..];
    }
    Ok(Step {
        name: name_part.to_string(),
        predicates,
    })
}

fn collect_descendants<'a>(element: &'a Element, name: &str, out: &mut Vec<&'a Element>) {
    for child in element.child_elements() {
        if name == "*" || child.name() == name {
            out.push(child);
        }
        collect_descendants(child, name, out);
    }
}

/// One-shot element selection with a literal path.
///
/// # Panics
///
/// Panics when `expr` is malformed or ends in `@attr`; use [`Path::parse`]
/// for fallible handling of dynamic expressions.
pub fn select<'a>(context: &'a Element, expr: &str) -> Vec<&'a Element> {
    let path = Path::parse(expr).expect("malformed path literal");
    assert!(
        !path.selects_attribute(),
        "path selects an attribute; use select_attr"
    );
    path.select(context)
}

/// One-shot first-match selection with a literal path.
///
/// # Panics
///
/// Panics when `expr` is malformed (see [`select`]).
pub fn find_first<'a>(context: &'a Element, expr: &str) -> Option<&'a Element> {
    select(context, expr).into_iter().next()
}

/// One-shot attribute-value selection with a literal path ending in `@attr`.
///
/// # Panics
///
/// Panics when `expr` is malformed or does not end in `@attr`.
pub fn select_attr(context: &Element, expr: &str) -> Vec<String> {
    let path = Path::parse(expr).expect("malformed path literal");
    assert!(
        path.selects_attribute(),
        "path does not select an attribute; use select"
    );
    path.select_values(context)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::Document;

    fn doc() -> Document {
        Document::parse(
            "<dp>\
               <comps>\
                 <comp kind='add' id='a0'><port name='x' width='16'/></comp>\
                 <comp kind='add' id='a1'/>\
                 <comp kind='mul' id='m0'/>\
               </comps>\
               <nets><net id='n0'/></nets>\
             </dp>",
        )
        .unwrap()
    }

    #[test]
    fn simple_child_steps() {
        let d = doc();
        assert_eq!(select(d.root(), "comps/comp").len(), 3);
        assert_eq!(select(d.root(), "comps").len(), 1);
        assert_eq!(select(d.root(), "nope").len(), 0);
    }

    #[test]
    fn wildcard_step() {
        let d = doc();
        assert_eq!(select(d.root(), "*").len(), 2);
        assert_eq!(select(d.root(), "*/comp").len(), 3);
    }

    #[test]
    fn attr_predicate() {
        let d = doc();
        let adds = select(d.root(), "comps/comp[kind=add]");
        assert_eq!(adds.len(), 2);
        assert_eq!(adds[1].attr("id"), Some("a1"));
    }

    #[test]
    fn index_predicate_is_one_based() {
        let d = doc();
        let second = select(d.root(), "comps/comp[2]");
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].attr("id"), Some("a1"));
        assert!(select(d.root(), "comps/comp[9]").is_empty());
    }

    #[test]
    fn combined_predicates() {
        let d = doc();
        let e = select(d.root(), "comps/comp[kind=add][2]");
        assert_eq!(e[0].attr("id"), Some("a1"));
    }

    #[test]
    fn descendant_search() {
        let d = doc();
        assert_eq!(select(d.root(), "//comp").len(), 3);
        assert_eq!(select(d.root(), "//port").len(), 1);
        assert_eq!(select(d.root(), "//comp/port").len(), 1);
    }

    #[test]
    fn attribute_selection() {
        let d = doc();
        assert_eq!(
            select_attr(d.root(), "comps/comp/@id"),
            ["a0", "a1", "m0"]
        );
        assert_eq!(select_attr(d.root(), "//port/@width"), ["16"]);
    }

    #[test]
    fn find_first_returns_first_match() {
        let d = doc();
        assert_eq!(
            find_first(d.root(), "comps/comp").unwrap().attr("id"),
            Some("a0")
        );
        assert!(find_first(d.root(), "zzz").is_none());
    }

    #[test]
    fn malformed_paths_rejected() {
        assert!(Path::parse("").is_err());
        assert!(Path::parse("a//b").is_err());
        assert!(Path::parse("a/[x=1]").is_err());
        assert!(Path::parse("a[unclosed").is_err());
        assert!(Path::parse("a[0]").is_err());
        assert!(Path::parse("@x/a").is_err());
        assert!(Path::parse("@").is_err());
        assert!(Path::parse("@x").is_err());
    }

    #[test]
    fn select_values_on_text() {
        let d = Document::parse("<a><b>one</b><b>two</b></a>").unwrap();
        let p = Path::parse("b").unwrap();
        assert_eq!(p.select_values(d.root()), ["one", "two"]);
    }
}
