//! Recursive-descent parser for the supported XML subset.

use crate::dom::{Document, Element, Node};
use crate::error::ParseXmlError;
use crate::escape;

struct Cursor<'a> {
    input: &'a str,
    pos: usize,
    line: usize,
    column: usize,
}

impl<'a> Cursor<'a> {
    fn new(input: &'a str) -> Self {
        Cursor {
            input,
            pos: 0,
            line: 1,
            column: 1,
        }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.rest().starts_with(s)
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            for _ in s.chars() {
                self.bump();
            }
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), ParseXmlError> {
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{s}'")))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseXmlError {
        ParseXmlError::new(message, self.line, self.column)
    }
}

/// Element-nesting ceiling. The parser recurses per element, so an
/// adversarially nested document (`<a><a><a>…`) would otherwise overflow
/// the stack; real interchange files nest a handful of levels. Well past
/// any legitimate document, well short of the stack.
const MAX_DEPTH: usize = 200;

fn is_name_start(c: char) -> bool {
    c.is_alphabetic() || c == '_' || c == ':'
}

fn is_name_char(c: char) -> bool {
    is_name_start(c) || c.is_ascii_digit() || c == '-' || c == '.'
}

pub(crate) fn parse_document(input: &str) -> Result<Document, ParseXmlError> {
    let mut cur = Cursor::new(input);
    skip_misc(&mut cur)?;
    if cur.peek() != Some('<') {
        return Err(cur.err("expected root element"));
    }
    let root = parse_element(&mut cur, 0)?;
    skip_misc(&mut cur)?;
    if cur.peek().is_some() {
        return Err(cur.err("content after document root"));
    }
    Ok(Document::new(root))
}

/// Skips whitespace, comments, and the XML declaration between top-level
/// constructs.
fn skip_misc(cur: &mut Cursor) -> Result<(), ParseXmlError> {
    loop {
        cur.skip_ws();
        if cur.starts_with("<?") {
            // XML declaration or processing instruction: skip to '?>'.
            while !cur.eat("?>") {
                if cur.bump().is_none() {
                    return Err(cur.err("unterminated processing instruction"));
                }
            }
        } else if cur.starts_with("<!--") {
            parse_comment(cur)?;
        } else {
            return Ok(());
        }
    }
}

fn parse_comment(cur: &mut Cursor) -> Result<String, ParseXmlError> {
    cur.expect("<!--")?;
    let start = cur.pos;
    loop {
        if cur.starts_with("-->") {
            let body = cur.input[start..cur.pos].to_string();
            cur.eat("-->");
            return Ok(body);
        }
        if cur.bump().is_none() {
            return Err(cur.err("unterminated comment"));
        }
    }
}

fn parse_name(cur: &mut Cursor) -> Result<String, ParseXmlError> {
    match cur.peek() {
        Some(c) if is_name_start(c) => {}
        _ => return Err(cur.err("expected name")),
    }
    let start = cur.pos;
    while matches!(cur.peek(), Some(c) if is_name_char(c)) {
        cur.bump();
    }
    Ok(cur.input[start..cur.pos].to_string())
}

fn parse_attr_value(cur: &mut Cursor) -> Result<String, ParseXmlError> {
    let quote = match cur.peek() {
        Some(q @ ('"' | '\'')) => q,
        _ => return Err(cur.err("expected quoted attribute value")),
    };
    cur.bump();
    let start = cur.pos;
    loop {
        match cur.peek() {
            Some(c) if c == quote => {
                let raw = &cur.input[start..cur.pos];
                cur.bump();
                return escape::unescape(raw)
                    .ok_or_else(|| cur.err("malformed entity reference in attribute value"));
            }
            Some('<') => return Err(cur.err("'<' not allowed in attribute value")),
            Some(_) => {
                cur.bump();
            }
            None => return Err(cur.err("unterminated attribute value")),
        }
    }
}

fn parse_element(cur: &mut Cursor, depth: usize) -> Result<Element, ParseXmlError> {
    if depth >= MAX_DEPTH {
        return Err(cur.err(format!("elements nested deeper than {MAX_DEPTH} levels")));
    }
    cur.expect("<")?;
    let name = parse_name(cur)?;
    let mut element = Element::new(&name);
    loop {
        cur.skip_ws();
        if cur.eat("/>") {
            return Ok(element);
        }
        if cur.eat(">") {
            break;
        }
        let attr_name = parse_name(cur)?;
        if element.attr(&attr_name).is_some() {
            return Err(cur.err(format!("duplicate attribute '{attr_name}'")));
        }
        cur.skip_ws();
        cur.expect("=")?;
        cur.skip_ws();
        let value = parse_attr_value(cur)?;
        element.set_attr(attr_name, value);
    }
    // Content until the matching close tag.
    let mut text = String::new();
    loop {
        if cur.starts_with("</") {
            flush_text(&mut element, &mut text);
            cur.eat("</");
            let close = parse_name(cur)?;
            if close != name {
                return Err(cur.err(format!(
                    "mismatched close tag: expected </{name}>, found </{close}>"
                )));
            }
            cur.skip_ws();
            cur.expect(">")?;
            return Ok(element);
        } else if cur.starts_with("<!--") {
            flush_text(&mut element, &mut text);
            let body = parse_comment(cur)?;
            element.push(Node::Comment(body));
        } else if cur.starts_with("<![CDATA[") {
            cur.eat("<![CDATA[");
            let start = cur.pos;
            loop {
                if cur.starts_with("]]>") {
                    text.push_str(&cur.input[start..cur.pos]);
                    cur.eat("]]>");
                    break;
                }
                if cur.bump().is_none() {
                    return Err(cur.err("unterminated CDATA section"));
                }
            }
        } else if cur.starts_with("<?") {
            return Err(cur.err("processing instructions are not supported inside elements"));
        } else if cur.starts_with("<") {
            flush_text(&mut element, &mut text);
            let child = parse_element(cur, depth + 1)?;
            element.push(child);
        } else {
            match cur.peek() {
                Some(_) => {
                    let start = cur.pos;
                    while matches!(cur.peek(), Some(c) if c != '<') {
                        cur.bump();
                    }
                    let raw = &cur.input[start..cur.pos];
                    let unescaped = escape::unescape(raw)
                        .ok_or_else(|| cur.err("malformed entity reference in character data"))?;
                    text.push_str(&unescaped);
                }
                None => return Err(cur.err(format!("unexpected end of input inside <{name}>"))),
            }
        }
    }
}

/// Pushes accumulated character data as a text node, dropping
/// whitespace-only runs (interchange files never carry significant
/// whitespace between elements).
fn flush_text(element: &mut Element, text: &mut String) {
    if !text.trim().is_empty() {
        element.push(Node::Text(std::mem::take(text)));
    } else {
        text.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_declaration_and_nesting() {
        let doc = Document::parse(
            "<?xml version=\"1.0\"?>\n<!-- generated -->\n<rtg><node id=\"c0\"/><node id=\"c1\"/></rtg>",
        )
        .unwrap();
        assert_eq!(doc.root().name(), "rtg");
        assert_eq!(doc.root().children_named("node").count(), 2);
    }

    #[test]
    fn parses_attributes_with_both_quote_styles() {
        let doc = Document::parse(r#"<a x="1" y='2'/>"#).unwrap();
        assert_eq!(doc.root().attr("x"), Some("1"));
        assert_eq!(doc.root().attr("y"), Some("2"));
    }

    #[test]
    fn parses_text_with_entities() {
        let doc = Document::parse("<expr>a &lt; b &amp;&amp; c</expr>").unwrap();
        assert_eq!(doc.root().text(), "a < b && c");
    }

    #[test]
    fn parses_cdata() {
        let doc = Document::parse("<code><![CDATA[if (a < b) x &= 1;]]></code>").unwrap();
        assert_eq!(doc.root().text(), "if (a < b) x &= 1;");
    }

    #[test]
    fn whitespace_between_elements_is_dropped() {
        let doc = Document::parse("<a>\n  <b/>\n  <c/>\n</a>").unwrap();
        assert_eq!(doc.root().children().len(), 2);
    }

    #[test]
    fn comment_inside_element_is_kept() {
        let doc = Document::parse("<a><!--note--><b/></a>").unwrap();
        assert!(matches!(doc.root().children()[0], Node::Comment(ref c) if c == "note"));
    }

    #[test]
    fn rejects_mismatched_tags() {
        let err = Document::parse("<a><b></a></b>").unwrap_err();
        assert!(err.message().contains("mismatched"), "{err}");
    }

    #[test]
    fn rejects_duplicate_attributes() {
        let err = Document::parse("<a x='1' x='2'/>").unwrap_err();
        assert!(err.message().contains("duplicate"), "{err}");
    }

    #[test]
    fn rejects_trailing_content() {
        let err = Document::parse("<a/><b/>").unwrap_err();
        assert!(err.message().contains("after document root"), "{err}");
    }

    #[test]
    fn rejects_unterminated_input() {
        assert!(Document::parse("<a><b>").is_err());
        assert!(Document::parse("<a x=>").is_err());
        assert!(Document::parse("<a x='v>").is_err());
        assert!(Document::parse("<!-- never ends").is_err());
    }

    #[test]
    fn error_position_is_tracked() {
        let err = Document::parse("<a>\n  <b x=?/>\n</a>").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.column() > 1);
    }

    #[test]
    fn rejects_empty_input() {
        assert!(Document::parse("").is_err());
        assert!(Document::parse("   \n ").is_err());
    }

    #[test]
    fn deeply_nested_document_is_rejected_not_a_stack_overflow() {
        // 100k nesting levels would overflow the parser's stack without
        // the depth ceiling; it must come back as an ordinary parse error.
        let depth = 100_000;
        let mut input = String::with_capacity(depth * 7);
        for _ in 0..depth {
            input.push_str("<a>");
        }
        for _ in 0..depth {
            input.push_str("</a>");
        }
        let err = Document::parse(&input).unwrap_err();
        assert!(err.message().contains("nested deeper"), "{err}");

        // Legitimate nesting well under the ceiling still parses.
        let mut ok = String::new();
        for _ in 0..50 {
            ok.push_str("<a>");
        }
        for _ in 0..50 {
            ok.push_str("</a>");
        }
        assert!(Document::parse(&ok).is_ok());
    }

    #[test]
    fn names_may_contain_digits_dots_dashes() {
        let doc = Document::parse("<dp-1.x_2><s:q/></dp-1.x_2>").unwrap();
        assert_eq!(doc.root().name(), "dp-1.x_2");
        assert_eq!(doc.root().child_elements().next().unwrap().name(), "s:q");
    }
}
