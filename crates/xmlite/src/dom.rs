//! The tree document model: [`Document`], [`Element`], and [`Node`].

use crate::error::ParseXmlError;
use crate::parser;
use crate::writer::{self, WriteOptions};
use std::fmt;

/// A parsed or programmatically built XML document.
///
/// A document owns exactly one root [`Element`]. The infrastructure builds
/// documents in three dialects (`datapath`, `fsm`, `rtg`) and parses them
/// back when elaborating a simulation.
///
/// ```
/// use xmlite::{Document, Element};
/// let doc = Document::new(Element::new("datapath"));
/// assert_eq!(doc.root().name(), "datapath");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    root: Element,
}

impl Document {
    /// Creates a document with the given root element.
    pub fn new(root: Element) -> Self {
        Document { root }
    }

    /// Parses a document from XML text.
    ///
    /// # Errors
    ///
    /// Returns [`ParseXmlError`] when the input is not well-formed under the
    /// supported subset (mismatched tags, bad references, multiple roots, …).
    pub fn parse(input: &str) -> Result<Self, ParseXmlError> {
        parser::parse_document(input)
    }

    /// The root element.
    pub fn root(&self) -> &Element {
        &self.root
    }

    /// Mutable access to the root element.
    pub fn root_mut(&mut self) -> &mut Element {
        &mut self.root
    }

    /// Consumes the document, returning its root element.
    pub fn into_root(self) -> Element {
        self.root
    }

    /// Renders the document with two-space indentation and an XML declaration.
    pub fn to_pretty_string(&self) -> String {
        writer::write_document(self, &WriteOptions::pretty())
    }

    /// Renders the document on a single line without a declaration.
    pub fn to_compact_string(&self) -> String {
        writer::write_document(self, &WriteOptions::compact())
    }

    /// Renders the document with explicit options.
    pub fn to_string_with(&self, options: &WriteOptions) -> String {
        writer::write_document(self, options)
    }
}

impl fmt::Display for Document {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_pretty_string())
    }
}

impl From<Element> for Document {
    fn from(root: Element) -> Self {
        Document::new(root)
    }
}

/// One node in an element's child list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A nested element.
    Element(Element),
    /// Character data (already unescaped).
    Text(String),
    /// A comment (without the `<!--`/`-->` delimiters).
    Comment(String),
}

impl Node {
    /// Returns the contained element, if this node is one.
    pub fn as_element(&self) -> Option<&Element> {
        match self {
            Node::Element(e) => Some(e),
            _ => None,
        }
    }

    /// Returns the contained text, if this node is character data.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Node::Text(t) => Some(t),
            _ => None,
        }
    }
}

impl From<Element> for Node {
    fn from(e: Element) -> Self {
        Node::Element(e)
    }
}

/// An XML element: a name, ordered attributes, and child nodes.
///
/// Attribute order is preserved so that generated documents render
/// deterministically — the `loXML` metrics of Table I depend on stable
/// output.
///
/// ```
/// use xmlite::Element;
/// let e = Element::new("component")
///     .with_attr("id", "add0")
///     .with_attr("kind", "add")
///     .with_child(Element::new("port").with_attr("name", "a"));
/// assert_eq!(e.attr("kind"), Some("add"));
/// assert_eq!(e.child_elements().count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    name: String,
    attrs: Vec<(String, String)>,
    children: Vec<Node>,
}

impl Element {
    /// Creates an element with the given tag name and no attributes or
    /// children.
    pub fn new(name: impl Into<String>) -> Self {
        Element {
            name: name.into(),
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// The tag name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the element.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Looks up an attribute value by name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Looks up a required attribute, describing the element in the error.
    ///
    /// # Errors
    ///
    /// Returns a message naming both the attribute and the element when the
    /// attribute is missing. Dialect loaders use this to produce actionable
    /// diagnostics for malformed compiler output.
    pub fn attr_required(&self, name: &str) -> Result<&str, String> {
        self.attr(name)
            .ok_or_else(|| format!("element <{}> is missing attribute '{}'", self.name, name))
    }

    /// Parses a required attribute as the given type.
    ///
    /// # Errors
    ///
    /// Returns a message when the attribute is missing or fails to parse.
    pub fn attr_parse<T: std::str::FromStr>(&self, name: &str) -> Result<T, String> {
        let raw = self.attr_required(name)?;
        raw.parse().map_err(|_| {
            format!(
                "attribute '{}' of <{}> has unparseable value '{}'",
                name, self.name, raw
            )
        })
    }

    /// Sets an attribute, replacing any existing value.
    pub fn set_attr(&mut self, name: impl Into<String>, value: impl Into<String>) {
        let name = name.into();
        let value = value.into();
        if let Some(slot) = self.attrs.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = value;
        } else {
            self.attrs.push((name, value));
        }
    }

    /// Builder-style [`set_attr`](Self::set_attr).
    pub fn with_attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.set_attr(name, value);
        self
    }

    /// Iterates attributes in document order as `(name, value)` pairs.
    pub fn attrs(&self) -> impl Iterator<Item = (&str, &str)> {
        self.attrs.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }

    /// Number of attributes.
    pub fn attr_count(&self) -> usize {
        self.attrs.len()
    }

    /// Appends a child node.
    pub fn push(&mut self, node: impl Into<Node>) {
        self.children.push(node.into());
    }

    /// Appends character data as a child node.
    pub fn push_text(&mut self, text: impl Into<String>) {
        self.children.push(Node::Text(text.into()));
    }

    /// Builder-style [`push`](Self::push).
    pub fn with_child(mut self, node: impl Into<Node>) -> Self {
        self.push(node);
        self
    }

    /// Builder-style [`push_text`](Self::push_text).
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.push_text(text);
        self
    }

    /// All child nodes in document order.
    pub fn children(&self) -> &[Node] {
        &self.children
    }

    /// Mutable access to the child node list.
    pub fn children_mut(&mut self) -> &mut Vec<Node> {
        &mut self.children
    }

    /// Iterates only the element children.
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(Node::as_element)
    }

    /// Iterates element children with a given tag name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.child_elements().filter(move |e| e.name() == name)
    }

    /// First element child with the given tag name.
    pub fn first_child_named(&self, name: &str) -> Option<&Element> {
        self.child_elements().find(|e| e.name() == name)
    }

    /// Concatenated character data of direct text children.
    pub fn text(&self) -> String {
        self.children
            .iter()
            .filter_map(Node::as_text)
            .collect::<Vec<_>>()
            .join("")
    }

    /// Total number of elements in this subtree, including `self`.
    pub fn subtree_size(&self) -> usize {
        1 + self
            .child_elements()
            .map(Element::subtree_size)
            .sum::<usize>()
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&writer::write_element(self, &WriteOptions::compact()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Element {
        Element::new("datapath")
            .with_attr("name", "dp0")
            .with_child(
                Element::new("component")
                    .with_attr("id", "add0")
                    .with_attr("kind", "add"),
            )
            .with_child(Element::new("component").with_attr("id", "mul0"))
            .with_child(Node::Comment("generated".into()))
            .with_text("tail")
    }

    #[test]
    fn attribute_access_and_replacement() {
        let mut e = sample();
        assert_eq!(e.attr("name"), Some("dp0"));
        assert_eq!(e.attr("missing"), None);
        e.set_attr("name", "dp1");
        assert_eq!(e.attr("name"), Some("dp1"));
        assert_eq!(e.attr_count(), 1);
    }

    #[test]
    fn attr_required_reports_element() {
        let e = sample();
        let err = e.attr_required("width").unwrap_err();
        assert!(err.contains("datapath") && err.contains("width"), "{err}");
    }

    #[test]
    fn attr_parse_success_and_failure() {
        let e = Element::new("port").with_attr("width", "16").with_attr("bad", "x2");
        assert_eq!(e.attr_parse::<u32>("width").unwrap(), 16);
        assert!(e.attr_parse::<u32>("bad").is_err());
        assert!(e.attr_parse::<u32>("absent").is_err());
    }

    #[test]
    fn child_navigation() {
        let e = sample();
        assert_eq!(e.child_elements().count(), 2);
        assert_eq!(e.children_named("component").count(), 2);
        assert_eq!(
            e.first_child_named("component").unwrap().attr("id"),
            Some("add0")
        );
        assert!(e.first_child_named("port").is_none());
        assert_eq!(e.text(), "tail");
        assert_eq!(e.subtree_size(), 3);
    }

    #[test]
    fn attribute_order_is_preserved() {
        let e = Element::new("c").with_attr("z", "1").with_attr("a", "2");
        let names: Vec<_> = e.attrs().map(|(n, _)| n).collect();
        assert_eq!(names, ["z", "a"]);
    }

    #[test]
    fn display_is_compact() {
        let e = Element::new("a").with_child(Element::new("b"));
        assert_eq!(e.to_string(), "<a><b/></a>");
    }
}
