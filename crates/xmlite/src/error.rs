use std::error::Error;
use std::fmt;

/// Error produced when parsing malformed XML input.
///
/// Carries the 1-based line and column of the offending input position so
/// that hand-edited test-suite files can be fixed quickly.
///
/// ```
/// use xmlite::Document;
/// let err = Document::parse("<a><b></a>").unwrap_err();
/// assert!(err.to_string().contains("line"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseXmlError {
    message: String,
    line: usize,
    column: usize,
}

impl ParseXmlError {
    pub(crate) fn new(message: impl Into<String>, line: usize, column: usize) -> Self {
        ParseXmlError {
            message: message.into(),
            line,
            column,
        }
    }

    /// The human-readable description of what went wrong.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// 1-based line of the error position.
    pub fn line(&self) -> usize {
        self.line
    }

    /// 1-based column of the error position.
    pub fn column(&self) -> usize {
        self.column
    }
}

impl fmt::Display for ParseXmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (line {}, column {})",
            self.message, self.line, self.column
        )
    }
}

impl Error for ParseXmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = ParseXmlError::new("unexpected end of input", 3, 14);
        assert_eq!(e.to_string(), "unexpected end of input (line 3, column 14)");
        assert_eq!(e.line(), 3);
        assert_eq!(e.column(), 14);
        assert_eq!(e.message(), "unexpected end of input");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ParseXmlError>();
    }
}
