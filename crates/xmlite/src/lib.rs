//! # xmlite — a minimal XML document model for the fpgatest infrastructure
//!
//! The DATE'05 test infrastructure exchanges every artifact between the
//! compiler and the simulator as XML: the datapath netlist, the control-unit
//! FSM, and the Reconfiguration Transition Graph (RTG). This crate provides
//! the XML layer those dialects are built on:
//!
//! * a tree document model ([`Document`], [`Element`], [`Node`]),
//! * a non-validating XML 1.0 subset parser ([`Document::parse`]),
//! * a writer with canonical pretty-printing ([`Document::to_pretty_string`]),
//! * a small path language for selecting nodes ([`path::select`]),
//! * entity escaping/unescaping ([`escape`]).
//!
//! The subset is deliberately scoped to what machine-generated interchange
//! files need: elements, attributes, character data, comments, CDATA, the
//! XML declaration, and the five predefined entities plus numeric character
//! references. DTDs, namespaces, and processing instructions other than the
//! declaration are out of scope (the infrastructure never emits them).
//!
//! ## Example
//!
//! ```
//! use xmlite::{Document, Element};
//!
//! # fn main() -> Result<(), xmlite::ParseXmlError> {
//! let doc = Document::parse("<fsm name='ctrl'><state id='s0'/></fsm>")?;
//! assert_eq!(doc.root().name(), "fsm");
//! assert_eq!(doc.root().attr("name"), Some("ctrl"));
//! let states = xmlite::path::select(doc.root(), "state");
//! assert_eq!(states.len(), 1);
//! # Ok(())
//! # }
//! ```

mod dom;
mod error;
pub mod escape;
mod parser;
pub mod path;
mod writer;

pub use dom::{Document, Element, Node};
pub use error::ParseXmlError;
pub use writer::WriteOptions;

/// Counts the number of non-empty lines in a rendered document.
///
/// Table I of the paper reports sizes of the XML descriptions as *lines*
/// (`loXML`); this helper defines that metric uniformly for the whole
/// infrastructure: the line count of the canonical pretty-printed form.
///
/// ```
/// use xmlite::{Document, loc};
/// # fn main() -> Result<(), xmlite::ParseXmlError> {
/// let doc = Document::parse("<a><b/><c/></a>")?;
/// assert_eq!(loc(&doc), 4); // <a>, <b/>, <c/>, </a>
/// # Ok(())
/// # }
/// ```
pub fn loc(doc: &Document) -> usize {
    doc.to_pretty_string()
        .lines()
        .filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with("<?"))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loc_counts_pretty_lines() {
        let doc = Document::parse("<a><b x='1'/><b x='2'/></a>").unwrap();
        assert_eq!(loc(&doc), 4);
    }

    #[test]
    fn loc_of_single_empty_element() {
        let doc = Document::parse("<a/>").unwrap();
        assert_eq!(loc(&doc), 1);
    }
}
