//! Property tests over the two simulation engines.
//!
//! The key invariant: the event-driven kernel and the naive cycle-based
//! baseline are *independent implementations of the same semantics*, so on
//! any well-formed combinational netlist they must settle to identical
//! values. This is the in-repo analogue of cross-simulator validation.

use eventsim::netlist::{Instance, Netlist};
use eventsim::ops::{eval_binop, OpKind};
use eventsim::{cyclesim::CycleSim, SimTime, Simulator, Value};
use proptest::prelude::*;

const WIDTH: u32 = 16;

fn arb_safe_kind() -> impl Strategy<Value = OpKind> {
    // div/rem excluded: zero denominators legitimately fail the run, which
    // is covered by dedicated unit tests.
    prop_oneof![
        Just(OpKind::Add),
        Just(OpKind::Sub),
        Just(OpKind::Mul),
        Just(OpKind::And),
        Just(OpKind::Or),
        Just(OpKind::Xor),
        Just(OpKind::Shl),
        Just(OpKind::Shr),
        Just(OpKind::Ushr),
        Just(OpKind::Eq),
        Just(OpKind::Ne),
        Just(OpKind::Lt),
        Just(OpKind::Le),
        Just(OpKind::Gt),
        Just(OpKind::Ge),
    ]
}

/// A random combinational DAG: `n_consts` constant leaves followed by
/// binary nodes whose operands are uniformly chosen among earlier nets.
#[derive(Debug, Clone)]
struct RandomDag {
    consts: Vec<i64>,
    nodes: Vec<(OpKind, usize, usize)>,
}

fn arb_dag() -> impl Strategy<Value = RandomDag> {
    (
        proptest::collection::vec(-1000i64..1000, 1..6),
        proptest::collection::vec((arb_safe_kind(), any::<prop::sample::Index>(), any::<prop::sample::Index>()), 1..24),
    )
        .prop_map(|(consts, raw_nodes)| {
            let mut nodes = Vec::new();
            for (kind, ia, ib) in raw_nodes {
                let available = consts.len() + nodes.len();
                nodes.push((kind, ia.index(available), ib.index(available)));
            }
            RandomDag { consts, nodes }
        })
}

fn dag_to_netlist(dag: &RandomDag) -> Netlist {
    let mut nl = Netlist::new("dag");
    for i in 0..dag.consts.len() + dag.nodes.len() {
        // Comparison nodes produce 1-bit nets.
        let width = if i >= dag.consts.len() && dag.nodes[i - dag.consts.len()].0.is_comparison() {
            1
        } else {
            WIDTH
        };
        nl.add_signal(format!("n{i}"), width);
    }
    for (i, value) in dag.consts.iter().enumerate() {
        nl.add_instance(
            Instance::new(format!("c{i}"), "const")
                .with_param("width", WIDTH)
                .with_param("value", *value)
                .with_conn("y", format!("n{i}")),
        );
    }
    for (i, (kind, a, b)) in dag.nodes.iter().enumerate() {
        let out = dag.consts.len() + i;
        nl.add_instance(
            Instance::new(format!("op{i}"), kind.name())
                .with_param("width", WIDTH)
                .with_conn("a", format!("n{a}"))
                .with_conn("b", format!("n{b}"))
                .with_conn("y", format!("n{out}")),
        );
    }
    nl
}

/// Reference evaluation of the DAG with plain host arithmetic.
fn dag_reference(dag: &RandomDag) -> Vec<i64> {
    let mut values: Vec<i64> = dag
        .consts
        .iter()
        .map(|&v| Value::known(WIDTH, v).as_i64())
        .collect();
    for (kind, a, b) in &dag.nodes {
        let v = eval_binop(*kind, values[*a], values[*b], WIDTH)
            .expect("no div/rem in safe kinds")
            .as_i64();
        values.push(v);
    }
    values
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Event kernel result == cycle baseline result == host arithmetic, on
    /// every net of a random combinational DAG.
    #[test]
    fn engines_agree_on_combinational_dags(dag in arb_dag()) {
        let nl = dag_to_netlist(&dag);
        let reference = dag_reference(&dag);

        let mut sim = Simulator::new();
        let map = nl.elaborate(&mut sim).unwrap();
        let summary = sim.run(SimTime(1000)).unwrap();
        prop_assert!(summary.outcome.is_ok());

        let mut cyc = CycleSim::from_netlist(&nl).unwrap();
        cyc.step().unwrap();

        for (i, &expected) in reference.iter().enumerate() {
            let name = format!("n{i}");
            let ev = sim.value(map.signal(&name).unwrap());
            let cv = cyc.value(&name).unwrap();
            prop_assert_eq!(ev.as_i64(), expected, "event kernel, net {}", &name);
            prop_assert_eq!(cv.as_i64(), expected, "cycle baseline, net {}", &name);
        }
    }

    /// Re-running the same netlist produces identical event statistics —
    /// the kernel is deterministic.
    #[test]
    fn kernel_is_deterministic(dag in arb_dag()) {
        let nl = dag_to_netlist(&dag);
        let mut results = Vec::new();
        for _ in 0..2 {
            let mut sim = Simulator::new();
            nl.elaborate(&mut sim).unwrap();
            let summary = sim.run(SimTime(1000)).unwrap();
            results.push((summary.events, summary.updates, summary.evals));
        }
        prop_assert_eq!(results[0], results[1]);
    }

    /// eval_binop commutes for commutative operators.
    #[test]
    fn commutative_ops_commute(a in -5000i64..5000, b in -5000i64..5000) {
        for kind in [OpKind::Add, OpKind::Mul, OpKind::And, OpKind::Or, OpKind::Xor, OpKind::Eq, OpKind::Ne] {
            let ab = eval_binop(kind, a, b, WIDTH).unwrap();
            let ba = eval_binop(kind, b, a, WIDTH).unwrap();
            prop_assert_eq!(ab, ba, "{}", kind);
        }
    }

    /// Values survive a round trip through their own accessors.
    #[test]
    fn value_roundtrip(raw in any::<i64>(), width in 1u32..=64) {
        let v = Value::known(width, raw);
        prop_assert_eq!(Value::known(width, v.as_i64()), v);
        prop_assert_eq!(v.as_u64(), (raw as u64) & eventsim::mask(width));
    }

    /// Comparison operators are consistent with host comparison.
    #[test]
    fn comparisons_match_host(a in -100i64..100, b in -100i64..100) {
        let cases = [
            (OpKind::Lt, a < b),
            (OpKind::Le, a <= b),
            (OpKind::Gt, a > b),
            (OpKind::Ge, a >= b),
            (OpKind::Eq, a == b),
            (OpKind::Ne, a != b),
        ];
        for (kind, expect) in cases {
            let v = eval_binop(kind, a, b, WIDTH).unwrap();
            prop_assert_eq!(v.is_true(), expect, "{} {} {}", a, kind, b);
        }
    }
}

/// A random *sequential* netlist: constant leaves, combinational binary
/// nodes, and a register after every K-th node — a synchronous pipeline
/// with feedback-free structure clocked for a fixed number of cycles.
#[derive(Debug, Clone)]
struct RandomSeqDesign {
    dag: RandomDag,
    registered: Vec<bool>,
    cycles: u8,
}

fn arb_seq_design() -> impl Strategy<Value = RandomSeqDesign> {
    (
        arb_dag(),
        proptest::collection::vec(any::<bool>(), 24),
        1u8..6,
    )
        .prop_map(|(dag, registered, cycles)| RandomSeqDesign {
            dag,
            registered,
            cycles,
        })
}

fn seq_to_netlist(design: &RandomSeqDesign) -> Netlist {
    let mut nl = dag_to_netlist(&design.dag);
    nl.add_signal("clk", 1);
    nl.add_instance(Instance::new("clock0", "clock").with_param("period", 10).with_conn("y", "clk"));
    // Registered taps: one register per selected node, q exported.
    for (i, _) in design.dag.nodes.iter().enumerate() {
        if !design.registered.get(i).copied().unwrap_or(false) {
            continue;
        }
        let node_signal = format!("n{}", design.dag.consts.len() + i);
        let is_cmp = design.dag.nodes[i].0.is_comparison();
        let width = if is_cmp { 1 } else { WIDTH };
        let q = format!("q{i}");
        nl.add_signal(&q, width);
        nl.add_instance(
            Instance::new(format!("r{i}"), "reg")
                .with_param("width", width)
                .with_conn("clk", "clk")
                .with_conn("d", node_signal)
                .with_conn("q", &q),
        );
    }
    nl
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Clocked designs: both engines agree on every register output after
    /// the same number of rising edges.
    #[test]
    fn engines_agree_on_sequential_designs(design in arb_seq_design()) {
        let nl = seq_to_netlist(&design);
        let cycles = design.cycles as u64;

        let mut sim = Simulator::new();
        let map = nl.elaborate(&mut sim).unwrap();
        // Rising edges at t = 5, 15, 25, …: run until just after edge
        // number `cycles`.
        sim.run(SimTime(5 + 10 * (cycles - 1) + 2)).unwrap();

        let mut cyc = CycleSim::from_netlist(&nl).unwrap();
        for _ in 0..cycles {
            cyc.step().unwrap();
        }

        for (i, _) in design.dag.nodes.iter().enumerate() {
            if !design.registered.get(i).copied().unwrap_or(false) {
                continue;
            }
            let name = format!("q{i}");
            let ev = sim.value(map.signal(&name).unwrap()).try_i64();
            let cv = cyc.value(&name).unwrap().try_i64();
            prop_assert_eq!(ev, cv, "register {} after {} cycles", name, cycles);
        }
    }
}
