//! `reset_state` regression: a compiled-engine model that is reset and
//! re-run must be bit-identical to a freshly built model — same signal
//! values, same memory contents, same cycle and evaluation counters.
//! This is the contract the design cache relies on: compile once, then
//! simulate the same model many times without rebuilding.

use eventsim::cyclesim::CycleSim;
use eventsim::levelsim::LevelSim;
use eventsim::netlist::{Instance, Netlist};
use eventsim::ops::{FsmState, FsmTable, FsmTransition};
use eventsim::{MemHandle, Value};
use std::collections::BTreeMap;

const WIDTH: u32 = 16;
const MAX_CYCLES: u64 = 60;

/// A synchronous design touching every piece of state `reset_state`
/// must rewind: a free-running counter, combinational ripple, an
/// enable-gated register, a written SRAM, an FSM control unit, and a
/// watchpoint that ends the run.
fn build_netlist() -> Netlist {
    let mut nl = Netlist::new("reset");
    for (name, width) in [
        ("clk", 1),
        ("rst", 1),
        ("cnt", WIDTH),
        ("addr", WIDTH),
        ("sum", WIDTH),
        ("prod", WIDTH),
        ("en", 1),
        ("held", WIDTH),
        ("dout", WIDTH),
        ("one", WIDTH),
        ("three", WIDTH),
        ("bit1", 1),
        ("wen", 1),
        ("fsm_out", WIDTH),
    ] {
        nl.add_signal(name, width);
    }
    nl.add_instance(
        Instance::new("clock0", "clock")
            .with_param("period", 10)
            .with_conn("y", "clk"),
    );
    nl.add_instance(
        Instance::new("c1", "const")
            .with_param("width", WIDTH)
            .with_param("value", 1)
            .with_conn("y", "one"),
    );
    nl.add_instance(
        Instance::new("c3", "const")
            .with_param("width", WIDTH)
            .with_param("value", 3)
            .with_conn("y", "three"),
    );
    nl.add_instance(
        Instance::new("reset0", "reset")
            .with_conn("y", "rst"),
    );
    // cnt is a register counting via the sum feedback (the compiled
    // engines have no dedicated counter component).
    nl.add_instance(
        Instance::new("cnt0", "reg")
            .with_param("width", WIDTH)
            .with_conn("clk", "clk")
            .with_conn("d", "sum")
            .with_conn("q", "cnt")
            .with_conn("rst", "rst"),
    );
    nl.add_instance(
        Instance::new("mask", "and")
            .with_param("width", WIDTH)
            .with_conn("a", "cnt")
            .with_conn("b", "three")
            .with_conn("y", "addr"),
    );
    nl.add_instance(
        Instance::new("add0", "add")
            .with_param("width", WIDTH)
            .with_conn("a", "cnt")
            .with_conn("b", "one")
            .with_conn("y", "sum"),
    );
    nl.add_instance(
        Instance::new("mul0", "mul")
            .with_param("width", WIDTH)
            .with_conn("a", "sum")
            .with_conn("b", "three")
            .with_conn("y", "prod"),
    );
    nl.add_instance(
        Instance::new("lsb", "and")
            .with_param("width", 1)
            .with_conn("a", "cnt")
            .with_conn("b", "one")
            .with_conn("y", "en"),
    );
    nl.add_instance(
        Instance::new("hold", "reg")
            .with_param("width", WIDTH)
            .with_conn("clk", "clk")
            .with_conn("d", "prod")
            .with_conn("q", "held")
            .with_conn("en", "en"),
    );
    // Writes are held off while reset asserts (cycle 0): the counter
    // register is still X then, and an X address is a design failure.
    nl.add_instance(
        Instance::new("cb1", "const")
            .with_param("width", 1)
            .with_param("value", 1)
            .with_conn("y", "bit1"),
    );
    nl.add_instance(
        Instance::new("notrst", "xor")
            .with_param("width", 1)
            .with_conn("a", "rst")
            .with_conn("b", "bit1")
            .with_conn("y", "wen"),
    );
    nl.add_instance(
        Instance::new("m0", "sram")
            .with_param("width", WIDTH)
            .with_param("size", 4)
            .with_conn("clk", "clk")
            .with_conn("en", "one")
            .with_conn("we", "wen")
            .with_conn("addr", "addr")
            .with_conn("din", "prod")
            .with_conn("dout", "dout"),
    );
    nl.add_instance(
        Instance::new("stopper", "watchpoint")
            .with_param("value", 12)
            .with_conn("sig", "cnt"),
    );
    nl
}

/// A two-state Moore controller toggling on `en`, so FSM state and FSM
/// outputs are part of what a reset must rewind.
fn control_table() -> FsmTable {
    let states = vec![
        FsmState {
            name: "idle".to_string(),
            outputs: vec![(0, 5)],
            transitions: vec![
                FsmTransition {
                    condition: Some((0, true)),
                    target: 1,
                },
                FsmTransition {
                    condition: None,
                    target: 0,
                },
            ],
            terminal: false,
        },
        FsmState {
            name: "busy".to_string(),
            outputs: vec![(0, 9)],
            transitions: vec![FsmTransition {
                condition: None,
                target: 0,
            }],
            terminal: false,
        },
    ];
    FsmTable::new(states, 1, 1).expect("table validates")
}

/// The uniform face the test needs from both compiled engines.
trait EngineUnderTest {
    fn build(nl: &Netlist) -> Self;
    fn value_of(&self, name: &str) -> Option<Value>;
    fn mem_of(&self, name: &str) -> Option<&MemHandle>;
    fn run_for(&mut self, max_cycles: u64);
    fn cycles_done(&self) -> u64;
    fn evals_done(&self) -> u64;
    fn reset(&mut self);
    fn attach_control(&mut self, table: FsmTable);
}

impl EngineUnderTest for CycleSim {
    fn build(nl: &Netlist) -> Self {
        CycleSim::from_netlist(nl).expect("netlist builds")
    }
    fn value_of(&self, name: &str) -> Option<Value> {
        self.value(name)
    }
    fn mem_of(&self, name: &str) -> Option<&MemHandle> {
        self.mem(name)
    }
    fn run_for(&mut self, max_cycles: u64) {
        self.run(max_cycles).expect("run completes");
    }
    fn cycles_done(&self) -> u64 {
        self.cycles()
    }
    fn evals_done(&self) -> u64 {
        self.comb_evals()
    }
    fn reset(&mut self) {
        self.reset_state();
    }
    fn attach_control(&mut self, table: FsmTable) {
        self.add_control_unit("ctl", &["wen"], &[("fsm_out", WIDTH)], table)
            .expect("control unit attaches");
    }
}

impl EngineUnderTest for LevelSim {
    fn build(nl: &Netlist) -> Self {
        LevelSim::from_netlist(nl).expect("netlist builds")
    }
    fn value_of(&self, name: &str) -> Option<Value> {
        self.value(name)
    }
    fn mem_of(&self, name: &str) -> Option<&MemHandle> {
        self.mem(name)
    }
    fn run_for(&mut self, max_cycles: u64) {
        self.run(max_cycles).expect("run completes");
    }
    fn cycles_done(&self) -> u64 {
        self.cycles()
    }
    fn evals_done(&self) -> u64 {
        self.comb_evals()
    }
    fn reset(&mut self) {
        self.reset_state();
    }
    fn attach_control(&mut self, table: FsmTable) {
        self.add_control_unit("ctl", &["wen"], &[("fsm_out", WIDTH)], table)
            .expect("control unit attaches");
    }
}

#[derive(Debug, PartialEq)]
struct Snapshot {
    values: BTreeMap<String, Option<Value>>,
    mem: Vec<Option<i64>>,
    cycles: u64,
    evals: u64,
}

fn prime_and_run<E: EngineUnderTest>(sim: &mut E) -> Snapshot {
    sim.mem_of("m0").expect("sram exists").fill([7, 11, 13, 17]);
    sim.run_for(MAX_CYCLES);
    let names = [
        "cnt", "addr", "sum", "prod", "en", "held", "dout", "one", "three", "fsm_out",
    ];
    Snapshot {
        values: names
            .iter()
            .map(|name| (name.to_string(), sim.value_of(name)))
            .collect(),
        mem: sim.mem_of("m0").expect("sram exists").snapshot(),
        cycles: sim.cycles_done(),
        evals: sim.evals_done(),
    }
}

fn check_reset_matches_fresh<E: EngineUnderTest>() {
    let nl = build_netlist();

    // Two fresh builds: the reference for what a run must look like.
    let mut fresh_a = E::build(&nl);
    fresh_a.attach_control(control_table());
    let first = prime_and_run(&mut fresh_a);
    let mut fresh_b = E::build(&nl);
    fresh_b.attach_control(control_table());
    let second = prime_and_run(&mut fresh_b);
    assert_eq!(first, second, "fresh builds must agree with themselves");

    // One build, run → reset → run: both runs must match the fresh pair
    // bit for bit, counters included.
    let mut reused = E::build(&nl);
    reused.attach_control(control_table());
    let run1 = prime_and_run(&mut reused);
    assert_eq!(run1, first, "first run of the reused model");
    reused.reset();
    let run2 = prime_and_run(&mut reused);
    assert_eq!(run2, first, "reset + re-run must equal a fresh compile");
}

#[test]
fn cycle_engine_reset_matches_fresh_build() {
    check_reset_matches_fresh::<CycleSim>();
}

#[test]
fn level_engine_reset_matches_fresh_build() {
    check_reset_matches_fresh::<LevelSim>();
}

#[test]
fn reset_clears_memories_and_counters() {
    let nl = build_netlist();
    let mut sim = CycleSim::from_netlist(&nl).expect("netlist builds");
    sim.mem("m0").expect("sram exists").fill([1, 2, 3, 4]);
    sim.run(MAX_CYCLES).expect("run completes");
    assert!(sim.cycles() > 0);
    sim.reset_state();
    assert_eq!(sim.cycles(), 0, "cycle counter rewinds");
    assert_eq!(sim.comb_evals(), 0, "eval counter rewinds");
    let snapshot = sim.mem("m0").expect("sram exists").snapshot();
    assert!(
        snapshot.iter().all(Option::is_none),
        "memories return to uninitialized: {snapshot:?}"
    );
}
