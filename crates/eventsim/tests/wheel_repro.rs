//! Regression: a run limit below the current simulation time must not move
//! time backwards or re-deliver wheel events scheduled beyond the limit.

use eventsim::{Component, Context, Sensitivity, SignalId, SimTime, Simulator, Value};

struct LateScheduler {
    out: SignalId,
    fired: bool,
}

impl Component for LateScheduler {
    fn name(&self) -> &str {
        "late"
    }
    fn inputs(&self) -> Vec<Sensitivity> {
        Vec::new()
    }
    fn init(&mut self, ctx: &mut Context<'_>) {
        ctx.wake_after(90);
    }
    fn react(&mut self, ctx: &mut Context<'_>) {
        if !self.fired {
            self.fired = true;
            // At t=90, schedule an update for t=150 — it lands in the
            // time wheel, past the first run's limit.
            ctx.set_after(self.out, Value::bit(true), 60);
        }
    }
}

#[test]
fn shrinking_limit_then_resume() {
    let mut sim = Simulator::new();
    let s = sim.add_signal("s", 1);
    sim.trace_signal(s);
    sim.add_component(LateScheduler { out: s, fired: false });
    sim.run(SimTime(100)).unwrap();
    let r2 = sim.run(SimTime(50)).unwrap(); // limit below `now`: must be a no-op
    assert_eq!(r2.end_time, SimTime(100), "time must never move backwards");
    sim.run(SimTime(200)).unwrap();
    let changes = sim.changes();
    assert_eq!(changes.len(), 1, "event delivered exactly once");
    assert_eq!(changes[0].time, SimTime(150), "event fired at wrong time");
}
