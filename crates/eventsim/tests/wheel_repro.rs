use eventsim::{SimTime, Simulator, Value};
use eventsim::component::{Component, Sensitivity};
use eventsim::SignalId;
use eventsim::Context;

struct LateScheduler { out: SignalId, fired: bool }
impl Component for LateScheduler {
    fn name(&self) -> &str { "late" }
    fn inputs(&self) -> Vec<Sensitivity> { Vec::new() }
    fn init(&mut self, ctx: &mut Context<'_>) { ctx.wake_after(90); }
    fn react(&mut self, ctx: &mut Context<'_>) {
        if !self.fired {
            self.fired = true;
            // at t=90, schedule update for t=150 -> lands in the wheel
            ctx.set_after(self.out, Value::bit(true), 60);
        }
    }
}

#[test]
fn shrinking_limit_then_resume() {
    let mut sim = Simulator::new();
    let s = sim.add_signal("s", 1);
    sim.trace_signal(s);
    sim.add_component(LateScheduler { out: s, fired: false });
    let r1 = sim.run(SimTime(100)).unwrap();
    eprintln!("run1: end={} now={}", r1.end_time, sim.now());
    let r2 = sim.run(SimTime(50)).unwrap(); // limit < now: now moves backwards
    eprintln!("run2: end={} now={}", r2.end_time, sim.now());
    let r3 = sim.run(SimTime(200)).unwrap();
    eprintln!("run3: end={} outcome={:?}", r3.end_time, r3.outcome);
    let changes = sim.changes();
    for c in changes { eprintln!("change at {} = {}", c.time, c.value); }
    assert_eq!(changes[0].time, SimTime(150), "event fired at wrong time");
}
