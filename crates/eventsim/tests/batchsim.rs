//! Batch-engine lane bit-identity: every lane of a `BatchSim` walk must
//! match a fresh sequential `LevelSim` run of that lane's configuration
//! — same signal values, same memory images, same cycle counts, same
//! outcomes and failure messages. Lanes differ by per-lane fault
//! injections (the fault-campaign batching contract: 64 sites per
//! walk), so the parity check covers clean lanes, stuck-at clamps,
//! transient flips on both sequential and combinational signals,
//! design failures, and cycle-limit exhaustion in one run.

use eventsim::batchsim::{BatchSim, LaneOutcome, LANES};
use eventsim::cyclesim::CycleOutcome;
use eventsim::levelsim::LevelSim;
use eventsim::netlist::{Instance, Netlist};
use eventsim::ops::{FsmState, FsmTable, FsmTransition};
use eventsim::Value;
use std::collections::BTreeMap;

const WIDTH: u32 = 16;
const MAX_CYCLES: u64 = 60;

/// The `reset_state` integration design: counter, ripple arithmetic,
/// enable-gated register, written SRAM, FSM control unit, watchpoint.
fn build_netlist() -> Netlist {
    let mut nl = Netlist::new("batch");
    for (name, width) in [
        ("clk", 1),
        ("rst", 1),
        ("cnt", WIDTH),
        ("addr", WIDTH),
        ("sum", WIDTH),
        ("prod", WIDTH),
        ("en", 1),
        ("held", WIDTH),
        ("dout", WIDTH),
        ("one", WIDTH),
        ("three", WIDTH),
        ("bit1", 1),
        ("wen", 1),
        ("fsm_out", WIDTH),
    ] {
        nl.add_signal(name, width);
    }
    nl.add_instance(
        Instance::new("clock0", "clock")
            .with_param("period", 10)
            .with_conn("y", "clk"),
    );
    nl.add_instance(
        Instance::new("c1", "const")
            .with_param("width", WIDTH)
            .with_param("value", 1)
            .with_conn("y", "one"),
    );
    nl.add_instance(
        Instance::new("c3", "const")
            .with_param("width", WIDTH)
            .with_param("value", 3)
            .with_conn("y", "three"),
    );
    nl.add_instance(Instance::new("reset0", "reset").with_conn("y", "rst"));
    nl.add_instance(
        Instance::new("cnt0", "reg")
            .with_param("width", WIDTH)
            .with_conn("clk", "clk")
            .with_conn("d", "sum")
            .with_conn("q", "cnt")
            .with_conn("rst", "rst"),
    );
    nl.add_instance(
        Instance::new("mask", "and")
            .with_param("width", WIDTH)
            .with_conn("a", "cnt")
            .with_conn("b", "three")
            .with_conn("y", "addr"),
    );
    nl.add_instance(
        Instance::new("add0", "add")
            .with_param("width", WIDTH)
            .with_conn("a", "cnt")
            .with_conn("b", "one")
            .with_conn("y", "sum"),
    );
    nl.add_instance(
        Instance::new("mul0", "mul")
            .with_param("width", WIDTH)
            .with_conn("a", "sum")
            .with_conn("b", "three")
            .with_conn("y", "prod"),
    );
    nl.add_instance(
        Instance::new("lsb", "and")
            .with_param("width", 1)
            .with_conn("a", "cnt")
            .with_conn("b", "one")
            .with_conn("y", "en"),
    );
    nl.add_instance(
        Instance::new("hold", "reg")
            .with_param("width", WIDTH)
            .with_conn("clk", "clk")
            .with_conn("d", "prod")
            .with_conn("q", "held")
            .with_conn("en", "en"),
    );
    nl.add_instance(
        Instance::new("cb1", "const")
            .with_param("width", 1)
            .with_param("value", 1)
            .with_conn("y", "bit1"),
    );
    nl.add_instance(
        Instance::new("notrst", "xor")
            .with_param("width", 1)
            .with_conn("a", "rst")
            .with_conn("b", "bit1")
            .with_conn("y", "wen"),
    );
    nl.add_instance(
        Instance::new("m0", "sram")
            .with_param("width", WIDTH)
            .with_param("size", 4)
            .with_conn("clk", "clk")
            .with_conn("en", "one")
            .with_conn("we", "wen")
            .with_conn("addr", "addr")
            .with_conn("din", "prod")
            .with_conn("dout", "dout"),
    );
    nl.add_instance(
        Instance::new("stopper", "watchpoint")
            .with_param("value", 12)
            .with_conn("sig", "cnt"),
    );
    nl
}

fn control_table() -> FsmTable {
    let states = vec![
        FsmState {
            name: "idle".to_string(),
            outputs: vec![(0, 5)],
            transitions: vec![
                FsmTransition {
                    condition: Some((0, true)),
                    target: 1,
                },
                FsmTransition {
                    condition: None,
                    target: 0,
                },
            ],
            terminal: false,
        },
        FsmState {
            name: "busy".to_string(),
            outputs: vec![(0, 9)],
            transitions: vec![FsmTransition {
                condition: None,
                target: 0,
            }],
            terminal: false,
        },
    ];
    FsmTable::new(states, 1, 1).expect("table validates")
}

const PROBES: [&str; 10] = [
    "cnt", "addr", "sum", "prod", "en", "held", "dout", "one", "three", "fsm_out",
];

const PRELOAD: [i64; 4] = [7, 11, 13, 17];

/// One lane's fault configuration, appliable to either engine.
#[derive(Debug, Clone, Copy)]
enum Fault {
    None,
    Stuck(&'static str, u32, bool),
    Flip(&'static str, u32, u64),
}

/// The per-lane fault plan: clean lanes, clamps that change control
/// flow, clamps that fail the design, flips on sequential and
/// combinational signals. Lanes past the list run clean.
fn fault_plan() -> Vec<Fault> {
    vec![
        Fault::None,
        // Counter LSB stuck high: cnt can never equal 12, so the
        // watchpoint never fires and the lane exhausts the budget.
        Fault::Stuck("cnt", 0, true),
        // Write-enable stuck high: the cycle-0 write sees the X counter
        // address — a design failure.
        Fault::Stuck("wen", 0, true),
        Fault::Stuck("sum", 1, false),
        // Flip on a register output persists for one walk.
        Fault::Flip("cnt", 2, 3),
        // Flip on a comb output is recomputed away by the settle.
        Fault::Flip("sum", 0, 4),
        Fault::Stuck("fsm_out", 3, true),
        Fault::Stuck("en", 0, false),
        Fault::Stuck("addr", 1, true),
        Fault::Flip("held", 3, 5),
    ]
}

#[derive(Debug, PartialEq)]
struct LaneSnapshot {
    outcome: LaneOutcome,
    cycles: u64,
    values: BTreeMap<String, Option<Value>>,
    mem: Vec<Option<i64>>,
}

/// Runs one configuration through a fresh sequential level engine.
fn level_reference(nl: &Netlist, fault: Fault) -> LaneSnapshot {
    let mut sim = LevelSim::from_netlist(nl).expect("netlist builds");
    sim.add_control_unit("ctl", &["wen"], &[("fsm_out", WIDTH)], control_table())
        .expect("control unit attaches");
    match fault {
        Fault::None => {}
        Fault::Stuck(signal, bit, value) => {
            assert!(sim.inject_stuck_at(signal, bit, value).expect("injects"));
        }
        Fault::Flip(signal, bit, cycle) => {
            assert!(sim
                .inject_transient_flip(signal, bit, cycle)
                .expect("injects"));
        }
    }
    sim.mem("m0").expect("sram exists").fill(PRELOAD);
    let (outcome, cycles) = match sim.run(MAX_CYCLES) {
        Ok(summary) => (
            match summary.outcome {
                CycleOutcome::Done => LaneOutcome::Done,
                CycleOutcome::Watchpoint(name) => LaneOutcome::Watchpoint(name),
                CycleOutcome::CycleLimit => LaneOutcome::CycleLimit,
            },
            summary.cycles,
        ),
        Err(eventsim::cyclesim::CycleSimError::Failed(m)) => {
            (LaneOutcome::Failed(m), sim.cycles())
        }
        Err(e) => panic!("unexpected level-engine error: {e}"),
    };
    LaneSnapshot {
        outcome,
        cycles,
        values: PROBES
            .iter()
            .map(|name| (name.to_string(), sim.value(name)))
            .collect(),
        mem: sim.mem("m0").expect("sram exists").snapshot(),
    }
}

fn batch_snapshot(sim: &BatchSim, lane: usize, result: &eventsim::batchsim::LaneResult) -> LaneSnapshot {
    LaneSnapshot {
        outcome: result.outcome.clone(),
        cycles: result.cycles,
        values: PROBES
            .iter()
            .map(|name| (name.to_string(), sim.value_lane(name, lane)))
            .collect(),
        mem: sim.snapshot_mem("m0", lane).expect("sram exists"),
    }
}

/// The headline contract: all 64 lanes of one batch walk, with per-lane
/// faults, against 64 fresh sequential runs.
#[test]
fn every_lane_matches_a_fresh_sequential_run() {
    let nl = build_netlist();
    let plan = fault_plan();

    let mut batch = BatchSim::from_netlist(&nl).expect("netlist builds");
    batch
        .add_control_unit("ctl", &["wen"], &[("fsm_out", WIDTH)], control_table())
        .expect("control unit attaches");
    for lane in 0..LANES {
        match plan.get(lane).copied().unwrap_or(Fault::None) {
            Fault::None => {}
            Fault::Stuck(signal, bit, value) => {
                assert!(batch
                    .inject_stuck_at_lane(signal, bit, value, lane)
                    .expect("injects"));
            }
            Fault::Flip(signal, bit, cycle) => {
                assert!(batch
                    .inject_transient_flip_lane(signal, bit, cycle, lane)
                    .expect("injects"));
            }
        }
    }
    let preload: Vec<Option<i64>> = PRELOAD.iter().copied().map(Some).collect();
    assert!(batch.load_mem_all("m0", &preload));
    let summary = batch.run_batch(MAX_CYCLES);

    let clean = level_reference(&nl, Fault::None);
    for lane in 0..LANES {
        let fault = plan.get(lane).copied().unwrap_or(Fault::None);
        let result = summary.lanes[lane].as_ref().expect("lane is active");
        let got = batch_snapshot(&batch, lane, result);
        let want = if matches!(fault, Fault::None) && lane > 0 {
            // Clean lanes share the single reference run.
            LaneSnapshot {
                outcome: clean.outcome.clone(),
                cycles: clean.cycles,
                values: clean.values.clone(),
                mem: clean.mem.clone(),
            }
        } else {
            level_reference(&nl, fault)
        };
        assert_eq!(got, want, "lane {lane} (fault {fault:?}) diverges");
    }
}

/// Division and remainder by zero must fail the precise lanes at the
/// precise cycle, with the sequential engine's message, while other
/// lanes walk on.
#[test]
fn division_by_zero_fails_per_lane_like_sequential() {
    let mut nl = Netlist::new("divzero");
    for (name, width) in [
        ("clk", 1),
        ("rst", 1),
        ("cnt", 8),
        ("sum", 8),
        ("one", 8),
        ("five", 8),
        ("quot", 8),
    ] {
        nl.add_signal(name, width);
    }
    nl.add_instance(
        Instance::new("clock0", "clock")
            .with_param("period", 10)
            .with_conn("y", "clk"),
    );
    nl.add_instance(Instance::new("reset0", "reset").with_conn("y", "rst"));
    nl.add_instance(
        Instance::new("c1", "const")
            .with_param("width", 8)
            .with_param("value", 1)
            .with_conn("y", "one"),
    );
    nl.add_instance(
        Instance::new("c5", "const")
            .with_param("width", 8)
            .with_param("value", 5)
            .with_conn("y", "five"),
    );
    nl.add_instance(
        Instance::new("cnt0", "reg")
            .with_param("width", 8)
            .with_conn("clk", "clk")
            .with_conn("d", "sum")
            .with_conn("q", "cnt")
            .with_conn("rst", "rst"),
    );
    nl.add_instance(
        Instance::new("add0", "add")
            .with_param("width", 8)
            .with_conn("a", "cnt")
            .with_conn("b", "one")
            .with_conn("y", "sum"),
    );
    // cnt is 0 during cycle 1 (reset commit), so the divide fails then.
    nl.add_instance(
        Instance::new("div0", "div")
            .with_param("width", 8)
            .with_conn("a", "five")
            .with_conn("b", "cnt")
            .with_conn("y", "quot"),
    );

    let mut level = LevelSim::from_netlist(&nl).expect("netlist builds");
    let err = level.run(10).expect_err("divide by zero fails");
    let eventsim::cyclesim::CycleSimError::Failed(want_msg) = err else {
        panic!("unexpected error kind: {err}");
    };
    assert_eq!(want_msg, "div0: division by zero");
    let want_cycles = level.cycles();

    let mut batch = BatchSim::from_netlist(&nl).expect("netlist builds");
    let summary = batch.run_batch(10);
    for lane in 0..LANES {
        let result = summary.lanes[lane].as_ref().expect("lane is active");
        assert_eq!(
            result.outcome,
            LaneOutcome::Failed(want_msg.clone()),
            "lane {lane}"
        );
        assert_eq!(result.cycles, want_cycles, "lane {lane}");
    }
}

/// `set_active` scopes a run to a lane subset: excluded lanes report
/// `None` and never advance.
#[test]
fn inactive_lanes_stay_untouched() {
    let nl = build_netlist();
    let mut batch = BatchSim::from_netlist(&nl).expect("netlist builds");
    batch.set_active(0b101);
    let summary = batch.run_batch(MAX_CYCLES);
    for lane in 0..LANES {
        match lane {
            0 | 2 => assert!(summary.lanes[lane].is_some(), "lane {lane} ran"),
            _ => assert!(summary.lanes[lane].is_none(), "lane {lane} excluded"),
        }
    }
}

/// `reset_state` parity: run → reset → run must equal a fresh build on
/// every lane, faults and memories cleared, counters rewound — the
/// serve-cache reuse contract, same as the sequential engines.
#[test]
fn reset_matches_fresh_build() {
    let nl = build_netlist();

    let run_once = |sim: &mut BatchSim| {
        let preload: Vec<Option<i64>> = PRELOAD.iter().copied().map(Some).collect();
        assert!(sim.load_mem_all("m0", &preload));
        let summary = sim.run_batch(MAX_CYCLES);
        let evals = sim.comb_evals();
        (summary, evals)
    };

    let mut fresh = BatchSim::from_netlist(&nl).expect("netlist builds");
    fresh
        .add_control_unit("ctl", &["wen"], &[("fsm_out", WIDTH)], control_table())
        .expect("control unit attaches");
    let (fresh_summary, fresh_evals) = run_once(&mut fresh);
    let fresh_lane0 = batch_snapshot(&fresh, 0, fresh_summary.lanes[0].as_ref().unwrap());

    let mut reused = BatchSim::from_netlist(&nl).expect("netlist builds");
    reused
        .add_control_unit("ctl", &["wen"], &[("fsm_out", WIDTH)], control_table())
        .expect("control unit attaches");
    reused
        .inject_stuck_at_lane("cnt", 0, true, 7)
        .expect("injects")
        .then_some(())
        .expect("signal exists");
    let _ = run_once(&mut reused);
    reused.reset_state();
    assert_eq!(reused.cycles(), 0, "cycle counter rewinds");
    assert_eq!(reused.comb_evals(), 0, "eval counter rewinds");
    assert!(
        reused
            .snapshot_mem("m0", 7)
            .expect("sram exists")
            .iter()
            .all(Option::is_none),
        "memories return to uninitialized"
    );
    let (again_summary, again_evals) = run_once(&mut reused);
    let again_lane0 = batch_snapshot(&reused, 0, again_summary.lanes[0].as_ref().unwrap());
    assert_eq!(again_lane0, fresh_lane0, "reset + re-run equals fresh");
    assert_eq!(again_evals, fresh_evals, "eval counters agree");
    // The lane-7 stuck-at was cleared by the reset: lane 7 now matches
    // the clean lane 0.
    let lane7 = batch_snapshot(&reused, 7, again_summary.lanes[7].as_ref().unwrap());
    assert_eq!(lane7, fresh_lane0, "reset cleared the lane fault");
}

/// The sequential-compatible `run` wrapper reports lane 0 in the
/// `CycleSummary` shape the engine interface expects.
#[test]
fn run_wrapper_matches_level_summary() {
    let nl = build_netlist();
    let mut level = LevelSim::from_netlist(&nl).expect("netlist builds");
    let want = level.run(MAX_CYCLES).expect("level run completes");

    let mut batch = BatchSim::from_netlist(&nl).expect("netlist builds");
    let got = batch.run(MAX_CYCLES).expect("batch run completes");
    assert_eq!(got.outcome, want.outcome);
    assert_eq!(got.cycles, want.cycles);
    assert_eq!(batch.cycles(), level.cycles());
}
