//! Kernel determinism under component registration order.
//!
//! Elaborating the same netlist with its instances permuted must produce
//! the same simulation: identical per-signal waveforms, identical final
//! memory contents, identical run outcome, and identical event/update/
//! eval/delta counters. Evaluation *order* inside a delta cycle is the
//! only thing registration order may influence, and delta semantics (all
//! reads see the previous delta's values) make that order invisible.

use eventsim::netlist::{Instance, Netlist};
use eventsim::{RunOutcome, SimTime, Simulator, Value};
use std::collections::BTreeMap;

const WIDTH: u32 = 16;

/// A small synchronous design exercising every scheduling path: a clock,
/// a counter-driven address walk, combinational logic settling over
/// deltas, an enable-gated register, an SRAM written on clock edges, and
/// a watchpoint that stops the run.
fn build_netlist() -> Netlist {
    let mut nl = Netlist::new("perm");
    for (name, width) in [
        ("clk", 1),
        ("cnt", WIDTH),
        ("addr", WIDTH),
        ("sum", WIDTH),
        ("prod", WIDTH),
        ("en", 1),
        ("held", WIDTH),
        ("dout", WIDTH),
        ("one", WIDTH),
        ("three", WIDTH),
    ] {
        nl.add_signal(name, width);
    }
    nl.add_instance(
        Instance::new("clock0", "clock")
            .with_param("period", 10)
            .with_conn("y", "clk"),
    );
    nl.add_instance(
        Instance::new("c1", "const")
            .with_param("width", WIDTH)
            .with_param("value", 1)
            .with_conn("y", "one"),
    );
    nl.add_instance(
        Instance::new("c3", "const")
            .with_param("width", WIDTH)
            .with_param("value", 3)
            .with_conn("y", "three"),
    );
    nl.add_instance(
        Instance::new("cnt0", "counter")
            .with_param("width", WIDTH)
            .with_conn("clk", "clk")
            .with_conn("q", "cnt"),
    );
    // addr = cnt & 3 (keeps the SRAM address in range).
    nl.add_instance(
        Instance::new("mask", "and")
            .with_param("width", WIDTH)
            .with_conn("a", "cnt")
            .with_conn("b", "three")
            .with_conn("y", "addr"),
    );
    // sum = cnt + 1, prod = sum * 3: a two-stage delta ripple per edge.
    nl.add_instance(
        Instance::new("add0", "add")
            .with_param("width", WIDTH)
            .with_conn("a", "cnt")
            .with_conn("b", "one")
            .with_conn("y", "sum"),
    );
    nl.add_instance(
        Instance::new("mul0", "mul")
            .with_param("width", WIDTH)
            .with_conn("a", "sum")
            .with_conn("b", "three")
            .with_conn("y", "prod"),
    );
    // en = cnt & 1: the register latches on every other edge only.
    nl.add_instance(
        Instance::new("lsb", "and")
            .with_param("width", 1)
            .with_conn("a", "cnt")
            .with_conn("b", "one")
            .with_conn("y", "en"),
    );
    nl.add_instance(
        Instance::new("hold", "reg")
            .with_param("width", WIDTH)
            .with_conn("clk", "clk")
            .with_conn("d", "prod")
            .with_conn("q", "held")
            .with_conn("en", "en"),
    );
    nl.add_instance(
        Instance::new("m0", "sram")
            .with_param("width", WIDTH)
            .with_param("size", 4)
            .with_conn("clk", "clk")
            .with_conn("en", "one")
            .with_conn("we", "one")
            .with_conn("addr", "addr")
            .with_conn("din", "prod")
            .with_conn("dout", "dout"),
    );
    nl.add_instance(
        Instance::new("stopper", "watchpoint")
            .with_param("value", 12)
            .with_conn("sig", "cnt"),
    );
    nl
}

struct Observed {
    outcome: RunOutcome,
    end_time: SimTime,
    events: u64,
    updates: u64,
    evals: u64,
    delta_cycles: u64,
    /// Per-signal waveform: name → [(time, value)].
    waves: BTreeMap<String, Vec<(u64, Value)>>,
    /// Final memory contents.
    mems: BTreeMap<String, Vec<Option<i64>>>,
    finals: BTreeMap<String, Value>,
}

fn run_permutation(rotate: usize) -> Observed {
    let base = build_netlist();
    // Re-add instances rotated: same netlist, different registration order.
    let mut nl = Netlist::new("perm");
    for decl in base.signals() {
        nl.add_signal(decl.name.clone(), decl.width);
    }
    let instances: Vec<Instance> = base.instances().to_vec();
    let n = instances.len();
    for i in 0..n {
        nl.add_instance(instances[(i + rotate) % n].clone());
    }

    let mut sim = Simulator::new();
    let map = nl.elaborate(&mut sim).expect("netlist elaborates");
    for decl in base.signals() {
        sim.trace_signal(map.signal(&decl.name).unwrap());
    }
    let summary = sim.run(SimTime(1_000)).expect("run completes");

    let mut waves: BTreeMap<String, Vec<(u64, Value)>> = BTreeMap::new();
    for change in sim.changes() {
        waves
            .entry(sim.signal_name(change.signal).to_string())
            .or_default()
            .push((change.time.ticks(), change.value));
    }
    let mems = map
        .mems
        .iter()
        .map(|(name, handle)| (name.clone(), handle.snapshot()))
        .collect();
    let finals = base
        .signals()
        .iter()
        .map(|decl| {
            let id = map.signal(&decl.name).unwrap();
            (decl.name.clone(), sim.value(id))
        })
        .collect();
    Observed {
        outcome: summary.outcome,
        end_time: summary.end_time,
        events: summary.events,
        updates: summary.updates,
        evals: summary.evals,
        delta_cycles: summary.delta_cycles,
        waves,
        mems,
        finals,
    }
}

#[test]
fn registration_order_does_not_change_results() {
    let reference = run_permutation(0);
    assert!(
        matches!(reference.outcome, RunOutcome::Stopped(_)),
        "watchpoint stops the run: {:?}",
        reference.outcome
    );
    assert!(!reference.waves.is_empty());
    assert!(reference.mems.contains_key("m0"));

    for rotate in [1, 3, 5, 7] {
        let permuted = run_permutation(rotate);
        assert_eq!(permuted.outcome, reference.outcome, "rotate {rotate}");
        assert_eq!(permuted.end_time, reference.end_time, "rotate {rotate}");
        assert_eq!(permuted.events, reference.events, "rotate {rotate}");
        assert_eq!(permuted.updates, reference.updates, "rotate {rotate}");
        assert_eq!(permuted.evals, reference.evals, "rotate {rotate}");
        assert_eq!(
            permuted.delta_cycles, reference.delta_cycles,
            "rotate {rotate}"
        );
        assert_eq!(permuted.waves, reference.waves, "rotate {rotate}");
        assert_eq!(permuted.mems, reference.mems, "rotate {rotate}");
        assert_eq!(permuted.finals, reference.finals, "rotate {rotate}");
    }
}
