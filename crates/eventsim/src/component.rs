//! The component model: identifiers and the [`Component`] trait.

use crate::kernel::Context;
use std::fmt;

/// Identifier of a signal within one [`Simulator`](crate::Simulator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SignalId(pub(crate) usize);

impl SignalId {
    /// The underlying index (stable for the lifetime of the simulator).
    pub fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for SignalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Identifier of a component within one [`Simulator`](crate::Simulator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ComponentId(pub(crate) usize);

impl ComponentId {
    /// Rebuilds an id from a raw index — only meaningful against the
    /// simulator whose tables produced that index (e.g. profile rows).
    pub fn from_index(index: usize) -> ComponentId {
        ComponentId(index)
    }

    /// The underlying index (stable for the lifetime of the simulator).
    pub fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// When a sensitivity entry triggers evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Every value change.
    Any,
    /// Only changes *to* a true (non-zero) value — for 1-bit signals,
    /// the rising edge. Edge-triggered components (registers, control
    /// units) use this so the falling clock edge costs nothing.
    Rising,
}

/// One sensitivity-list entry: a signal and when it triggers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sensitivity {
    /// The watched signal.
    pub signal: SignalId,
    /// The triggering condition.
    pub sense: Sense,
}

impl Sensitivity {
    /// Trigger on every change.
    pub fn any(signal: SignalId) -> Self {
        Sensitivity {
            signal,
            sense: Sense::Any,
        }
    }

    /// Trigger only on changes to non-zero (rising edge for 1-bit
    /// signals).
    pub fn rising(signal: SignalId) -> Self {
        Sensitivity {
            signal,
            sense: Sense::Rising,
        }
    }
}

impl From<SignalId> for Sensitivity {
    fn from(signal: SignalId) -> Self {
        Sensitivity::any(signal)
    }
}

/// A simulation model reacting to events on its input signals.
///
/// Components are the unit of behaviour in the event kernel, playing the
/// role of Hades' simulation objects: the operator library, registers,
/// memories, clock generators, probes, and the behavioral control units
/// translated from the FSM XML all implement this trait.
///
/// The kernel calls [`init`](Component::init) once when simulation starts
/// and [`react`](Component::react) whenever any signal in
/// [`inputs`](Component::inputs) changes (or a self-scheduled wake-up
/// fires). All scheduling happens through the [`Context`].
pub trait Component {
    /// Instance name used in diagnostics, waveforms, and reports.
    fn name(&self) -> &str;

    /// Sensitivity list: the signals whose updates trigger
    /// [`react`](Component::react). Queried once at registration.
    ///
    /// A component whose only entry is `Sensitivity::rising(clk)` may
    /// treat every `react` call as a rising clock edge.
    fn inputs(&self) -> Vec<Sensitivity>;

    /// Called once at simulation start, before any event is processed. Use
    /// it to drive initial values or schedule the first self wake-up.
    fn init(&mut self, _ctx: &mut Context<'_>) {}

    /// Called whenever an input changed or a wake-up fired.
    fn react(&mut self, ctx: &mut Context<'_>);

    /// An optional evaluation gate, the kernel-level analogue of a clock
    /// enable. Returning `Some(signal)` promises that whenever `signal`
    /// is not currently true (zero or `X`), [`react`](Component::react)
    /// is a no-op: it reads nothing else and schedules nothing. The
    /// kernel then skips the dispatch entirely while still counting the
    /// evaluation, which makes the pervasive "disabled register on a
    /// clock edge" case nearly free.
    ///
    /// Queried once at registration, like [`inputs`](Component::inputs).
    /// The default (`None`) never skips.
    fn eval_gate(&self) -> Option<SignalId> {
        None
    }
}
