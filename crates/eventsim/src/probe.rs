//! Observation and control components: probes, watchpoints, and
//! assertions.
//!
//! These provide the capabilities the paper lists as missing from
//! test-by-implementation on the FPGA: "access to values on certain
//! connections, assertions, inclusion of probes and stop mechanisms".

use crate::component::{Component, Sensitivity, SignalId};
use crate::kernel::{Context, SimTime};
use crate::value::Value;
use std::cell::RefCell;
use std::rc::Rc;

/// Shared handle to a [`Probe`]'s recorded history.
#[derive(Debug, Clone, Default)]
pub struct ProbeHandle {
    history: Rc<RefCell<Vec<(SimTime, Value)>>>,
}

impl ProbeHandle {
    /// Creates an empty handle.
    pub fn new() -> Self {
        ProbeHandle::default()
    }

    /// Snapshot of the recorded `(time, value)` pairs.
    pub fn history(&self) -> Vec<(SimTime, Value)> {
        self.history.borrow().clone()
    }

    /// The most recent recorded value, if any.
    pub fn last(&self) -> Option<(SimTime, Value)> {
        self.history.borrow().last().copied()
    }

    /// The recorded changes with `t0 <= time <= t1`, in order.
    ///
    /// As with [`len`](Self::len), the probed signal's initial value at
    /// `t=0` counts as a change, so `changes_between(SimTime::ZERO, t1)`
    /// includes it.
    pub fn changes_between(&self, t0: SimTime, t1: SimTime) -> Vec<(SimTime, Value)> {
        self.history
            .borrow()
            .iter()
            .filter(|(t, _)| *t >= t0 && *t <= t1)
            .copied()
            .collect()
    }

    /// Number of recorded changes. The probed signal leaving `X` for its
    /// initial value at `t=0` counts as a change.
    pub fn len(&self) -> usize {
        self.history.borrow().len()
    }

    /// Whether nothing was recorded. The initial value at `t=0` counts as
    /// a change, so this is `false` for any signal driven at start-up.
    pub fn is_empty(&self) -> bool {
        self.history.borrow().is_empty()
    }
}

/// Records every change of one signal into a [`ProbeHandle`].
///
/// ```
/// use eventsim::{Simulator, SimTime, Value, probe::{Probe, ProbeHandle}, ops::Clock};
/// # fn main() -> Result<(), eventsim::SimError> {
/// let mut sim = Simulator::new();
/// let clk = sim.add_signal("clk", 1);
/// sim.add_component(Clock::new("clk0", clk, 10));
/// let handle = ProbeHandle::new();
/// sim.add_component(Probe::new("p0", clk, handle.clone()));
/// sim.run(SimTime(20))?;
/// assert_eq!(handle.len(), 5); // changes at t = 0, 5, 10, 15, 20
/// # Ok(())
/// # }
/// ```
pub struct Probe {
    name: String,
    signal: SignalId,
    handle: ProbeHandle,
}

impl Probe {
    /// Creates a probe recording into `handle`.
    pub fn new(name: impl Into<String>, signal: SignalId, handle: ProbeHandle) -> Self {
        Probe {
            name: name.into(),
            signal,
            handle,
        }
    }
}

impl Component for Probe {
    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> Vec<Sensitivity> {
        vec![Sensitivity::any(self.signal)]
    }

    fn react(&mut self, ctx: &mut Context<'_>) {
        let value = ctx.get(self.signal);
        self.handle.history.borrow_mut().push((ctx.now(), value));
    }
}

/// Stops the run (outcome [`Stopped`](crate::RunOutcome::Stopped)) when a
/// signal takes a given value.
pub struct Watchpoint {
    name: String,
    signal: SignalId,
    value: i64,
}

impl Watchpoint {
    /// Creates a watchpoint triggering on `signal == value`.
    pub fn new(name: impl Into<String>, signal: SignalId, value: i64) -> Self {
        Watchpoint {
            name: name.into(),
            signal,
            value,
        }
    }
}

impl Component for Watchpoint {
    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> Vec<Sensitivity> {
        vec![Sensitivity::any(self.signal)]
    }

    fn react(&mut self, ctx: &mut Context<'_>) {
        let v = ctx.get(self.signal);
        if v.try_i64() == Some(self.value) {
            let name = self.name.clone();
            ctx.stop(format!("watchpoint '{name}' hit at {}", ctx.now()));
        }
    }
}

/// Fails the run (outcome [`Failed`](crate::RunOutcome::Failed)) when a
/// predicate over a signal's value is violated.
///
/// `X` values are ignored (a net is legitimately `X` before its first
/// driver event); use [`AssertKnownAfter`] to flag long-lived `X`.
pub struct AssertSignal {
    name: String,
    signal: SignalId,
    predicate: Box<dyn Fn(i64) -> bool>,
    message: String,
}

impl AssertSignal {
    /// Creates an assertion checked on every change of `signal`.
    pub fn new(
        name: impl Into<String>,
        signal: SignalId,
        predicate: impl Fn(i64) -> bool + 'static,
        message: impl Into<String>,
    ) -> Self {
        AssertSignal {
            name: name.into(),
            signal,
            predicate: Box::new(predicate),
            message: message.into(),
        }
    }
}

impl Component for AssertSignal {
    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> Vec<Sensitivity> {
        vec![Sensitivity::any(self.signal)]
    }

    fn react(&mut self, ctx: &mut Context<'_>) {
        if let Some(v) = ctx.get(self.signal).try_i64() {
            if !(self.predicate)(v) {
                let detail = format!(
                    "assertion '{}' violated at {}: {} (value {})",
                    self.name,
                    ctx.now(),
                    self.message,
                    v
                );
                ctx.fail(detail);
            }
        }
    }
}

/// Fails the run when a signal is still `X` after a deadline.
pub struct AssertKnownAfter {
    name: String,
    signal: SignalId,
    deadline: u64,
}

impl AssertKnownAfter {
    /// Creates the check; it fires once, `deadline` ticks after start.
    pub fn new(name: impl Into<String>, signal: SignalId, deadline: u64) -> Self {
        AssertKnownAfter {
            name: name.into(),
            signal,
            deadline,
        }
    }
}

impl Component for AssertKnownAfter {
    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> Vec<Sensitivity> {
        Vec::new()
    }

    fn init(&mut self, ctx: &mut Context<'_>) {
        ctx.wake_after(self.deadline);
    }

    fn react(&mut self, ctx: &mut Context<'_>) {
        if ctx.get(self.signal).is_x() {
            let detail = format!(
                "signal watched by '{}' still X at {}",
                self.name,
                ctx.now()
            );
            ctx.fail(detail);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{RunOutcome, SimTime, Simulator};
    use crate::ops::{Clock, Counter};

    #[test]
    fn probe_records_counter_history() {
        let mut sim = Simulator::new();
        let clk = sim.add_signal("clk", 1);
        let q = sim.add_signal("q", 8);
        sim.add_component(Clock::new("clk0", clk, 10));
        sim.add_component(Counter::new("cnt", clk, q));
        let handle = ProbeHandle::new();
        sim.add_component(Probe::new("p", q, handle.clone()));
        sim.run(SimTime(30)).unwrap();
        let values: Vec<u64> = handle
            .history()
            .iter()
            .map(|(_, v)| v.as_u64())
            .collect();
        assert_eq!(values, [0, 1, 2, 3]);
        assert_eq!(handle.last().unwrap().1.as_u64(), 3);
        assert!(!handle.is_empty());
    }

    #[test]
    fn changes_between_is_inclusive_and_counts_t0() {
        let mut sim = Simulator::new();
        let clk = sim.add_signal("clk", 1);
        let q = sim.add_signal("q", 8);
        sim.add_component(Clock::new("clk0", clk, 10));
        sim.add_component(Counter::new("cnt", clk, q));
        let handle = ProbeHandle::new();
        sim.add_component(Probe::new("p", q, handle.clone()));
        sim.run(SimTime(30)).unwrap();
        // Full history: q=0 at t=0, then 1,2,3 on edges at t=5,15,25.
        let window = handle.changes_between(SimTime::ZERO, SimTime(15));
        let values: Vec<u64> = window.iter().map(|(_, v)| v.as_u64()).collect();
        assert_eq!(values, [0, 1, 2]);
        // Both endpoints inclusive.
        let edge = handle.changes_between(SimTime(15), SimTime(15));
        assert_eq!(edge.len(), 1);
        assert_eq!(edge[0].1.as_u64(), 2);
        // Empty window.
        assert!(handle.changes_between(SimTime(6), SimTime(14)).is_empty());
    }

    #[test]
    fn watchpoint_stops_run() {
        let mut sim = Simulator::new();
        let clk = sim.add_signal("clk", 1);
        let q = sim.add_signal("q", 8);
        sim.add_component(Clock::new("clk0", clk, 10));
        sim.add_component(Counter::new("cnt", clk, q));
        sim.add_component(Watchpoint::new("w", q, 5));
        let summary = sim.run(SimTime(10_000)).unwrap();
        assert!(matches!(summary.outcome, RunOutcome::Stopped(_)));
        assert_eq!(sim.value(q).as_u64(), 5);
        assert_eq!(summary.end_time, SimTime(45)); // fifth edge
    }

    #[test]
    fn assertion_fails_on_violation() {
        let mut sim = Simulator::new();
        let clk = sim.add_signal("clk", 1);
        let q = sim.add_signal("q", 8);
        sim.add_component(Clock::new("clk0", clk, 10));
        sim.add_component(Counter::new("cnt", clk, q));
        sim.add_component(AssertSignal::new("bound", q, |v| v < 3, "counter must stay below 3"));
        let summary = sim.run(SimTime(10_000)).unwrap();
        match summary.outcome {
            RunOutcome::Failed(m) => assert!(m.contains("below 3"), "{m}"),
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn assertion_ignores_x() {
        let mut sim = Simulator::new();
        let s = sim.add_signal("s", 8); // never driven
        sim.add_component(AssertSignal::new("a", s, |_| false, "never"));
        let summary = sim.run(SimTime(100)).unwrap();
        assert!(summary.outcome.is_ok());
    }

    #[test]
    fn known_after_deadline_check() {
        let mut sim = Simulator::new();
        let s = sim.add_signal("s", 8); // never driven
        sim.add_component(AssertKnownAfter::new("k", s, 50));
        let summary = sim.run(SimTime(100)).unwrap();
        assert!(matches!(summary.outcome, RunOutcome::Failed(ref m) if m.contains("still X")));
        assert_eq!(summary.end_time, SimTime(50));
    }
}
