//! Flat signal/instance model shared by the compiled (non-event) engines.
//!
//! Both [`crate::cyclesim::CycleSim`] and [`crate::levelsim::LevelSim`]
//! interpret the same [`Netlist`](crate::netlist::Netlist) vocabulary as
//! [`Netlist::elaborate`](crate::netlist::Netlist::elaborate), but against a
//! dense in-memory model: every signal and memory name is interned into a
//! slot index at construction time, so the per-cycle paths touch only flat
//! `Vec`s. The `HashMap` name tables survive solely for the public
//! `value()`/`mem()` accessors and for build-time wiring.
//!
//! The engines differ only in how they *settle* combinational logic each
//! cycle (repeated sweeps vs. a levelized single pass); the model itself —
//! construction, combinational evaluation, and the rising-edge sample/commit
//! phase — lives here so the two engines cannot drift apart semantically.

use crate::cyclesim::CycleSimError;
use crate::memory::MemHandle;
use crate::netlist::{Instance, Netlist};
use crate::ops::{eval_binop, eval_unop, FsmTable, OpKind};
use crate::value::Value;
use std::collections::HashMap;

/// A combinational instance, with all ports resolved to value slots.
pub(crate) enum Comb {
    Bin {
        kind: OpKind,
        a: usize,
        b: usize,
        y: usize,
        width: u32,
        name: String,
    },
    Un {
        kind: OpKind,
        a: usize,
        y: usize,
        width: u32,
        name: String,
    },
    Mux {
        sel: usize,
        inputs: Vec<usize>,
        y: usize,
        width: u32,
        name: String,
    },
    /// SRAM asynchronous read path.
    SramRead {
        mem: usize,
        en: usize,
        we: usize,
        addr: usize,
        dout: usize,
        name: String,
    },
}

impl Comb {
    pub(crate) fn name(&self) -> &str {
        match self {
            Comb::Bin { name, .. }
            | Comb::Un { name, .. }
            | Comb::Mux { name, .. }
            | Comb::SramRead { name, .. } => name,
        }
    }

    /// The output slot this instance drives.
    pub(crate) fn y(&self) -> usize {
        match self {
            Comb::Bin { y, .. } | Comb::Un { y, .. } | Comb::Mux { y, .. } => *y,
            Comb::SramRead { dout, .. } => *dout,
        }
    }

    /// Appends every input slot (duplicates possible) to `out`.
    pub(crate) fn inputs(&self, out: &mut Vec<usize>) {
        match self {
            Comb::Bin { a, b, .. } => out.extend([*a, *b]),
            Comb::Un { a, .. } => out.push(*a),
            Comb::Mux { sel, inputs, .. } => {
                out.push(*sel);
                out.extend(inputs.iter().copied());
            }
            Comb::SramRead { en, we, addr, .. } => out.extend([*en, *we, *addr]),
        }
    }
}

pub(crate) struct RegModel {
    pub d: usize,
    pub q: usize,
    pub en: Option<usize>,
    pub rst: Option<usize>,
    pub width: u32,
}

pub(crate) struct SramModel {
    pub mem: usize,
    pub en: usize,
    pub we: usize,
    pub addr: usize,
    pub din: usize,
    pub name: String,
}

pub(crate) struct FsmModel {
    pub name: String,
    pub table: FsmTable,
    pub conditions: Vec<usize>,
    pub outputs: Vec<usize>,
    /// Dense Moore-output values per state: `state_values[state][i]` is
    /// what output `i` drives there (0 when the state leaves it
    /// unlisted). Precomputed so the per-cycle drive is a flat compare
    /// loop instead of a per-output search of the state's output list.
    pub state_values: Vec<Vec<Value>>,
    pub state: usize,
}

pub(crate) struct WatchModel {
    pub name: String,
    pub sig: usize,
    pub value: i64,
}

/// What a rising edge did, beyond mutating the model.
pub(crate) struct EdgeEffects {
    /// A control unit reached a terminal state.
    pub done: bool,
    /// First watchpoint whose value matched after the commit.
    pub watch: Option<String>,
}

/// The dense model both compiled engines execute against.
pub(crate) struct FlatModel {
    pub names: Vec<String>,
    pub values: Vec<Value>,
    pub combs: Vec<Comb>,
    pub regs: Vec<RegModel>,
    pub srams: Vec<SramModel>,
    pub fsms: Vec<FsmModel>,
    pub watches: Vec<WatchModel>,
    pub mems: Vec<MemHandle>,
    pub mem_names: HashMap<String, usize>,
    pub signal_index: HashMap<String, usize>,
    pub reset_signals: Vec<usize>,
    /// Per-slot stuck-at clamp masks `(and, or)`, applied at every value
    /// write site. Empty (the common case) means no faults are injected
    /// and the hot paths skip clamping entirely.
    pub fault_clamps: Vec<(u64, u64)>,
    /// Pending transient bit flips as `(cycle, slot, xor mask)` — applied
    /// by the sweep engine at the start of the matching cycle. Empty when
    /// no transient faults are injected.
    pub fault_flips: Vec<(u64, usize, u64)>,
    /// Reused by [`FlatModel::commit_edge`] for the sampled
    /// `(register index, next value)` pairs, so the per-cycle hot path
    /// never allocates.
    reg_next: Vec<(usize, Value)>,
    /// Snapshot of `values` taken at the end of [`FlatModel::from_netlist`]
    /// (constants written, everything else X, no FSM outputs yet) so
    /// [`FlatModel::reset_state`] can rewind a cached model without a
    /// rebuild.
    initial_values: Vec<Value>,
}

impl FlatModel {
    /// Builds the flat model from a structural netlist.
    ///
    /// `clock` instances are absorbed into the cycle abstraction; `reset`
    /// instances assert during cycle 0 only (applied by the engines).
    pub(crate) fn from_netlist(netlist: &Netlist) -> Result<Self, CycleSimError> {
        let mut model = FlatModel {
            names: Vec::new(),
            values: Vec::new(),
            combs: Vec::new(),
            regs: Vec::new(),
            srams: Vec::new(),
            fsms: Vec::new(),
            watches: Vec::new(),
            mems: Vec::new(),
            mem_names: HashMap::new(),
            signal_index: HashMap::new(),
            reset_signals: Vec::new(),
            fault_clamps: Vec::new(),
            fault_flips: Vec::new(),
            reg_next: Vec::new(),
            initial_values: Vec::new(),
        };
        for decl in netlist.signals() {
            if model.signal_index.contains_key(&decl.name) {
                return Err(CycleSimError::Build(format!(
                    "duplicate signal '{}'",
                    decl.name
                )));
            }
            model
                .signal_index
                .insert(decl.name.clone(), model.values.len());
            model.names.push(decl.name.clone());
            model.values.push(Value::x(decl.width));
        }
        for inst in netlist.instances() {
            model.add_instance(inst)?;
        }
        model.initial_values = model.values.clone();
        Ok(model)
    }

    /// Rewinds the model to its just-built state so a cached instance can
    /// be re-run without rebuilding from the netlist: signal values return
    /// to their post-construction snapshot, control units rewind to their
    /// initial state (re-driving initial Moore outputs, as
    /// [`FlatModel::add_control_unit`] did at registration), memories are
    /// cleared back to X, and all injected faults are removed.
    pub(crate) fn reset_state(&mut self) {
        self.values.copy_from_slice(&self.initial_values);
        for mem in &self.mems {
            for addr in 0..mem.size() {
                mem.clear(addr);
            }
        }
        self.fault_clamps.clear();
        self.fault_flips.clear();
        self.reg_next.clear();
        let mut scratch = Vec::new();
        for fsm in &mut self.fsms {
            fsm.state = 0;
            scratch.clear();
            drive_fsm_outputs(fsm, &mut self.values, &self.fault_clamps, &mut scratch);
        }
    }

    fn sig(&self, inst: &Instance, port: &str) -> Result<usize, CycleSimError> {
        let name = inst.conn(port).ok_or_else(|| {
            CycleSimError::Build(format!("instance '{}' misses port '{}'", inst.name, port))
        })?;
        self.signal_index
            .get(name)
            .copied()
            .ok_or_else(|| CycleSimError::Build(format!("unknown signal '{name}'")))
    }

    fn param<T: std::str::FromStr>(
        inst: &Instance,
        key: &str,
        default: Option<T>,
    ) -> Result<T, CycleSimError> {
        match inst.param(key) {
            Some(raw) => raw.parse().map_err(|_| {
                CycleSimError::Build(format!(
                    "instance '{}': bad parameter '{}'='{}'",
                    inst.name, key, raw
                ))
            }),
            None => default.ok_or_else(|| {
                CycleSimError::Build(format!(
                    "instance '{}': missing parameter '{}'",
                    inst.name, key
                ))
            }),
        }
    }

    fn add_instance(&mut self, inst: &Instance) -> Result<(), CycleSimError> {
        if let Ok(kind) = inst.kind.parse::<OpKind>() {
            let width: u32 = Self::param(inst, "width", None)?;
            let y = self.sig(inst, "y")?;
            let a = self.sig(inst, "a")?;
            if kind.is_unary() {
                self.combs.push(Comb::Un {
                    kind,
                    a,
                    y,
                    width,
                    name: inst.name.clone(),
                });
            } else {
                let b = self.sig(inst, "b")?;
                self.combs.push(Comb::Bin {
                    kind,
                    a,
                    b,
                    y,
                    width,
                    name: inst.name.clone(),
                });
            }
            return Ok(());
        }
        match inst.kind.as_str() {
            "clock" => { /* absorbed by the cycle abstraction */ }
            "reset" => {
                let y = self.sig(inst, "y")?;
                self.reset_signals.push(y);
            }
            "const" => {
                let width: u32 = Self::param(inst, "width", None)?;
                let value: i64 = Self::param(inst, "value", None)?;
                let y = self.sig(inst, "y")?;
                self.values[y] = Value::known(width, value);
            }
            "mux" => {
                let width: u32 = Self::param(inst, "width", None)?;
                let n: usize = Self::param(inst, "inputs", None)?;
                let sel = self.sig(inst, "sel")?;
                let y = self.sig(inst, "y")?;
                let mut inputs = Vec::with_capacity(n);
                for i in 0..n {
                    inputs.push(self.sig(inst, &format!("i{i}"))?);
                }
                self.combs.push(Comb::Mux {
                    sel,
                    inputs,
                    y,
                    width,
                    name: inst.name.clone(),
                });
            }
            "reg" => {
                let width: u32 = Self::param(inst, "width", None)?;
                let d = self.sig(inst, "d")?;
                let q = self.sig(inst, "q")?;
                let en = inst.conn("en").map(|_| self.sig(inst, "en")).transpose()?;
                let rst = inst.conn("rst").map(|_| self.sig(inst, "rst")).transpose()?;
                self.regs.push(RegModel {
                    d,
                    q,
                    en,
                    rst,
                    width,
                });
            }
            "counter" => {
                return Err(CycleSimError::Build(
                    "counter is not supported by the cycle engine".to_string(),
                ));
            }
            "sram" => {
                let width: u32 = Self::param(inst, "width", None)?;
                let size: usize = Self::param(inst, "size", None)?;
                let mem = MemHandle::new(&inst.name, size, width);
                let mem_index = self.mems.len();
                self.mems.push(mem);
                self.mem_names.insert(inst.name.clone(), mem_index);
                let en = self.sig(inst, "en")?;
                let we = self.sig(inst, "we")?;
                let addr = self.sig(inst, "addr")?;
                let din = self.sig(inst, "din")?;
                let dout = self.sig(inst, "dout")?;
                self.combs.push(Comb::SramRead {
                    mem: mem_index,
                    en,
                    we,
                    addr,
                    dout,
                    name: inst.name.clone(),
                });
                self.srams.push(SramModel {
                    mem: mem_index,
                    en,
                    we,
                    addr,
                    din,
                    name: inst.name.clone(),
                });
            }
            "watchpoint" => {
                let value: i64 = Self::param(inst, "value", None)?;
                let sig = self.sig(inst, "sig")?;
                self.watches.push(WatchModel {
                    name: inst.name.clone(),
                    sig,
                    value,
                });
            }
            other => {
                return Err(CycleSimError::Build(format!(
                    "instance '{}' has kind '{}' unsupported by the cycle engine",
                    inst.name, other
                )));
            }
        }
        Ok(())
    }

    /// Attaches a behavioral control unit (same table as
    /// [`crate::ops::ControlUnit`]). Initial-state outputs are driven
    /// immediately.
    pub(crate) fn add_control_unit(
        &mut self,
        name: String,
        conditions: &[&str],
        outputs: &[(&str, u32)],
        table: FsmTable,
    ) -> Result<(), CycleSimError> {
        if conditions.len() != table.condition_count() || outputs.len() != table.output_count() {
            return Err(CycleSimError::Build(format!(
                "control unit '{name}': signal count mismatch with table"
            )));
        }
        let mut cond_ids = Vec::new();
        for c in conditions {
            cond_ids.push(
                self.signal_index
                    .get(*c)
                    .copied()
                    .ok_or_else(|| CycleSimError::Build(format!("unknown signal '{c}'")))?,
            );
        }
        let mut out_ids = Vec::new();
        let mut out_widths = Vec::new();
        for (o, w) in outputs {
            out_ids.push(
                self.signal_index
                    .get(*o)
                    .copied()
                    .ok_or_else(|| CycleSimError::Build(format!("unknown signal '{o}'")))?,
            );
            out_widths.push(*w);
        }
        let state_values = table
            .states()
            .iter()
            .map(|state| {
                (0..out_ids.len())
                    .map(|i| {
                        let value = state
                            .outputs
                            .iter()
                            .find(|(out, _)| *out == i)
                            .map(|(_, v)| *v)
                            .unwrap_or(0);
                        Value::known(out_widths[i], value)
                    })
                    .collect()
            })
            .collect();
        let fsm = FsmModel {
            name,
            table,
            conditions: cond_ids,
            outputs: out_ids,
            state_values,
            state: 0,
        };
        let mut scratch = Vec::new();
        drive_fsm_outputs(&fsm, &mut self.values, &self.fault_clamps, &mut scratch);
        self.fsms.push(fsm);
        Ok(())
    }

    /// Content handle of an SRAM instance.
    pub(crate) fn mem(&self, name: &str) -> Option<&MemHandle> {
        self.mem_names.get(name).map(|&i| &self.mems[i])
    }

    /// Current value of a named signal.
    pub(crate) fn value(&self, name: &str) -> Option<Value> {
        self.signal_index.get(name).map(|&i| self.values[i])
    }

    /// The rising-edge sample/commit phase, shared verbatim by both engines:
    /// next-state values for registers are sampled from the settled netlist,
    /// SRAM writes commit, FSMs transition and drive their Moore outputs,
    /// and finally register outputs commit (non-blocking semantics).
    ///
    /// Every slot whose value actually changed is appended to `changed`, and
    /// the index (into `self.srams`) of every memory that committed a write
    /// is appended to `written_srams` — the level engine uses both to mark
    /// downstream combinational logic dirty; the sweep engine ignores them.
    ///
    /// With `reg_filter: Some(bits)` only the registers whose bit is set are
    /// sampled (the set is drained). A register none of whose inputs
    /// (`d`/`en`/`rst`) changed since its last sample would resample the
    /// same value and commit nothing, so skipping it is unobservable — the
    /// level engine maintains that dirty set; the sweep engine passes
    /// `None` and samples everything.
    pub(crate) fn commit_edge(
        &mut self,
        changed: &mut Vec<usize>,
        written_srams: &mut Vec<usize>,
        reg_filter: Option<&mut Vec<u64>>,
    ) -> Result<EdgeEffects, CycleSimError> {
        let mut reg_next = std::mem::take(&mut self.reg_next);
        reg_next.clear();
        match reg_filter {
            None => {
                for (index, reg) in self.regs.iter().enumerate() {
                    if let Some(v) = sample_reg(reg, &self.values) {
                        reg_next.push((index, v));
                    }
                }
            }
            Some(bits) => {
                for (word, bits) in bits.iter_mut().enumerate() {
                    while *bits != 0 {
                        let bit = bits.trailing_zeros() as usize;
                        *bits &= !(1u64 << bit);
                        let index = word * 64 + bit;
                        if let Some(v) = sample_reg(&self.regs[index], &self.values) {
                            reg_next.push((index, v));
                        }
                    }
                }
            }
        }

        for (index, sram) in self.srams.iter().enumerate() {
            if self.values[sram.en].is_true() && self.values[sram.we].is_true() {
                let addr = self.values[sram.addr]
                    .try_u64()
                    .ok_or_else(|| CycleSimError::Failed(format!("{}: X address", sram.name)))?
                    as usize;
                let mem = &self.mems[sram.mem];
                if addr >= mem.size() {
                    return Err(CycleSimError::Failed(format!(
                        "{}: address {} out of range",
                        sram.name, addr
                    )));
                }
                let din = self.values[sram.din]
                    .try_i64()
                    .ok_or_else(|| CycleSimError::Failed(format!("{}: X write data", sram.name)))?;
                mem.store(addr, din);
                written_srams.push(index);
            }
        }

        let mut done = false;
        for i in 0..self.fsms.len() {
            let (next_state, failed) = {
                let fsm = &self.fsms[i];
                let current = &fsm.table.states()[fsm.state];
                if current.terminal {
                    (fsm.state, None)
                } else {
                    let mut next = fsm.state;
                    let mut failed = None;
                    for transition in &current.transitions {
                        match transition.condition {
                            None => {
                                next = transition.target;
                                break;
                            }
                            Some((index, expected)) => {
                                let v = self.values[fsm.conditions[index]];
                                if v.is_x() {
                                    failed = Some(format!(
                                        "{}: X condition in state '{}'",
                                        fsm.name, current.name
                                    ));
                                    break;
                                }
                                if v.is_true() == expected {
                                    next = transition.target;
                                    break;
                                }
                            }
                        }
                    }
                    (next, failed)
                }
            };
            if let Some(message) = failed {
                return Err(CycleSimError::Failed(message));
            }
            self.fsms[i].state = next_state;
            let fsm = &self.fsms[i];
            let values = &mut self.values;
            drive_fsm_outputs(fsm, values, &self.fault_clamps, changed);
            if fsm.table.states()[next_state].terminal {
                done = true;
            }
        }

        for &(index, v) in &reg_next {
            let q = self.regs[index].q;
            let v = clamp_with(&self.fault_clamps, q, v);
            if self.values[q] != v {
                self.values[q] = v;
                changed.push(q);
            }
        }
        self.reg_next = reg_next;

        let watch = self.watches.iter().find_map(|watch| {
            (self.values[watch.sig].try_i64() == Some(watch.value)).then(|| watch.name.clone())
        });
        Ok(EdgeEffects { done, watch })
    }

    /// Registers a stuck-at fault on one bit of a named signal. Returns
    /// the affected slot, or `None` when the signal does not exist in
    /// this model (the fault may live in another configuration). The
    /// current value is clamped immediately so constants and
    /// already-driven FSM outputs — which are never re-evaluated — honor
    /// the fault too.
    pub(crate) fn inject_stuck(
        &mut self,
        signal: &str,
        bit: u32,
        value: bool,
    ) -> Result<Option<usize>, CycleSimError> {
        let Some(&slot) = self.signal_index.get(signal) else {
            return Ok(None);
        };
        let width = self.values[slot].width();
        if bit >= width {
            return Err(CycleSimError::Build(format!(
                "stuck-at bit {bit} out of range for signal '{signal}' (width {width})"
            )));
        }
        if self.fault_clamps.is_empty() {
            self.fault_clamps = vec![(u64::MAX, 0); self.values.len()];
        }
        let mask = 1u64 << bit;
        if value {
            self.fault_clamps[slot].1 |= mask;
        } else {
            self.fault_clamps[slot].0 &= !mask;
        }
        self.values[slot] = clamp_with(&self.fault_clamps, slot, self.values[slot]);
        Ok(Some(slot))
    }

    /// Registers a transient single-bit flip on a named signal at a given
    /// clock cycle. Returns the affected slot, or `None` when the signal
    /// does not exist in this model. The engine decides when (and
    /// whether) to apply the pending flip — see the engine docs for the
    /// supported fault classes.
    pub(crate) fn inject_flip(
        &mut self,
        signal: &str,
        bit: u32,
        cycle: u64,
    ) -> Result<Option<usize>, CycleSimError> {
        let Some(&slot) = self.signal_index.get(signal) else {
            return Ok(None);
        };
        let width = self.values[slot].width();
        if bit >= width {
            return Err(CycleSimError::Build(format!(
                "bit-flip bit {bit} out of range for signal '{signal}' (width {width})"
            )));
        }
        self.fault_flips.push((cycle, slot, 1u64 << bit));
        Ok(Some(slot))
    }

    /// Applies the stuck-at clamp for `slot` to a value about to be
    /// written there. No-op (and branch-free on the empty check) when no
    /// faults are injected.
    #[inline]
    pub(crate) fn clamp_value(&self, slot: usize, value: Value) -> Value {
        clamp_with(&self.fault_clamps, slot, value)
    }

    /// Renders `(instance name, output value)` pairs for a set of
    /// combinational instances — the actionable part of a
    /// [`CycleSimError::NoFixpoint`] report, also reused for the level
    /// engine's combinational-cycle report.
    pub(crate) fn describe_combs(&self, indices: &[usize]) -> Vec<(String, String)> {
        indices
            .iter()
            .map(|&i| {
                let comb = &self.combs[i];
                (
                    comb.name().to_string(),
                    format!("{} = {}", self.names[comb.y()], self.values[comb.y()]),
                )
            })
            .collect()
    }
}

/// Samples one register's next value from the settled netlist: reset wins,
/// then the enable gate; `None` means the register holds its value.
#[inline]
fn sample_reg(reg: &RegModel, values: &[Value]) -> Option<Value> {
    if let Some(rst) = reg.rst {
        if values[rst].is_true() {
            return Some(Value::known(reg.width, 0));
        }
    }
    let enabled = match reg.en {
        Some(en) => values[en].is_true(),
        None => true,
    };
    enabled.then(|| values[reg.d].resize(reg.width))
}

/// Applies the stuck-at clamp for `slot` from a raw clamp table. Whole-
/// value X passes through unchanged (the fault policy forces known bits
/// only once the signal resolves); an empty table means no faults.
#[inline]
pub(crate) fn clamp_with(clamps: &[(u64, u64)], slot: usize, value: Value) -> Value {
    if clamps.is_empty() {
        return value;
    }
    let (and, or) = clamps[slot];
    match value.try_u64() {
        Some(bits) => {
            let clamped = (bits & and) | or;
            if clamped == bits {
                value
            } else {
                Value::known(value.width(), clamped as i64)
            }
        }
        None => value,
    }
}

/// Drives the Moore outputs of `fsm`'s current state, appending every slot
/// whose value actually changed to `changed`. Output values pass through
/// the stuck-at `clamps` table (empty when no faults are injected).
pub(crate) fn drive_fsm_outputs(
    fsm: &FsmModel,
    values: &mut [Value],
    clamps: &[(u64, u64)],
    changed: &mut Vec<usize>,
) {
    let state_values = &fsm.state_values[fsm.state];
    for (&signal, &value) in fsm.outputs.iter().zip(state_values) {
        let value = clamp_with(clamps, signal, value);
        if values[signal] != value {
            values[signal] = value;
            changed.push(signal);
        }
    }
}

/// Evaluates one combinational instance against the current values,
/// returning `(output slot, new value)` without writing it back.
pub(crate) fn eval_comb(
    comb: &Comb,
    values: &[Value],
    mems: &[MemHandle],
) -> Result<(usize, Value), CycleSimError> {
    match comb {
        Comb::Bin {
            kind,
            a,
            b,
            y,
            width,
            name,
        } => {
            let out_width = if kind.is_comparison() { 1 } else { *width };
            let out = match (values[*a].try_i64(), values[*b].try_i64()) {
                (Some(a), Some(b)) => eval_binop(*kind, a, b, *width)
                    .map_err(|m| CycleSimError::Failed(format!("{name}: {m}")))?,
                _ => Value::x(out_width),
            };
            Ok((*y, out))
        }
        Comb::Un {
            kind,
            a,
            y,
            width,
            name,
        } => {
            let out = match values[*a].try_i64() {
                Some(a) => eval_unop(*kind, a, *width)
                    .map_err(|m| CycleSimError::Failed(format!("{name}: {m}")))?,
                None => Value::x(*width),
            };
            Ok((*y, out))
        }
        Comb::Mux {
            sel,
            inputs,
            y,
            width,
            ..
        } => {
            let out = match values[*sel].try_u64() {
                Some(s) => match inputs.get(s as usize) {
                    Some(&i) => values[i].resize(*width),
                    None => Value::x(*width),
                },
                None => Value::x(*width),
            };
            Ok((*y, out))
        }
        Comb::SramRead {
            mem,
            en,
            we,
            addr,
            dout,
            ..
        } => {
            let m = &mems[*mem];
            let width = m.width();
            if !values[*en].is_true() || values[*we].is_true() {
                // dout undefined while disabled; during writes it follows
                // the committed word only after the edge, so leave X within
                // the cycle (registers never sample it mid-write in
                // generated designs).
                return Ok((*dout, Value::x(width)));
            }
            // Bad addresses on the (combinational) read path yield X, as
            // in the event kernel; only committing writes fail.
            let out = match values[*addr].try_u64() {
                Some(a) if (a as usize) < m.size() => match m.load(a as usize) {
                    Some(v) => Value::known(width, v),
                    None => Value::x(width),
                },
                _ => Value::x(width),
            };
            Ok((*dout, out))
        }
    }
}
