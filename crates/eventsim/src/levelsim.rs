//! The levelized compiled-schedule engine.
//!
//! Where [`crate::cyclesim::CycleSim`] re-sweeps every combinational
//! instance until fixpoint (paying `sweeps × instances` evaluations per
//! cycle), this engine compiles the netlist once at build time:
//!
//! 1. **Levelization** — combinational instances are topologically ranked
//!    (Kahn's algorithm over the comb-to-comb dependency edges), so rank
//!    *r* instances depend only on sequential outputs, constants, and ranks
//!    `< r`. A true combinational cycle is detected here and reported as
//!    [`CycleSimError::CombinationalCycle`] naming one concrete loop,
//!    instead of burning a 1000-sweep budget at runtime.
//! 2. **Slot interning** — the shared [`crate::simmodel::FlatModel`] already
//!    interns every signal/memory name into dense indices; this engine adds
//!    a CSR fanout table (value slot → dependent schedule positions), so the
//!    cycle path touches only flat `Vec`s.
//! 3. **Dirty scheduling** — a rank-ordered dirty bitset over schedule
//!    positions. Evaluating a comb can only dirty *later* positions
//!    (strictly higher ranks), so one ascending pass over the bitset
//!    evaluates every dirty instance exactly once per clock phase and
//!    skips quiescent regions entirely.
//!
//! After the settle pass, registers, memories, and FSMs commit in the single
//! sample phase shared with the sweep engine ([`FlatModel::commit_edge`]),
//! and every slot the commit changed (plus the read path of every written
//! SRAM) re-seeds the dirty set for the next cycle.

use crate::cyclesim::{CycleOutcome, CycleSimError, CycleSummary};
use crate::memory::MemHandle;
use crate::netlist::Netlist;
use crate::ops::FsmTable;
use crate::simmodel::{eval_comb, FlatModel};
use crate::value::Value;
use std::collections::HashMap;
use std::time::Instant;

/// One row of [`LevelSim::rank_table`]: an instance, its rank, and the
/// combinational producers it reads (with their ranks).
#[derive(Debug, Clone)]
pub struct RankEntry {
    /// Instance name.
    pub instance: String,
    /// Evaluation rank (0 = fed only by sequential/constant slots).
    pub rank: usize,
    /// `(producer instance, producer rank)` for every combinational
    /// instance whose output this one reads.
    pub sources: Vec<(String, usize)>,
}

/// The levelized engine. See the [module docs](self).
pub struct LevelSim {
    model: FlatModel,
    /// Comb indices in (rank, instance) order — the compiled schedule.
    order: Vec<u32>,
    /// Rank of each comb, indexed by comb index.
    ranks: Vec<u32>,
    /// Number of distinct ranks.
    rank_count: usize,
    /// CSR: value slot -> positions (into `order`) of combs reading it.
    fanout_starts: Vec<u32>,
    fanout: Vec<u32>,
    /// Schedule position of each SRAM's read comb, indexed like
    /// `model.srams`: a committed write dirties the read path even though
    /// no signal changed.
    sram_read_pos: Vec<u32>,
    /// Schedule position of the comb driving each value slot
    /// (`u32::MAX` for sequential/constant slots with no comb producer).
    /// A transient flip re-dirties the producer so the settle recomputes
    /// it away, matching the cycle sweeper's fixpoint semantics.
    producer_pos: Vec<u32>,
    /// Dirty bitset over schedule positions.
    dirty: Vec<u64>,
    dirty_count: usize,
    /// CSR: value slot -> registers reading it (`d`/`en`/`rst`).
    reg_fanout_starts: Vec<u32>,
    reg_fanout: Vec<u32>,
    /// Dirty bitset over registers — only these are sampled on the edge
    /// (see [`FlatModel::commit_edge`]'s `reg_filter`).
    reg_dirty: Vec<u64>,
    cycles: u64,
    comb_evals: u64,
    changed_scratch: Vec<usize>,
    sram_scratch: Vec<usize>,
    /// Opt-in per-rank settle profiling. `None` (the default) keeps the
    /// hot settle loop untouched: the only cost is one `is_some` branch
    /// per settle call.
    profile: Option<Box<LevelProfile>>,
}

/// Per-rank settle timing and dirty-bitset effectiveness, collected
/// when [`LevelSim::enable_profile`] was called.
#[derive(Debug, Clone, Default)]
pub struct LevelProfile {
    /// Settle passes executed (one per clock cycle, plus the initial
    /// full evaluation).
    pub settles: u64,
    /// Number of schedule positions in each rank.
    pub rank_sizes: Vec<u64>,
    /// Accumulated per-rank counters, indexed by rank.
    pub ranks: Vec<RankProfile>,
}

/// One rank's accumulated profile counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct RankProfile {
    /// Dirty positions of this rank actually evaluated.
    pub evals: u64,
    /// Evaluations whose output value changed.
    pub changes: u64,
    /// Monotonic nanoseconds spent evaluating this rank.
    pub nanos: u64,
}

impl LevelProfile {
    /// Fraction of rank `rank`'s positions the dirty bitset actually
    /// evaluated, across all settles — 1.0 means no savings over
    /// evaluate-everything, small values mean the bitset is doing its
    /// job.
    pub fn hit_rate(&self, rank: usize) -> f64 {
        let visited = self.ranks.get(rank).map_or(0, |row| row.evals);
        let possible = self.rank_sizes.get(rank).copied().unwrap_or(0) * self.settles;
        if possible == 0 {
            0.0
        } else {
            visited as f64 / possible as f64
        }
    }
}

impl LevelSim {
    /// Builds and levelizes a compiled-schedule model from a structural
    /// netlist. Supports exactly the vocabulary of
    /// [`CycleSim::from_netlist`](crate::cyclesim::CycleSim::from_netlist).
    ///
    /// # Errors
    ///
    /// [`CycleSimError::Build`] for unsupported constructs, and
    /// [`CycleSimError::CombinationalCycle`] when the combinational netlist
    /// is not a DAG (the error names one concrete loop).
    pub fn from_netlist(netlist: &Netlist) -> Result<Self, CycleSimError> {
        let model = FlatModel::from_netlist(netlist)?;
        let n = model.combs.len();

        // Producers per value slot (combinational drivers only).
        let mut producers: Vec<Vec<u32>> = vec![Vec::new(); model.values.len()];
        for (i, comb) in model.combs.iter().enumerate() {
            producers[comb.y()].push(i as u32);
        }

        // comb -> combs reading its output, and per-comb in-degree.
        let mut adjacency: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut indegree: Vec<u32> = vec![0; n];
        let mut input_slots: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut scratch = Vec::new();
        for (i, comb) in model.combs.iter().enumerate() {
            scratch.clear();
            comb.inputs(&mut scratch);
            scratch.sort_unstable();
            scratch.dedup();
            input_slots[i] = scratch.clone();
            for &slot in &scratch {
                for &p in &producers[slot] {
                    adjacency[p as usize].push(i as u32);
                    indegree[i] += 1;
                }
            }
        }

        // Kahn's algorithm; rank = longest path from a sequential source.
        let mut ranks: Vec<u32> = vec![0; n];
        let mut processed: Vec<bool> = vec![false; n];
        let mut worklist: Vec<u32> = (0..n as u32).filter(|&i| indegree[i as usize] == 0).collect();
        let mut head = 0;
        while head < worklist.len() {
            let p = worklist[head] as usize;
            head += 1;
            processed[p] = true;
            for &c in &adjacency[p] {
                let c = c as usize;
                ranks[c] = ranks[c].max(ranks[p] + 1);
                indegree[c] -= 1;
                if indegree[c] == 0 {
                    worklist.push(c as u32);
                }
            }
        }
        if head < n {
            return Err(CycleSimError::CombinationalCycle {
                instances: extract_cycle(&model, &input_slots, &producers, &processed),
            });
        }

        // Stable (rank, index) schedule via counting sort.
        let rank_count = ranks.iter().map(|&r| r as usize + 1).max().unwrap_or(0);
        let mut rank_starts = vec![0u32; rank_count + 1];
        for &r in &ranks {
            rank_starts[r as usize + 1] += 1;
        }
        for r in 0..rank_count {
            rank_starts[r + 1] += rank_starts[r];
        }
        let mut cursor = rank_starts.clone();
        let mut order = vec![0u32; n];
        let mut pos_of = vec![0u32; n];
        for i in 0..n {
            let slot = &mut cursor[ranks[i] as usize];
            order[*slot as usize] = i as u32;
            pos_of[i] = *slot;
            *slot += 1;
        }

        // CSR fanout: value slot -> schedule positions reading it.
        let mut fanout_starts = vec![0u32; model.values.len() + 1];
        for slots in &input_slots {
            for &s in slots {
                fanout_starts[s + 1] += 1;
            }
        }
        for s in 0..model.values.len() {
            fanout_starts[s + 1] += fanout_starts[s];
        }
        let mut fill = fanout_starts.clone();
        let mut fanout = vec![0u32; fanout_starts[model.values.len()] as usize];
        for (i, slots) in input_slots.iter().enumerate() {
            for &s in slots {
                fanout[fill[s] as usize] = pos_of[i];
                fill[s] += 1;
            }
        }

        let mut producer_pos = vec![u32::MAX; model.values.len()];
        for (i, comb) in model.combs.iter().enumerate() {
            producer_pos[comb.y()] = pos_of[i];
        }

        let sram_read_pos = model
            .srams
            .iter()
            .map(|sram| {
                let comb = model
                    .combs
                    .iter()
                    .position(|c| matches!(c, crate::simmodel::Comb::SramRead { mem, .. } if *mem == sram.mem))
                    .expect("every sram has a read comb");
                pos_of[comb]
            })
            .collect();

        // CSR: value slot -> register indices sampling it, mirroring the
        // comb fanout so an edge only resamples registers whose inputs
        // (`d`/`en`/`rst`) actually changed.
        let mut reg_inputs: Vec<Vec<usize>> = Vec::with_capacity(model.regs.len());
        for reg in &model.regs {
            let mut slots = vec![reg.d];
            slots.extend(reg.en);
            slots.extend(reg.rst);
            slots.sort_unstable();
            slots.dedup();
            reg_inputs.push(slots);
        }
        let mut reg_fanout_starts = vec![0u32; model.values.len() + 1];
        for slots in &reg_inputs {
            for &s in slots {
                reg_fanout_starts[s + 1] += 1;
            }
        }
        for s in 0..model.values.len() {
            reg_fanout_starts[s + 1] += reg_fanout_starts[s];
        }
        let mut fill = reg_fanout_starts.clone();
        let mut reg_fanout = vec![0u32; reg_fanout_starts[model.values.len()] as usize];
        for (i, slots) in reg_inputs.iter().enumerate() {
            for &s in slots {
                reg_fanout[fill[s] as usize] = i as u32;
                fill[s] += 1;
            }
        }

        let words = n.div_ceil(64);
        let reg_words = model.regs.len().div_ceil(64);
        let reg_count = model.regs.len();
        let mut sim = LevelSim {
            model,
            order,
            ranks,
            rank_count,
            fanout_starts,
            fanout,
            sram_read_pos,
            producer_pos,
            dirty: vec![0u64; words],
            dirty_count: 0,
            reg_fanout_starts,
            reg_fanout,
            reg_dirty: vec![0u64; reg_words],
            cycles: 0,
            comb_evals: 0,
            changed_scratch: Vec::new(),
            sram_scratch: Vec::new(),
            profile: None,
        };
        // First settle evaluates everything once, in rank order, and the
        // first edge samples every register.
        for pos in 0..n {
            sim.mark_pos(pos);
        }
        for reg in 0..reg_count {
            sim.reg_dirty[reg / 64] |= 1u64 << (reg % 64);
        }
        Ok(sim)
    }

    /// Attaches a behavioral control unit (same table as
    /// [`crate::ops::ControlUnit`]).
    ///
    /// # Errors
    ///
    /// Returns [`CycleSimError::Build`] when a referenced signal does not
    /// exist or counts disagree with the table.
    pub fn add_control_unit(
        &mut self,
        name: impl Into<String>,
        conditions: &[&str],
        outputs: &[(&str, u32)],
        table: FsmTable,
    ) -> Result<(), CycleSimError> {
        self.model
            .add_control_unit(name.into(), conditions, outputs, table)?;
        // Initial-state outputs were just driven; dirty their readers.
        let fsm = self.model.fsms.last().expect("just pushed");
        let outs: Vec<usize> = fsm.outputs.clone();
        for slot in outs {
            self.mark_slot(slot);
        }
        Ok(())
    }

    /// Content handle of an SRAM instance.
    pub fn mem(&self, name: &str) -> Option<&MemHandle> {
        self.model.mem(name)
    }

    /// Current value of a named signal.
    pub fn value(&self, name: &str) -> Option<Value> {
        self.model.value(name)
    }

    /// Injects a stuck-at fault on one bit of a named signal: every write
    /// to the signal is clamped, so the bit holds `value` for the rest of
    /// the run. Returns `false` (without injecting) when the signal does
    /// not exist in this model. The clamped slot's readers are marked
    /// dirty so the incremental schedule re-evaluates them.
    ///
    /// # Errors
    ///
    /// Returns [`CycleSimError::Build`] when `bit` is out of range for
    /// the signal's width.
    pub fn inject_stuck_at(
        &mut self,
        signal: &str,
        bit: u32,
        value: bool,
    ) -> Result<bool, CycleSimError> {
        match self.model.inject_stuck(signal, bit, value)? {
            Some(slot) => {
                self.mark_slot(slot);
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Schedules a one-cycle transient flip: at the start of the walk
    /// whose cycle number matches, the bit is XORed into the slot's
    /// value before the reset drive and the settle — the same timing as
    /// [`CycleSim`](crate::cyclesim::CycleSim). The flipped slot's
    /// producer (when comb-driven) and readers are re-dirtied so the
    /// incremental settle reaches the exact fixpoint the full sweep
    /// would: comb-driven flips are recomputed away, flips on
    /// sequential outputs (register `q`, FSM outputs, constants)
    /// persist for that one walk and propagate.
    ///
    /// Returns `false` when no such signal exists in this model.
    ///
    /// # Errors
    ///
    /// Returns [`CycleSimError::Build`] when `bit` is out of range for
    /// the signal's width.
    pub fn inject_transient_flip(
        &mut self,
        signal: &str,
        bit: u32,
        cycle: u64,
    ) -> Result<bool, CycleSimError> {
        Ok(self.model.inject_flip(signal, bit, cycle)?.is_some())
    }

    /// Cycles executed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Number of levelization ranks in the compiled schedule.
    pub fn rank_count(&self) -> usize {
        self.rank_count
    }

    /// Combinational evaluations performed so far.
    pub fn comb_evals(&self) -> u64 {
        self.comb_evals
    }

    /// The levelization result, for inspection and property tests: every
    /// combinational instance with its rank and its combinational sources.
    pub fn rank_table(&self) -> Vec<RankEntry> {
        let mut producer_of: HashMap<usize, usize> = HashMap::new();
        for (i, comb) in self.model.combs.iter().enumerate() {
            producer_of.insert(comb.y(), i);
        }
        let mut scratch = Vec::new();
        self.model
            .combs
            .iter()
            .enumerate()
            .map(|(i, comb)| {
                scratch.clear();
                comb.inputs(&mut scratch);
                scratch.sort_unstable();
                scratch.dedup();
                let sources = scratch
                    .iter()
                    .filter_map(|slot| producer_of.get(slot))
                    .map(|&p| {
                        (
                            self.model.combs[p].name().to_string(),
                            self.ranks[p] as usize,
                        )
                    })
                    .collect();
                RankEntry {
                    instance: comb.name().to_string(),
                    rank: self.ranks[i] as usize,
                    sources,
                }
            })
            .collect()
    }

    #[inline]
    fn mark_pos(&mut self, pos: usize) {
        let word = pos / 64;
        let bit = 1u64 << (pos % 64);
        if self.dirty[word] & bit == 0 {
            self.dirty[word] |= bit;
            self.dirty_count += 1;
        }
    }

    /// Marks everything that reads `slot` dirty: dependent combinational
    /// schedule positions and registers sampling it on the next edge.
    #[inline]
    fn mark_slot(&mut self, slot: usize) {
        let (lo, hi) = (
            self.fanout_starts[slot] as usize,
            self.fanout_starts[slot + 1] as usize,
        );
        for f in lo..hi {
            self.mark_pos(self.fanout[f] as usize);
        }
        let (lo, hi) = (
            self.reg_fanout_starts[slot] as usize,
            self.reg_fanout_starts[slot + 1] as usize,
        );
        for f in lo..hi {
            let reg = self.reg_fanout[f] as usize;
            self.reg_dirty[reg / 64] |= 1u64 << (reg % 64);
        }
    }

    /// Turns on per-rank settle profiling. Profiling only observes:
    /// cycle and evaluation counters, values, and outcomes are
    /// bit-identical with it on or off.
    pub fn enable_profile(&mut self) {
        let mut rank_sizes = vec![0u64; self.rank_count];
        for &comb in &self.order {
            rank_sizes[self.ranks[comb as usize] as usize] += 1;
        }
        self.profile = Some(Box::new(LevelProfile {
            settles: 0,
            rank_sizes,
            ranks: vec![RankProfile::default(); self.rank_count],
        }));
    }

    /// The accumulated profile, when [`enable_profile`](Self::enable_profile)
    /// was called.
    pub fn profile(&self) -> Option<&LevelProfile> {
        self.profile.as_deref()
    }

    /// Decomposes the engine into the flat model and the compiled rank
    /// schedule (comb indices in evaluation order). The batch engine
    /// flattens both into its lane-parallel bytecode instead of walking
    /// the CSR tables.
    pub(crate) fn into_parts(self) -> (FlatModel, Vec<u32>) {
        (self.model, self.order)
    }

    /// Rewinds a built (and control-unit-attached) simulator to its
    /// pre-first-step state so it can be re-run without rebuilding: signal
    /// values, FSM states, memories, counters, and injected faults all
    /// reset, and the dirty bitsets are re-seeded exactly as
    /// [`LevelSim::from_netlist`] left them (everything dirty, so the
    /// first settle re-evaluates the whole schedule and the first edge
    /// samples every register). Attached control units stay attached. A
    /// reset simulator is bit-identical to a freshly built one — see the
    /// `reset_reuse` tests.
    pub fn reset_state(&mut self) {
        self.model.reset_state();
        self.dirty.iter_mut().for_each(|w| *w = 0);
        self.dirty_count = 0;
        let n = self.order.len();
        for pos in 0..n {
            self.mark_pos(pos);
        }
        self.reg_dirty.iter_mut().for_each(|w| *w = 0);
        for reg in 0..self.model.regs.len() {
            self.reg_dirty[reg / 64] |= 1u64 << (reg % 64);
        }
        self.cycles = 0;
        self.comb_evals = 0;
        self.changed_scratch.clear();
        self.sram_scratch.clear();
        if self.profile.is_some() {
            self.enable_profile();
        }
    }

    /// One ascending pass over the dirty bitset. Evaluating a position can
    /// only dirty strictly later positions (higher ranks), so each dirty
    /// comb is evaluated exactly once and the set is empty on return.
    fn settle(&mut self) -> Result<(), CycleSimError> {
        if self.profile.is_some() {
            return self.settle_profiled();
        }
        if self.dirty_count == 0 {
            return Ok(());
        }
        for word in 0..self.dirty.len() {
            // Re-fetch each iteration: evals may set higher bits in this
            // same word, and those must be visited in this pass too.
            while self.dirty[word] != 0 {
                let bit = self.dirty[word].trailing_zeros() as usize;
                self.dirty[word] &= !(1u64 << bit);
                self.dirty_count -= 1;
                let pos = word * 64 + bit;
                let comb_index = self.order[pos] as usize;
                self.comb_evals += 1;
                let (y, value) = eval_comb(
                    &self.model.combs[comb_index],
                    &self.model.values,
                    &self.model.mems,
                )?;
                let value = self.model.clamp_value(y, value);
                if self.model.values[y] != value {
                    self.model.values[y] = value;
                    self.mark_slot(y);
                }
            }
        }
        debug_assert_eq!(self.dirty_count, 0);
        Ok(())
    }

    /// The profiling twin of [`settle`](Self::settle): the same pass,
    /// additionally timing each evaluation into its rank's counters.
    /// Kept separate so the unprofiled hot loop carries no timing code.
    fn settle_profiled(&mut self) -> Result<(), CycleSimError> {
        let mut profile = self.profile.take().expect("profiling enabled");
        profile.settles += 1;
        let result = (|| {
            if self.dirty_count == 0 {
                return Ok(());
            }
            for word in 0..self.dirty.len() {
                // Re-fetch each iteration: evals may set higher bits in
                // this same word, and those must be visited in this pass.
                while self.dirty[word] != 0 {
                    let bit = self.dirty[word].trailing_zeros() as usize;
                    self.dirty[word] &= !(1u64 << bit);
                    self.dirty_count -= 1;
                    let pos = word * 64 + bit;
                    let comb_index = self.order[pos] as usize;
                    let rank = self.ranks[comb_index] as usize;
                    self.comb_evals += 1;
                    let eval_started = Instant::now();
                    let (y, value) = eval_comb(
                        &self.model.combs[comb_index],
                        &self.model.values,
                        &self.model.mems,
                    )?;
                    let value = self.model.clamp_value(y, value);
                    let changed = self.model.values[y] != value;
                    if changed {
                        self.model.values[y] = value;
                        self.mark_slot(y);
                    }
                    let row = &mut profile.ranks[rank];
                    row.evals += 1;
                    row.nanos += eval_started.elapsed().as_nanos() as u64;
                    if changed {
                        row.changes += 1;
                    }
                }
            }
            debug_assert_eq!(self.dirty_count, 0);
            Ok(())
        })();
        self.profile = Some(profile);
        result
    }

    /// Executes one clock cycle: settle (one levelized pass), then commit
    /// every sequential element on the implicit rising edge.
    ///
    /// Returns `Ok(None)` while running, or the terminating outcome.
    ///
    /// # Errors
    ///
    /// Propagates design failures ([`CycleSimError::Failed`]).
    pub fn step(&mut self) -> Result<Option<CycleOutcome>, CycleSimError> {
        // Transient fault flips scheduled for this cycle apply before
        // the reset drive and the settle, with the cycle sweeper's
        // timing. Re-dirtying the producer position makes the settle
        // erase comb-driven flips (the sweeper's fixpoint does this
        // implicitly); re-dirtying the readers propagates surviving
        // flips on sequential outputs.
        if !self.model.fault_flips.is_empty() {
            for i in 0..self.model.fault_flips.len() {
                let (cycle, slot, mask) = self.model.fault_flips[i];
                if cycle == self.cycles {
                    let v = self.model.values[slot];
                    if let Some(bits) = v.try_u64() {
                        self.model.values[slot] =
                            Value::known(v.width(), (bits ^ mask) as i64);
                        let producer = self.producer_pos[slot];
                        if producer != u32::MAX {
                            self.mark_pos(producer as usize);
                        }
                        self.mark_slot(slot);
                    }
                }
            }
        }

        // Reset generators assert during cycle 0.
        let reset_active = self.cycles == 0;
        for i in 0..self.model.reset_signals.len() {
            let y = self.model.reset_signals[i];
            let v = self.model.clamp_value(y, Value::bit(reset_active));
            if self.model.values[y] != v {
                self.model.values[y] = v;
                self.mark_slot(y);
            }
        }

        self.settle()?;

        self.changed_scratch.clear();
        self.sram_scratch.clear();
        let effects = self.model.commit_edge(
            &mut self.changed_scratch,
            &mut self.sram_scratch,
            Some(&mut self.reg_dirty),
        )?;

        // Everything the edge changed re-seeds the dirty set.
        let changed = std::mem::take(&mut self.changed_scratch);
        for &slot in &changed {
            self.mark_slot(slot);
        }
        self.changed_scratch = changed;
        let written = std::mem::take(&mut self.sram_scratch);
        for &sram in &written {
            self.mark_pos(self.sram_read_pos[sram] as usize);
        }
        self.sram_scratch = written;

        self.cycles += 1;

        if let Some(name) = effects.watch {
            return Ok(Some(CycleOutcome::Watchpoint(name)));
        }
        if effects.done {
            return Ok(Some(CycleOutcome::Done));
        }
        Ok(None)
    }

    /// Runs until a control unit finishes, a watchpoint matches, or
    /// `max_cycles` elapse.
    ///
    /// # Errors
    ///
    /// Propagates [`CycleSimError`] from [`step`](Self::step).
    pub fn run(&mut self, max_cycles: u64) -> Result<CycleSummary, CycleSimError> {
        let start_cycles = self.cycles;
        let start_evals = self.comb_evals;
        let outcome = loop {
            if self.cycles - start_cycles >= max_cycles {
                break CycleOutcome::CycleLimit;
            }
            if let Some(outcome) = self.step()? {
                break outcome;
            }
        };
        Ok(CycleSummary {
            outcome,
            cycles: self.cycles - start_cycles,
            comb_evals: self.comb_evals - start_evals,
        })
    }
}

/// Walks producer edges backward among unprocessed (cycle-involved) combs
/// until a node repeats, returning one concrete loop in dependency order.
fn extract_cycle(
    model: &FlatModel,
    input_slots: &[Vec<usize>],
    producers: &[Vec<u32>],
    processed: &[bool],
) -> Vec<String> {
    let start = (0..processed.len())
        .find(|&i| !processed[i])
        .expect("caller guarantees an unprocessed comb");
    let mut path: Vec<usize> = Vec::new();
    let mut pos_in_path: HashMap<usize, usize> = HashMap::new();
    let mut cur = start;
    loop {
        if let Some(&at) = pos_in_path.get(&cur) {
            // path[at..] walked backward along dependencies; reverse it so
            // the report reads source -> sink.
            let mut cycle: Vec<String> = path[at..]
                .iter()
                .map(|&i| model.combs[i].name().to_string())
                .collect();
            cycle.reverse();
            return cycle;
        }
        pos_in_path.insert(cur, path.len());
        path.push(cur);
        cur = input_slots[cur]
            .iter()
            .flat_map(|&slot| producers[slot].iter().copied())
            .map(|p| p as usize)
            .find(|&p| !processed[p])
            .expect("unprocessed combs always have an unprocessed producer");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cyclesim::CycleSim;
    use crate::netlist::{Instance, Netlist};
    use crate::ops::{FsmState, FsmTransition};

    fn pipeline_netlist() -> Netlist {
        let mut nl = Netlist::new("pipe");
        nl.add_signal("clk", 1);
        nl.add_signal("a", 8);
        nl.add_signal("b", 8);
        nl.add_signal("sum", 8);
        nl.add_signal("q1", 8);
        nl.add_signal("q2", 8);
        nl.add_instance(Instance::new("clock0", "clock").with_conn("y", "clk"));
        nl.add_instance(
            Instance::new("ca", "const")
                .with_param("width", 8).with_param("value", 3).with_conn("y", "a"),
        );
        nl.add_instance(
            Instance::new("cb", "const")
                .with_param("width", 8).with_param("value", 4).with_conn("y", "b"),
        );
        nl.add_instance(
            Instance::new("add0", "add").with_param("width", 8)
                .with_conn("a", "a").with_conn("b", "b").with_conn("y", "sum"),
        );
        nl.add_instance(
            Instance::new("r1", "reg").with_param("width", 8)
                .with_conn("clk", "clk").with_conn("d", "sum").with_conn("q", "q1"),
        );
        nl.add_instance(
            Instance::new("r2", "reg").with_param("width", 8)
                .with_conn("clk", "clk").with_conn("d", "q1").with_conn("q", "q2"),
        );
        nl
    }

    #[test]
    fn matches_cycle_sim_on_a_pipeline() {
        let nl = pipeline_netlist();
        let mut level = LevelSim::from_netlist(&nl).unwrap();
        let mut cycle = CycleSim::from_netlist(&nl).unwrap();
        for _ in 0..4 {
            level.step().unwrap();
            cycle.step().unwrap();
            for sig in ["sum", "q1", "q2"] {
                assert_eq!(level.value(sig), cycle.value(sig), "signal {sig}");
            }
        }
        assert_eq!(level.value("q2").unwrap().as_u64(), 7);
    }

    #[test]
    fn quiescent_netlist_skips_evaluation() {
        let nl = pipeline_netlist();
        let mut level = LevelSim::from_netlist(&nl).unwrap();
        level.step().unwrap();
        let after_first = level.comb_evals();
        for _ in 0..10 {
            level.step().unwrap();
        }
        // Constants never change, so the adder settles after the first
        // cycle and is never re-evaluated.
        assert_eq!(level.comb_evals(), after_first, "quiescent region skipped");
    }

    #[test]
    fn ranks_respect_dependencies() {
        let mut nl = Netlist::new("chain");
        nl.add_signal("a", 8);
        nl.add_signal("b", 8);
        nl.add_signal("c", 8);
        nl.add_signal("d", 8);
        nl.add_instance(
            Instance::new("ca", "const")
                .with_param("width", 8).with_param("value", 1).with_conn("y", "a"),
        );
        nl.add_instance(
            Instance::new("inc1", "add").with_param("width", 8)
                .with_conn("a", "a").with_conn("b", "a").with_conn("y", "b"),
        );
        nl.add_instance(
            Instance::new("inc2", "add").with_param("width", 8)
                .with_conn("a", "b").with_conn("b", "a").with_conn("y", "c"),
        );
        nl.add_instance(
            Instance::new("inc3", "add").with_param("width", 8)
                .with_conn("a", "c").with_conn("b", "b").with_conn("y", "d"),
        );
        let level = LevelSim::from_netlist(&nl).unwrap();
        assert_eq!(level.rank_count(), 3);
        for entry in level.rank_table() {
            for (source, source_rank) in &entry.sources {
                assert!(
                    entry.rank > *source_rank,
                    "{} (rank {}) must outrank source {} (rank {})",
                    entry.instance, entry.rank, source, source_rank
                );
            }
        }
    }

    #[test]
    fn combinational_cycle_reported_at_build_time() {
        // a -> inc -> b -> dec -> a: a true combinational loop.
        let mut nl = Netlist::new("loopy");
        nl.add_signal("a", 8);
        nl.add_signal("b", 8);
        nl.add_signal("one", 8);
        nl.add_instance(
            Instance::new("c1", "const")
                .with_param("width", 8).with_param("value", 1).with_conn("y", "one"),
        );
        nl.add_instance(
            Instance::new("inc", "add").with_param("width", 8)
                .with_conn("a", "a").with_conn("b", "one").with_conn("y", "b"),
        );
        nl.add_instance(
            Instance::new("dec", "sub").with_param("width", 8)
                .with_conn("a", "b").with_conn("b", "one").with_conn("y", "a"),
        );
        match LevelSim::from_netlist(&nl).map(|_| ()) {
            Err(CycleSimError::CombinationalCycle { instances }) => {
                assert_eq!(instances.len(), 2);
                assert!(instances.contains(&"inc".to_string()));
                assert!(instances.contains(&"dec".to_string()));
            }
            other => panic!("expected CombinationalCycle, got {other:?}"),
        }
    }

    #[test]
    fn fsm_and_watchpoint_semantics_match_cycle_sim() {
        let mut nl = Netlist::new("f");
        nl.add_signal("ctl", 8);
        let table = || {
            FsmTable::new(
                vec![
                    FsmState {
                        name: "s0".into(),
                        outputs: vec![(0, 5)],
                        transitions: vec![FsmTransition { condition: None, target: 1 }],
                        terminal: false,
                    },
                    FsmState { name: "end".into(), terminal: true, ..Default::default() },
                ],
                0,
                1,
            )
            .unwrap()
        };
        let mut level = LevelSim::from_netlist(&nl).unwrap();
        level.add_control_unit("fsm0", &[], &[("ctl", 8)], table()).unwrap();
        let mut cycle = CycleSim::from_netlist(&nl).unwrap();
        cycle.add_control_unit("fsm0", &[], &[("ctl", 8)], table()).unwrap();
        let l = level.run(100).unwrap();
        let c = cycle.run(100).unwrap();
        assert_eq!(l.outcome, c.outcome);
        assert_eq!(l.cycles, c.cycles);
        assert_eq!(level.value("ctl"), cycle.value("ctl"));
    }

    #[test]
    fn sram_write_redirties_read_path() {
        // Writes at a fixed address must show up on dout once we is
        // deasserted — even though no *signal* feeding the read changed
        // while the memory contents did.
        let mut nl = Netlist::new("m");
        for (sig, w) in [
            ("clk", 1), ("en", 1), ("we", 1), ("addr", 8), ("din", 8), ("dout", 8),
        ] {
            nl.add_signal(sig, w);
        }
        nl.add_instance(Instance::new("clock0", "clock").with_conn("y", "clk"));
        nl.add_instance(
            Instance::new("m0", "sram")
                .with_param("width", 8).with_param("size", 4)
                .with_conn("clk", "clk").with_conn("en", "en").with_conn("we", "we")
                .with_conn("addr", "addr").with_conn("din", "din").with_conn("dout", "dout"),
        );
        // en/we/addr/din come from an FSM so we can change phases.
        let table = FsmTable::new(
            vec![
                FsmState {
                    name: "write".into(),
                    outputs: vec![(0, 1), (1, 1), (2, 2), (3, 0x55)],
                    transitions: vec![FsmTransition { condition: None, target: 1 }],
                    terminal: false,
                },
                FsmState {
                    name: "read".into(),
                    outputs: vec![(0, 1), (1, 0), (2, 2), (3, 0)],
                    transitions: vec![FsmTransition { condition: None, target: 2 }],
                    terminal: false,
                },
                FsmState { name: "end".into(), terminal: true, ..Default::default() },
            ],
            0,
            4,
        )
        .unwrap();
        let mut level = LevelSim::from_netlist(&nl).unwrap();
        level
            .add_control_unit(
                "ctl0",
                &[],
                &[("en", 1), ("we", 1), ("addr", 8), ("din", 8)],
                table,
            )
            .unwrap();
        level.step().unwrap(); // write commits 0x55 @ 2, FSM moves to "read"
        assert_eq!(level.mem("m0").unwrap().load(2), Some(0x55));
        level.step().unwrap(); // read phase settles with we = 0
        assert_eq!(level.value("dout").unwrap().as_u64(), 0x55);
    }
}
