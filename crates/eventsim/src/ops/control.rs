//! The behavioral control unit: an FSM table executed directly by the
//! kernel.
//!
//! In the paper's flow the FSM XML is translated by XSLT into behavioral
//! Java code compiled against Hades. Here the same table is interpreted by
//! [`ControlUnit`], which is observationally identical (the generated code
//! was a mechanical rendering of the table); the textual rendering of the
//! behavioral program still exists for metrics and inspection (see the
//! `xform` crate's `fsm→behavior` stylesheet).

use crate::component::{Component, Sensitivity, SignalId};
use crate::kernel::Context;
use crate::value::Value;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::rc::Rc;

/// One outgoing transition of a state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsmTransition {
    /// `Some((input_index, expected))` guards the transition on a condition
    /// input being true/false; `None` is an unconditional default.
    pub condition: Option<(usize, bool)>,
    /// Index of the target state.
    pub target: usize,
}

/// One state of the control FSM (Moore machine).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FsmState {
    /// State name, used in diagnostics and dot output.
    pub name: String,
    /// `(output_index, value)` pairs asserted while in this state; outputs
    /// not listed are driven to zero.
    pub outputs: Vec<(usize, i64)>,
    /// Transitions evaluated in order on each rising clock edge; the first
    /// whose condition holds is taken.
    pub transitions: Vec<FsmTransition>,
    /// Whether reaching this state completes the computation.
    pub terminal: bool,
}

/// A validated control-FSM table: states, condition inputs, and control
/// outputs, all referenced by index.
///
/// ```
/// use eventsim::ops::{FsmTable, FsmState, FsmTransition};
/// let table = FsmTable::new(
///     vec![
///         FsmState {
///             name: "run".into(),
///             outputs: vec![(0, 1)],
///             transitions: vec![FsmTransition { condition: None, target: 1 }],
///             terminal: false,
///         },
///         FsmState { name: "done".into(), terminal: true, ..Default::default() },
///     ],
///     1, // condition inputs
///     1, // control outputs
/// ).expect("well-formed table");
/// assert_eq!(table.states().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsmTable {
    states: Vec<FsmState>,
    condition_count: usize,
    output_count: usize,
}

/// Error returned by [`FsmTable::new`] for ill-formed tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateFsmError(String);

impl fmt::Display for ValidateFsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fsm table: {}", self.0)
    }
}

impl Error for ValidateFsmError {}

impl FsmTable {
    /// Validates and wraps a state table. State 0 is the initial state.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateFsmError`] when the table is empty, a transition
    /// or output index is out of range, a non-terminal state has no
    /// transitions, or an unconditional transition is followed by further
    /// (unreachable) transitions.
    pub fn new(
        states: Vec<FsmState>,
        condition_count: usize,
        output_count: usize,
    ) -> Result<Self, ValidateFsmError> {
        if states.is_empty() {
            return Err(ValidateFsmError("no states".into()));
        }
        for (i, state) in states.iter().enumerate() {
            for (out, _) in &state.outputs {
                if *out >= output_count {
                    return Err(ValidateFsmError(format!(
                        "state '{}' drives output {} but only {} outputs exist",
                        state.name, out, output_count
                    )));
                }
            }
            if !state.terminal && state.transitions.is_empty() {
                return Err(ValidateFsmError(format!(
                    "non-terminal state '{}' has no transitions",
                    state.name
                )));
            }
            for (t, transition) in state.transitions.iter().enumerate() {
                if transition.target >= states.len() {
                    return Err(ValidateFsmError(format!(
                        "state '{}' transition to missing state {}",
                        state.name, transition.target
                    )));
                }
                match transition.condition {
                    Some((cond, _)) if cond >= condition_count => {
                        return Err(ValidateFsmError(format!(
                            "state '{}' tests condition {} but only {} conditions exist",
                            state.name, cond, condition_count
                        )));
                    }
                    None if t + 1 != state.transitions.len() => {
                        return Err(ValidateFsmError(format!(
                            "state '{}' has transitions after its unconditional default",
                            state.name
                        )));
                    }
                    _ => {}
                }
            }
            let _ = i;
        }
        Ok(FsmTable {
            states,
            condition_count,
            output_count,
        })
    }

    /// The state list (state 0 is initial).
    pub fn states(&self) -> &[FsmState] {
        &self.states
    }

    /// Number of condition inputs the table references.
    pub fn condition_count(&self) -> usize {
        self.condition_count
    }

    /// Number of control outputs the table drives.
    pub fn output_count(&self) -> usize {
        self.output_count
    }
}

/// Execution coverage accumulated by a [`ControlUnit`] over one run.
///
/// `state_visits[i]` counts entries into state `i` (the initial state is
/// counted once at init); `transitions` counts each `(from, to)` edge
/// actually taken on a clock edge, including explicit self-loops. Both use
/// table indices, so state 0 is always the initial state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FsmCoverage {
    /// Per-state entry counts, indexed like [`FsmTable::states`].
    pub state_visits: Vec<u64>,
    /// Taken-transition counts keyed by `(from_state, to_state)`.
    pub transitions: BTreeMap<(usize, usize), u64>,
}

impl FsmCoverage {
    /// Number of distinct states entered at least once.
    pub fn states_visited(&self) -> usize {
        self.state_visits.iter().filter(|&&n| n > 0).count()
    }

    /// Number of distinct `(from, to)` edges taken at least once.
    pub fn transitions_taken(&self) -> usize {
        self.transitions.len()
    }
}

/// Shared handle giving the caller access to a [`ControlUnit`]'s coverage
/// after the simulator has consumed the component (same pattern as probe
/// handles).
#[derive(Clone, Default)]
pub struct FsmCoverageHandle(Rc<RefCell<FsmCoverage>>);

impl FsmCoverageHandle {
    /// Creates a fresh, empty handle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies out the coverage accumulated so far.
    pub fn snapshot(&self) -> FsmCoverage {
        self.0.borrow().clone()
    }
}

/// The behavioral component executing an [`FsmTable`].
///
/// Moore semantics: the outputs of the current state are driven
/// continuously; on each rising clock edge the first transition whose
/// condition holds (conditions are sampled pre-edge) selects the next
/// state. Entering a terminal state asserts `done` handling and, by
/// default, stops the run with reason `"<name>: done"`.
pub struct ControlUnit {
    name: String,
    clk: SignalId,
    conditions: Vec<SignalId>,
    outputs: Vec<SignalId>,
    output_widths: Vec<u32>,
    table: FsmTable,
    state: usize,
    stop_when_done: bool,
    cycles: u64,
    /// Last value driven per output, so state changes only schedule
    /// updates for outputs that actually change (control vectors are wide
    /// but sparse).
    driven: Vec<Option<i64>>,
    coverage: Option<FsmCoverageHandle>,
}

impl ControlUnit {
    /// Creates a control unit.
    ///
    /// `conditions[i]` carries condition index `i` of the table;
    /// `outputs[i]` (with width `output_widths[i]`) carries output index
    /// `i`.
    ///
    /// # Panics
    ///
    /// Panics when the signal lists disagree with the table's declared
    /// condition/output counts.
    pub fn new(
        name: impl Into<String>,
        clk: SignalId,
        conditions: Vec<SignalId>,
        outputs: Vec<SignalId>,
        output_widths: Vec<u32>,
        table: FsmTable,
    ) -> Self {
        assert_eq!(
            conditions.len(),
            table.condition_count(),
            "condition signal count mismatch"
        );
        assert_eq!(
            outputs.len(),
            table.output_count(),
            "output signal count mismatch"
        );
        assert_eq!(
            outputs.len(),
            output_widths.len(),
            "output width count mismatch"
        );
        let driven = vec![None; outputs.len()];
        ControlUnit {
            name: name.into(),
            clk,
            conditions,
            outputs,
            output_widths,
            table,
            state: 0,
            stop_when_done: true,
            cycles: 0,
            driven,
            coverage: None,
        }
    }

    /// Builder-style control over whether entering a terminal state stops
    /// the run (on by default).
    pub fn with_stop_when_done(mut self, stop: bool) -> Self {
        self.stop_when_done = stop;
        self
    }

    /// Attaches a coverage handle; state entries and taken transitions are
    /// recorded into it as the FSM executes.
    pub fn with_coverage(mut self, handle: FsmCoverageHandle) -> Self {
        self.coverage = Some(handle);
        self
    }

    fn record_visit(&self, state: usize) {
        if let Some(handle) = &self.coverage {
            let mut cov = handle.0.borrow_mut();
            if cov.state_visits.len() < self.table.states().len() {
                cov.state_visits.resize(self.table.states().len(), 0);
            }
            cov.state_visits[state] += 1;
        }
    }

    fn record_transition(&self, from: usize, to: usize) {
        if let Some(handle) = &self.coverage {
            let mut cov = handle.0.borrow_mut();
            *cov.transitions.entry((from, to)).or_insert(0) += 1;
        }
    }

    /// Index of the current state.
    pub fn state(&self) -> usize {
        self.state
    }

    /// Number of rising clock edges observed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    fn drive_outputs(&mut self, ctx: &mut Context<'_>) {
        let state = &self.table.states()[self.state];
        for (i, &signal) in self.outputs.iter().enumerate() {
            let value = state
                .outputs
                .iter()
                .find(|(out, _)| *out == i)
                .map(|(_, v)| *v)
                .unwrap_or(0);
            if self.driven[i] != Some(value) {
                self.driven[i] = Some(value);
                ctx.set(signal, Value::known(self.output_widths[i], value));
            }
        }
    }
}

impl Component for ControlUnit {
    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> Vec<Sensitivity> {
        // Edge-triggered on the clock only; conditions are sampled.
        vec![Sensitivity::rising(self.clk)]
    }

    fn init(&mut self, ctx: &mut Context<'_>) {
        self.state = 0;
        self.record_visit(0);
        self.drive_outputs(ctx);
        if self.table.states()[0].terminal && self.stop_when_done {
            ctx.stop(format!("{}: done", self.name));
        }
    }

    fn react(&mut self, ctx: &mut Context<'_>) {
        // Every invocation is a rising clock edge.
        self.cycles += 1;
        let current = &self.table.states()[self.state];
        if current.terminal {
            return;
        }
        let mut next = None;
        for transition in &current.transitions {
            match transition.condition {
                None => {
                    next = Some(transition.target);
                    break;
                }
                Some((index, expected)) => {
                    let value = ctx.get(self.conditions[index]);
                    if value.is_x() {
                        ctx.fail(format!(
                            "{}: state '{}' tests condition {} which is X",
                            self.name, current.name, index
                        ));
                        return;
                    }
                    if value.is_true() == expected {
                        next = Some(transition.target);
                        break;
                    }
                }
            }
        }
        let Some(next) = next else {
            // No transition fired: hold state (explicit self-loops are the
            // normal encoding, but a fully guarded state may legally hold).
            return;
        };
        self.record_transition(self.state, next);
        self.record_visit(next);
        if next != self.state {
            self.state = next;
            self.drive_outputs(ctx);
        }
        if self.table.states()[self.state].terminal && self.stop_when_done {
            ctx.stop(format!("{}: done", self.name));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{RunOutcome, SimTime, Simulator};
    use crate::ops::{Clock, ConstDriver};

    fn linear_table(n: usize) -> FsmTable {
        let mut states: Vec<FsmState> = (0..n)
            .map(|i| FsmState {
                name: format!("s{i}"),
                outputs: vec![(0, i as i64)],
                transitions: vec![FsmTransition {
                    condition: None,
                    target: i + 1,
                }],
                terminal: false,
            })
            .collect();
        states.push(FsmState {
            name: "done".into(),
            outputs: vec![],
            transitions: vec![],
            terminal: true,
        });
        FsmTable::new(states, 0, 1).unwrap()
    }

    #[test]
    fn validation_rejects_bad_tables() {
        assert!(FsmTable::new(vec![], 0, 0).is_err());
        // Dangling target.
        let err = FsmTable::new(
            vec![FsmState {
                name: "s0".into(),
                outputs: vec![],
                transitions: vec![FsmTransition {
                    condition: None,
                    target: 5,
                }],
                terminal: false,
            }],
            0,
            0,
        )
        .unwrap_err();
        assert!(err.to_string().contains("missing state"), "{err}");
        // Output out of range.
        assert!(FsmTable::new(
            vec![FsmState {
                name: "s0".into(),
                outputs: vec![(3, 1)],
                transitions: vec![],
                terminal: true,
            }],
            0,
            1,
        )
        .is_err());
        // Condition out of range.
        assert!(FsmTable::new(
            vec![FsmState {
                name: "s0".into(),
                outputs: vec![],
                transitions: vec![FsmTransition {
                    condition: Some((0, true)),
                    target: 0,
                }],
                terminal: false,
            }],
            0,
            0,
        )
        .is_err());
        // Dead transition after default.
        assert!(FsmTable::new(
            vec![FsmState {
                name: "s0".into(),
                outputs: vec![],
                transitions: vec![
                    FsmTransition { condition: None, target: 0 },
                    FsmTransition { condition: None, target: 0 },
                ],
                terminal: false,
            }],
            0,
            0,
        )
        .is_err());
        // Non-terminal dead end.
        assert!(FsmTable::new(
            vec![FsmState {
                name: "s0".into(),
                outputs: vec![],
                transitions: vec![],
                terminal: false,
            }],
            0,
            0,
        )
        .is_err());
    }

    #[test]
    fn walks_linear_sequence_and_stops_when_done() {
        let mut sim = Simulator::new();
        let clk = sim.add_signal("clk", 1);
        let out = sim.add_signal("ctl", 8);
        sim.add_component(Clock::new("clk0", clk, 10));
        sim.add_component(ControlUnit::new(
            "fsm0",
            clk,
            vec![],
            vec![out],
            vec![8],
            linear_table(3),
        ));
        let summary = sim.run(SimTime(1000)).unwrap();
        match summary.outcome {
            RunOutcome::Stopped(reason) => assert!(reason.contains("fsm0"), "{reason}"),
            other => panic!("expected stop, got {other:?}"),
        }
        // Three transitions, edges at t=5,15,25.
        assert_eq!(summary.end_time, SimTime(25));
    }

    #[test]
    fn moore_outputs_track_state() {
        let mut sim = Simulator::new();
        let clk = sim.add_signal("clk", 1);
        let out = sim.add_signal("ctl", 8);
        sim.trace_signal(out);
        sim.add_component(Clock::new("clk0", clk, 10));
        sim.add_component(
            ControlUnit::new("fsm0", clk, vec![], vec![out], vec![8], linear_table(3))
                .with_stop_when_done(false),
        );
        sim.run(SimTime(100)).unwrap();
        let seq: Vec<u64> = sim.changes().iter().map(|c| c.value.as_u64()).collect();
        assert_eq!(seq, [0, 1, 2, 0]); // s0,s1,s2 then done state drives 0
    }

    #[test]
    fn conditional_branch_follows_condition() {
        // s0 --cond--> s1(out=7) ; s0 --!cond--> s2(out=9)
        let table = FsmTable::new(
            vec![
                FsmState {
                    name: "s0".into(),
                    outputs: vec![],
                    transitions: vec![
                        FsmTransition {
                            condition: Some((0, true)),
                            target: 1,
                        },
                        FsmTransition {
                            condition: None,
                            target: 2,
                        },
                    ],
                    terminal: false,
                },
                FsmState {
                    name: "s1".into(),
                    outputs: vec![(0, 7)],
                    transitions: vec![],
                    terminal: true,
                },
                FsmState {
                    name: "s2".into(),
                    outputs: vec![(0, 9)],
                    transitions: vec![],
                    terminal: true,
                },
            ],
            1,
            1,
        )
        .unwrap();

        for (cond, expected) in [(true, 7), (false, 9)] {
            let mut sim = Simulator::new();
            let clk = sim.add_signal("clk", 1);
            let c = sim.add_signal("cond", 1);
            let out = sim.add_signal("out", 8);
            sim.add_component(Clock::new("clk0", clk, 10));
            sim.add_component(ConstDriver::new("cc", c, Value::bit(cond)));
            sim.add_component(ControlUnit::new(
                "fsm0",
                clk,
                vec![c],
                vec![out],
                vec![8],
                table.clone(),
            ));
            sim.run(SimTime(100)).unwrap();
            assert_eq!(sim.value(out).as_u64(), expected, "cond={cond}");
        }
    }

    #[test]
    fn x_condition_fails_run() {
        let table = FsmTable::new(
            vec![
                FsmState {
                    name: "s0".into(),
                    outputs: vec![],
                    transitions: vec![FsmTransition {
                        condition: Some((0, true)),
                        target: 1,
                    }],
                    terminal: false,
                },
                FsmState {
                    name: "s1".into(),
                    outputs: vec![],
                    transitions: vec![],
                    terminal: true,
                },
            ],
            1,
            0,
        )
        .unwrap();
        let mut sim = Simulator::new();
        let clk = sim.add_signal("clk", 1);
        let c = sim.add_signal("cond", 1); // never driven
        sim.add_component(Clock::new("clk0", clk, 10));
        sim.add_component(ControlUnit::new("fsm0", clk, vec![c], vec![], vec![], table));
        let summary = sim.run(SimTime(100)).unwrap();
        assert!(matches!(summary.outcome, RunOutcome::Failed(ref m) if m.contains("X")));
    }

    #[test]
    fn coverage_records_visits_and_transitions() {
        let handle = FsmCoverageHandle::new();
        let mut sim = Simulator::new();
        let clk = sim.add_signal("clk", 1);
        let out = sim.add_signal("ctl", 8);
        sim.add_component(Clock::new("clk0", clk, 10));
        sim.add_component(
            ControlUnit::new("fsm0", clk, vec![], vec![out], vec![8], linear_table(3))
                .with_coverage(handle.clone()),
        );
        sim.run(SimTime(1000)).unwrap();
        let cov = handle.snapshot();
        // s0,s1,s2,done all entered exactly once.
        assert_eq!(cov.state_visits, vec![1, 1, 1, 1]);
        assert_eq!(cov.states_visited(), 4);
        assert_eq!(cov.transitions_taken(), 3);
        assert_eq!(cov.transitions.get(&(0, 1)), Some(&1));
        assert_eq!(cov.transitions.get(&(2, 3)), Some(&1));
    }

    #[test]
    fn cycle_counter_counts_edges() {
        let mut sim = Simulator::new();
        let clk = sim.add_signal("clk", 1);
        let out = sim.add_signal("ctl", 8);
        sim.add_component(Clock::new("clk0", clk, 10));
        sim.add_component(
            ControlUnit::new("fsm0", clk, vec![], vec![out], vec![8], linear_table(2))
                .with_stop_when_done(false),
        );
        sim.run(SimTime(200)).unwrap();
        // ControlUnit is consumed by the simulator; cycles are asserted via
        // the summary in flow-level tests. Here we only check it ran.
        assert_eq!(sim.value(out).as_u64(), 0);
    }
}
