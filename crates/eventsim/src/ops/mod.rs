//! The operator library: the simulation models instantiated for datapath
//! components, plus clock/reset generators and the behavioral control unit.
//!
//! This is the analogue of the paper's "Library of Operators (JAVA)" box in
//! Figure 1.

mod clock;
mod comb;
mod control;
mod register;

pub use clock::{Clock, ResetGen};
pub use comb::{eval_binop, eval_unop, BinOp, ConstDriver, Mux, OpKind, UnOp};
pub use control::{
    ControlUnit, FsmCoverage, FsmCoverageHandle, FsmState, FsmTable, FsmTransition,
    ValidateFsmError,
};
pub use register::{Counter, Register};
