//! Sequential elements: registers and counters.

use crate::component::{Component, Sensitivity, SignalId};
use crate::kernel::Context;
use crate::value::Value;

/// An edge-triggered register with optional enable and synchronous reset.
///
/// On each rising edge of `clk`:
///
/// * if `rst` is connected and true, `q` becomes zero,
/// * else if `en` is unconnected or true, `q` latches `d`,
/// * otherwise `q` holds.
///
/// The new `q` is published in the next delta cycle, giving non-blocking
/// assignment semantics: every register clocked by the same edge observes
/// the pre-edge values of its neighbours.
pub struct Register {
    name: String,
    clk: SignalId,
    d: SignalId,
    q: SignalId,
    en: Option<SignalId>,
    rst: Option<SignalId>,
    width: u32,
}

impl Register {
    /// Creates a register without enable or reset.
    pub fn new(
        name: impl Into<String>,
        clk: SignalId,
        d: SignalId,
        q: SignalId,
        width: u32,
    ) -> Self {
        Register {
            name: name.into(),
            clk,
            d,
            q,
            en: None,
            rst: None,
            width,
        }
    }

    /// Builder-style clock-enable input.
    pub fn with_enable(mut self, en: SignalId) -> Self {
        self.en = Some(en);
        self
    }

    /// Builder-style synchronous reset input.
    pub fn with_reset(mut self, rst: SignalId) -> Self {
        self.rst = Some(rst);
        self
    }
}

impl Component for Register {
    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> Vec<Sensitivity> {
        // Rising-edge sensitivity on the clock only: data changes must
        // not re-evaluate the register, and the falling edge is free.
        vec![Sensitivity::rising(self.clk)]
    }

    fn react(&mut self, ctx: &mut Context<'_>) {
        // Every invocation is a rising clock edge.
        if let Some(rst) = self.rst {
            if ctx.get(rst).is_true() {
                ctx.set(self.q, Value::known(self.width, 0));
                return;
            }
        }
        if let Some(en) = self.en {
            if !ctx.get(en).is_true() {
                return;
            }
        }
        let d = ctx.get(self.d).resize(self.width);
        ctx.set(self.q, d);
    }

    fn eval_gate(&self) -> Option<SignalId> {
        // Without a reset, a disabled register does nothing on the clock
        // edge — the kernel can skip the dispatch. A reset input must
        // always be sampled, so resettable registers never gate.
        match self.rst {
            None => self.en,
            Some(_) => None,
        }
    }
}

/// A rising-edge event counter, useful in test benches and examples.
///
/// `q` starts at zero and increments on every rising edge of `clk`,
/// wrapping at the signal width.
pub struct Counter {
    name: String,
    clk: SignalId,
    q: SignalId,
    width: u32,
    count: i64,
}

impl Counter {
    /// Creates an 8-bit counter driving `q`; widen with
    /// [`with_width`](Self::with_width).
    pub fn new(name: impl Into<String>, clk: SignalId, q: SignalId) -> Self {
        Counter {
            name: name.into(),
            clk,
            q,
            width: 8,
            count: 0,
        }
    }

    /// Builder-style output width (must match the `q` signal width).
    pub fn with_width(mut self, width: u32) -> Self {
        self.width = width;
        self
    }
}

impl Component for Counter {
    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> Vec<Sensitivity> {
        vec![Sensitivity::rising(self.clk)]
    }

    fn init(&mut self, ctx: &mut Context<'_>) {
        // Drive zero so the output is 0 (not X) before the first edge.
        ctx.set(self.q, Value::known(self.width, 0));
    }

    fn react(&mut self, ctx: &mut Context<'_>) {
        self.count += 1;
        ctx.set(self.q, Value::known(self.width, self.count));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{SimTime, Simulator};
    use crate::ops::{Clock, ConstDriver};

    fn clocked_fixture() -> (Simulator, SignalId, SignalId, SignalId) {
        let mut sim = Simulator::new();
        let clk = sim.add_signal("clk", 1);
        let d = sim.add_signal("d", 8);
        let q = sim.add_signal("q", 8);
        sim.add_component(Clock::new("clk0", clk, 10));
        (sim, clk, d, q)
    }

    #[test]
    fn register_latches_on_rising_edge() {
        let (mut sim, clk, d, q) = clocked_fixture();
        sim.add_component(ConstDriver::new("cd", d, Value::known(8, 9)));
        sim.add_component(Register::new("r0", clk, d, q, 8));
        sim.run(SimTime(4)).unwrap();
        assert!(sim.value(q).is_x(), "no edge yet");
        sim.run(SimTime(6)).unwrap();
        assert_eq!(sim.value(q).as_u64(), 9);
    }

    #[test]
    fn register_enable_gates_latching() {
        let (mut sim, clk, d, q) = clocked_fixture();
        let en = sim.add_signal("en", 1);
        sim.add_component(ConstDriver::new("cd", d, Value::known(8, 5)));
        sim.add_component(ConstDriver::new("ce", en, Value::bit(false)));
        sim.add_component(Register::new("r0", clk, d, q, 8).with_enable(en));
        sim.run(SimTime(50)).unwrap();
        assert!(sim.value(q).is_x(), "enable low: q never latches");
    }

    #[test]
    fn register_reset_clears() {
        let (mut sim, clk, d, q) = clocked_fixture();
        let rst = sim.add_signal("rst", 1);
        sim.add_component(ConstDriver::new("cd", d, Value::known(8, 5)));
        sim.add_component(ConstDriver::new("cr", rst, Value::bit(true)));
        sim.add_component(Register::new("r0", clk, d, q, 8).with_reset(rst));
        sim.run(SimTime(12)).unwrap();
        assert_eq!(sim.value(q).as_u64(), 0);
    }

    #[test]
    fn register_resizes_d_to_width() {
        let (mut sim, clk, _d, q) = clocked_fixture();
        let wide = sim.add_signal("wide", 16);
        sim.add_component(ConstDriver::new("cw", wide, Value::known(16, 0x1FF)));
        sim.add_component(Register::new("r0", clk, wide, q, 8));
        sim.run(SimTime(12)).unwrap();
        assert_eq!(sim.value(q).as_u64(), 0xFF);
    }

    #[test]
    fn counter_counts_edges() {
        let mut sim = Simulator::new();
        let clk = sim.add_signal("clk", 1);
        let q = sim.add_signal("q", 8);
        sim.add_component(Clock::new("clk0", clk, 10));
        sim.add_component(Counter::new("cnt", clk, q));
        sim.run(SimTime(95)).unwrap();
        assert_eq!(sim.value(q).as_u64(), 10); // edges at 5, 15, …, 95
    }

    #[test]
    fn two_registers_swap_without_race() {
        // Classic NBA test: a <= b; b <= a must swap, not duplicate.
        let mut sim = Simulator::new();
        let clk = sim.add_signal("clk", 1);
        let a = sim.add_signal("a", 8);
        let b = sim.add_signal("b", 8);
        sim.add_component(Clock::new("clk0", clk, 10));
        // Preload via muxless init: drive initial values with one-shot
        // drivers, then swap forever. The drivers stop mattering once the
        // registers drive (last write in a delta wins is avoided because
        // drivers write once at t=0 and registers first write at t=5).
        sim.add_component(ConstDriver::new("ia", a, Value::known(8, 1)));
        sim.add_component(ConstDriver::new("ib", b, Value::known(8, 2)));
        sim.add_component(Register::new("ra", clk, b, a, 8));
        sim.add_component(Register::new("rb", clk, a, b, 8));
        sim.run(SimTime(6)).unwrap(); // one edge at t=5
        assert_eq!(sim.value(a).as_u64(), 2);
        assert_eq!(sim.value(b).as_u64(), 1);
        sim.run(SimTime(16)).unwrap(); // second edge at t=15
        assert_eq!(sim.value(a).as_u64(), 1);
        assert_eq!(sim.value(b).as_u64(), 2);
    }
}
