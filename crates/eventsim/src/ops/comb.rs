//! Combinational operators: binary/unary functional units, multiplexers,
//! and constant drivers.

use crate::component::{Component, Sensitivity, SignalId};
use crate::kernel::Context;
use crate::value::Value;
use std::fmt;
use std::str::FromStr;

/// The kind of a combinational functional unit.
///
/// Kind names (`add`, `mul`, `lt`, …) are the vocabulary shared with the
/// datapath XML dialect and the `.hds` netlist format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    /// Arithmetic shift right (Java `>>`).
    Shr,
    /// Logical shift right (Java `>>>`).
    Ushr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// Bitwise complement (unary).
    Not,
    /// Arithmetic negation (unary).
    Neg,
}

impl OpKind {
    /// Whether the operator takes a single operand.
    pub fn is_unary(&self) -> bool {
        matches!(self, OpKind::Not | OpKind::Neg)
    }

    /// Whether the operator produces a 1-bit comparison result.
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            OpKind::Eq | OpKind::Ne | OpKind::Lt | OpKind::Le | OpKind::Gt | OpKind::Ge
        )
    }

    /// The canonical lower-case name used in interchange formats.
    pub fn name(&self) -> &'static str {
        match self {
            OpKind::Add => "add",
            OpKind::Sub => "sub",
            OpKind::Mul => "mul",
            OpKind::Div => "div",
            OpKind::Rem => "rem",
            OpKind::And => "and",
            OpKind::Or => "or",
            OpKind::Xor => "xor",
            OpKind::Shl => "shl",
            OpKind::Shr => "shr",
            OpKind::Ushr => "ushr",
            OpKind::Eq => "eq",
            OpKind::Ne => "ne",
            OpKind::Lt => "lt",
            OpKind::Le => "le",
            OpKind::Gt => "gt",
            OpKind::Ge => "ge",
            OpKind::Not => "not",
            OpKind::Neg => "neg",
        }
    }

    /// Every operator kind, in a stable order.
    pub fn all() -> &'static [OpKind] {
        &[
            OpKind::Add,
            OpKind::Sub,
            OpKind::Mul,
            OpKind::Div,
            OpKind::Rem,
            OpKind::And,
            OpKind::Or,
            OpKind::Xor,
            OpKind::Shl,
            OpKind::Shr,
            OpKind::Ushr,
            OpKind::Eq,
            OpKind::Ne,
            OpKind::Lt,
            OpKind::Le,
            OpKind::Gt,
            OpKind::Ge,
            OpKind::Not,
            OpKind::Neg,
        ]
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown operator name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseOpKindError(String);

impl fmt::Display for ParseOpKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown operator kind '{}'", self.0)
    }
}

impl std::error::Error for ParseOpKindError {}

impl FromStr for OpKind {
    type Err = ParseOpKindError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        OpKind::all()
            .iter()
            .find(|k| k.name() == s)
            .copied()
            .ok_or_else(|| ParseOpKindError(s.to_string()))
    }
}

/// Evaluates a binary operator over sign-extended operands.
///
/// Returns the result masked to `width` bits (comparisons produce a 1-bit
/// value regardless of `width`).
///
/// # Errors
///
/// Returns a message for division or remainder by zero — the simulation
/// reports it as a design failure rather than crashing the kernel.
pub fn eval_binop(kind: OpKind, a: i64, b: i64, width: u32) -> Result<Value, String> {
    let raw = match kind {
        OpKind::Add => a.wrapping_add(b),
        OpKind::Sub => a.wrapping_sub(b),
        OpKind::Mul => a.wrapping_mul(b),
        OpKind::Div => {
            if b == 0 {
                return Err("division by zero".to_string());
            }
            a.wrapping_div(b)
        }
        OpKind::Rem => {
            if b == 0 {
                return Err("remainder by zero".to_string());
            }
            a.wrapping_rem(b)
        }
        OpKind::And => a & b,
        OpKind::Or => a | b,
        OpKind::Xor => a ^ b,
        OpKind::Shl => a.wrapping_shl((b & 63) as u32),
        OpKind::Shr => a.wrapping_shr((b & 63) as u32),
        OpKind::Ushr => {
            let ua = (a as u64) & crate::value::mask(width);
            (ua >> ((b & 63) as u32)) as i64
        }
        OpKind::Eq => (a == b) as i64,
        OpKind::Ne => (a != b) as i64,
        OpKind::Lt => (a < b) as i64,
        OpKind::Le => (a <= b) as i64,
        OpKind::Gt => (a > b) as i64,
        OpKind::Ge => (a >= b) as i64,
        OpKind::Not | OpKind::Neg => {
            return Err(format!("operator '{kind}' is unary"));
        }
    };
    let out_width = if kind.is_comparison() { 1 } else { width };
    Ok(Value::known(out_width, raw))
}

/// Evaluates a unary operator over a sign-extended operand.
///
/// # Errors
///
/// Returns a message when `kind` is not unary.
pub fn eval_unop(kind: OpKind, a: i64, width: u32) -> Result<Value, String> {
    match kind {
        OpKind::Not => Ok(Value::known(width, !a)),
        OpKind::Neg => Ok(Value::known(width, a.wrapping_neg())),
        _ => Err(format!("operator '{kind}' is binary")),
    }
}

/// A two-input functional unit.
///
/// Output is `X` while any input is `X`; division by zero fails the run.
/// `delay` ticks of propagation delay may be configured (0 = settle within
/// the current instant's delta cycles).
pub struct BinOp {
    name: String,
    kind: OpKind,
    a: SignalId,
    b: SignalId,
    y: SignalId,
    width: u32,
    delay: u64,
}

impl BinOp {
    /// Creates a zero-delay binary functional unit writing a `width`-bit
    /// result to `y` (1-bit for comparisons).
    ///
    /// # Panics
    ///
    /// Panics if `kind` is unary.
    pub fn new(
        name: impl Into<String>,
        kind: OpKind,
        a: SignalId,
        b: SignalId,
        y: SignalId,
        width: u32,
    ) -> Self {
        assert!(!kind.is_unary(), "use UnOp for unary operator {kind}");
        BinOp {
            name: name.into(),
            kind,
            a,
            b,
            y,
            width,
            delay: 0,
        }
    }

    /// Builder-style propagation delay in ticks.
    pub fn with_delay(mut self, delay: u64) -> Self {
        self.delay = delay;
        self
    }
}

impl Component for BinOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> Vec<Sensitivity> {
        vec![Sensitivity::any(self.a), Sensitivity::any(self.b)]
    }

    fn react(&mut self, ctx: &mut Context<'_>) {
        let out_width = if self.kind.is_comparison() { 1 } else { self.width };
        let (a, b) = (ctx.get(self.a), ctx.get(self.b));
        let out = match (a.try_i64(), b.try_i64()) {
            (Some(a), Some(b)) => match eval_binop(self.kind, a, b, self.width) {
                Ok(v) => v,
                Err(message) => {
                    ctx.fail(format!("{}: {}", self.name, message));
                    return;
                }
            },
            _ => Value::x(out_width),
        };
        ctx.set_after(self.y, out, self.delay);
    }
}

/// A one-input functional unit (`not`, `neg`).
pub struct UnOp {
    name: String,
    kind: OpKind,
    a: SignalId,
    y: SignalId,
    width: u32,
    delay: u64,
}

impl UnOp {
    /// Creates a zero-delay unary functional unit.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is binary.
    pub fn new(
        name: impl Into<String>,
        kind: OpKind,
        a: SignalId,
        y: SignalId,
        width: u32,
    ) -> Self {
        assert!(kind.is_unary(), "use BinOp for binary operator {kind}");
        UnOp {
            name: name.into(),
            kind,
            a,
            y,
            width,
            delay: 0,
        }
    }

    /// Builder-style propagation delay in ticks.
    pub fn with_delay(mut self, delay: u64) -> Self {
        self.delay = delay;
        self
    }
}

impl Component for UnOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> Vec<Sensitivity> {
        vec![Sensitivity::any(self.a)]
    }

    fn react(&mut self, ctx: &mut Context<'_>) {
        let out = match ctx.get(self.a).try_i64() {
            Some(a) => match eval_unop(self.kind, a, self.width) {
                Ok(v) => v,
                Err(message) => {
                    ctx.fail(format!("{}: {}", self.name, message));
                    return;
                }
            },
            None => Value::x(self.width),
        };
        ctx.set_after(self.y, out, self.delay);
    }
}

/// An N-way multiplexer steered by a select signal.
///
/// Select values beyond the input count, and `X` selects, yield `X` — the
/// mux does not fail the run because an idle datapath routinely leaves
/// selects undriven.
pub struct Mux {
    name: String,
    sel: SignalId,
    inputs: Vec<SignalId>,
    y: SignalId,
    width: u32,
}

impl Mux {
    /// Creates a multiplexer with the given data inputs.
    ///
    /// # Panics
    ///
    /// Panics when `inputs` is empty.
    pub fn new(
        name: impl Into<String>,
        sel: SignalId,
        inputs: Vec<SignalId>,
        y: SignalId,
        width: u32,
    ) -> Self {
        assert!(!inputs.is_empty(), "mux needs at least one input");
        Mux {
            name: name.into(),
            sel,
            inputs,
            y,
            width,
        }
    }
}

impl Component for Mux {
    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> Vec<Sensitivity> {
        let mut all = vec![Sensitivity::any(self.sel)];
        all.extend(self.inputs.iter().map(|&s| Sensitivity::any(s)));
        all
    }

    fn react(&mut self, ctx: &mut Context<'_>) {
        let out = match ctx.get(self.sel).try_u64() {
            Some(sel) => match self.inputs.get(sel as usize) {
                Some(&input) => ctx.get(input).resize(self.width),
                None => Value::x(self.width),
            },
            None => Value::x(self.width),
        };
        ctx.set(self.y, out);
    }
}

/// Drives a constant value once at simulation start.
pub struct ConstDriver {
    name: String,
    y: SignalId,
    value: Value,
}

impl ConstDriver {
    /// Creates a constant driver for `value`.
    pub fn new(name: impl Into<String>, y: SignalId, value: Value) -> Self {
        ConstDriver {
            name: name.into(),
            y,
            value,
        }
    }
}

impl Component for ConstDriver {
    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> Vec<Sensitivity> {
        Vec::new()
    }

    fn init(&mut self, ctx: &mut Context<'_>) {
        ctx.set(self.y, self.value);
    }

    fn react(&mut self, _ctx: &mut Context<'_>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{RunOutcome, SimTime, Simulator};

    fn run_binop(kind: OpKind, a: i64, b: i64, width: u32) -> Value {
        let mut sim = Simulator::new();
        let sa = sim.add_signal("a", width);
        let sb = sim.add_signal("b", width);
        let out_width = if kind.is_comparison() { 1 } else { width };
        let sy = sim.add_signal("y", out_width);
        sim.add_component(ConstDriver::new("ca", sa, Value::known(width, a)));
        sim.add_component(ConstDriver::new("cb", sb, Value::known(width, b)));
        sim.add_component(BinOp::new("op", kind, sa, sb, sy, width));
        sim.run(SimTime(10)).unwrap();
        sim.value(sy)
    }

    #[test]
    fn arithmetic_ops() {
        assert_eq!(run_binop(OpKind::Add, 5, 7, 16).as_i64(), 12);
        assert_eq!(run_binop(OpKind::Sub, 5, 7, 16).as_i64(), -2);
        assert_eq!(run_binop(OpKind::Mul, -3, 9, 16).as_i64(), -27);
        assert_eq!(run_binop(OpKind::Div, -20, 6, 16).as_i64(), -3);
        assert_eq!(run_binop(OpKind::Rem, -20, 6, 16).as_i64(), -2);
    }

    #[test]
    fn wrapping_at_width() {
        assert_eq!(run_binop(OpKind::Add, 0x7FFF, 1, 16).as_i64(), -0x8000);
        assert_eq!(run_binop(OpKind::Mul, 0x100, 0x100, 16).as_i64(), 0);
    }

    #[test]
    fn bitwise_and_shift_ops() {
        assert_eq!(run_binop(OpKind::And, 0b1100, 0b1010, 8).as_u64(), 0b1000);
        assert_eq!(run_binop(OpKind::Or, 0b1100, 0b1010, 8).as_u64(), 0b1110);
        assert_eq!(run_binop(OpKind::Xor, 0b1100, 0b1010, 8).as_u64(), 0b0110);
        assert_eq!(run_binop(OpKind::Shl, 1, 3, 8).as_u64(), 8);
        assert_eq!(run_binop(OpKind::Shr, -8, 2, 8).as_i64(), -2);
        assert_eq!(run_binop(OpKind::Ushr, -8, 1, 8).as_u64(), 0x7C);
    }

    #[test]
    fn comparison_ops_are_one_bit() {
        for (kind, expect) in [
            (OpKind::Eq, 0),
            (OpKind::Ne, 1),
            (OpKind::Lt, 1),
            (OpKind::Le, 1),
            (OpKind::Gt, 0),
            (OpKind::Ge, 0),
        ] {
            let v = run_binop(kind, -5, 3, 16);
            assert_eq!(v.width(), 1, "{kind}");
            assert_eq!(v.as_u64(), expect, "{kind}");
        }
    }

    #[test]
    fn division_by_zero_fails_run() {
        let mut sim = Simulator::new();
        let sa = sim.add_signal("a", 8);
        let sb = sim.add_signal("b", 8);
        let sy = sim.add_signal("y", 8);
        sim.add_component(ConstDriver::new("ca", sa, Value::known(8, 1)));
        sim.add_component(ConstDriver::new("cb", sb, Value::known(8, 0)));
        sim.add_component(BinOp::new("div0", OpKind::Div, sa, sb, sy, 8));
        let summary = sim.run(SimTime(10)).unwrap();
        match summary.outcome {
            RunOutcome::Failed(message) => {
                assert!(message.contains("div0") && message.contains("zero"), "{message}")
            }
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn x_inputs_propagate() {
        let mut sim = Simulator::new();
        let sa = sim.add_signal("a", 8);
        let sb = sim.add_signal("b", 8);
        let sy = sim.add_signal("y", 8);
        sim.add_component(ConstDriver::new("ca", sa, Value::known(8, 1)));
        // b never driven.
        sim.add_component(BinOp::new("add0", OpKind::Add, sa, sb, sy, 8));
        sim.run(SimTime(10)).unwrap();
        assert!(sim.value(sy).is_x());
    }

    #[test]
    fn unary_ops() {
        let mut sim = Simulator::new();
        let sa = sim.add_signal("a", 8);
        let sn = sim.add_signal("n", 8);
        let sg = sim.add_signal("g", 8);
        sim.add_component(ConstDriver::new("ca", sa, Value::known(8, 0b0101)));
        sim.add_component(UnOp::new("not0", OpKind::Not, sa, sn, 8));
        sim.add_component(UnOp::new("neg0", OpKind::Neg, sa, sg, 8));
        sim.run(SimTime(10)).unwrap();
        assert_eq!(sim.value(sn).as_u64(), 0b1111_1010);
        assert_eq!(sim.value(sg).as_i64(), -5);
    }

    #[test]
    fn mux_selects_and_handles_x() {
        let mut sim = Simulator::new();
        let sel = sim.add_signal("sel", 2);
        let i0 = sim.add_signal("i0", 8);
        let i1 = sim.add_signal("i1", 8);
        let y = sim.add_signal("y", 8);
        sim.add_component(ConstDriver::new("c0", i0, Value::known(8, 10)));
        sim.add_component(ConstDriver::new("c1", i1, Value::known(8, 20)));
        sim.add_component(Mux::new("m", sel, vec![i0, i1], y, 8));
        sim.add_component(ConstDriver::new("cs", sel, Value::known(2, 1)));
        sim.run(SimTime(10)).unwrap();
        assert_eq!(sim.value(y).as_u64(), 20);
    }

    #[test]
    fn mux_out_of_range_select_gives_x() {
        let mut sim = Simulator::new();
        let sel = sim.add_signal("sel", 2);
        let i0 = sim.add_signal("i0", 8);
        let y = sim.add_signal("y", 8);
        sim.add_component(ConstDriver::new("c0", i0, Value::known(8, 10)));
        sim.add_component(ConstDriver::new("cs", sel, Value::known(2, 3)));
        sim.add_component(Mux::new("m", sel, vec![i0], y, 8));
        sim.run(SimTime(10)).unwrap();
        assert!(sim.value(y).is_x());
    }

    #[test]
    fn opkind_parse_roundtrip() {
        for kind in OpKind::all() {
            assert_eq!(kind.name().parse::<OpKind>().unwrap(), *kind);
        }
        assert!("bogus".parse::<OpKind>().is_err());
    }

    #[test]
    fn delayed_binop() {
        let mut sim = Simulator::new();
        let sa = sim.add_signal("a", 8);
        let sb = sim.add_signal("b", 8);
        let sy = sim.add_signal("y", 8);
        sim.add_component(ConstDriver::new("ca", sa, Value::known(8, 2)));
        sim.add_component(ConstDriver::new("cb", sb, Value::known(8, 3)));
        sim.add_component(BinOp::new("add0", OpKind::Add, sa, sb, sy, 8).with_delay(5));
        let summary = sim.run(SimTime(100)).unwrap();
        assert_eq!(sim.value(sy).as_u64(), 5);
        assert_eq!(summary.end_time, SimTime(5));
    }
}
