//! Clock and reset generators.

use crate::component::{Component, Sensitivity, SignalId};
use crate::kernel::Context;
use crate::value::Value;

/// A free-running clock generator.
///
/// Starts low at time 0 and toggles every half period, so the first rising
/// edge is at `period / 2` ticks. The infrastructure's convention is a
/// period of 10 ticks.
pub struct Clock {
    name: String,
    out: SignalId,
    half_period: u64,
    level: bool,
}

impl Clock {
    /// Creates a clock with the given full period in ticks.
    ///
    /// # Panics
    ///
    /// Panics when `period` is less than 2 (each phase needs at least one
    /// tick).
    pub fn new(name: impl Into<String>, out: SignalId, period: u64) -> Self {
        assert!(period >= 2, "clock period must be at least 2 ticks");
        Clock {
            name: name.into(),
            out,
            half_period: period / 2,
            level: false,
        }
    }
}

impl Component for Clock {
    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> Vec<Sensitivity> {
        Vec::new()
    }

    fn init(&mut self, ctx: &mut Context<'_>) {
        ctx.set(self.out, Value::bit(false));
        ctx.wake_after(self.half_period);
    }

    fn react(&mut self, ctx: &mut Context<'_>) {
        self.level = !self.level;
        ctx.set(self.out, Value::bit(self.level));
        ctx.wake_after(self.half_period);
    }
}

/// A power-on reset generator: asserts high for `active_ticks`, then stays
/// low forever.
pub struct ResetGen {
    name: String,
    out: SignalId,
    active_ticks: u64,
    released: bool,
}

impl ResetGen {
    /// Creates a reset generator active for the given number of ticks.
    pub fn new(name: impl Into<String>, out: SignalId, active_ticks: u64) -> Self {
        ResetGen {
            name: name.into(),
            out,
            active_ticks,
            released: false,
        }
    }
}

impl Component for ResetGen {
    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> Vec<Sensitivity> {
        Vec::new()
    }

    fn init(&mut self, ctx: &mut Context<'_>) {
        ctx.set(self.out, Value::bit(true));
        ctx.wake_after(self.active_ticks.max(1));
    }

    fn react(&mut self, ctx: &mut Context<'_>) {
        if !self.released {
            self.released = true;
            ctx.set(self.out, Value::bit(false));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{SimTime, Simulator};

    #[test]
    fn clock_toggles_with_expected_phase() {
        let mut sim = Simulator::new();
        let clk = sim.add_signal("clk", 1);
        sim.trace_signal(clk);
        sim.add_component(Clock::new("clk0", clk, 10));
        sim.run(SimTime(25)).unwrap();
        let times: Vec<(u64, bool)> = sim
            .changes()
            .iter()
            .map(|c| (c.time.ticks(), c.value.is_true()))
            .collect();
        assert_eq!(times, [(0, false), (5, true), (10, false), (15, true), (20, false), (25, true)]);
    }

    #[test]
    fn reset_deasserts_after_window() {
        let mut sim = Simulator::new();
        let rst = sim.add_signal("rst", 1);
        sim.trace_signal(rst);
        sim.add_component(ResetGen::new("rst0", rst, 7));
        sim.run(SimTime(100)).unwrap();
        let times: Vec<(u64, bool)> = sim
            .changes()
            .iter()
            .map(|c| (c.time.ticks(), c.value.is_true()))
            .collect();
        assert_eq!(times, [(0, true), (7, false)]);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn degenerate_period_rejected() {
        let mut sim = Simulator::new();
        let clk = sim.add_signal("clk", 1);
        let _ = Clock::new("clk0", clk, 1);
    }
}
