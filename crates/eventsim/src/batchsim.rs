//! The bytecode-compiled batch engine: 64 stimulus lanes per walk.
//!
//! [`crate::levelsim::LevelSim`] already pays the levelization cost once
//! at build time, but it still *interprets* the schedule: every step
//! dispatches on the [`crate::simmodel::Comb`] enum per node and chases
//! `Value` boxes. This engine flattens that rank schedule one step
//! further, into a linear bytecode buffer ([`BOp`]) of dense operand
//! slots, and then amortizes each walk over **64 independent stimulus
//! vectors**:
//!
//! * **State is lane-struct-of-arrays.** Every value slot holds
//!   [`LANES`] sign-extended `i64` lanes (`values[slot * LANES + lane]`)
//!   plus one 64-bit known mask per slot; memories hold `size × LANES`
//!   words addr-major. One walk of the bytecode evaluates all 64 lanes.
//! * **The walk is dirty-driven, like the level engine.** A dirty
//!   bitset over op indices is drained in ascending (rank) order; an op
//!   whose output column actually changed marks its reader ops and the
//!   registers that sample it, so a quiescent region of the schedule
//!   costs nothing. Because dirtiness is tracked per *column* (any lane
//!   changing re-evaluates all 64), each lane's evaluation set is a
//!   superset of what the sequential level engine would evaluate for
//!   that lane alone — extra evaluations of unchanged inputs are
//!   observationally idempotent, so per-lane results are unaffected.
//! * **Bitwise ops vectorize across packed lanes; word ops loop the
//!   lane array.** Infallible ops (add/sub/mul/logic/shift/compare)
//!   evaluate all lanes unconditionally in straight-line loops the
//!   compiler can vectorize; fallible or data-dependent ops (div/rem,
//!   mux selection, SRAM reads) take a scalar per-lane path with known
//!   checks.
//! * **Per-lane bit-identity.** Each lane's observable results — signal
//!   values, memory images, cycle counts, failure messages, and
//!   termination outcomes — are bit-identical to running that lane's
//!   stimulus alone through the sequential level engine. Lanes that fail
//!   or finish drop out of the running mask and stop committing state;
//!   the surviving lanes walk on. See `DESIGN.md` ("Batch engine").
//!
//! Faults are per-lane: stuck-at clamps carry a 64-lane AND/OR row per
//! faulted slot, transient flips carry a lane mask, so a fault campaign
//! can pack 64 fault sites into one batch walk.

use crate::cyclesim::{CycleOutcome, CycleSimError, CycleSummary};
use crate::levelsim::LevelSim;
use crate::netlist::Netlist;
use crate::ops::{FsmTable, OpKind};
use crate::simmodel::Comb;
use crate::value::{mask, Value};
use std::collections::HashMap;

/// Stimulus lanes per schedule walk. Matches the machine word so known
/// masks, running masks, and fault lane-masks are single `u64`s.
pub const LANES: usize = 64;

/// One bytecode instruction. Operands are dense value-slot indices;
/// `shift = 64 - output width` canonicalizes raw results into the
/// sign-extended lane representation with one arithmetic shift pair
/// (`(raw << shift) >> shift`), which also maps comparison results
/// (width 1) onto the canonical `-1`/`0`.
#[derive(Debug, Clone, Copy)]
enum BOp {
    Bin {
        kind: OpKind,
        a: u32,
        b: u32,
        y: u32,
        shift: u32,
    },
    Un {
        kind: OpKind,
        a: u32,
        y: u32,
        shift: u32,
    },
    /// `n` input slots live in `BatchSim::mux_pool[lo..lo + n]`.
    Mux {
        sel: u32,
        sel_mask: u64,
        lo: u32,
        n: u32,
        y: u32,
        shift: u32,
    },
    SramRead {
        mem: u32,
        en: u32,
        we: u32,
        addr: u32,
        addr_mask: u64,
        y: u32,
    },
}

/// A register: sampled before the edge, committed after FSMs transition.
#[derive(Debug, Clone, Copy)]
struct BReg {
    d: u32,
    q: u32,
    /// `u32::MAX` = always enabled.
    en: u32,
    /// `u32::MAX` = no reset input.
    rst: u32,
    shift: u32,
}

/// An SRAM write port (the read port compiles into [`BOp::SramRead`]).
#[derive(Debug, Clone)]
struct BSram {
    name: String,
    mem: u32,
    en: u32,
    we: u32,
    addr: u32,
    addr_mask: u64,
    din: u32,
}

/// Lane-parallel memory contents: `data[addr * LANES + lane]` canonical,
/// `known[addr]` a lane mask (bit set = that lane's word is defined).
#[derive(Debug, Clone)]
struct BMem {
    shift: u32,
    size: usize,
    data: Vec<i64>,
    known: Vec<u64>,
}

#[derive(Debug, Clone)]
struct BWatch {
    name: String,
    sig: u32,
    value: i64,
}

/// A control unit, with state values pre-canonicalized per lane use.
#[derive(Debug, Clone)]
struct BFsm {
    name: String,
    table: FsmTable,
    conditions: Vec<u32>,
    outputs: Vec<u32>,
    out_shifts: Vec<u32>,
    /// `state_values[state][output]`, canonical.
    state_values: Vec<Vec<i64>>,
}

/// Per-lane stuck-at clamp row for one faulted slot.
#[derive(Debug, Clone)]
struct ClampRow {
    and: [u64; LANES],
    or: [u64; LANES],
}

/// A scheduled transient flip: XORed into `slot` (known lanes in
/// `lanes` only) at the start of the walk whose cycle matches.
#[derive(Debug, Clone, Copy)]
struct BFlip {
    cycle: u64,
    slot: u32,
    lanes: u64,
    xor: u64,
}

/// How one lane's run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaneOutcome {
    /// A control unit reached a terminal state.
    Done,
    /// The named watchpoint matched.
    Watchpoint(String),
    /// The lane was still running when the cycle budget ran out.
    CycleLimit,
    /// A design failure — the message the sequential engine would have
    /// raised as [`CycleSimError::Failed`].
    Failed(String),
}

/// One finished lane: its outcome and the cycles it ran (relative to
/// the `run_batch` call, with the sequential engine's conventions —
/// failures count the walk they failed in as not yet elapsed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneResult {
    /// Termination outcome.
    pub outcome: LaneOutcome,
    /// Cycles elapsed for this lane.
    pub cycles: u64,
}

/// Result of [`BatchSim::run_batch`]: one entry per lane, `None` for
/// lanes that were not active.
#[derive(Debug, Clone)]
pub struct BatchSummary {
    /// Per-lane results, indexed by lane.
    pub lanes: Vec<Option<LaneResult>>,
}

/// The batch engine. See the [module docs](self).
pub struct BatchSim {
    ops: Vec<BOp>,
    /// Instance name per bytecode op, for failure messages only.
    op_names: Vec<String>,
    mux_pool: Vec<u32>,
    widths: Vec<u32>,
    /// Canonical lane values, `slot * LANES + lane`.
    values: Vec<i64>,
    /// Known lane mask per slot.
    known: Vec<u64>,
    /// Post-construction snapshot per slot (lane-uniform), for
    /// [`reset_state`](Self::reset_state).
    initial_vals: Vec<i64>,
    initial_known: Vec<bool>,
    regs: Vec<BReg>,
    srams: Vec<BSram>,
    mems: Vec<BMem>,
    mem_names: HashMap<String, usize>,
    signal_index: HashMap<String, usize>,
    reset_signals: Vec<u32>,
    watches: Vec<BWatch>,
    fsms: Vec<BFsm>,
    /// Current state per FSM per lane, `fsm * LANES + lane`.
    fsm_state: Vec<u32>,
    /// Clamp row index per slot (`u32::MAX` = unfaulted); empty until
    /// the first stuck-at injection.
    clamp_of: Vec<u32>,
    clamp_rows: Vec<ClampRow>,
    flips: Vec<BFlip>,
    /// Comb readers per value slot: the op indices whose inputs include
    /// the slot. Mirrors the level engine's fanout CSR.
    readers: Vec<Vec<u32>>,
    /// Registers whose `d`/`en`/`rst` read each value slot.
    reg_readers: Vec<Vec<u32>>,
    /// Op producing each value slot (`u32::MAX` for sequential/constant
    /// slots). A transient flip re-dirties the producer so the settle
    /// recomputes it away, matching the sequential engines.
    producer_op: Vec<u32>,
    /// Read-port op per SRAM instance: a committed write dirties the
    /// read path even though no signal changed.
    sram_read_op: Vec<u32>,
    /// Dirty bitset over op indices.
    dirty: Vec<u64>,
    /// Dirty bitset over registers — only these are sampled on the edge
    /// (a register none of whose inputs changed would resample and
    /// commit the same value, so skipping it is unobservable).
    reg_dirty: Vec<u64>,
    /// Registers sampled this edge (drain order), reused across walks.
    edge_regs: Vec<u32>,
    /// Forces the next edge's FSM phase onto the per-lane drive path
    /// (set by transient flips, which must be reverted by a full
    /// change-detected redrive of every Moore output).
    force_fsm_drive: bool,
    /// Register sample scratch, `reg * LANES + lane`.
    reg_vals: Vec<i64>,
    /// Per-register lane masks: which lanes sampled (commit) and which
    /// of those sampled a known value.
    reg_commit: Vec<u64>,
    reg_known: Vec<u64>,
    /// Lanes participating in this run.
    active: u64,
    /// Active lanes that have not yet finished or failed.
    running: u64,
    /// Lanes whose value column was snapshotted at termination. Later
    /// walks keep recomputing every lane's comb slots (the vector loops
    /// are unconditional), so a finished lane's observable values are
    /// served from this freeze-frame — the state a sequential run would
    /// have stopped with. Registers, FSMs, and memories are commit-
    /// masked and need no copy.
    frozen_mask: u64,
    /// Frozen value column per lane, `slot * LANES + lane`; lazily
    /// allocated on the first freeze.
    frozen_vals: Vec<i64>,
    /// Frozen known bit per slot per lane, same lane-mask layout as
    /// `known`.
    frozen_known: Vec<u64>,
    outcomes: Vec<Option<LaneOutcome>>,
    lane_cycles: Vec<u64>,
    cycles: u64,
    comb_evals: u64,
}

/// Canonicalizes a raw result at `shift = 64 - width`.
#[inline(always)]
fn canon(raw: i64, shift: u32) -> i64 {
    (raw << shift) >> shift
}

/// Vectorized binary op over all lanes: compute unconditionally into
/// `out` (frozen or unknown lanes produce garbage that the known and
/// running masks make unobservable), canonicalized. The caller
/// change-detects against the old column before writing back.
#[inline(always)]
fn vec_bin(
    values: &[i64],
    a: usize,
    b: usize,
    shift: u32,
    out: &mut [i64; LANES],
    f: impl Fn(i64, i64) -> i64,
) {
    let va = &values[a * LANES..a * LANES + LANES];
    let vb = &values[b * LANES..b * LANES + LANES];
    for l in 0..LANES {
        out[l] = canon(f(va[l], vb[l]), shift);
    }
}

/// Vectorized unary op over all lanes.
#[inline(always)]
fn vec_un(values: &[i64], a: usize, shift: u32, out: &mut [i64; LANES], f: impl Fn(i64) -> i64) {
    let va = &values[a * LANES..a * LANES + LANES];
    for l in 0..LANES {
        out[l] = canon(f(va[l]), shift);
    }
}

/// Sets the first `n` bits of a dirty bitset.
fn fill_mask(words: &mut [u64], n: usize) {
    for w in words.iter_mut() {
        *w = !0;
    }
    let tail = n % 64;
    if tail != 0 {
        if let Some(last) = words.last_mut() {
            *last = (1u64 << tail) - 1;
        }
    }
}

impl BatchSim {
    /// Compiles a netlist: levelizes it through [`LevelSim`] (sharing
    /// its cycle detection and rank order), then flattens the schedule
    /// into bytecode and the model into lane-SoA state.
    ///
    /// # Errors
    ///
    /// Propagates [`CycleSimError::Build`] /
    /// [`CycleSimError::CombinationalCycle`] from levelization.
    pub fn from_netlist(netlist: &Netlist) -> Result<Self, CycleSimError> {
        let (model, order) = LevelSim::from_netlist(netlist)?.into_parts();
        let widths: Vec<u32> = model.values.iter().map(Value::width).collect();

        let mut ops = Vec::with_capacity(order.len());
        let mut op_names = Vec::with_capacity(order.len());
        let mut mux_pool: Vec<u32> = Vec::new();
        for &ci in &order {
            let comb = &model.combs[ci as usize];
            op_names.push(comb.name().to_string());
            ops.push(match comb {
                Comb::Bin {
                    kind,
                    a,
                    b,
                    y,
                    width,
                    ..
                } => {
                    let out_width = if kind.is_comparison() { 1 } else { *width };
                    BOp::Bin {
                        kind: *kind,
                        a: *a as u32,
                        b: *b as u32,
                        y: *y as u32,
                        shift: 64 - out_width,
                    }
                }
                Comb::Un { kind, a, y, width, .. } => BOp::Un {
                    kind: *kind,
                    a: *a as u32,
                    y: *y as u32,
                    shift: 64 - *width,
                },
                Comb::Mux {
                    sel,
                    inputs,
                    y,
                    width,
                    ..
                } => {
                    let lo = mux_pool.len() as u32;
                    mux_pool.extend(inputs.iter().map(|&i| i as u32));
                    BOp::Mux {
                        sel: *sel as u32,
                        sel_mask: mask(widths[*sel]),
                        lo,
                        n: inputs.len() as u32,
                        y: *y as u32,
                        shift: 64 - *width,
                    }
                }
                Comb::SramRead {
                    mem,
                    en,
                    we,
                    addr,
                    dout,
                    ..
                } => BOp::SramRead {
                    mem: *mem as u32,
                    en: *en as u32,
                    we: *we as u32,
                    addr: *addr as u32,
                    addr_mask: mask(widths[*addr]),
                    y: *dout as u32,
                },
            });
        }

        let initial_vals: Vec<i64> = model.values.iter().map(|v| v.try_i64().unwrap_or(0)).collect();
        let initial_known: Vec<bool> = model.values.iter().map(|v| !v.is_x()).collect();

        let regs: Vec<BReg> = model
            .regs
            .iter()
            .map(|r| BReg {
                d: r.d as u32,
                q: r.q as u32,
                en: r.en.map_or(u32::MAX, |s| s as u32),
                rst: r.rst.map_or(u32::MAX, |s| s as u32),
                shift: 64 - r.width,
            })
            .collect();
        let srams: Vec<BSram> = model
            .srams
            .iter()
            .map(|s| BSram {
                name: s.name.clone(),
                mem: s.mem as u32,
                en: s.en as u32,
                we: s.we as u32,
                addr: s.addr as u32,
                addr_mask: mask(widths[s.addr]),
                din: s.din as u32,
            })
            .collect();
        let mems: Vec<BMem> = model
            .mems
            .iter()
            .map(|m| BMem {
                shift: 64 - m.width(),
                size: m.size(),
                data: vec![0; m.size() * LANES],
                known: vec![0; m.size()],
            })
            .collect();
        let watches: Vec<BWatch> = model
            .watches
            .iter()
            .map(|w| BWatch {
                name: w.name.clone(),
                sig: w.sig as u32,
                value: w.value,
            })
            .collect();

        let slots = widths.len();

        // Reader tables, mirroring the level engine's fanout CSRs: which
        // ops re-evaluate and which registers re-sample when a slot's
        // column changes.
        let mut readers: Vec<Vec<u32>> = vec![Vec::new(); slots];
        let mut producer_op = vec![u32::MAX; slots];
        for (oi, op) in ops.iter().enumerate() {
            let oi = oi as u32;
            let mut read = |slot: u32| {
                let list = &mut readers[slot as usize];
                if list.last() != Some(&oi) {
                    list.push(oi);
                }
            };
            match *op {
                BOp::Bin { a, b, y, .. } => {
                    read(a);
                    read(b);
                    producer_op[y as usize] = oi;
                }
                BOp::Un { a, y, .. } => {
                    read(a);
                    producer_op[y as usize] = oi;
                }
                BOp::Mux { sel, lo, n, y, .. } => {
                    read(sel);
                    for i in 0..n {
                        read(mux_pool[(lo + i) as usize]);
                    }
                    producer_op[y as usize] = oi;
                }
                BOp::SramRead {
                    en, we, addr, y, ..
                } => {
                    read(en);
                    read(we);
                    read(addr);
                    producer_op[y as usize] = oi;
                }
            }
        }
        let mut reg_readers: Vec<Vec<u32>> = vec![Vec::new(); slots];
        for (r, reg) in regs.iter().enumerate() {
            reg_readers[reg.d as usize].push(r as u32);
            if reg.en != u32::MAX {
                reg_readers[reg.en as usize].push(r as u32);
            }
            if reg.rst != u32::MAX {
                reg_readers[reg.rst as usize].push(r as u32);
            }
        }
        let sram_read_op: Vec<u32> = srams
            .iter()
            .map(|sram| {
                ops.iter()
                    .position(
                        |op| matches!(op, BOp::SramRead { mem, .. } if *mem == sram.mem),
                    )
                    .expect("every sram has a read op") as u32
            })
            .collect();

        let op_words = ops.len().div_ceil(64);
        let reg_words = regs.len().div_ceil(64);
        let mut sim = BatchSim {
            ops,
            op_names,
            mux_pool,
            values: vec![0; slots * LANES],
            known: vec![0; slots],
            initial_vals,
            initial_known,
            widths,
            regs,
            srams,
            mems,
            mem_names: model.mem_names.clone(),
            signal_index: model.signal_index.clone(),
            reset_signals: model.reset_signals.iter().map(|&s| s as u32).collect(),
            watches,
            fsms: Vec::new(),
            fsm_state: Vec::new(),
            clamp_of: Vec::new(),
            clamp_rows: Vec::new(),
            flips: Vec::new(),
            readers,
            reg_readers,
            producer_op,
            sram_read_op,
            dirty: vec![0u64; op_words],
            reg_dirty: vec![0u64; reg_words],
            edge_regs: Vec::new(),
            force_fsm_drive: false,
            reg_vals: vec![0; model.regs.len() * LANES],
            reg_commit: vec![0; model.regs.len()],
            reg_known: vec![0; model.regs.len()],
            active: !0,
            running: !0,
            frozen_mask: 0,
            frozen_vals: Vec::new(),
            frozen_known: Vec::new(),
            outcomes: vec![None; LANES],
            lane_cycles: vec![0; LANES],
            cycles: 0,
            comb_evals: 0,
        };
        sim.broadcast_initials();
        Ok(sim)
    }

    /// Broadcasts the lane-uniform post-construction snapshot into every
    /// lane of every slot, and marks the whole schedule dirty (the first
    /// walk evaluates everything, like the sequential engines).
    fn broadcast_initials(&mut self) {
        for slot in 0..self.widths.len() {
            let v = self.initial_vals[slot];
            let base = slot * LANES;
            self.values[base..base + LANES].fill(v);
            self.known[slot] = if self.initial_known[slot] { !0 } else { 0 };
        }
        self.mark_all();
    }

    /// Marks every op and every register dirty.
    fn mark_all(&mut self) {
        fill_mask(&mut self.dirty, self.ops.len());
        fill_mask(&mut self.reg_dirty, self.regs.len());
    }

    /// Marks one op dirty.
    #[inline]
    fn mark_op(&mut self, op: u32) {
        self.dirty[(op / 64) as usize] |= 1u64 << (op % 64);
    }

    /// Lane mask of nonzero words in a slot's column (a branch-free
    /// column scan the compiler vectorizes to compare-and-movemask).
    #[inline]
    fn nonzero_mask(&self, slot: usize) -> u64 {
        let col = &self.values[slot * LANES..slot * LANES + LANES];
        let mut m = 0u64;
        for (l, &v) in col.iter().enumerate() {
            m |= ((v != 0) as u64) << l;
        }
        m
    }

    /// Marks everything that reads `slot`: the comb ops with it as an
    /// input, and the registers sampling it as `d`/`en`/`rst`. The batch
    /// twin of the level engine's `mark_slot`.
    #[inline]
    fn mark_slot(&mut self, slot: usize) {
        for &op in &self.readers[slot] {
            self.dirty[(op / 64) as usize] |= 1u64 << (op % 64);
        }
        for &r in &self.reg_readers[slot] {
            self.reg_dirty[(r / 64) as usize] |= 1u64 << (r % 64);
        }
    }

    /// Attaches a behavioral control unit (same table vocabulary as the
    /// sequential engines). Initial-state outputs are driven into every
    /// lane immediately.
    ///
    /// # Errors
    ///
    /// Returns [`CycleSimError::Build`] on a signal-count mismatch or an
    /// unknown signal, with the sequential engines' messages.
    pub fn add_control_unit(
        &mut self,
        name: impl Into<String>,
        conditions: &[&str],
        outputs: &[(&str, u32)],
        table: FsmTable,
    ) -> Result<(), CycleSimError> {
        let name = name.into();
        if conditions.len() != table.condition_count() || outputs.len() != table.output_count() {
            return Err(CycleSimError::Build(format!(
                "control unit '{name}': signal count mismatch with table"
            )));
        }
        let mut cond_ids = Vec::new();
        for c in conditions {
            cond_ids.push(
                self.signal_index
                    .get(*c)
                    .map(|&s| s as u32)
                    .ok_or_else(|| CycleSimError::Build(format!("unknown signal '{c}'")))?,
            );
        }
        let mut out_ids = Vec::new();
        let mut out_shifts = Vec::new();
        let mut out_widths = Vec::new();
        for (o, w) in outputs {
            out_ids.push(
                self.signal_index
                    .get(*o)
                    .map(|&s| s as u32)
                    .ok_or_else(|| CycleSimError::Build(format!("unknown signal '{o}'")))?,
            );
            out_shifts.push(64 - *w);
            out_widths.push(*w);
        }
        let state_values: Vec<Vec<i64>> = table
            .states()
            .iter()
            .map(|state| {
                (0..out_ids.len())
                    .map(|i| {
                        let value = state
                            .outputs
                            .iter()
                            .find(|(out, _)| *out == i)
                            .map(|(_, v)| *v)
                            .unwrap_or(0);
                        Value::known(out_widths[i], value).as_i64()
                    })
                    .collect()
            })
            .collect();
        let fsm = BFsm {
            name,
            table,
            conditions: cond_ids,
            outputs: out_ids,
            out_shifts,
            state_values,
        };
        self.drive_fsm_outputs_all_lanes(&fsm, 0);
        self.fsms.push(fsm);
        self.fsm_state.extend(std::iter::repeat_n(0, LANES));
        Ok(())
    }

    /// Drives `state`'s Moore outputs into every lane (registration and
    /// reset use this; the edge commit drives running lanes). Marks each
    /// driven slot so its readers re-evaluate.
    fn drive_fsm_outputs_all_lanes(&mut self, fsm: &BFsm, state: usize) {
        for (j, &slot) in fsm.outputs.iter().enumerate() {
            let slot = slot as usize;
            let v = fsm.state_values[state][j];
            let base = slot * LANES;
            for l in 0..LANES {
                self.values[base + l] = self.clamp_lane(slot, l, v, fsm.out_shifts[j]);
            }
            self.known[slot] = !0;
            self.mark_slot(slot);
        }
    }

    /// Restricts the next `run_batch` to the lanes in `lane_mask` and
    /// re-arms them (prior outcomes are cleared, so a lane that hit a
    /// watchpoint in one configuration keeps walking in the next, like
    /// the sequential engines' repeated `run` calls). Excluded lanes
    /// keep their state but never commit, fail, or finish — their
    /// summary entry stays `None`.
    pub fn set_active(&mut self, lane_mask: u64) {
        self.active = lane_mask;
        self.running = lane_mask;
        self.frozen_mask &= !lane_mask;
        for o in &mut self.outcomes {
            *o = None;
        }
        // Conservative re-arm: a re-armed lane stopped committing
        // mid-flight, so re-dirty the whole schedule (one full walk's
        // worth of work, once per run) and force a full FSM redrive.
        self.mark_all();
        self.force_fsm_drive = true;
    }

    /// Rewinds to the just-built state (control units stay attached,
    /// lane activity resets to all 64): signal values return to the
    /// post-construction snapshot, FSMs rewind and re-drive initial
    /// outputs, memories clear to X, faults are removed, counters zero.
    /// A reset simulator is bit-identical to a freshly built one.
    pub fn reset_state(&mut self) {
        self.broadcast_initials();
        for mem in &mut self.mems {
            mem.known.iter_mut().for_each(|k| *k = 0);
        }
        self.clamp_of.clear();
        self.clamp_rows.clear();
        self.flips.clear();
        self.fsm_state.iter_mut().for_each(|s| *s = 0);
        let fsms = std::mem::take(&mut self.fsms);
        for fsm in &fsms {
            self.drive_fsm_outputs_all_lanes(fsm, 0);
        }
        self.fsms = fsms;
        self.active = !0;
        self.running = !0;
        self.frozen_mask = 0;
        self.force_fsm_drive = false;
        self.outcomes.iter_mut().for_each(|o| *o = None);
        self.lane_cycles.iter_mut().for_each(|c| *c = 0);
        self.cycles = 0;
        self.comb_evals = 0;
    }

    /// Injects a stuck-at fault on one bit of a named signal, in every
    /// lane. Returns `false` when the signal does not exist.
    ///
    /// # Errors
    ///
    /// Returns [`CycleSimError::Build`] when `bit` is out of range.
    pub fn inject_stuck_at(
        &mut self,
        signal: &str,
        bit: u32,
        value: bool,
    ) -> Result<bool, CycleSimError> {
        self.inject_stuck_masked(signal, bit, value, !0)
    }

    /// [`inject_stuck_at`](Self::inject_stuck_at) restricted to one lane
    /// — the fault-campaign batching hook (64 sites per walk).
    ///
    /// # Errors
    ///
    /// Returns [`CycleSimError::Build`] when `bit` is out of range.
    pub fn inject_stuck_at_lane(
        &mut self,
        signal: &str,
        bit: u32,
        value: bool,
        lane: usize,
    ) -> Result<bool, CycleSimError> {
        self.inject_stuck_masked(signal, bit, value, 1u64 << lane)
    }

    fn inject_stuck_masked(
        &mut self,
        signal: &str,
        bit: u32,
        value: bool,
        lanes: u64,
    ) -> Result<bool, CycleSimError> {
        let Some(&slot) = self.signal_index.get(signal) else {
            return Ok(false);
        };
        let width = self.widths[slot];
        if bit >= width {
            return Err(CycleSimError::Build(format!(
                "stuck-at bit {bit} out of range for signal '{signal}' (width {width})"
            )));
        }
        if self.clamp_of.is_empty() {
            self.clamp_of = vec![u32::MAX; self.widths.len()];
        }
        let row = if self.clamp_of[slot] == u32::MAX {
            self.clamp_of[slot] = self.clamp_rows.len() as u32;
            self.clamp_rows.push(ClampRow {
                and: [!0; LANES],
                or: [0; LANES],
            });
            self.clamp_rows.len() - 1
        } else {
            self.clamp_of[slot] as usize
        };
        let bit_mask = 1u64 << bit;
        let mut m = lanes;
        while m != 0 {
            let l = m.trailing_zeros() as usize;
            m &= m - 1;
            if value {
                self.clamp_rows[row].or[l] |= bit_mask;
            } else {
                self.clamp_rows[row].and[l] &= !bit_mask;
            }
        }
        // Clamp the current value immediately, so constants and
        // already-driven FSM outputs honor the fault (sequential parity).
        let shift = 64 - width;
        let base = slot * LANES;
        let mut m = lanes & self.known[slot];
        while m != 0 {
            let l = m.trailing_zeros() as usize;
            m &= m - 1;
            self.values[base + l] = self.clamp_lane(slot, l, self.values[base + l], shift);
        }
        self.mark_slot(slot);
        Ok(true)
    }

    /// Schedules a one-walk transient flip on every lane, with the
    /// sequential engines' timing (applied before the reset drive and
    /// the settle of the matching cycle). Returns `false` when no such
    /// signal exists.
    ///
    /// # Errors
    ///
    /// Returns [`CycleSimError::Build`] when `bit` is out of range.
    pub fn inject_transient_flip(
        &mut self,
        signal: &str,
        bit: u32,
        cycle: u64,
    ) -> Result<bool, CycleSimError> {
        self.inject_flip_masked(signal, bit, cycle, !0)
    }

    /// [`inject_transient_flip`](Self::inject_transient_flip) restricted
    /// to one lane.
    ///
    /// # Errors
    ///
    /// Returns [`CycleSimError::Build`] when `bit` is out of range.
    pub fn inject_transient_flip_lane(
        &mut self,
        signal: &str,
        bit: u32,
        cycle: u64,
        lane: usize,
    ) -> Result<bool, CycleSimError> {
        self.inject_flip_masked(signal, bit, cycle, 1u64 << lane)
    }

    fn inject_flip_masked(
        &mut self,
        signal: &str,
        bit: u32,
        cycle: u64,
        lanes: u64,
    ) -> Result<bool, CycleSimError> {
        let Some(&slot) = self.signal_index.get(signal) else {
            return Ok(false);
        };
        let width = self.widths[slot];
        if bit >= width {
            return Err(CycleSimError::Build(format!(
                "bit-flip bit {bit} out of range for signal '{signal}' (width {width})"
            )));
        }
        self.flips.push(BFlip {
            cycle,
            slot: slot as u32,
            lanes,
            xor: 1u64 << bit,
        });
        Ok(true)
    }

    /// Number of words in the named SRAM, or `None` if absent.
    pub fn mem_size(&self, name: &str) -> Option<usize> {
        self.mem_names.get(name).map(|&i| self.mems[i].size)
    }

    /// Loads an image (`None` = leave X) into one lane of the named
    /// SRAM. Returns `false` when the memory does not exist. Values
    /// truncate to the memory width, like [`crate::MemHandle::store`].
    pub fn load_mem(&mut self, name: &str, lane: usize, image: &[Option<i64>]) -> bool {
        let Some(&mi) = self.mem_names.get(name) else {
            return false;
        };
        let mem = &mut self.mems[mi];
        let bit = 1u64 << lane;
        for (addr, word) in image.iter().enumerate().take(mem.size) {
            match word {
                Some(v) => {
                    mem.data[addr * LANES + lane] = canon(*v, mem.shift);
                    mem.known[addr] |= bit;
                }
                None => mem.known[addr] &= !bit,
            }
        }
        self.mark_mem_readers(mi);
        true
    }

    /// Dirties the read op of every SRAM backed by memory `mem`, so a
    /// load between runs is observed without any signal changing.
    fn mark_mem_readers(&mut self, mem: usize) {
        for s in 0..self.sram_read_op.len() {
            if self.srams[s].mem as usize == mem {
                let op = self.sram_read_op[s];
                self.mark_op(op);
            }
        }
    }

    /// [`load_mem`](Self::load_mem) into every lane.
    pub fn load_mem_all(&mut self, name: &str, image: &[Option<i64>]) -> bool {
        let Some(&mi) = self.mem_names.get(name) else {
            return false;
        };
        let mem = &mut self.mems[mi];
        for (addr, word) in image.iter().enumerate().take(mem.size) {
            match word {
                Some(v) => {
                    mem.data[addr * LANES..addr * LANES + LANES].fill(canon(*v, mem.shift));
                    mem.known[addr] = !0;
                }
                None => mem.known[addr] = 0,
            }
        }
        self.mark_mem_readers(mi);
        true
    }

    /// Final image of one lane of the named SRAM (`None` entries are
    /// uninitialized words), or `None` if the memory does not exist.
    pub fn snapshot_mem(&self, name: &str, lane: usize) -> Option<Vec<Option<i64>>> {
        let &mi = self.mem_names.get(name)?;
        let mem = &self.mems[mi];
        let bit = 1u64 << lane;
        Some(
            (0..mem.size)
                .map(|addr| (mem.known[addr] & bit != 0).then(|| mem.data[addr * LANES + lane]))
                .collect(),
        )
    }

    /// Current value of a named signal in lane 0.
    pub fn value(&self, name: &str) -> Option<Value> {
        self.value_lane(name, 0)
    }

    /// Current value of a named signal in one lane. A finished lane
    /// reads its termination freeze-frame, not the live (still-walking)
    /// state.
    pub fn value_lane(&self, name: &str, lane: usize) -> Option<Value> {
        let &slot = self.signal_index.get(name)?;
        let width = self.widths[slot];
        let bit = 1u64 << lane;
        let (vals, known) = if self.frozen_mask & bit != 0 {
            (&self.frozen_vals, &self.frozen_known)
        } else {
            (&self.values, &self.known)
        };
        Some(if known[slot] & bit != 0 {
            Value::known(width, vals[slot * LANES + lane])
        } else {
            Value::x(width)
        })
    }

    /// Cycles executed, with the sequential accessor's convention: after
    /// lane 0 fails or finishes, its own cycle count (a failing walk
    /// does not count as elapsed).
    pub fn cycles(&self) -> u64 {
        if self.outcomes[0].is_some() {
            self.lane_cycles[0]
        } else {
            self.cycles
        }
    }

    /// Bytecode evaluations performed: dirty ops drained across all
    /// walks (each evaluation covers all 64 lanes). Comparable in spirit
    /// to the level engine's count, but not numerically identical — a
    /// change in any lane re-evaluates the whole column.
    pub fn comb_evals(&self) -> u64 {
        self.comb_evals
    }

    /// Profiling hook for engine-interface parity: the batch engine has
    /// no per-rank profile; this is a no-op.
    pub fn enable_profile(&mut self) {}

    /// Marks a lane failed at the current (pre-increment) cycle and
    /// drops it from the running mask. First failure wins, matching the
    /// sequential engine's abort-at-first-error.
    fn fail_lane(&mut self, lane: usize, msg: String) {
        if self.outcomes[lane].is_none() {
            self.outcomes[lane] = Some(LaneOutcome::Failed(msg));
            self.lane_cycles[lane] = self.cycles;
            self.running &= !(1u64 << lane);
            self.freeze_lane(lane);
        }
    }

    /// Snapshots one lane's value column so later walks (which keep the
    /// vector loops unconditional) cannot perturb what this lane
    /// observes.
    fn freeze_lane(&mut self, lane: usize) {
        if self.frozen_vals.is_empty() {
            self.frozen_vals = vec![0; self.values.len()];
            self.frozen_known = vec![0; self.known.len()];
        }
        let bit = 1u64 << lane;
        for slot in 0..self.known.len() {
            self.frozen_vals[slot * LANES + lane] = self.values[slot * LANES + lane];
            if self.known[slot] & bit != 0 {
                self.frozen_known[slot] |= bit;
            } else {
                self.frozen_known[slot] &= !bit;
            }
        }
        self.frozen_mask |= bit;
    }

    /// Applies the stuck-at clamp for one lane of `slot` to a canonical
    /// value about to be written there. Branch-free-cheap when no faults
    /// are injected.
    #[inline(always)]
    fn clamp_lane(&self, slot: usize, lane: usize, v: i64, shift: u32) -> i64 {
        if self.clamp_of.is_empty() {
            return v;
        }
        let row = self.clamp_of[slot];
        if row == u32::MAX {
            return v;
        }
        let row = &self.clamp_rows[row as usize];
        let vmask = !0u64 >> shift;
        let bits = ((v as u64) & vmask & row.and[lane]) | row.or[lane];
        canon(bits as i64, shift)
    }

    /// One walk of the bytecode: flips, reset drive, the op loop, the
    /// edge commit, and per-lane termination — the batch twin of the
    /// sequential engines' `step`.
    fn walk(&mut self) {
        // Transient flips scheduled for this cycle, known lanes only.
        if !self.flips.is_empty() {
            for i in 0..self.flips.len() {
                let BFlip {
                    cycle,
                    slot,
                    lanes,
                    xor,
                } = self.flips[i];
                if cycle != self.cycles {
                    continue;
                }
                let slot = slot as usize;
                let shift = 64 - self.widths[slot];
                let vmask = !0u64 >> shift;
                let base = slot * LANES;
                let mut m = lanes & self.known[slot];
                if m == 0 {
                    continue; // whole-X slots are skipped, unmarked
                }
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let bits = ((self.values[base + l] as u64) & vmask) ^ xor;
                    self.values[base + l] = canon(bits as i64, shift);
                }
                // Re-dirty the producer so the settle recomputes the
                // flip away on combinational slots; readers and register
                // samples see the flipped value regardless.
                let p = self.producer_op[slot];
                if p != u32::MAX {
                    self.mark_op(p);
                }
                self.mark_slot(slot);
                // A flipped Moore output must be reverted by the edge's
                // change-detected redrive: force the per-lane path.
                self.force_fsm_drive = true;
            }
        }

        // Reset generators assert during cycle 0; marked only on change
        // (every walk after cycle 1 re-drives the same zero).
        let reset_bit: i64 = if self.cycles == 0 { -1 } else { 0 };
        for i in 0..self.reset_signals.len() {
            let y = self.reset_signals[i] as usize;
            let base = y * LANES;
            let mut out = [reset_bit; LANES];
            if !self.clamp_of.is_empty() && self.clamp_of[y] != u32::MAX {
                for (l, v) in out.iter_mut().enumerate() {
                    *v = self.clamp_lane(y, l, reset_bit, 63);
                }
            }
            if self.known[y] != !0 || self.values[base..base + LANES] != out {
                self.values[base..base + LANES].copy_from_slice(&out);
                self.known[y] = !0;
                self.mark_slot(y);
            }
        }

        self.eval_ops();
        self.commit_edge();
    }

    /// The settle phase: drains the dirty bitset in ascending (rank)
    /// order. Evaluating an op can re-dirty later positions, including
    /// in the word being drained, so each word is re-fetched until it
    /// empties; rank order guarantees no earlier bit ever sets.
    fn eval_ops(&mut self) {
        for word in 0..self.dirty.len() {
            while self.dirty[word] != 0 {
                let bit = self.dirty[word].trailing_zeros() as usize;
                self.dirty[word] &= !(1u64 << bit);
                self.comb_evals += 1;
                self.eval_op(word * 64 + bit);
            }
        }
    }

    /// Evaluates one bytecode op into a scratch column, applies the
    /// fault clamp, and — only when the column or its known mask
    /// actually changed — writes it back and marks the slot's readers.
    fn eval_op(&mut self, oi: usize) {
        let mut out = [0i64; LANES];
        let (y, shift, kout) = match self.ops[oi] {
            BOp::Bin { kind, a, b, y, shift } => {
                let (a, b, y) = (a as usize, b as usize, y as usize);
                let kin = self.known[a] & self.known[b];
                let kout = match kind {
                    OpKind::Add => {
                        vec_bin(&self.values, a, b, shift, &mut out, |x, z| x.wrapping_add(z));
                        kin
                    }
                    OpKind::Sub => {
                        vec_bin(&self.values, a, b, shift, &mut out, |x, z| x.wrapping_sub(z));
                        kin
                    }
                    OpKind::Mul => {
                        vec_bin(&self.values, a, b, shift, &mut out, |x, z| x.wrapping_mul(z));
                        kin
                    }
                    OpKind::And => {
                        vec_bin(&self.values, a, b, shift, &mut out, |x, z| x & z);
                        kin
                    }
                    OpKind::Or => {
                        vec_bin(&self.values, a, b, shift, &mut out, |x, z| x | z);
                        kin
                    }
                    OpKind::Xor => {
                        vec_bin(&self.values, a, b, shift, &mut out, |x, z| x ^ z);
                        kin
                    }
                    OpKind::Shl => {
                        vec_bin(&self.values, a, b, shift, &mut out, |x, z| {
                            x.wrapping_shl((z & 63) as u32)
                        });
                        kin
                    }
                    OpKind::Shr => {
                        vec_bin(&self.values, a, b, shift, &mut out, |x, z| {
                            x.wrapping_shr((z & 63) as u32)
                        });
                        kin
                    }
                    OpKind::Ushr => {
                        let in_mask = !0u64 >> shift;
                        vec_bin(&self.values, a, b, shift, &mut out, move |x, z| {
                            (((x as u64) & in_mask) >> ((z & 63) as u32)) as i64
                        });
                        kin
                    }
                    OpKind::Eq => {
                        vec_bin(&self.values, a, b, shift, &mut out, |x, z| (x == z) as i64);
                        kin
                    }
                    OpKind::Ne => {
                        vec_bin(&self.values, a, b, shift, &mut out, |x, z| (x != z) as i64);
                        kin
                    }
                    OpKind::Lt => {
                        vec_bin(&self.values, a, b, shift, &mut out, |x, z| (x < z) as i64);
                        kin
                    }
                    OpKind::Le => {
                        vec_bin(&self.values, a, b, shift, &mut out, |x, z| (x <= z) as i64);
                        kin
                    }
                    OpKind::Gt => {
                        vec_bin(&self.values, a, b, shift, &mut out, |x, z| (x > z) as i64);
                        kin
                    }
                    OpKind::Ge => {
                        vec_bin(&self.values, a, b, shift, &mut out, |x, z| (x >= z) as i64);
                        kin
                    }
                    OpKind::Div | OpKind::Rem => {
                        // Word op with a failure edge: scalar per-lane
                        // loop, known lanes only — a garbage divisor in
                        // an X lane must not fail the lane. A failing
                        // lane's output keeps its old (garbage) word,
                        // like the sequential engine's aborted eval.
                        out.copy_from_slice(&self.values[y * LANES..y * LANES + LANES]);
                        let (a_base, b_base) = (a * LANES, b * LANES);
                        let mut fail = 0u64;
                        for (l, o) in out.iter_mut().enumerate() {
                            let bit = 1u64 << l;
                            if kin & bit == 0 {
                                continue;
                            }
                            let zb = self.values[b_base + l];
                            if zb == 0 {
                                fail |= bit;
                                continue;
                            }
                            let xa = self.values[a_base + l];
                            let raw = if kind == OpKind::Div {
                                xa.wrapping_div(zb)
                            } else {
                                xa.wrapping_rem(zb)
                            };
                            *o = canon(raw, shift);
                        }
                        let mut failing = fail & self.running;
                        while failing != 0 {
                            let l = failing.trailing_zeros() as usize;
                            failing &= failing - 1;
                            let what = if kind == OpKind::Div {
                                "division"
                            } else {
                                "remainder"
                            };
                            let msg = format!("{}: {what} by zero", self.op_names[oi]);
                            self.fail_lane(l, msg);
                        }
                        kin & !fail
                    }
                    OpKind::Not | OpKind::Neg => {
                        unreachable!("unary kinds never appear as Bin")
                    }
                };
                (y, shift, kout)
            }
            BOp::Un { kind, a, y, shift } => {
                let (a, y) = (a as usize, y as usize);
                match kind {
                    OpKind::Not => vec_un(&self.values, a, shift, &mut out, |x| !x),
                    OpKind::Neg => vec_un(&self.values, a, shift, &mut out, |x| x.wrapping_neg()),
                    _ => unreachable!("binary kinds never appear as Un"),
                }
                (y, shift, self.known[a])
            }
            BOp::Mux {
                sel,
                sel_mask,
                lo,
                n,
                y,
                shift,
            } => {
                let (sel, y) = (sel as usize, y as usize);
                out.copy_from_slice(&self.values[y * LANES..y * LANES + LANES]);
                let sel_base = sel * LANES;
                let ksel = self.known[sel];
                let mut kout = 0u64;
                for (l, o) in out.iter_mut().enumerate() {
                    let bit = 1u64 << l;
                    if ksel & bit == 0 {
                        continue;
                    }
                    let s = ((self.values[sel_base + l] as u64) & sel_mask) as usize;
                    if s >= n as usize {
                        continue; // out-of-range select reads X
                    }
                    let input = self.mux_pool[lo as usize + s] as usize;
                    if self.known[input] & bit == 0 {
                        continue;
                    }
                    *o = canon(self.values[input * LANES + l], shift);
                    kout |= bit;
                }
                (y, shift, kout)
            }
            BOp::SramRead {
                mem,
                en,
                we,
                addr,
                addr_mask,
                y,
            } => {
                let (mem, en, we, addr, y) =
                    (mem as usize, en as usize, we as usize, addr as usize, y as usize);
                out.copy_from_slice(&self.values[y * LANES..y * LANES + LANES]);
                let (en_base, we_base, addr_base) = (en * LANES, we * LANES, addr * LANES);
                let (ken, kwe, kaddr) = (self.known[en], self.known[we], self.known[addr]);
                let shift = self.mems[mem].shift;
                let mut kout = 0u64;
                let mut fast = false;
                // Uniform fast path: every lane read-enabled, none
                // mid-write, all reading the same known address — one
                // contiguous row copy instead of the per-lane gather.
                if ken == !0
                    && kwe == !0
                    && kaddr == !0
                    && self.nonzero_mask(en) == !0
                    && self.nonzero_mask(we) == 0
                {
                    let col = &self.values[addr_base..addr_base + LANES];
                    let a0 = ((col[0] as u64) & addr_mask) as usize;
                    if col.iter().all(|&v| v == col[0]) {
                        fast = true;
                        let m = &self.mems[mem];
                        if a0 < m.size {
                            out.copy_from_slice(&m.data[a0 * LANES..a0 * LANES + LANES]);
                            kout = m.known[a0];
                        }
                    }
                }
                if !fast {
                    for (l, o) in out.iter_mut().enumerate() {
                        let bit = 1u64 << l;
                        let en_true = ken & bit != 0 && self.values[en_base + l] != 0;
                        let we_true = kwe & bit != 0 && self.values[we_base + l] != 0;
                        if !en_true || we_true {
                            // dout undefined while disabled or
                            // mid-write, as in the sequential engines.
                            continue;
                        }
                        if kaddr & bit == 0 {
                            continue; // X address reads X (writes fail)
                        }
                        let a = ((self.values[addr_base + l] as u64) & addr_mask) as usize;
                        let m = &self.mems[mem];
                        if a >= m.size || m.known[a] & bit == 0 {
                            continue;
                        }
                        *o = m.data[a * LANES + l];
                        kout |= bit;
                    }
                }
                (y, shift, kout)
            }
        };

        if !self.clamp_of.is_empty() && self.clamp_of[y] != u32::MAX {
            let mut m = kout;
            while m != 0 {
                let l = m.trailing_zeros() as usize;
                m &= m - 1;
                out[l] = self.clamp_lane(y, l, out[l], shift);
            }
        }
        let base = y * LANES;
        if self.known[y] != kout || self.values[base..base + LANES] != out {
            self.values[base..base + LANES].copy_from_slice(&out);
            self.known[y] = kout;
            self.mark_slot(y);
        }
    }

    /// Attempts the uniform FSM fast path: every running lane in the
    /// same state, every consulted condition known and agreeing across
    /// them. Returns `false` (having mutated nothing) when the lanes
    /// diverge, so the caller falls back to the per-lane drive.
    ///
    /// Relies on the invariant that each running lane's output columns
    /// hold the (clamped) Moore values of its current state — true
    /// after registration, maintained by every drive path, and restored
    /// after transient flips by the forced per-lane redrive.
    fn fsm_fast_path(&mut self, fi: usize, fsm: &BFsm, done_mask: &mut u64) -> bool {
        let running = self.running;
        if running == 0 {
            return true;
        }
        let first = running.trailing_zeros() as usize;
        let su = self.fsm_state[fi * LANES + first] as usize;
        let mut m = running & (running - 1);
        while m != 0 {
            let l = m.trailing_zeros() as usize;
            m &= m - 1;
            if self.fsm_state[fi * LANES + l] as usize != su {
                return false;
            }
        }
        let states = fsm.table.states();
        let current = &states[su];
        if current.terminal {
            *done_mask |= running;
            return true;
        }
        let mut next = su;
        for transition in &current.transitions {
            match transition.condition {
                None => {
                    next = transition.target;
                    break;
                }
                Some((index, expected)) => {
                    let slot = fsm.conditions[index] as usize;
                    if self.known[slot] & running != running {
                        return false; // X somewhere: slow path fails it
                    }
                    let t = self.nonzero_mask(slot) & running;
                    let truth = if t == running {
                        true
                    } else if t == 0 {
                        false
                    } else {
                        return false; // lanes disagree on the condition
                    };
                    if truth == expected {
                        next = transition.target;
                        break;
                    }
                }
            }
        }
        if next != su {
            let mut m = running;
            while m != 0 {
                let l = m.trailing_zeros() as usize;
                m &= m - 1;
                self.fsm_state[fi * LANES + l] = next as u32;
            }
            for (j, &slot) in fsm.outputs.iter().enumerate() {
                let vnew = fsm.state_values[next][j];
                if vnew == fsm.state_values[su][j] {
                    continue; // same Moore value in both states
                }
                let slot = slot as usize;
                let shift = fsm.out_shifts[j];
                let base = slot * LANES;
                let mut m = running;
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    m &= m - 1;
                    self.values[base + l] = self.clamp_lane(slot, l, vnew, shift);
                }
                self.known[slot] |= running;
                self.mark_slot(slot);
            }
        }
        if states[next].terminal {
            *done_mask |= running;
        }
        true
    }

    /// The rising-edge commit, per-lane: register sample, SRAM writes,
    /// FSM transitions + Moore drive, register commit, watchpoint scan —
    /// the same phase order as `FlatModel::commit_edge` — then the cycle
    /// counter and per-lane termination with the sequential `step`'s
    /// watch-beats-done priority.
    fn commit_edge(&mut self) {
        // Phase a: sample the dirty registers into scratch (all lanes;
        // commit is masked later so frozen-lane samples are
        // unobservable). The dirty set is drained fully — a register
        // none of whose inputs changed would resample the same value,
        // so skipping it is unobservable, exactly as in the level
        // engine.
        let mut edge_regs = std::mem::take(&mut self.edge_regs);
        edge_regs.clear();
        for word in 0..self.reg_dirty.len() {
            while self.reg_dirty[word] != 0 {
                let bit = self.reg_dirty[word].trailing_zeros() as usize;
                self.reg_dirty[word] &= !(1u64 << bit);
                edge_regs.push((word * 64 + bit) as u32);
            }
        }
        for &ri in &edge_regs {
            let r = ri as usize;
            let reg = self.regs[r];
            let d = reg.d as usize;
            let d_base = d * LANES;
            let out_base = r * LANES;
            // Column masks first (which lanes reset, which are enabled),
            // then one branch-free canon copy of the whole `d` column —
            // lanes that hold or reset get their scratch overridden or
            // masked out by `reg_commit`, so the copy is unobservable
            // for them.
            let rst_mask = if reg.rst == u32::MAX {
                0
            } else {
                self.known[reg.rst as usize] & self.nonzero_mask(reg.rst as usize)
            };
            let en_mask = if reg.en == u32::MAX {
                !0
            } else {
                self.known[reg.en as usize] & self.nonzero_mask(reg.en as usize)
            };
            if rst_mask | en_mask == 0 {
                // Every lane holds: no sample, no commit.
                self.reg_commit[r] = 0;
                continue;
            }
            let shift = reg.shift;
            {
                let src = &self.values[d_base..d_base + LANES];
                let dst = &mut self.reg_vals[out_base..out_base + LANES];
                for l in 0..LANES {
                    dst[l] = canon(src[l], shift);
                }
            }
            let mut m = rst_mask;
            while m != 0 {
                let l = m.trailing_zeros() as usize;
                m &= m - 1;
                self.reg_vals[out_base + l] = 0;
            }
            self.reg_commit[r] = rst_mask | en_mask;
            self.reg_known[r] = (self.known[d] & en_mask & !rst_mask) | rst_mask;
        }

        // Phase b: SRAM writes, in instance order, running lanes only.
        for s in 0..self.srams.len() {
            let (mem, en, we, addr, din, addr_mask) = {
                let sr = &self.srams[s];
                (
                    sr.mem as usize,
                    sr.en as usize,
                    sr.we as usize,
                    sr.addr as usize,
                    sr.din as usize,
                    sr.addr_mask,
                )
            };
            // Write candidates: running lanes whose en and we are both
            // known-true. Almost every walk this is empty; scanning we
            // first means the common no-write case costs one column
            // scan, not two.
            let we_hot = self.running & self.known[we] & self.nonzero_mask(we);
            if we_hot == 0 {
                continue;
            }
            let candidates = we_hot & self.known[en] & self.nonzero_mask(en);
            if candidates == 0 {
                continue;
            }
            let (kaddr, kdin) = (self.known[addr], self.known[din]);
            let mut wrote = false;
            let mut m = candidates;
            while m != 0 {
                let l = m.trailing_zeros() as usize;
                m &= m - 1;
                let bit = 1u64 << l;
                if kaddr & bit == 0 {
                    let msg = format!("{}: X address", self.srams[s].name);
                    self.fail_lane(l, msg);
                    continue;
                }
                let a = ((self.values[addr * LANES + l] as u64) & addr_mask) as usize;
                if a >= self.mems[mem].size {
                    let msg = format!("{}: address {} out of range", self.srams[s].name, a);
                    self.fail_lane(l, msg);
                    continue;
                }
                if kdin & bit == 0 {
                    let msg = format!("{}: X write data", self.srams[s].name);
                    self.fail_lane(l, msg);
                    continue;
                }
                let shift = self.mems[mem].shift;
                self.mems[mem].data[a * LANES + l] = canon(self.values[din * LANES + l], shift);
                self.mems[mem].known[a] |= bit;
                wrote = true;
            }
            // A committed write dirties the read path even though no
            // signal changed, as in the level engine.
            if wrote {
                let op = self.sram_read_op[s];
                self.mark_op(op);
            }
        }

        // Phase c: FSM transitions + Moore outputs, running lanes only.
        // When every running lane sits in the same state and the
        // consulted conditions resolve identically across them, the
        // transition is computed once and only the outputs whose value
        // differs between the two states are rewritten (and marked) —
        // on a quiet cycle this phase touches nothing. Divergent lanes,
        // X conditions, and flip-forced walks fall back to the per-lane
        // drive with per-write change detection.
        let fsms = std::mem::take(&mut self.fsms);
        let force = std::mem::take(&mut self.force_fsm_drive);
        let mut done_mask = 0u64;
        for (fi, fsm) in fsms.iter().enumerate() {
            if !force && self.fsm_fast_path(fi, fsm, &mut done_mask) {
                continue;
            }
            let states = fsm.table.states();
            let mut m = self.running;
            while m != 0 {
                let l = m.trailing_zeros() as usize;
                m &= m - 1;
                let bit = 1u64 << l;
                let st = self.fsm_state[fi * LANES + l] as usize;
                let current = &states[st];
                let next = if current.terminal {
                    st
                } else {
                    let mut next = st;
                    let mut failed = None;
                    for transition in &current.transitions {
                        match transition.condition {
                            None => {
                                next = transition.target;
                                break;
                            }
                            Some((index, expected)) => {
                                let slot = fsm.conditions[index] as usize;
                                if self.known[slot] & bit == 0 {
                                    failed = Some(format!(
                                        "{}: X condition in state '{}'",
                                        fsm.name, current.name
                                    ));
                                    break;
                                }
                                let truth = self.values[slot * LANES + l] != 0;
                                if truth == expected {
                                    next = transition.target;
                                    break;
                                }
                            }
                        }
                    }
                    if let Some(msg) = failed {
                        self.fail_lane(l, msg);
                        continue;
                    }
                    next
                };
                self.fsm_state[fi * LANES + l] = next as u32;
                for (j, &slot) in fsm.outputs.iter().enumerate() {
                    let slot = slot as usize;
                    let v = self.clamp_lane(
                        slot,
                        l,
                        fsm.state_values[next][j],
                        fsm.out_shifts[j],
                    );
                    let idx = slot * LANES + l;
                    if self.known[slot] & bit == 0 || self.values[idx] != v {
                        self.values[idx] = v;
                        self.known[slot] |= bit;
                        self.mark_slot(slot);
                    }
                }
                if states[next].terminal {
                    done_mask |= bit;
                }
            }
        }
        self.fsms = fsms;

        // Phase d: register commit (non-blocking) for the registers
        // sampled this edge, running lanes only — a lane that failed
        // earlier this walk aborted before this phase in the sequential
        // engine, so it must not commit here either. A `q` whose column
        // actually changed marks its readers for the next settle.
        for &ri in &edge_regs {
            let r = ri as usize;
            let reg = self.regs[r];
            let q = reg.q as usize;
            let q_base = q * LANES;
            let commit = self.reg_commit[r] & self.running;
            if commit == 0 {
                continue;
            }
            // All-lanes unclamped commit (the common case mid-run) is a
            // column compare-and-copy; a lane whose sample was unknown
            // gets its scratch word written too, which is unobservable
            // because its known bit clears.
            let clamped = !self.clamp_of.is_empty() && self.clamp_of[q] != u32::MAX;
            if commit == !0 && !clamped {
                let new_known = self.reg_known[r];
                let src = &self.reg_vals[r * LANES..r * LANES + LANES];
                let dst = &mut self.values[q_base..q_base + LANES];
                if self.known[q] != new_known || dst[..] != src[..] {
                    dst.copy_from_slice(src);
                    self.known[q] = new_known;
                    self.mark_slot(q);
                }
                continue;
            }
            let mut changed = false;
            let mut m = commit;
            while m != 0 {
                let l = m.trailing_zeros() as usize;
                m &= m - 1;
                let bit = 1u64 << l;
                if self.reg_known[r] & bit != 0 {
                    let v = self.clamp_lane(q, l, self.reg_vals[r * LANES + l], reg.shift);
                    if self.known[q] & bit == 0 || self.values[q_base + l] != v {
                        self.values[q_base + l] = v;
                        self.known[q] |= bit;
                        changed = true;
                    }
                } else if self.known[q] & bit != 0 {
                    self.known[q] &= !bit;
                    changed = true;
                }
            }
            if changed {
                self.mark_slot(q);
            }
        }
        self.edge_regs = edge_regs;

        // Phase e: watchpoint scan (first matching watch wins, as in the
        // sequential scan order), running lanes only.
        let mut watch_mask = 0u64;
        let mut watch_hits: Vec<(usize, String)> = Vec::new();
        if !self.watches.is_empty() {
            let mut m = self.running;
            while m != 0 {
                let l = m.trailing_zeros() as usize;
                m &= m - 1;
                let bit = 1u64 << l;
                for w in &self.watches {
                    let slot = w.sig as usize;
                    if self.known[slot] & bit != 0 && self.values[slot * LANES + l] == w.value {
                        watch_mask |= bit;
                        watch_hits.push((l, w.name.clone()));
                        break;
                    }
                }
            }
        }

        self.cycles += 1;

        // Termination: a watchpoint outranks done, as in sequential
        // `step`; both count the walk that fired them as elapsed.
        let mut m = self.running & (watch_mask | done_mask);
        while m != 0 {
            let l = m.trailing_zeros() as usize;
            m &= m - 1;
            let bit = 1u64 << l;
            if watch_mask & bit != 0 {
                let name = watch_hits
                    .iter()
                    .find(|(lane, _)| *lane == l)
                    .map(|(_, n)| n.clone())
                    .expect("hit recorded");
                self.outcomes[l] = Some(LaneOutcome::Watchpoint(name));
            } else {
                self.outcomes[l] = Some(LaneOutcome::Done);
            }
            self.lane_cycles[l] = self.cycles;
            self.running &= !bit;
            self.freeze_lane(l);
        }
    }

    /// Walks the schedule until every active lane has finished, failed,
    /// or exhausted `max_cycles`. Returns one result per lane (relative
    /// cycle counts); inactive lanes return `None`.
    pub fn run_batch(&mut self, max_cycles: u64) -> BatchSummary {
        let start = self.cycles;
        loop {
            if self.running == 0 {
                break;
            }
            if self.cycles - start >= max_cycles {
                let mut m = self.running;
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    m &= m - 1;
                    self.outcomes[l] = Some(LaneOutcome::CycleLimit);
                    self.lane_cycles[l] = self.cycles;
                }
                self.running = 0;
                break;
            }
            self.walk();
        }
        BatchSummary {
            lanes: (0..LANES)
                .map(|l| {
                    if self.active & (1u64 << l) == 0 {
                        return None;
                    }
                    self.outcomes[l].clone().map(|outcome| LaneResult {
                        outcome,
                        cycles: self.lane_cycles[l].saturating_sub(start),
                    })
                })
                .collect(),
        }
    }

    /// Sequential-compatible single-result run: lane 0's outcome in the
    /// [`CycleSummary`] shape, with lane-0 failures surfaced as
    /// [`CycleSimError::Failed`] like the sequential engines.
    ///
    /// # Errors
    ///
    /// Returns [`CycleSimError::Failed`] when lane 0 fails.
    pub fn run(&mut self, max_cycles: u64) -> Result<CycleSummary, CycleSimError> {
        let start_evals = self.comb_evals;
        let summary = self.run_batch(max_cycles);
        let lane = summary
            .lanes
            .first()
            .cloned()
            .flatten()
            .expect("lane 0 is active");
        let outcome = match lane.outcome {
            LaneOutcome::Failed(m) => return Err(CycleSimError::Failed(m)),
            LaneOutcome::Done => CycleOutcome::Done,
            LaneOutcome::Watchpoint(name) => CycleOutcome::Watchpoint(name),
            LaneOutcome::CycleLimit => CycleOutcome::CycleLimit,
        };
        Ok(CycleSummary {
            outcome,
            cycles: lane.cycles,
            comb_evals: self.comb_evals - start_evals,
        })
    }
}
