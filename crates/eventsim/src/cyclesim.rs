//! A deliberately naive cycle-based reference simulator.
//!
//! The paper motivates its event-driven Java simulation by noting that
//! software RTL simulation "can be faster than commercial HDL simulators".
//! To make that claim measurable without a commercial tool, this module
//! provides the slow comparator: a simulator that, every clock cycle,
//! re-evaluates **every** combinational instance in repeated sweeps until
//! the netlist settles — no event queue, no activity tracking. The
//! `ablation_kernel` bench compares it against the event kernel on the same
//! netlists.
//!
//! It interprets the same [`Netlist`] (plus behavioral FSM tables) as
//! [`Netlist::elaborate`], so both engines can run identical designs and
//! their final memory contents can be compared word for word.

use crate::memory::MemHandle;
use crate::netlist::Netlist;
use crate::ops::{eval_binop, eval_unop, FsmTable, OpKind};
use crate::value::Value;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Errors raised while building or running a [`CycleSim`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CycleSimError {
    /// The netlist references something the cycle engine cannot model.
    Build(String),
    /// Combinational logic failed to settle within the sweep budget.
    NoFixpoint {
        /// The cycle during which settling failed.
        cycle: u64,
    },
    /// The design failed (division by zero, bad memory access, X
    /// condition).
    Failed(String),
}

impl fmt::Display for CycleSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CycleSimError::Build(m) => write!(f, "cannot build cycle model: {m}"),
            CycleSimError::NoFixpoint { cycle } => {
                write!(f, "combinational logic did not settle in cycle {cycle}")
            }
            CycleSimError::Failed(m) => write!(f, "design failure: {m}"),
        }
    }
}

impl Error for CycleSimError {}

/// Outcome of [`CycleSim::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CycleOutcome {
    /// A control unit reached its terminal state.
    Done,
    /// The cycle budget was exhausted first.
    CycleLimit,
    /// A watchpoint matched.
    Watchpoint(String),
}

/// Summary statistics of a [`CycleSim::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleSummary {
    /// How the run ended.
    pub outcome: CycleOutcome,
    /// Clock cycles executed.
    pub cycles: u64,
    /// Total combinational evaluations performed (the naive-cost metric;
    /// compare with the event kernel's `evals`).
    pub comb_evals: u64,
}

enum Comb {
    Bin {
        kind: OpKind,
        a: usize,
        b: usize,
        y: usize,
        width: u32,
        name: String,
    },
    Un {
        kind: OpKind,
        a: usize,
        y: usize,
        width: u32,
        name: String,
    },
    Mux {
        sel: usize,
        inputs: Vec<usize>,
        y: usize,
        width: u32,
    },
    /// SRAM asynchronous read path.
    SramRead {
        mem: usize,
        en: usize,
        we: usize,
        addr: usize,
        dout: usize,
        name: String,
    },
}

struct RegModel {
    d: usize,
    q: usize,
    en: Option<usize>,
    rst: Option<usize>,
    width: u32,
}

struct SramModel {
    mem: usize,
    en: usize,
    we: usize,
    addr: usize,
    din: usize,
    name: String,
}

struct FsmModel {
    name: String,
    table: FsmTable,
    conditions: Vec<usize>,
    outputs: Vec<usize>,
    output_widths: Vec<u32>,
    state: usize,
}

struct WatchModel {
    name: String,
    sig: usize,
    value: i64,
}

/// The cycle-based engine. See the [module docs](self).
pub struct CycleSim {
    names: Vec<String>,
    values: Vec<Value>,
    combs: Vec<Comb>,
    regs: Vec<RegModel>,
    srams: Vec<SramModel>,
    fsms: Vec<FsmModel>,
    watches: Vec<WatchModel>,
    mems: Vec<MemHandle>,
    mem_names: HashMap<String, usize>,
    signal_index: HashMap<String, usize>,
    reset_signals: Vec<usize>,
    sweep_limit: u32,
    cycles: u64,
    comb_evals: u64,
}

impl CycleSim {
    /// Builds a cycle model from a structural netlist.
    ///
    /// `clock` instances are absorbed into the cycle abstraction; `reset`
    /// instances assert during cycle 0 only.
    ///
    /// # Errors
    ///
    /// Returns [`CycleSimError::Build`] for kinds or parameters the cycle
    /// engine cannot model (the supported set matches
    /// [`Netlist::elaborate`]).
    pub fn from_netlist(netlist: &Netlist) -> Result<Self, CycleSimError> {
        let mut sim = CycleSim {
            names: Vec::new(),
            values: Vec::new(),
            combs: Vec::new(),
            regs: Vec::new(),
            srams: Vec::new(),
            fsms: Vec::new(),
            watches: Vec::new(),
            mems: Vec::new(),
            mem_names: HashMap::new(),
            signal_index: HashMap::new(),
            reset_signals: Vec::new(),
            sweep_limit: 1000,
            cycles: 0,
            comb_evals: 0,
        };
        for decl in netlist.signals() {
            if sim.signal_index.contains_key(&decl.name) {
                return Err(CycleSimError::Build(format!(
                    "duplicate signal '{}'",
                    decl.name
                )));
            }
            sim.signal_index
                .insert(decl.name.clone(), sim.values.len());
            sim.names.push(decl.name.clone());
            sim.values.push(Value::x(decl.width));
        }
        for inst in netlist.instances() {
            sim.add_instance(inst)?;
        }
        Ok(sim)
    }

    fn sig(&self, inst: &crate::netlist::Instance, port: &str) -> Result<usize, CycleSimError> {
        let name = inst.conn(port).ok_or_else(|| {
            CycleSimError::Build(format!("instance '{}' misses port '{}'", inst.name, port))
        })?;
        self.signal_index
            .get(name)
            .copied()
            .ok_or_else(|| CycleSimError::Build(format!("unknown signal '{name}'")))
    }

    fn param<T: std::str::FromStr>(
        inst: &crate::netlist::Instance,
        key: &str,
        default: Option<T>,
    ) -> Result<T, CycleSimError> {
        match inst.param(key) {
            Some(raw) => raw.parse().map_err(|_| {
                CycleSimError::Build(format!(
                    "instance '{}': bad parameter '{}'='{}'",
                    inst.name, key, raw
                ))
            }),
            None => default.ok_or_else(|| {
                CycleSimError::Build(format!(
                    "instance '{}': missing parameter '{}'",
                    inst.name, key
                ))
            }),
        }
    }

    fn add_instance(&mut self, inst: &crate::netlist::Instance) -> Result<(), CycleSimError> {
        if let Ok(kind) = inst.kind.parse::<OpKind>() {
            let width: u32 = Self::param(inst, "width", None)?;
            let y = self.sig(inst, "y")?;
            let a = self.sig(inst, "a")?;
            if kind.is_unary() {
                self.combs.push(Comb::Un {
                    kind,
                    a,
                    y,
                    width,
                    name: inst.name.clone(),
                });
            } else {
                let b = self.sig(inst, "b")?;
                self.combs.push(Comb::Bin {
                    kind,
                    a,
                    b,
                    y,
                    width,
                    name: inst.name.clone(),
                });
            }
            return Ok(());
        }
        match inst.kind.as_str() {
            "clock" => { /* absorbed by the cycle abstraction */ }
            "reset" => {
                let y = self.sig(inst, "y")?;
                self.reset_signals.push(y);
            }
            "const" => {
                let width: u32 = Self::param(inst, "width", None)?;
                let value: i64 = Self::param(inst, "value", None)?;
                let y = self.sig(inst, "y")?;
                self.values[y] = Value::known(width, value);
            }
            "mux" => {
                let width: u32 = Self::param(inst, "width", None)?;
                let n: usize = Self::param(inst, "inputs", None)?;
                let sel = self.sig(inst, "sel")?;
                let y = self.sig(inst, "y")?;
                let mut inputs = Vec::with_capacity(n);
                for i in 0..n {
                    inputs.push(self.sig(inst, &format!("i{i}"))?);
                }
                self.combs.push(Comb::Mux {
                    sel,
                    inputs,
                    y,
                    width,
                });
            }
            "reg" => {
                let width: u32 = Self::param(inst, "width", None)?;
                let d = self.sig(inst, "d")?;
                let q = self.sig(inst, "q")?;
                let en = inst.conn("en").map(|_| self.sig(inst, "en")).transpose()?;
                let rst = inst.conn("rst").map(|_| self.sig(inst, "rst")).transpose()?;
                self.regs.push(RegModel {
                    d,
                    q,
                    en,
                    rst,
                    width,
                });
            }
            "counter" => {
                return Err(CycleSimError::Build(
                    "counter is not supported by the cycle engine".to_string(),
                ));
            }
            "sram" => {
                let width: u32 = Self::param(inst, "width", None)?;
                let size: usize = Self::param(inst, "size", None)?;
                let mem = MemHandle::new(&inst.name, size, width);
                let mem_index = self.mems.len();
                self.mems.push(mem);
                self.mem_names.insert(inst.name.clone(), mem_index);
                let en = self.sig(inst, "en")?;
                let we = self.sig(inst, "we")?;
                let addr = self.sig(inst, "addr")?;
                let din = self.sig(inst, "din")?;
                let dout = self.sig(inst, "dout")?;
                self.combs.push(Comb::SramRead {
                    mem: mem_index,
                    en,
                    we,
                    addr,
                    dout,
                    name: inst.name.clone(),
                });
                self.srams.push(SramModel {
                    mem: mem_index,
                    en,
                    we,
                    addr,
                    din,
                    name: inst.name.clone(),
                });
            }
            "watchpoint" => {
                let value: i64 = Self::param(inst, "value", None)?;
                let sig = self.sig(inst, "sig")?;
                self.watches.push(WatchModel {
                    name: inst.name.clone(),
                    sig,
                    value,
                });
            }
            other => {
                return Err(CycleSimError::Build(format!(
                    "instance '{}' has kind '{}' unsupported by the cycle engine",
                    inst.name, other
                )));
            }
        }
        Ok(())
    }

    /// Attaches a behavioral control unit (same table as
    /// [`crate::ops::ControlUnit`]).
    ///
    /// # Errors
    ///
    /// Returns [`CycleSimError::Build`] when a referenced signal does not
    /// exist or counts disagree with the table.
    pub fn add_control_unit(
        &mut self,
        name: impl Into<String>,
        conditions: &[&str],
        outputs: &[(&str, u32)],
        table: FsmTable,
    ) -> Result<(), CycleSimError> {
        let name = name.into();
        if conditions.len() != table.condition_count() || outputs.len() != table.output_count() {
            return Err(CycleSimError::Build(format!(
                "control unit '{name}': signal count mismatch with table"
            )));
        }
        let mut cond_ids = Vec::new();
        for c in conditions {
            cond_ids.push(
                self.signal_index
                    .get(*c)
                    .copied()
                    .ok_or_else(|| CycleSimError::Build(format!("unknown signal '{c}'")))?,
            );
        }
        let mut out_ids = Vec::new();
        let mut out_widths = Vec::new();
        for (o, w) in outputs {
            out_ids.push(
                self.signal_index
                    .get(*o)
                    .copied()
                    .ok_or_else(|| CycleSimError::Build(format!("unknown signal '{o}'")))?,
            );
            out_widths.push(*w);
        }
        let fsm = FsmModel {
            name,
            table,
            conditions: cond_ids,
            outputs: out_ids,
            output_widths: out_widths,
            state: 0,
        };
        // Drive initial state outputs.
        drive_fsm_outputs(&fsm, &mut self.values);
        self.fsms.push(fsm);
        Ok(())
    }

    /// Content handle of an SRAM instance.
    pub fn mem(&self, name: &str) -> Option<&MemHandle> {
        self.mem_names.get(name).map(|&i| &self.mems[i])
    }

    /// Current value of a named signal.
    pub fn value(&self, name: &str) -> Option<Value> {
        self.signal_index.get(name).map(|&i| self.values[i])
    }

    /// Cycles executed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    fn settle(&mut self) -> Result<(), CycleSimError> {
        for _sweep in 0..self.sweep_limit {
            let mut changed = false;
            for comb in &self.combs {
                self.comb_evals += 1;
                let out = eval_comb(comb, &self.values, &self.mems)?;
                let (y, value) = out;
                if self.values[y] != value {
                    self.values[y] = value;
                    changed = true;
                }
            }
            if !changed {
                return Ok(());
            }
        }
        Err(CycleSimError::NoFixpoint { cycle: self.cycles })
    }

    /// Executes one clock cycle: settle combinational logic, then commit
    /// every sequential element on the implicit rising edge.
    ///
    /// Returns `Ok(None)` while running, or the terminating outcome.
    ///
    /// # Errors
    ///
    /// Propagates settling failures and design failures.
    pub fn step(&mut self) -> Result<Option<CycleOutcome>, CycleSimError> {
        // Reset generators assert during cycle 0.
        let reset_active = self.cycles == 0;
        for &y in &self.reset_signals {
            self.values[y] = Value::bit(reset_active);
        }

        self.settle()?;

        // Sample phase: compute register/memory/fsm updates from settled
        // values, then commit (non-blocking semantics).
        let mut reg_next = Vec::with_capacity(self.regs.len());
        for reg in &self.regs {
            let mut next = None;
            if let Some(rst) = reg.rst {
                if self.values[rst].is_true() {
                    next = Some(Value::known(reg.width, 0));
                }
            }
            if next.is_none() {
                let enabled = match reg.en {
                    Some(en) => self.values[en].is_true(),
                    None => true,
                };
                if enabled {
                    next = Some(self.values[reg.d].resize(reg.width));
                }
            }
            reg_next.push(next);
        }

        for sram in &self.srams {
            if self.values[sram.en].is_true() && self.values[sram.we].is_true() {
                let addr = self.values[sram.addr]
                    .try_u64()
                    .ok_or_else(|| CycleSimError::Failed(format!("{}: X address", sram.name)))?
                    as usize;
                let mem = &self.mems[sram.mem];
                if addr >= mem.size() {
                    return Err(CycleSimError::Failed(format!(
                        "{}: address {} out of range",
                        sram.name, addr
                    )));
                }
                let din = self.values[sram.din]
                    .try_i64()
                    .ok_or_else(|| CycleSimError::Failed(format!("{}: X write data", sram.name)))?;
                mem.store(addr, din);
            }
        }

        let mut done = false;
        for i in 0..self.fsms.len() {
            let (next_state, failed) = {
                let fsm = &self.fsms[i];
                let current = &fsm.table.states()[fsm.state];
                if current.terminal {
                    (fsm.state, None)
                } else {
                    let mut next = fsm.state;
                    let mut failed = None;
                    for transition in &current.transitions {
                        match transition.condition {
                            None => {
                                next = transition.target;
                                break;
                            }
                            Some((index, expected)) => {
                                let v = self.values[fsm.conditions[index]];
                                if v.is_x() {
                                    failed = Some(format!(
                                        "{}: X condition in state '{}'",
                                        fsm.name, current.name
                                    ));
                                    break;
                                }
                                if v.is_true() == expected {
                                    next = transition.target;
                                    break;
                                }
                            }
                        }
                    }
                    (next, failed)
                }
            };
            if let Some(message) = failed {
                return Err(CycleSimError::Failed(message));
            }
            self.fsms[i].state = next_state;
            drive_fsm_outputs(&self.fsms[i], &mut self.values);
            if self.fsms[i].table.states()[next_state].terminal {
                done = true;
            }
        }

        for (reg, next) in self.regs.iter().zip(reg_next) {
            if let Some(v) = next {
                self.values[reg.q] = v;
            }
        }

        self.cycles += 1;

        for watch in &self.watches {
            if self.values[watch.sig].try_i64() == Some(watch.value) {
                return Ok(Some(CycleOutcome::Watchpoint(watch.name.clone())));
            }
        }
        if done {
            return Ok(Some(CycleOutcome::Done));
        }
        Ok(None)
    }

    /// Runs until a control unit finishes, a watchpoint matches, or
    /// `max_cycles` elapse.
    ///
    /// # Errors
    ///
    /// Propagates [`CycleSimError`] from [`step`](Self::step).
    pub fn run(&mut self, max_cycles: u64) -> Result<CycleSummary, CycleSimError> {
        let start_cycles = self.cycles;
        let start_evals = self.comb_evals;
        let outcome = loop {
            if self.cycles - start_cycles >= max_cycles {
                break CycleOutcome::CycleLimit;
            }
            if let Some(outcome) = self.step()? {
                break outcome;
            }
        };
        Ok(CycleSummary {
            outcome,
            cycles: self.cycles - start_cycles,
            comb_evals: self.comb_evals - start_evals,
        })
    }
}

fn drive_fsm_outputs(fsm: &FsmModel, values: &mut [Value]) {
    let state = &fsm.table.states()[fsm.state];
    for (i, &signal) in fsm.outputs.iter().enumerate() {
        let value = state
            .outputs
            .iter()
            .find(|(out, _)| *out == i)
            .map(|(_, v)| *v)
            .unwrap_or(0);
        values[signal] = Value::known(fsm.output_widths[i], value);
    }
}

fn eval_comb(
    comb: &Comb,
    values: &[Value],
    mems: &[MemHandle],
) -> Result<(usize, Value), CycleSimError> {
    match comb {
        Comb::Bin {
            kind,
            a,
            b,
            y,
            width,
            name,
        } => {
            let out_width = if kind.is_comparison() { 1 } else { *width };
            let out = match (values[*a].try_i64(), values[*b].try_i64()) {
                (Some(a), Some(b)) => eval_binop(*kind, a, b, *width)
                    .map_err(|m| CycleSimError::Failed(format!("{name}: {m}")))?,
                _ => Value::x(out_width),
            };
            Ok((*y, out))
        }
        Comb::Un {
            kind,
            a,
            y,
            width,
            name,
        } => {
            let out = match values[*a].try_i64() {
                Some(a) => eval_unop(*kind, a, *width)
                    .map_err(|m| CycleSimError::Failed(format!("{name}: {m}")))?,
                None => Value::x(*width),
            };
            Ok((*y, out))
        }
        Comb::Mux {
            sel,
            inputs,
            y,
            width,
        } => {
            let out = match values[*sel].try_u64() {
                Some(s) => match inputs.get(s as usize) {
                    Some(&i) => values[i].resize(*width),
                    None => Value::x(*width),
                },
                None => Value::x(*width),
            };
            Ok((*y, out))
        }
        Comb::SramRead {
            mem,
            en,
            we,
            addr,
            dout,
            name,
        } => {
            let m = &mems[*mem];
            let width = m.width();
            if !values[*en].is_true() || values[*we].is_true() {
                // dout undefined while disabled; during writes it follows
                // the committed word only after the edge, so leave X within
                // the cycle (registers never sample it mid-write in
                // generated designs).
                return Ok((*dout, Value::x(width)));
            }
            // Bad addresses on the (combinational) read path yield X, as
            // in the event kernel; only committing writes fail.
            let out = match values[*addr].try_u64() {
                Some(a) if (a as usize) < m.size() => match m.load(a as usize) {
                    Some(v) => Value::known(width, v),
                    None => Value::x(width),
                },
                _ => Value::x(width),
            };
            let _ = name;
            Ok((*dout, out))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{Instance, Netlist};
    use crate::ops::{FsmState, FsmTransition};

    fn const_netlist() -> Netlist {
        let mut nl = Netlist::new("t");
        nl.add_signal("a", 8);
        nl.add_signal("b", 8);
        nl.add_signal("y", 8);
        nl.add_instance(
            Instance::new("ca", "const")
                .with_param("width", 8).with_param("value", 3).with_conn("y", "a"),
        );
        nl.add_instance(
            Instance::new("cb", "const")
                .with_param("width", 8).with_param("value", 4).with_conn("y", "b"),
        );
        nl.add_instance(
            Instance::new("add0", "add")
                .with_param("width", 8)
                .with_conn("a", "a").with_conn("b", "b").with_conn("y", "y"),
        );
        nl
    }

    #[test]
    fn settles_combinational_logic() {
        let mut sim = CycleSim::from_netlist(&const_netlist()).unwrap();
        sim.step().unwrap();
        assert_eq!(sim.value("y").unwrap().as_u64(), 7);
        assert!(sim.comb_evals >= 2, "at least two sweeps (change + fixpoint)");
    }

    #[test]
    fn register_pipeline_advances_per_cycle() {
        let mut nl = Netlist::new("pipe");
        nl.add_signal("clk", 1);
        nl.add_signal("a", 8);
        nl.add_signal("q1", 8);
        nl.add_signal("q2", 8);
        nl.add_instance(Instance::new("clock0", "clock").with_conn("y", "clk"));
        nl.add_instance(
            Instance::new("ca", "const")
                .with_param("width", 8).with_param("value", 9).with_conn("y", "a"),
        );
        nl.add_instance(
            Instance::new("r1", "reg").with_param("width", 8)
                .with_conn("clk", "clk").with_conn("d", "a").with_conn("q", "q1"),
        );
        nl.add_instance(
            Instance::new("r2", "reg").with_param("width", 8)
                .with_conn("clk", "clk").with_conn("d", "q1").with_conn("q", "q2"),
        );
        let mut sim = CycleSim::from_netlist(&nl).unwrap();
        sim.step().unwrap();
        assert_eq!(sim.value("q1").unwrap().as_u64(), 9);
        assert!(sim.value("q2").unwrap().is_x(), "NBA: q2 sees pre-edge q1");
        sim.step().unwrap();
        assert_eq!(sim.value("q2").unwrap().as_u64(), 9);
    }

    #[test]
    fn fsm_done_terminates_run() {
        let mut nl = Netlist::new("f");
        nl.add_signal("ctl", 8);
        let mut sim = {
            let s = CycleSim::from_netlist(&nl);
            s.unwrap()
        };
        let table = FsmTable::new(
            vec![
                FsmState {
                    name: "s0".into(),
                    outputs: vec![(0, 5)],
                    transitions: vec![FsmTransition { condition: None, target: 1 }],
                    terminal: false,
                },
                FsmState { name: "end".into(), terminal: true, ..Default::default() },
            ],
            0,
            1,
        )
        .unwrap();
        sim.add_control_unit("fsm0", &[], &[("ctl", 8)], table).unwrap();
        assert_eq!(sim.value("ctl").unwrap().as_u64(), 5);
        let summary = sim.run(100).unwrap();
        assert_eq!(summary.outcome, CycleOutcome::Done);
        assert_eq!(summary.cycles, 1);
        assert_eq!(sim.value("ctl").unwrap().as_u64(), 0);
    }

    #[test]
    fn cycle_limit_reported() {
        let mut sim = CycleSim::from_netlist(&const_netlist()).unwrap();
        let summary = sim.run(5).unwrap();
        assert_eq!(summary.outcome, CycleOutcome::CycleLimit);
        assert_eq!(summary.cycles, 5);
    }

    #[test]
    fn sram_write_then_read() {
        let mut nl = Netlist::new("m");
        nl.add_signal("clk", 1);
        nl.add_signal("en", 1);
        nl.add_signal("we", 1);
        nl.add_signal("addr", 8);
        nl.add_signal("din", 8);
        nl.add_signal("dout", 8);
        nl.add_instance(Instance::new("clock0", "clock").with_conn("y", "clk"));
        for (name, sig, value) in [
            ("ce", "en", 1i64),
            ("ca", "addr", 2),
            ("cd", "din", 0x77),
        ] {
            nl.add_instance(
                Instance::new(name, "const")
                    .with_param("width", if sig == "en" { 1 } else { 8 })
                    .with_param("value", value)
                    .with_conn("y", sig),
            );
        }
        // we is driven high for the test via const too.
        nl.add_instance(
            Instance::new("cw", "const")
                .with_param("width", 1).with_param("value", 1).with_conn("y", "we"),
        );
        nl.add_instance(
            Instance::new("m0", "sram")
                .with_param("width", 8).with_param("size", 4)
                .with_conn("clk", "clk").with_conn("en", "en").with_conn("we", "we")
                .with_conn("addr", "addr").with_conn("din", "din").with_conn("dout", "dout"),
        );
        let mut sim = CycleSim::from_netlist(&nl).unwrap();
        sim.step().unwrap();
        assert_eq!(sim.mem("m0").unwrap().load(2), Some(0x77));
    }

    #[test]
    fn unsupported_kind_rejected() {
        let mut nl = Netlist::new("c");
        nl.add_signal("clk", 1);
        nl.add_signal("q", 8);
        nl.add_instance(
            Instance::new("c0", "counter")
                .with_conn("clk", "clk").with_conn("q", "q"),
        );
        assert!(matches!(
            CycleSim::from_netlist(&nl),
            Err(CycleSimError::Build(_))
        ));
    }

    #[test]
    fn division_by_zero_is_a_design_failure() {
        let mut nl = Netlist::new("d");
        nl.add_signal("a", 8);
        nl.add_signal("z", 8);
        nl.add_signal("y", 8);
        nl.add_instance(
            Instance::new("ca", "const")
                .with_param("width", 8).with_param("value", 6).with_conn("y", "a"),
        );
        nl.add_instance(
            Instance::new("cz", "const")
                .with_param("width", 8).with_param("value", 0).with_conn("y", "z"),
        );
        nl.add_instance(
            Instance::new("d0", "div")
                .with_param("width", 8)
                .with_conn("a", "a").with_conn("b", "z").with_conn("y", "y"),
        );
        let mut sim = CycleSim::from_netlist(&nl).unwrap();
        assert!(matches!(sim.step(), Err(CycleSimError::Failed(_))));
    }
}
