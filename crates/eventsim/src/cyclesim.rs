//! A deliberately naive cycle-based reference simulator.
//!
//! The paper motivates its event-driven Java simulation by noting that
//! software RTL simulation "can be faster than commercial HDL simulators".
//! To make that claim measurable without a commercial tool, this module
//! provides the slow comparator: a simulator that, every clock cycle,
//! re-evaluates **every** combinational instance in repeated sweeps until
//! the netlist settles — no event queue, no activity tracking. The
//! `ablation_kernel` bench and the `ablation_bench` bin compare it against
//! the event kernel and the levelized engine on the same netlists.
//!
//! It interprets the same [`Netlist`] (plus behavioral FSM tables) as
//! [`Netlist::elaborate`], so all engines can run identical designs and
//! their final memory contents can be compared word for word. The model
//! itself (construction, evaluation, edge commit) is shared with
//! [`crate::levelsim`] via [`crate::simmodel`].

use crate::memory::MemHandle;
use crate::netlist::Netlist;
use crate::ops::FsmTable;
use crate::simmodel::{eval_comb, FlatModel};
use crate::value::Value;
use std::error::Error;
use std::fmt;
use std::time::Instant;

/// How many unstable/involved instances an error message spells out before
/// eliding the rest.
const REPORT_CAP: usize = 8;

pub(crate) fn write_instance_report(
    f: &mut fmt::Formatter<'_>,
    items: &[(String, String)],
) -> fmt::Result {
    for (i, (name, detail)) in items.iter().take(REPORT_CAP).enumerate() {
        let sep = if i == 0 { "" } else { ", " };
        write!(f, "{sep}{name} ({detail})")?;
    }
    if items.len() > REPORT_CAP {
        write!(f, ", … {} more", items.len() - REPORT_CAP)?;
    }
    Ok(())
}

/// Errors raised while building or running a [`CycleSim`] (or its levelized
/// sibling [`crate::levelsim::LevelSim`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CycleSimError {
    /// The netlist references something the cycle engine cannot model.
    Build(String),
    /// Combinational logic failed to settle within the sweep budget.
    NoFixpoint {
        /// The cycle during which settling failed.
        cycle: u64,
        /// Instances still toggling in the last sweep, as
        /// `(instance name, "output = value")` pairs.
        unstable: Vec<(String, String)>,
    },
    /// The netlist contains a true combinational cycle — reported at build
    /// time by the level engine instead of burning a sweep budget.
    CombinationalCycle {
        /// Instances on one concrete cycle, in dependency order.
        instances: Vec<String>,
    },
    /// The design failed (division by zero, bad memory access, X
    /// condition).
    Failed(String),
}

impl fmt::Display for CycleSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CycleSimError::Build(m) => write!(f, "cannot build cycle model: {m}"),
            CycleSimError::NoFixpoint { cycle, unstable } => {
                write!(f, "combinational logic did not settle in cycle {cycle}")?;
                if !unstable.is_empty() {
                    write!(f, "; still toggling: ")?;
                    write_instance_report(f, unstable)?;
                }
                Ok(())
            }
            CycleSimError::CombinationalCycle { instances } => {
                write!(f, "combinational cycle: ")?;
                for (i, name) in instances.iter().take(REPORT_CAP).enumerate() {
                    let sep = if i == 0 { "" } else { " -> " };
                    write!(f, "{sep}{name}")?;
                }
                if instances.len() > REPORT_CAP {
                    write!(f, " -> … {} more", instances.len() - REPORT_CAP)?;
                }
                match instances.first() {
                    Some(first) if instances.len() <= REPORT_CAP => {
                        write!(f, " -> {first}")
                    }
                    _ => Ok(()),
                }
            }
            CycleSimError::Failed(m) => write!(f, "design failure: {m}"),
        }
    }
}

impl Error for CycleSimError {}

/// Outcome of [`CycleSim::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CycleOutcome {
    /// A control unit reached its terminal state.
    Done,
    /// The cycle budget was exhausted first.
    CycleLimit,
    /// A watchpoint matched.
    Watchpoint(String),
}

/// Summary statistics of a [`CycleSim::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleSummary {
    /// How the run ended.
    pub outcome: CycleOutcome,
    /// Clock cycles executed.
    pub cycles: u64,
    /// Total combinational evaluations performed (the naive-cost metric;
    /// compare with the event kernel's `evals`).
    pub comb_evals: u64,
}

/// The cycle-based engine. See the [module docs](self).
pub struct CycleSim {
    model: FlatModel,
    sweep_limit: u32,
    cycles: u64,
    comb_evals: u64,
    changed_scratch: Vec<usize>,
    sram_scratch: Vec<usize>,
    unstable_scratch: Vec<usize>,
    /// Opt-in per-phase timing. `None` (the default) costs two
    /// `is_some` branches per clock cycle — nothing per evaluation.
    profile: Option<Box<CycleProfile>>,
}

/// Per-phase timing of the cycle engine's step loop, collected when
/// [`CycleSim::enable_profile`] was called.
#[derive(Debug, Clone, Copy, Default)]
pub struct CycleProfile {
    /// Clock cycles profiled.
    pub cycles: u64,
    /// Monotonic nanoseconds spent in the settle phase (the
    /// sweep-to-fixpoint over every combinational instance).
    pub settle_nanos: u64,
    /// Monotonic nanoseconds spent committing the rising edge
    /// (registers, SRAM writes, FSM transitions).
    pub commit_nanos: u64,
}

impl CycleSim {
    /// Builds a cycle model from a structural netlist.
    ///
    /// `clock` instances are absorbed into the cycle abstraction; `reset`
    /// instances assert during cycle 0 only.
    ///
    /// # Errors
    ///
    /// Returns [`CycleSimError::Build`] for kinds or parameters the cycle
    /// engine cannot model (the supported set matches
    /// [`Netlist::elaborate`]).
    pub fn from_netlist(netlist: &Netlist) -> Result<Self, CycleSimError> {
        Ok(CycleSim {
            model: FlatModel::from_netlist(netlist)?,
            sweep_limit: 1000,
            cycles: 0,
            comb_evals: 0,
            changed_scratch: Vec::new(),
            sram_scratch: Vec::new(),
            unstable_scratch: Vec::new(),
            profile: None,
        })
    }

    /// Turns on per-phase timing. Profiling only observes: cycle and
    /// evaluation counters, values, and outcomes are bit-identical with
    /// it on or off.
    pub fn enable_profile(&mut self) {
        self.profile = Some(Box::default());
    }

    /// Rewinds a built (and control-unit-attached) simulator to its
    /// pre-first-step state so it can be re-run without rebuilding: signal
    /// values, FSM states, memories, counters, and injected faults all
    /// reset. Attached control units stay attached. A reset simulator is
    /// bit-identical to a freshly built one — see the `reset_reuse` tests.
    pub fn reset_state(&mut self) {
        self.model.reset_state();
        self.cycles = 0;
        self.comb_evals = 0;
        self.changed_scratch.clear();
        self.sram_scratch.clear();
        self.unstable_scratch.clear();
        if self.profile.is_some() {
            self.profile = Some(Box::default());
        }
    }

    /// The accumulated profile, when [`enable_profile`](Self::enable_profile)
    /// was called.
    pub fn profile(&self) -> Option<&CycleProfile> {
        self.profile.as_deref()
    }

    /// Attaches a behavioral control unit (same table as
    /// [`crate::ops::ControlUnit`]).
    ///
    /// # Errors
    ///
    /// Returns [`CycleSimError::Build`] when a referenced signal does not
    /// exist or counts disagree with the table.
    pub fn add_control_unit(
        &mut self,
        name: impl Into<String>,
        conditions: &[&str],
        outputs: &[(&str, u32)],
        table: FsmTable,
    ) -> Result<(), CycleSimError> {
        self.model
            .add_control_unit(name.into(), conditions, outputs, table)
    }

    /// Content handle of an SRAM instance.
    pub fn mem(&self, name: &str) -> Option<&MemHandle> {
        self.model.mem(name)
    }

    /// Current value of a named signal.
    pub fn value(&self, name: &str) -> Option<Value> {
        self.model.value(name)
    }

    /// Injects a stuck-at fault on one bit of a named signal: every write
    /// to the signal is clamped, so the bit holds `value` for the rest of
    /// the run. Returns `false` (without injecting) when the signal does
    /// not exist in this model.
    ///
    /// # Errors
    ///
    /// Returns [`CycleSimError::Build`] when `bit` is out of range for
    /// the signal's width.
    pub fn inject_stuck_at(
        &mut self,
        signal: &str,
        bit: u32,
        value: bool,
    ) -> Result<bool, CycleSimError> {
        Ok(self.model.inject_stuck(signal, bit, value)?.is_some())
    }

    /// Injects a transient single-bit flip (an SEU) on a named signal at
    /// clock cycle `cycle`: the bit is inverted just before that cycle's
    /// settle, so downstream logic and the edge commit observe the faulty
    /// value, and normal operation restores it afterwards. Returns
    /// `false` (without injecting) when the signal does not exist.
    ///
    /// # Errors
    ///
    /// Returns [`CycleSimError::Build`] when `bit` is out of range.
    pub fn inject_transient_flip(
        &mut self,
        signal: &str,
        bit: u32,
        cycle: u64,
    ) -> Result<bool, CycleSimError> {
        Ok(self.model.inject_flip(signal, bit, cycle)?.is_some())
    }

    /// Cycles executed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Combinational evaluations performed so far.
    pub fn comb_evals(&self) -> u64 {
        self.comb_evals
    }

    fn settle(&mut self) -> Result<(), CycleSimError> {
        // Track which instances changed during the most recent sweep so a
        // blown budget can name the culprits instead of just a cycle count.
        // The scratch vector lives on the struct so the per-cycle hot path
        // never allocates.
        let mut last_changed = std::mem::take(&mut self.unstable_scratch);
        for _sweep in 0..self.sweep_limit {
            last_changed.clear();
            for index in 0..self.model.combs.len() {
                self.comb_evals += 1;
                let (y, value) =
                    eval_comb(&self.model.combs[index], &self.model.values, &self.model.mems)?;
                let value = self.model.clamp_value(y, value);
                if self.model.values[y] != value {
                    self.model.values[y] = value;
                    last_changed.push(index);
                }
            }
            if last_changed.is_empty() {
                self.unstable_scratch = last_changed;
                return Ok(());
            }
        }
        Err(CycleSimError::NoFixpoint {
            cycle: self.cycles,
            unstable: self.model.describe_combs(&last_changed),
        })
    }

    /// Executes one clock cycle: settle combinational logic, then commit
    /// every sequential element on the implicit rising edge.
    ///
    /// Returns `Ok(None)` while running, or the terminating outcome.
    ///
    /// # Errors
    ///
    /// Propagates settling failures and design failures.
    pub fn step(&mut self) -> Result<Option<CycleOutcome>, CycleSimError> {
        // Transient fault flips scheduled for this cycle apply before the
        // settle, so the faulty value propagates through combinational
        // logic and is sampled by the edge commit — mirroring the event
        // kernel's flip-just-before-the-edge timing. A flip on a
        // comb-driven slot is recomputed away by the sweep; flips are
        // meaningful on sequential outputs (registers, FSM outputs).
        if !self.model.fault_flips.is_empty() {
            for i in 0..self.model.fault_flips.len() {
                let (cycle, slot, mask) = self.model.fault_flips[i];
                if cycle == self.cycles {
                    let v = self.model.values[slot];
                    if let Some(bits) = v.try_u64() {
                        self.model.values[slot] = Value::known(v.width(), (bits ^ mask) as i64);
                    }
                }
            }
        }

        // Reset generators assert during cycle 0.
        let reset_active = self.cycles == 0;
        for i in 0..self.model.reset_signals.len() {
            let y = self.model.reset_signals[i];
            let value = self.model.clamp_value(y, Value::bit(reset_active));
            self.model.values[y] = value;
        }

        let settle_started = self.profile.is_some().then(Instant::now);
        self.settle()?;
        if let (Some(profile), Some(started)) = (self.profile.as_mut(), settle_started) {
            profile.settle_nanos += started.elapsed().as_nanos() as u64;
        }

        self.changed_scratch.clear();
        self.sram_scratch.clear();
        let commit_started = self.profile.is_some().then(Instant::now);
        let effects =
            self.model
                .commit_edge(&mut self.changed_scratch, &mut self.sram_scratch, None)?;
        if let (Some(profile), Some(started)) = (self.profile.as_mut(), commit_started) {
            profile.commit_nanos += started.elapsed().as_nanos() as u64;
            profile.cycles += 1;
        }

        self.cycles += 1;

        if let Some(name) = effects.watch {
            return Ok(Some(CycleOutcome::Watchpoint(name)));
        }
        if effects.done {
            return Ok(Some(CycleOutcome::Done));
        }
        Ok(None)
    }

    /// Runs until a control unit finishes, a watchpoint matches, or
    /// `max_cycles` elapse.
    ///
    /// # Errors
    ///
    /// Propagates [`CycleSimError`] from [`step`](Self::step).
    pub fn run(&mut self, max_cycles: u64) -> Result<CycleSummary, CycleSimError> {
        let start_cycles = self.cycles;
        let start_evals = self.comb_evals;
        let outcome = loop {
            if self.cycles - start_cycles >= max_cycles {
                break CycleOutcome::CycleLimit;
            }
            if let Some(outcome) = self.step()? {
                break outcome;
            }
        };
        Ok(CycleSummary {
            outcome,
            cycles: self.cycles - start_cycles,
            comb_evals: self.comb_evals - start_evals,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{Instance, Netlist};
    use crate::ops::{FsmState, FsmTransition};

    fn const_netlist() -> Netlist {
        let mut nl = Netlist::new("t");
        nl.add_signal("a", 8);
        nl.add_signal("b", 8);
        nl.add_signal("y", 8);
        nl.add_instance(
            Instance::new("ca", "const")
                .with_param("width", 8).with_param("value", 3).with_conn("y", "a"),
        );
        nl.add_instance(
            Instance::new("cb", "const")
                .with_param("width", 8).with_param("value", 4).with_conn("y", "b"),
        );
        nl.add_instance(
            Instance::new("add0", "add")
                .with_param("width", 8)
                .with_conn("a", "a").with_conn("b", "b").with_conn("y", "y"),
        );
        nl
    }

    #[test]
    fn settles_combinational_logic() {
        let mut sim = CycleSim::from_netlist(&const_netlist()).unwrap();
        sim.step().unwrap();
        assert_eq!(sim.value("y").unwrap().as_u64(), 7);
        assert!(sim.comb_evals >= 2, "at least two sweeps (change + fixpoint)");
    }

    #[test]
    fn register_pipeline_advances_per_cycle() {
        let mut nl = Netlist::new("pipe");
        nl.add_signal("clk", 1);
        nl.add_signal("a", 8);
        nl.add_signal("q1", 8);
        nl.add_signal("q2", 8);
        nl.add_instance(Instance::new("clock0", "clock").with_conn("y", "clk"));
        nl.add_instance(
            Instance::new("ca", "const")
                .with_param("width", 8).with_param("value", 9).with_conn("y", "a"),
        );
        nl.add_instance(
            Instance::new("r1", "reg").with_param("width", 8)
                .with_conn("clk", "clk").with_conn("d", "a").with_conn("q", "q1"),
        );
        nl.add_instance(
            Instance::new("r2", "reg").with_param("width", 8)
                .with_conn("clk", "clk").with_conn("d", "q1").with_conn("q", "q2"),
        );
        let mut sim = CycleSim::from_netlist(&nl).unwrap();
        sim.step().unwrap();
        assert_eq!(sim.value("q1").unwrap().as_u64(), 9);
        assert!(sim.value("q2").unwrap().is_x(), "NBA: q2 sees pre-edge q1");
        sim.step().unwrap();
        assert_eq!(sim.value("q2").unwrap().as_u64(), 9);
    }

    #[test]
    fn fsm_done_terminates_run() {
        let mut nl = Netlist::new("f");
        nl.add_signal("ctl", 8);
        let mut sim = {
            let s = CycleSim::from_netlist(&nl);
            s.unwrap()
        };
        let table = FsmTable::new(
            vec![
                FsmState {
                    name: "s0".into(),
                    outputs: vec![(0, 5)],
                    transitions: vec![FsmTransition { condition: None, target: 1 }],
                    terminal: false,
                },
                FsmState { name: "end".into(), terminal: true, ..Default::default() },
            ],
            0,
            1,
        )
        .unwrap();
        sim.add_control_unit("fsm0", &[], &[("ctl", 8)], table).unwrap();
        assert_eq!(sim.value("ctl").unwrap().as_u64(), 5);
        let summary = sim.run(100).unwrap();
        assert_eq!(summary.outcome, CycleOutcome::Done);
        assert_eq!(summary.cycles, 1);
        assert_eq!(sim.value("ctl").unwrap().as_u64(), 0);
    }

    #[test]
    fn cycle_limit_reported() {
        let mut sim = CycleSim::from_netlist(&const_netlist()).unwrap();
        let summary = sim.run(5).unwrap();
        assert_eq!(summary.outcome, CycleOutcome::CycleLimit);
        assert_eq!(summary.cycles, 5);
    }

    #[test]
    fn sram_write_then_read() {
        let mut nl = Netlist::new("m");
        nl.add_signal("clk", 1);
        nl.add_signal("en", 1);
        nl.add_signal("we", 1);
        nl.add_signal("addr", 8);
        nl.add_signal("din", 8);
        nl.add_signal("dout", 8);
        nl.add_instance(Instance::new("clock0", "clock").with_conn("y", "clk"));
        for (name, sig, value) in [
            ("ce", "en", 1i64),
            ("ca", "addr", 2),
            ("cd", "din", 0x77),
        ] {
            nl.add_instance(
                Instance::new(name, "const")
                    .with_param("width", if sig == "en" { 1 } else { 8 })
                    .with_param("value", value)
                    .with_conn("y", sig),
            );
        }
        // we is driven high for the test via const too.
        nl.add_instance(
            Instance::new("cw", "const")
                .with_param("width", 1).with_param("value", 1).with_conn("y", "we"),
        );
        nl.add_instance(
            Instance::new("m0", "sram")
                .with_param("width", 8).with_param("size", 4)
                .with_conn("clk", "clk").with_conn("en", "en").with_conn("we", "we")
                .with_conn("addr", "addr").with_conn("din", "din").with_conn("dout", "dout"),
        );
        let mut sim = CycleSim::from_netlist(&nl).unwrap();
        sim.step().unwrap();
        assert_eq!(sim.mem("m0").unwrap().load(2), Some(0x77));
    }

    #[test]
    fn unsupported_kind_rejected() {
        let mut nl = Netlist::new("c");
        nl.add_signal("clk", 1);
        nl.add_signal("q", 8);
        nl.add_instance(
            Instance::new("c0", "counter")
                .with_conn("clk", "clk").with_conn("q", "q"),
        );
        assert!(matches!(
            CycleSim::from_netlist(&nl),
            Err(CycleSimError::Build(_))
        ));
    }

    #[test]
    fn division_by_zero_is_a_design_failure() {
        let mut nl = Netlist::new("d");
        nl.add_signal("a", 8);
        nl.add_signal("z", 8);
        nl.add_signal("y", 8);
        nl.add_instance(
            Instance::new("ca", "const")
                .with_param("width", 8).with_param("value", 6).with_conn("y", "a"),
        );
        nl.add_instance(
            Instance::new("cz", "const")
                .with_param("width", 8).with_param("value", 0).with_conn("y", "z"),
        );
        nl.add_instance(
            Instance::new("d0", "div")
                .with_param("width", 8)
                .with_conn("a", "a").with_conn("b", "z").with_conn("y", "y"),
        );
        let mut sim = CycleSim::from_netlist(&nl).unwrap();
        assert!(matches!(sim.step(), Err(CycleSimError::Failed(_))));
    }

    #[test]
    fn no_fixpoint_names_the_toggling_instances() {
        // A ring oscillator: y = not y, seeded to a known value by a const
        // driver (an all-X loop would settle at X), plus an innocent
        // bystander.
        let mut nl = Netlist::new("osc");
        nl.add_signal("y", 1);
        nl.add_signal("a", 8);
        nl.add_signal("b", 8);
        nl.add_instance(
            Instance::new("cy", "const")
                .with_param("width", 1).with_param("value", 0).with_conn("y", "y"),
        );
        nl.add_instance(
            Instance::new("osc0", "not")
                .with_param("width", 1)
                .with_conn("a", "y").with_conn("y", "y"),
        );
        nl.add_instance(
            Instance::new("ca", "const")
                .with_param("width", 8).with_param("value", 1).with_conn("y", "a"),
        );
        nl.add_instance(
            Instance::new("inc0", "add")
                .with_param("width", 8)
                .with_conn("a", "a").with_conn("b", "a").with_conn("y", "b"),
        );
        let mut sim = CycleSim::from_netlist(&nl).unwrap();
        match sim.step() {
            Err(CycleSimError::NoFixpoint { cycle, unstable }) => {
                assert_eq!(cycle, 0);
                assert_eq!(unstable.len(), 1, "only the oscillator is unstable");
                assert_eq!(unstable[0].0, "osc0");
                let rendered = CycleSimError::NoFixpoint { cycle, unstable }.to_string();
                assert!(rendered.contains("osc0"), "message names the instance: {rendered}");
            }
            other => panic!("expected NoFixpoint, got {other:?}"),
        }
    }
}
