//! Memory models: the SRAM component and the shared-content handle used to
//! load stimulus before simulation and read results after it.

use crate::component::{Component, Sensitivity, SignalId};
use crate::kernel::Context;
use crate::value::Value;
use std::cell::RefCell;
use std::rc::Rc;

/// Shared handle to a memory's contents.
///
/// The paper stores memory contents and I/O data in files that both the
/// golden software execution and the simulation read and write. The handle
/// is the in-process analogue: the test flow fills it from a stimulus file,
/// hands it to the [`Sram`] component, keeps a clone, and diffs the
/// contents after simulation.
///
/// Cloning is cheap and shares the same storage (single-threaded, like the
/// kernel itself).
///
/// ```
/// use eventsim::MemHandle;
/// let mem = MemHandle::new("frame", 16, 8);
/// mem.store(3, 42);
/// assert_eq!(mem.load(3), Some(42));
/// assert_eq!(mem.clone().load(3), Some(42)); // shared storage
/// ```
#[derive(Debug, Clone)]
pub struct MemHandle {
    name: String,
    width: u32,
    cells: Rc<RefCell<Vec<Option<i64>>>>,
}

impl MemHandle {
    /// Creates a memory with `size` words of `width` bits, all
    /// uninitialized.
    pub fn new(name: impl Into<String>, size: usize, width: u32) -> Self {
        MemHandle {
            name: name.into(),
            width,
            cells: Rc::new(RefCell::new(vec![None; size])),
        }
    }

    /// The memory name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Word width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Number of words.
    pub fn size(&self) -> usize {
        self.cells.borrow().len()
    }

    /// Reads a word; `None` when out of bounds or uninitialized.
    pub fn load(&self, addr: usize) -> Option<i64> {
        self.cells.borrow().get(addr).copied().flatten()
    }

    /// Writes a word, truncating to the memory width.
    ///
    /// # Panics
    ///
    /// Panics when `addr` is out of bounds.
    pub fn store(&self, addr: usize, value: i64) {
        let masked = Value::known(self.width, value).as_i64();
        self.cells.borrow_mut()[addr] = Some(masked);
    }

    /// Clears a word back to uninitialized.
    ///
    /// # Panics
    ///
    /// Panics when `addr` is out of bounds.
    pub fn clear(&self, addr: usize) {
        self.cells.borrow_mut()[addr] = None;
    }

    /// Copies every initialized word of `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics when the sizes differ.
    pub fn copy_from(&self, other: &MemHandle) {
        assert_eq!(self.size(), other.size(), "memory size mismatch");
        let src = other.cells.borrow();
        let mut dst = self.cells.borrow_mut();
        for (d, s) in dst.iter_mut().zip(src.iter()) {
            if s.is_some() {
                *d = *s;
            }
        }
    }

    /// Snapshot of all words (uninitialized words are `None`).
    pub fn snapshot(&self) -> Vec<Option<i64>> {
        self.cells.borrow().clone()
    }

    /// Fills the whole memory from an iterator, starting at address 0.
    pub fn fill<I: IntoIterator<Item = i64>>(&self, values: I) {
        for (addr, value) in values.into_iter().enumerate() {
            self.store(addr, value);
        }
    }
}

/// A single-port SRAM with asynchronous read and synchronous write.
///
/// Ports: `clk`, `en` (port enable), `we` (write enable), `addr`, `din`,
/// `dout`.
///
/// * While `en` is true and `we` false, `dout` combinationally follows
///   `mem[addr]` (an uninitialized word reads as `X`).
/// * On a rising `clk` edge with `en` and `we` true, `mem[addr] <= din`.
/// * Accessing an out-of-range or `X` address while enabled **fails the
///   run** — exactly the class of bug the test infrastructure exists to
///   catch in generated datapaths.
pub struct Sram {
    name: String,
    clk: SignalId,
    en: SignalId,
    we: SignalId,
    addr: SignalId,
    din: SignalId,
    dout: SignalId,
    mem: MemHandle,
    prev_clk: bool,
}

impl Sram {
    /// Creates an SRAM bound to the given content handle.
    #[allow(clippy::too_many_arguments)] // one argument per port, like the netlist
    pub fn new(
        name: impl Into<String>,
        clk: SignalId,
        en: SignalId,
        we: SignalId,
        addr: SignalId,
        din: SignalId,
        dout: SignalId,
        mem: MemHandle,
    ) -> Self {
        Sram {
            name: name.into(),
            clk,
            en,
            we,
            addr,
            din,
            dout,
            mem,
            prev_clk: false,
        }
    }

    /// The shared content handle.
    pub fn mem(&self) -> &MemHandle {
        &self.mem
    }
}

impl Component for Sram {
    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> Vec<Sensitivity> {
        // Mixed sensitivity: the asynchronous read path reacts to any
        // en/we/addr change; writes commit on the rising clock edge,
        // detected via prev_clk — which needs to see falling edges too,
        // so the clock stays at full (Any) sensitivity.
        vec![
            Sensitivity::any(self.clk),
            Sensitivity::any(self.en),
            Sensitivity::any(self.we),
            Sensitivity::any(self.addr),
        ]
    }

    fn react(&mut self, ctx: &mut Context<'_>) {
        let clk = ctx.get(self.clk).is_true();
        let rising = clk && !self.prev_clk;
        self.prev_clk = clk;

        let enabled = ctx.get(self.en).is_true();
        let writing = ctx.get(self.we).is_true();
        let width = self.mem.width();

        if !enabled {
            ctx.set(self.dout, Value::x(width));
            return;
        }

        // A transient X or out-of-range address while signals settle is a
        // normal glitch (the read path is combinational); it only becomes
        // an error when a *write commits* at a clock edge.
        let addr = match ctx.get(self.addr).try_u64() {
            Some(a) if (a as usize) < self.mem.size() => Some(a as usize),
            Some(a) => {
                if writing && rising {
                    ctx.fail(format!(
                        "{}: write to address {} out of range (size {})",
                        self.name,
                        a,
                        self.mem.size()
                    ));
                    return;
                }
                None
            }
            None => {
                if writing && rising {
                    ctx.fail(format!("{}: write with X address", self.name));
                    return;
                }
                None
            }
        };

        let Some(addr) = addr else {
            ctx.set(self.dout, Value::x(width));
            return;
        };

        if writing && rising {
            let din = ctx.get(self.din);
            match din.try_i64() {
                Some(v) => self.mem.store(addr, v),
                None => {
                    ctx.fail(format!("{}: write of X data to address {}", self.name, addr));
                    return;
                }
            }
        }
        // Asynchronous read (write-through during writes).
        let out = match self.mem.load(addr) {
            Some(v) => Value::known(width, v),
            None => Value::x(width),
        };
        ctx.set(self.dout, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{RunOutcome, SimTime, Simulator};
    use crate::ops::{Clock, ConstDriver};

    struct Fixture {
        sim: Simulator,
        en: SignalId,
        we: SignalId,
        addr: SignalId,
        din: SignalId,
        dout: SignalId,
        mem: MemHandle,
    }

    fn fixture() -> Fixture {
        let mut sim = Simulator::new();
        let clk = sim.add_signal("clk", 1);
        let en = sim.add_signal("en", 1);
        let we = sim.add_signal("we", 1);
        let addr = sim.add_signal("addr", 16);
        let din = sim.add_signal("din", 8);
        let dout = sim.add_signal("dout", 8);
        sim.add_component(Clock::new("clk0", clk, 10));
        let mem = MemHandle::new("m", 16, 8);
        sim.add_component(Sram::new("sram0", clk, en, we, addr, din, dout, mem.clone()));
        Fixture {
            sim,
            en,
            we,
            addr,
            din,
            dout,
            mem,
        }
    }

    #[test]
    fn async_read_follows_address() {
        let mut f = fixture();
        f.mem.store(2, 77);
        f.sim.add_component(ConstDriver::new("ce", f.en, Value::bit(true)));
        f.sim.add_component(ConstDriver::new("cw", f.we, Value::bit(false)));
        f.sim.add_component(ConstDriver::new("ca", f.addr, Value::known(16, 2)));
        f.sim.run(SimTime(3)).unwrap();
        assert_eq!(f.sim.value(f.dout).as_u64(), 77);
    }

    #[test]
    fn uninitialized_word_reads_x() {
        let mut f = fixture();
        f.sim.add_component(ConstDriver::new("ce", f.en, Value::bit(true)));
        f.sim.add_component(ConstDriver::new("cw", f.we, Value::bit(false)));
        f.sim.add_component(ConstDriver::new("ca", f.addr, Value::known(16, 5)));
        f.sim.run(SimTime(3)).unwrap();
        assert!(f.sim.value(f.dout).is_x());
    }

    #[test]
    fn write_commits_on_rising_edge_only() {
        let mut f = fixture();
        f.sim.add_component(ConstDriver::new("ce", f.en, Value::bit(true)));
        f.sim.add_component(ConstDriver::new("cw", f.we, Value::bit(true)));
        f.sim.add_component(ConstDriver::new("ca", f.addr, Value::known(16, 4)));
        f.sim.add_component(ConstDriver::new("cd", f.din, Value::known(8, 0x5A)));
        f.sim.run(SimTime(3)).unwrap();
        assert_eq!(f.mem.load(4), None, "no edge yet");
        f.sim.run(SimTime(6)).unwrap(); // rising edge at t=5
        assert_eq!(f.mem.load(4), Some(0x5A));
        // Write-through dout.
        assert_eq!(f.sim.value(f.dout).as_u64(), 0x5A);
    }

    #[test]
    fn disabled_port_reads_x_and_never_writes() {
        let mut f = fixture();
        f.mem.store(0, 1);
        f.sim.add_component(ConstDriver::new("ce", f.en, Value::bit(false)));
        f.sim.add_component(ConstDriver::new("cw", f.we, Value::bit(true)));
        f.sim.add_component(ConstDriver::new("ca", f.addr, Value::known(16, 0)));
        f.sim.add_component(ConstDriver::new("cd", f.din, Value::known(8, 9)));
        f.sim.run(SimTime(50)).unwrap();
        assert!(f.sim.value(f.dout).is_x());
        assert_eq!(f.mem.load(0), Some(1), "write suppressed while disabled");
    }

    #[test]
    fn out_of_range_read_glitches_to_x_but_write_fails() {
        // Reads with a bad address are transient glitches: dout is X.
        let mut f = fixture();
        f.sim.add_component(ConstDriver::new("ce", f.en, Value::bit(true)));
        f.sim.add_component(ConstDriver::new("cw", f.we, Value::bit(false)));
        f.sim.add_component(ConstDriver::new("ca", f.addr, Value::known(16, 99)));
        let summary = f.sim.run(SimTime(50)).unwrap();
        assert!(summary.outcome.is_ok(), "{:?}", summary.outcome);
        assert!(f.sim.value(f.dout).is_x());

        // A committing write with the same address is a design failure.
        let mut f = fixture();
        f.sim.add_component(ConstDriver::new("ce", f.en, Value::bit(true)));
        f.sim.add_component(ConstDriver::new("cw", f.we, Value::bit(true)));
        f.sim.add_component(ConstDriver::new("ca", f.addr, Value::known(16, 99)));
        f.sim.add_component(ConstDriver::new("cd", f.din, Value::known(8, 1)));
        let summary = f.sim.run(SimTime(50)).unwrap();
        assert!(
            matches!(summary.outcome, RunOutcome::Failed(ref m) if m.contains("out of range")),
            "{:?}",
            summary.outcome
        );
    }

    #[test]
    fn x_address_read_gives_x_but_write_fails() {
        let mut f = fixture();
        f.sim.add_component(ConstDriver::new("ce", f.en, Value::bit(true)));
        f.sim.add_component(ConstDriver::new("cw", f.we, Value::bit(false)));
        // addr never driven: read path yields X, no failure.
        let summary = f.sim.run(SimTime(50)).unwrap();
        assert!(summary.outcome.is_ok());
        assert!(f.sim.value(f.dout).is_x());

        let mut f = fixture();
        f.sim.add_component(ConstDriver::new("ce", f.en, Value::bit(true)));
        f.sim.add_component(ConstDriver::new("cw", f.we, Value::bit(true)));
        f.sim.add_component(ConstDriver::new("cd", f.din, Value::known(8, 1)));
        let summary = f.sim.run(SimTime(50)).unwrap();
        assert!(matches!(summary.outcome, RunOutcome::Failed(ref m) if m.contains("X address")));
    }

    #[test]
    fn handle_fill_snapshot_copy() {
        let a = MemHandle::new("a", 4, 8);
        let b = MemHandle::new("b", 4, 8);
        a.fill([1, 2, 3]);
        assert_eq!(a.snapshot(), [Some(1), Some(2), Some(3), None]);
        b.store(3, 9);
        b.copy_from(&a);
        assert_eq!(b.snapshot(), [Some(1), Some(2), Some(3), Some(9)]);
        a.clear(0);
        assert_eq!(a.load(0), None);
    }

    #[test]
    fn store_truncates_to_width() {
        let m = MemHandle::new("m", 2, 4);
        m.store(0, 0x1F);
        assert_eq!(m.load(0), Some(-1)); // 0xF sign-extended at width 4
    }
}
