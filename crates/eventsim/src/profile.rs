//! Per-component evaluation timing for the event kernel.
//!
//! [`EvalTimer`] is a [`KernelHook`] that opts into the kernel's
//! per-evaluation timing (`KernelHook::wants_evals`) and accumulates
//! `(evals, nanos)` per component locally, merging into a shared
//! [`EvalProfile`] handle at run end — the flow installs the hook,
//! runs, and harvests the handle afterwards without owning the
//! simulator. Timing only observes: kernel counters, scheduling, and
//! results are bit-identical with or without the hook installed.

use crate::component::ComponentId;
use crate::kernel::{KernelHook, RunSummary};
use std::sync::{Arc, Mutex};

/// Accumulated per-component evaluation timing.
#[derive(Debug, Clone, Default)]
pub struct EvalProfile {
    /// `(evals, nanos)` indexed by component id; components never
    /// evaluated keep `(0, 0)`.
    pub components: Vec<(u64, u64)>,
}

impl EvalProfile {
    /// Total timed evaluations across all components.
    pub fn total_evals(&self) -> u64 {
        self.components.iter().map(|(evals, _)| evals).sum()
    }

    /// Total evaluation nanoseconds across all components.
    pub fn total_nanos(&self) -> u64 {
        self.components.iter().map(|(_, nanos)| nanos).sum()
    }
}

/// The shared handle [`EvalTimer::new`] returns alongside the hook.
pub type EvalProfileHandle = Arc<Mutex<EvalProfile>>;

/// A [`KernelHook`] timing every ungated component evaluation.
#[derive(Debug)]
pub struct EvalTimer {
    shared: EvalProfileHandle,
    local: Vec<(u64, u64)>,
}

impl EvalTimer {
    /// Creates the hook plus the handle its totals are merged into at
    /// each run end.
    pub fn new() -> (EvalTimer, EvalProfileHandle) {
        let shared: EvalProfileHandle = Arc::default();
        (
            EvalTimer {
                shared: Arc::clone(&shared),
                local: Vec::new(),
            },
            shared,
        )
    }
}

impl KernelHook for EvalTimer {
    fn wants_evals(&self) -> bool {
        true
    }

    fn on_eval(&mut self, component: ComponentId, nanos: u64) {
        if component.0 >= self.local.len() {
            self.local.resize(component.0 + 1, (0, 0));
        }
        let slot = &mut self.local[component.0];
        slot.0 += 1;
        slot.1 += nanos;
    }

    fn on_run_end(&mut self, _summary: &RunSummary) {
        let mut shared = self
            .shared
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if shared.components.len() < self.local.len() {
            shared.components.resize(self.local.len(), (0, 0));
        }
        for (index, (evals, nanos)) in self.local.iter().enumerate() {
            shared.components[index].0 += evals;
            shared.components[index].1 += nanos;
        }
        self.local.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{Clock, Counter};
    use crate::{SimTime, Simulator};

    fn counter_sim() -> Simulator {
        let mut sim = Simulator::new();
        let clk = sim.add_signal("clk", 1);
        let count = sim.add_signal("count", 8);
        sim.add_component(Clock::new("clk0", clk, 10));
        sim.add_component(Counter::new("cnt0", clk, count));
        sim
    }

    #[test]
    fn timer_accumulates_and_counters_stay_identical() {
        let mut plain = counter_sim();
        plain.run(SimTime(100)).unwrap();

        let mut timed = counter_sim();
        let (timer, handle) = EvalTimer::new();
        timed.set_hook(Box::new(timer));
        timed.run(SimTime(100)).unwrap();

        assert_eq!(plain.stats(), timed.stats(), "profiling changed counters");
        let profile = handle.lock().unwrap();
        assert!(profile.total_evals() > 0, "no evaluations were timed");
        // Gated no-op activations count in the histogram but are never
        // dispatched, hence never timed.
        assert!(
            profile.total_evals() <= timed.activation_counts().iter().sum::<u64>(),
            "timed more evaluations than activations"
        );
    }
}
