//! Bit-vector signal values.

use std::fmt;

/// Maximum supported signal width in bits.
pub const MAX_WIDTH: u32 = 64;

/// A fixed-width two's-complement bit-vector value carried on a signal.
///
/// A value is either a known bit pattern or `X` (unknown), the state of
/// every net before its first driver event — mirroring how an event-driven
/// HDL simulator reports uninitialized wires.
///
/// ```
/// use eventsim::Value;
/// let v = Value::known(8, -1);
/// assert_eq!(v.as_u64(), 0xFF);
/// assert_eq!(v.as_i64(), -1);
/// assert!(Value::x(8).is_x());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Value {
    width: u32,
    bits: u64,
    known: bool,
}

impl Value {
    /// Creates a known value, truncating `raw` to `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`MAX_WIDTH`].
    pub fn known(width: u32, raw: i64) -> Self {
        assert!(
            (1..=MAX_WIDTH).contains(&width),
            "signal width {width} out of range 1..={MAX_WIDTH}"
        );
        Value {
            width,
            bits: (raw as u64) & mask(width),
            known: true,
        }
    }

    /// Creates the unknown (`X`) value of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`MAX_WIDTH`].
    pub fn x(width: u32) -> Self {
        assert!(
            (1..=MAX_WIDTH).contains(&width),
            "signal width {width} out of range 1..={MAX_WIDTH}"
        );
        Value {
            width,
            bits: 0,
            known: false,
        }
    }

    /// A 1-bit logic value.
    pub fn bit(b: bool) -> Self {
        Value::known(1, b as i64)
    }

    /// Width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Whether the value is unknown.
    pub fn is_x(&self) -> bool {
        !self.known
    }

    /// The raw bits zero-extended to 64 bits.
    ///
    /// # Panics
    ///
    /// Panics when the value is `X`; check [`is_x`](Self::is_x) first or use
    /// [`try_u64`](Self::try_u64).
    pub fn as_u64(&self) -> u64 {
        assert!(self.known, "read of X value");
        self.bits
    }

    /// The value sign-extended to `i64`.
    ///
    /// # Panics
    ///
    /// Panics when the value is `X`.
    pub fn as_i64(&self) -> i64 {
        assert!(self.known, "read of X value");
        sign_extend(self.bits, self.width)
    }

    /// The raw bits, or `None` when the value is `X`.
    pub fn try_u64(&self) -> Option<u64> {
        self.known.then_some(self.bits)
    }

    /// The sign-extended value, or `None` when the value is `X`.
    pub fn try_i64(&self) -> Option<i64> {
        self.known.then(|| sign_extend(self.bits, self.width))
    }

    /// Whether this is a known non-zero value (convenience for control
    /// bits).
    pub fn is_true(&self) -> bool {
        self.known && self.bits != 0
    }

    /// Whether this is a known zero value.
    pub fn is_false(&self) -> bool {
        self.known && self.bits == 0
    }

    /// Returns a copy truncated or sign-extended to a new width.
    pub fn resize(&self, width: u32) -> Self {
        if self.known {
            Value::known(width, sign_extend(self.bits, self.width))
        } else {
            Value::x(width)
        }
    }
}

/// All-ones mask of the low `width` bits.
pub fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Sign-extends the low `width` bits of `bits` to an `i64`.
pub fn sign_extend(bits: u64, width: u32) -> i64 {
    if width >= 64 {
        bits as i64
    } else {
        let shift = 64 - width;
        ((bits << shift) as i64) >> shift
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.known {
            write!(f, "{}'h{:x}", self.width, self.bits)
        } else {
            write!(f, "{}'hX", self.width)
        }
    }
}

impl fmt::LowerHex for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.known {
            fmt::LowerHex::fmt(&self.bits, f)
        } else {
            f.write_str("X")
        }
    }
}

impl fmt::Binary for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.known {
            fmt::Binary::fmt(&self.bits, f)
        } else {
            f.write_str("X")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_truncates_to_width() {
        assert_eq!(Value::known(4, 0x1F).as_u64(), 0xF);
        assert_eq!(Value::known(64, -1).as_u64(), u64::MAX);
        assert_eq!(Value::known(1, 2).as_u64(), 0);
    }

    #[test]
    fn sign_extension() {
        assert_eq!(Value::known(4, 0xF).as_i64(), -1);
        assert_eq!(Value::known(4, 7).as_i64(), 7);
        assert_eq!(Value::known(16, -300).as_i64(), -300);
        assert_eq!(Value::known(64, i64::MIN).as_i64(), i64::MIN);
    }

    #[test]
    fn x_propagation_accessors() {
        let x = Value::x(8);
        assert!(x.is_x());
        assert_eq!(x.try_u64(), None);
        assert_eq!(x.try_i64(), None);
        assert!(!x.is_true());
        assert!(!x.is_false());
    }

    #[test]
    #[should_panic(expected = "read of X value")]
    fn reading_x_panics() {
        let _ = Value::x(8).as_u64();
    }

    #[test]
    #[should_panic(expected = "width 0 out of range")]
    fn zero_width_rejected() {
        let _ = Value::known(0, 1);
    }

    #[test]
    #[should_panic(expected = "width 65 out of range")]
    fn oversize_width_rejected() {
        let _ = Value::x(65);
    }

    #[test]
    fn resize_behaviour() {
        assert_eq!(Value::known(4, -1).resize(8).as_i64(), -1);
        assert_eq!(Value::known(4, -1).resize(8).as_u64(), 0xFF);
        assert_eq!(Value::known(8, 0x7F).resize(4).as_u64(), 0xF);
        assert!(Value::x(8).resize(4).is_x());
    }

    #[test]
    fn bit_constructor() {
        assert!(Value::bit(true).is_true());
        assert!(Value::bit(false).is_false());
        assert_eq!(Value::bit(true).width(), 1);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::known(8, 0xAB).to_string(), "8'hab");
        assert_eq!(Value::x(4).to_string(), "4'hX");
        assert_eq!(format!("{:x}", Value::known(8, 0xAB)), "ab");
        assert_eq!(format!("{:b}", Value::known(4, 0b101)), "101");
        assert_eq!(format!("{:x}", Value::x(8)), "X");
    }

    #[test]
    fn mask_and_sign_extend_helpers() {
        assert_eq!(mask(1), 1);
        assert_eq!(mask(16), 0xFFFF);
        assert_eq!(mask(64), u64::MAX);
        assert_eq!(sign_extend(0x8000, 16), -32768);
        assert_eq!(sign_extend(0x7FFF, 16), 32767);
    }
}
