//! A behavioral microprocessor model for hardware/software co-simulation.
//!
//! The paper closes with: *"Further work will focus on functional
//! simulation of a microprocessor tightly coupled to reconfigurable
//! hardware components."* This module implements that extension: a small
//! accumulator machine that runs as an ordinary [`Component`] in the same
//! event kernel as the generated datapaths — one language for both sides,
//! "without specialized co-simulation environments", exactly as the paper
//! argues for.
//!
//! Coupling is *tight* in the architectural sense:
//!
//! * the CPU's data memory is a [`MemHandle`], so it can share an SRAM
//!   with the reconfigurable fabric (shared-memory coupling);
//! * `In`/`Out`/`WaitTrue` instructions read and drive kernel signals
//!   (port/handshake coupling, e.g. polling the fabric's `done` flag).
//!
//! One instruction executes per clock cycle.
//!
//! ```
//! use eventsim::{Simulator, SimTime, MemHandle, ops::Clock};
//! use eventsim::cpu::{Cpu, CpuInstr};
//!
//! # fn main() -> Result<(), eventsim::SimError> {
//! let mut sim = Simulator::new();
//! let clk = sim.add_signal("clk", 1);
//! let port = sim.add_signal("result", 16);
//! sim.add_component(Clock::new("clk0", clk, 10));
//! let mem = MemHandle::new("dmem", 8, 16);
//! mem.fill([5, 7]);
//! let program = vec![
//!     CpuInstr::LdMem(0),   // acc = mem[0]
//!     CpuInstr::AddMem(1),  // acc += mem[1]
//!     CpuInstr::Out(0),     // result port <- acc
//!     CpuInstr::Halt,
//! ];
//! sim.add_component(Cpu::new("cpu0", clk, program, mem, vec![], vec![(port, 16)]));
//! sim.run(SimTime(1_000))?;
//! assert_eq!(sim.value(port).as_i64(), 12);
//! # Ok(())
//! # }
//! ```

use crate::component::{Component, Sensitivity, SignalId};
use crate::kernel::Context;
use crate::memory::MemHandle;
use crate::value::Value;

/// The instruction set of the behavioral microprocessor.
///
/// `acc` is the accumulator, `x` the index register; both hold values at
/// the CPU's data width. Memory operands address the CPU's data memory
/// (shareable with the fabric); port operands index the `inputs`/`outputs`
/// signal lists given to [`Cpu::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuInstr {
    /// `acc = imm`
    Ldi(i64),
    /// `acc = mem[addr]`
    LdMem(usize),
    /// `mem[addr] = acc`
    StMem(usize),
    /// `acc += mem[addr]`
    AddMem(usize),
    /// `acc -= mem[addr]`
    SubMem(usize),
    /// `acc = mem[x]`
    LdIdx,
    /// `mem[x] = acc`
    StIdx,
    /// `acc += mem[x]`
    AddIdx,
    /// `x = imm`
    SetX(i64),
    /// `x += imm`
    AddX(i64),
    /// `acc += imm`
    AddI(i64),
    /// `if x != imm { pc = target }`
    JmpIfXNe(i64, usize),
    /// `if acc == 0 { pc = target }`
    JmpIfAccZero(usize),
    /// `pc = target`
    Jmp(usize),
    /// Stall (pc unchanged) until input port `port` reads true.
    WaitTrue(usize),
    /// `acc = inputs[port]` (an `X` port value stalls, like a bus wait).
    In(usize),
    /// `outputs[port] <- acc`
    Out(usize),
    /// Stop fetching; optionally stops the whole run (see
    /// [`Cpu::with_stop_on_halt`]).
    Halt,
}

/// The behavioral microprocessor component. See the [module docs](self).
pub struct Cpu {
    name: String,
    clk: SignalId,
    program: Vec<CpuInstr>,
    mem: MemHandle,
    inputs: Vec<SignalId>,
    outputs: Vec<(SignalId, u32)>,
    width: u32,
    acc: i64,
    x: i64,
    pc: usize,
    halted: bool,
    stop_on_halt: bool,
    executed: u64,
}

impl Cpu {
    /// Creates a CPU clocked by `clk`, executing `program` over data
    /// memory `mem`, with the given input and output ports
    /// (`(signal, width)` for outputs).
    ///
    /// The CPU's data width is the memory's word width.
    pub fn new(
        name: impl Into<String>,
        clk: SignalId,
        program: Vec<CpuInstr>,
        mem: MemHandle,
        inputs: Vec<SignalId>,
        outputs: Vec<(SignalId, u32)>,
    ) -> Self {
        let width = mem.width();
        Cpu {
            name: name.into(),
            clk,
            program,
            mem,
            inputs,
            outputs,
            width,
            acc: 0,
            x: 0,
            pc: 0,
            halted: false,
            stop_on_halt: false,
            executed: 0,
        }
    }

    /// Builder-style: request a kernel stop when the CPU halts (for
    /// CPU-driven test benches).
    pub fn with_stop_on_halt(mut self, stop: bool) -> Self {
        self.stop_on_halt = stop;
        self
    }

    /// Number of instructions executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    fn mask(&self, v: i64) -> i64 {
        Value::known(self.width, v).as_i64()
    }

    fn load(&mut self, ctx: &mut Context<'_>, addr: i64) -> Option<i64> {
        let addr = addr as usize;
        if addr >= self.mem.size() {
            ctx.fail(format!("{}: load address {} out of range", self.name, addr));
            return None;
        }
        match self.mem.load(addr) {
            Some(v) => Some(v),
            None => {
                ctx.fail(format!(
                    "{}: load of uninitialized word {}",
                    self.name, addr
                ));
                None
            }
        }
    }

    fn store(&mut self, ctx: &mut Context<'_>, addr: i64, value: i64) -> bool {
        let addr = addr as usize;
        if addr >= self.mem.size() {
            ctx.fail(format!("{}: store address {} out of range", self.name, addr));
            return false;
        }
        self.mem.store(addr, value);
        true
    }
}

impl Component for Cpu {
    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> Vec<Sensitivity> {
        vec![Sensitivity::rising(self.clk)]
    }

    fn react(&mut self, ctx: &mut Context<'_>) {
        // One instruction per rising clock edge.
        if self.halted {
            return;
        }
        let Some(&instr) = self.program.get(self.pc) else {
            ctx.fail(format!("{}: pc {} past end of program", self.name, self.pc));
            return;
        };
        self.executed += 1;
        let mut next_pc = self.pc + 1;
        match instr {
            CpuInstr::Ldi(v) => self.acc = self.mask(v),
            CpuInstr::LdMem(a) => match self.load(ctx, a as i64) {
                Some(v) => self.acc = v,
                None => return,
            },
            CpuInstr::StMem(a) => {
                if !self.store(ctx, a as i64, self.acc) {
                    return;
                }
            }
            CpuInstr::AddMem(a) => match self.load(ctx, a as i64) {
                Some(v) => self.acc = self.mask(self.acc.wrapping_add(v)),
                None => return,
            },
            CpuInstr::SubMem(a) => match self.load(ctx, a as i64) {
                Some(v) => self.acc = self.mask(self.acc.wrapping_sub(v)),
                None => return,
            },
            CpuInstr::LdIdx => {
                let x = self.x;
                match self.load(ctx, x) {
                    Some(v) => self.acc = v,
                    None => return,
                }
            }
            CpuInstr::StIdx => {
                let (x, acc) = (self.x, self.acc);
                if !self.store(ctx, x, acc) {
                    return;
                }
            }
            CpuInstr::AddIdx => {
                let x = self.x;
                match self.load(ctx, x) {
                    Some(v) => self.acc = self.mask(self.acc.wrapping_add(v)),
                    None => return,
                }
            }
            CpuInstr::SetX(v) => self.x = self.mask(v),
            CpuInstr::AddX(v) => self.x = self.mask(self.x.wrapping_add(v)),
            CpuInstr::AddI(v) => self.acc = self.mask(self.acc.wrapping_add(v)),
            CpuInstr::JmpIfXNe(imm, target) => {
                if self.x != self.mask(imm) {
                    next_pc = target;
                }
            }
            CpuInstr::JmpIfAccZero(target) => {
                if self.acc == 0 {
                    next_pc = target;
                }
            }
            CpuInstr::Jmp(target) => next_pc = target,
            CpuInstr::WaitTrue(port) => {
                let Some(&signal) = self.inputs.get(port) else {
                    ctx.fail(format!("{}: no input port {}", self.name, port));
                    return;
                };
                if !ctx.get(signal).is_true() {
                    next_pc = self.pc; // stall
                    self.executed -= 1;
                }
            }
            CpuInstr::In(port) => {
                let Some(&signal) = self.inputs.get(port) else {
                    ctx.fail(format!("{}: no input port {}", self.name, port));
                    return;
                };
                match ctx.get(signal).try_i64() {
                    Some(v) => self.acc = self.mask(v),
                    None => {
                        next_pc = self.pc; // bus wait on X
                        self.executed -= 1;
                    }
                }
            }
            CpuInstr::Out(port) => {
                let Some(&(signal, width)) = self.outputs.get(port) else {
                    ctx.fail(format!("{}: no output port {}", self.name, port));
                    return;
                };
                ctx.set(signal, Value::known(width, self.acc));
            }
            CpuInstr::Halt => {
                self.halted = true;
                if self.stop_on_halt {
                    ctx.stop(format!("{}: halt", self.name));
                }
                return;
            }
        }
        self.pc = next_pc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{RunOutcome, SimTime, Simulator};
    use crate::ops::Clock;

    fn run_cpu(program: Vec<CpuInstr>, mem: &MemHandle, ticks: u64) -> (Simulator, SignalId) {
        let mut sim = Simulator::new();
        let clk = sim.add_signal("clk", 1);
        let out = sim.add_signal("out", 16);
        sim.add_component(Clock::new("clk0", clk, 10));
        sim.add_component(
            Cpu::new("cpu0", clk, program, mem.clone(), vec![], vec![(out, 16)])
                .with_stop_on_halt(true),
        );
        sim.run(SimTime(ticks)).unwrap();
        (sim, out)
    }

    #[test]
    fn arithmetic_and_memory() {
        let mem = MemHandle::new("d", 8, 16);
        mem.fill([10, 20, 30]);
        let (sim, out) = run_cpu(
            vec![
                CpuInstr::LdMem(0),
                CpuInstr::AddMem(1),
                CpuInstr::SubMem(2),
                CpuInstr::AddI(2),
                CpuInstr::StMem(3),
                CpuInstr::Out(0),
                CpuInstr::Halt,
            ],
            &mem,
            1_000,
        );
        assert_eq!(sim.value(out).as_i64(), 2);
        assert_eq!(mem.load(3), Some(2));
    }

    #[test]
    fn indexed_loop_sums_memory() {
        let mem = MemHandle::new("d", 16, 16);
        mem.fill((1..=8).collect::<Vec<i64>>());
        // sum = Σ mem[0..8], store at mem[15].
        let program = vec![
            CpuInstr::Ldi(0),
            CpuInstr::SetX(0),
            CpuInstr::AddIdx,          // 2: acc += mem[x]
            CpuInstr::AddX(1),
            CpuInstr::JmpIfXNe(8, 2),
            CpuInstr::StMem(15),
            CpuInstr::Out(0),
            CpuInstr::Halt,
        ];
        let (sim, out) = run_cpu(program, &mem, 10_000);
        assert_eq!(sim.value(out).as_i64(), 36);
        assert_eq!(mem.load(15), Some(36));
    }

    #[test]
    fn wait_true_stalls_until_signal() {
        let mut sim = Simulator::new();
        let clk = sim.add_signal("clk", 1);
        let flag = sim.add_signal("flag", 1);
        let out = sim.add_signal("out", 16);
        sim.add_component(Clock::new("clk0", clk, 10));
        let mem = MemHandle::new("d", 2, 16);
        sim.add_component(
            Cpu::new(
                "cpu0",
                clk,
                vec![CpuInstr::WaitTrue(0), CpuInstr::Ldi(99), CpuInstr::Out(0), CpuInstr::Halt],
                mem,
                vec![flag],
                vec![(out, 16)],
            )
            .with_stop_on_halt(true),
        );
        // Raise the flag at t=175 (after ~17 stalled cycles).
        struct Raise {
            flag: SignalId,
        }
        impl Component for Raise {
            fn name(&self) -> &str {
                "raise"
            }
            fn inputs(&self) -> Vec<Sensitivity> {
                Vec::new()
            }
            fn init(&mut self, ctx: &mut Context<'_>) {
                ctx.set(self.flag, Value::bit(false));
                ctx.wake_after(175);
            }
            fn react(&mut self, ctx: &mut Context<'_>) {
                ctx.set(self.flag, Value::bit(true));
            }
        }
        sim.add_component(Raise { flag });
        let summary = sim.run(SimTime(100_000)).unwrap();
        assert!(matches!(summary.outcome, RunOutcome::Stopped(ref m) if m.contains("halt")));
        assert_eq!(sim.value(out).as_i64(), 99);
        assert!(summary.end_time.ticks() > 175);
    }

    #[test]
    fn failures_are_reported() {
        let mem = MemHandle::new("d", 2, 16);
        let mut sim = Simulator::new();
        let clk = sim.add_signal("clk", 1);
        sim.add_component(Clock::new("clk0", clk, 10));
        sim.add_component(Cpu::new(
            "cpu0",
            clk,
            vec![CpuInstr::LdMem(9)],
            mem.clone(),
            vec![],
            vec![],
        ));
        let summary = sim.run(SimTime(100)).unwrap();
        assert!(matches!(summary.outcome, RunOutcome::Failed(ref m) if m.contains("out of range")));

        // Uninitialized load.
        let mut sim = Simulator::new();
        let clk = sim.add_signal("clk", 1);
        sim.add_component(Clock::new("clk0", clk, 10));
        sim.add_component(Cpu::new(
            "cpu0",
            clk,
            vec![CpuInstr::LdMem(0)],
            mem,
            vec![],
            vec![],
        ));
        let summary = sim.run(SimTime(100)).unwrap();
        assert!(matches!(summary.outcome, RunOutcome::Failed(ref m) if m.contains("uninitialized")));
    }

    #[test]
    fn halted_cpu_stays_halted_without_stop() {
        let mem = MemHandle::new("d", 2, 16);
        let mut sim = Simulator::new();
        let clk = sim.add_signal("clk", 1);
        let out = sim.add_signal("out", 16);
        sim.add_component(Clock::new("clk0", clk, 10));
        sim.add_component(Cpu::new(
            "cpu0",
            clk,
            vec![CpuInstr::Ldi(1), CpuInstr::Out(0), CpuInstr::Halt],
            mem,
            vec![],
            vec![(out, 16)],
        ));
        let summary = sim.run(SimTime(1_000)).unwrap();
        // Clock keeps running; CPU is quiet.
        assert_eq!(summary.outcome, RunOutcome::TimeLimit);
        assert_eq!(sim.value(out).as_i64(), 1);
    }
}
