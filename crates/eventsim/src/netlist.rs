//! Declarative structural netlists and their elaboration into a live
//! [`Simulator`].
//!
//! A [`Netlist`] is the in-memory form of the `.hds` structural format (see
//! [`crate::hds`]) that the datapath XML is translated into. Elaboration
//! instantiates the operator library: every component kind the compiler can
//! emit is recognized here.

use crate::component::SignalId;
use crate::kernel::Simulator;
use crate::memory::{MemHandle, Sram};
use crate::ops::{BinOp, Clock, ConstDriver, Counter, Mux, OpKind, Register, ResetGen, UnOp};
use crate::probe::Watchpoint;
use crate::value::Value;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A signal declaration in a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignalDecl {
    /// Net name, unique within the netlist.
    pub name: String,
    /// Width in bits.
    pub width: u32,
}

/// One component instantiation: a kind, free-form parameters, and
/// port-to-signal connections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    /// Instance name, unique within the netlist.
    pub name: String,
    /// Component kind (`add`, `mux`, `reg`, `sram`, `clock`, …).
    pub kind: String,
    params: Vec<(String, String)>,
    conns: Vec<(String, String)>,
}

impl Instance {
    /// Creates an instance of `kind`.
    pub fn new(name: impl Into<String>, kind: impl Into<String>) -> Self {
        Instance {
            name: name.into(),
            kind: kind.into(),
            params: Vec::new(),
            conns: Vec::new(),
        }
    }

    /// Builder-style parameter.
    pub fn with_param(mut self, key: impl Into<String>, value: impl ToString) -> Self {
        self.params.push((key.into(), value.to_string()));
        self
    }

    /// Builder-style port connection.
    pub fn with_conn(mut self, port: impl Into<String>, signal: impl Into<String>) -> Self {
        self.conns.push((port.into(), signal.into()));
        self
    }

    /// Parameters in declaration order.
    pub fn params(&self) -> impl Iterator<Item = (&str, &str)> {
        self.params.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Connections in declaration order.
    pub fn conns(&self) -> impl Iterator<Item = (&str, &str)> {
        self.conns.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Looks up a parameter.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Looks up a connection.
    pub fn conn(&self, port: &str) -> Option<&str> {
        self.conns
            .iter()
            .find(|(k, _)| k == port)
            .map(|(_, v)| v.as_str())
    }
}

/// A structural netlist: named signals plus component instances.
///
/// ```
/// use eventsim::netlist::{Netlist, Instance};
/// let mut nl = Netlist::new("adder");
/// nl.add_signal("a", 8);
/// nl.add_signal("b", 8);
/// nl.add_signal("y", 8);
/// nl.add_instance(
///     Instance::new("add0", "add")
///         .with_param("width", 8)
///         .with_conn("a", "a").with_conn("b", "b").with_conn("y", "y"));
/// assert_eq!(nl.operator_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Netlist {
    /// Design name.
    pub name: String,
    signals: Vec<SignalDecl>,
    instances: Vec<Instance>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            signals: Vec::new(),
            instances: Vec::new(),
        }
    }

    /// Declares a signal.
    pub fn add_signal(&mut self, name: impl Into<String>, width: u32) {
        self.signals.push(SignalDecl {
            name: name.into(),
            width,
        });
    }

    /// Adds a component instance.
    pub fn add_instance(&mut self, instance: Instance) {
        self.instances.push(instance);
    }

    /// Declared signals.
    pub fn signals(&self) -> &[SignalDecl] {
        &self.signals
    }

    /// Component instances.
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// Number of instances that are datapath functional units (the
    /// "operators" column of Table I): arithmetic/logic/comparison kinds.
    pub fn operator_count(&self) -> usize {
        self.instances
            .iter()
            .filter(|i| i.kind.parse::<OpKind>().is_ok())
            .count()
    }

    /// Compiles the netlist into the levelized engine — the oblivious
    /// counterpart of [`elaborate`](Self::elaborate). The combinational
    /// instances are topologically ranked once here; the returned
    /// [`LevelSim`](crate::levelsim::LevelSim) then evaluates each rank at
    /// most once per clock phase.
    ///
    /// # Errors
    ///
    /// [`CycleSimError::Build`](crate::cyclesim::CycleSimError::Build) for
    /// constructs outside the cycle-engine vocabulary, and
    /// [`CycleSimError::CombinationalCycle`](crate::cyclesim::CycleSimError::CombinationalCycle)
    /// when the combinational netlist is not a DAG.
    pub fn compile_levelized(
        &self,
    ) -> Result<crate::levelsim::LevelSim, crate::cyclesim::CycleSimError> {
        crate::levelsim::LevelSim::from_netlist(self)
    }

    /// Elaborates the netlist into `sim`.
    ///
    /// Returns the mapping from declared names to simulator ids, plus a
    /// [`MemHandle`] per `sram` instance for loading stimulus and reading
    /// results.
    ///
    /// # Errors
    ///
    /// Returns [`ElaborateError`] for duplicate names, unknown kinds,
    /// missing or dangling connections, and malformed parameters.
    pub fn elaborate(&self, sim: &mut Simulator) -> Result<ElabMap, ElaborateError> {
        let mut map = ElabMap {
            signals: HashMap::new(),
            mems: HashMap::new(),
        };
        for decl in &self.signals {
            if map.signals.contains_key(&decl.name) {
                return Err(ElaborateError::DuplicateSignal(decl.name.clone()));
            }
            if decl.width == 0 || decl.width > crate::value::MAX_WIDTH {
                return Err(ElaborateError::BadParam {
                    instance: decl.name.clone(),
                    message: format!("signal width {} out of range", decl.width),
                });
            }
            let id = sim.add_signal(&decl.name, decl.width);
            map.signals.insert(decl.name.clone(), id);
        }
        let mut seen = std::collections::HashSet::new();
        for instance in &self.instances {
            if !seen.insert(&instance.name) {
                return Err(ElaborateError::DuplicateInstance(instance.name.clone()));
            }
            elaborate_instance(instance, sim, &mut map)?;
        }
        // Elaboration registers every sink this netlist will ever have;
        // sealing here builds the flat sink table up front instead of on
        // the first `run`.
        sim.seal();
        Ok(map)
    }
}

/// Name-to-id mapping produced by [`Netlist::elaborate`].
#[derive(Debug, Clone)]
pub struct ElabMap {
    /// Signal name → simulator signal id.
    pub signals: HashMap<String, SignalId>,
    /// SRAM instance name → content handle.
    pub mems: HashMap<String, MemHandle>,
}

impl ElabMap {
    /// Looks up a signal id by name.
    ///
    /// # Errors
    ///
    /// Returns [`ElaborateError::UnknownSignal`] when absent.
    pub fn signal(&self, name: &str) -> Result<SignalId, ElaborateError> {
        self.signals
            .get(name)
            .copied()
            .ok_or_else(|| ElaborateError::UnknownSignal(name.to_string()))
    }
}

/// Errors produced while elaborating a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElaborateError {
    /// Two signals share a name.
    DuplicateSignal(String),
    /// Two instances share a name.
    DuplicateInstance(String),
    /// An instance references an undeclared signal.
    UnknownSignal(String),
    /// An instance has an unrecognized kind.
    UnknownKind {
        /// Instance name.
        instance: String,
        /// The unrecognized kind string.
        kind: String,
    },
    /// A required port is unconnected.
    MissingConn {
        /// Instance name.
        instance: String,
        /// The missing port.
        port: String,
    },
    /// A parameter is missing or malformed.
    BadParam {
        /// Instance (or signal) name.
        instance: String,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for ElaborateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElaborateError::DuplicateSignal(name) => write!(f, "duplicate signal '{name}'"),
            ElaborateError::DuplicateInstance(name) => write!(f, "duplicate instance '{name}'"),
            ElaborateError::UnknownSignal(name) => write!(f, "reference to unknown signal '{name}'"),
            ElaborateError::UnknownKind { instance, kind } => {
                write!(f, "instance '{instance}' has unknown kind '{kind}'")
            }
            ElaborateError::MissingConn { instance, port } => {
                write!(f, "instance '{instance}' leaves port '{port}' unconnected")
            }
            ElaborateError::BadParam { instance, message } => {
                write!(f, "instance '{instance}': {message}")
            }
        }
    }
}

impl Error for ElaborateError {}

fn conn_signal(
    instance: &Instance,
    map: &ElabMap,
    port: &str,
) -> Result<SignalId, ElaborateError> {
    let name = instance
        .conn(port)
        .ok_or_else(|| ElaborateError::MissingConn {
            instance: instance.name.clone(),
            port: port.to_string(),
        })?;
    map.signal(name)
}

fn param_parse<T: std::str::FromStr>(
    instance: &Instance,
    key: &str,
    default: Option<T>,
) -> Result<T, ElaborateError> {
    match instance.param(key) {
        Some(raw) => raw.parse().map_err(|_| ElaborateError::BadParam {
            instance: instance.name.clone(),
            message: format!("parameter '{key}' has unparseable value '{raw}'"),
        }),
        None => default.ok_or_else(|| ElaborateError::BadParam {
            instance: instance.name.clone(),
            message: format!("missing parameter '{key}'"),
        }),
    }
}

fn elaborate_instance(
    instance: &Instance,
    sim: &mut Simulator,
    map: &mut ElabMap,
) -> Result<(), ElaborateError> {
    let name = instance.name.clone();
    if let Ok(kind) = instance.kind.parse::<OpKind>() {
        let width: u32 = param_parse(instance, "width", None)?;
        let delay: u64 = param_parse(instance, "delay", Some(0))?;
        let y = conn_signal(instance, map, "y")?;
        let a = conn_signal(instance, map, "a")?;
        if kind.is_unary() {
            sim.add_component(UnOp::new(name, kind, a, y, width).with_delay(delay));
        } else {
            let b = conn_signal(instance, map, "b")?;
            sim.add_component(BinOp::new(name, kind, a, b, y, width).with_delay(delay));
        }
        return Ok(());
    }
    match instance.kind.as_str() {
        "mux" => {
            let width: u32 = param_parse(instance, "width", None)?;
            let n: usize = param_parse(instance, "inputs", None)?;
            if n == 0 {
                return Err(ElaborateError::BadParam {
                    instance: name,
                    message: "mux needs at least one input".to_string(),
                });
            }
            let sel = conn_signal(instance, map, "sel")?;
            let y = conn_signal(instance, map, "y")?;
            let mut inputs = Vec::with_capacity(n);
            for i in 0..n {
                inputs.push(conn_signal(instance, map, &format!("i{i}"))?);
            }
            sim.add_component(Mux::new(name, sel, inputs, y, width));
        }
        "const" => {
            let width: u32 = param_parse(instance, "width", None)?;
            let value: i64 = param_parse(instance, "value", None)?;
            let y = conn_signal(instance, map, "y")?;
            sim.add_component(ConstDriver::new(name, y, Value::known(width, value)));
        }
        "reg" => {
            let width: u32 = param_parse(instance, "width", None)?;
            let clk = conn_signal(instance, map, "clk")?;
            let d = conn_signal(instance, map, "d")?;
            let q = conn_signal(instance, map, "q")?;
            let mut reg = Register::new(name, clk, d, q, width);
            if instance.conn("en").is_some() {
                reg = reg.with_enable(conn_signal(instance, map, "en")?);
            }
            if instance.conn("rst").is_some() {
                reg = reg.with_reset(conn_signal(instance, map, "rst")?);
            }
            sim.add_component(reg);
        }
        "counter" => {
            let width: u32 = param_parse(instance, "width", Some(8))?;
            let clk = conn_signal(instance, map, "clk")?;
            let q = conn_signal(instance, map, "q")?;
            sim.add_component(Counter::new(name, clk, q).with_width(width));
        }
        "clock" => {
            let period: u64 = param_parse(instance, "period", Some(10))?;
            let y = conn_signal(instance, map, "y")?;
            sim.add_component(Clock::new(name, y, period));
        }
        "reset" => {
            let ticks: u64 = param_parse(instance, "ticks", Some(2))?;
            let y = conn_signal(instance, map, "y")?;
            sim.add_component(ResetGen::new(name, y, ticks));
        }
        "sram" => {
            let width: u32 = param_parse(instance, "width", None)?;
            let size: usize = param_parse(instance, "size", None)?;
            let clk = conn_signal(instance, map, "clk")?;
            let en = conn_signal(instance, map, "en")?;
            let we = conn_signal(instance, map, "we")?;
            let addr = conn_signal(instance, map, "addr")?;
            let din = conn_signal(instance, map, "din")?;
            let dout = conn_signal(instance, map, "dout")?;
            let mem = MemHandle::new(&name, size, width);
            map.mems.insert(name.clone(), mem.clone());
            sim.add_component(Sram::new(name, clk, en, we, addr, din, dout, mem));
        }
        "watchpoint" => {
            let value: i64 = param_parse(instance, "value", None)?;
            let sig = conn_signal(instance, map, "sig")?;
            sim.add_component(Watchpoint::new(name, sig, value));
        }
        other => {
            return Err(ElaborateError::UnknownKind {
                instance: name,
                kind: other.to_string(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{SimTime, Simulator};

    fn adder_netlist() -> Netlist {
        let mut nl = Netlist::new("t");
        nl.add_signal("a", 8);
        nl.add_signal("b", 8);
        nl.add_signal("y", 8);
        nl.add_instance(
            Instance::new("ca", "const")
                .with_param("width", 8)
                .with_param("value", 3)
                .with_conn("y", "a"),
        );
        nl.add_instance(
            Instance::new("cb", "const")
                .with_param("width", 8)
                .with_param("value", 4)
                .with_conn("y", "b"),
        );
        nl.add_instance(
            Instance::new("add0", "add")
                .with_param("width", 8)
                .with_conn("a", "a")
                .with_conn("b", "b")
                .with_conn("y", "y"),
        );
        nl
    }

    #[test]
    fn elaborates_and_simulates_adder() {
        let nl = adder_netlist();
        let mut sim = Simulator::new();
        let map = nl.elaborate(&mut sim).unwrap();
        sim.run(SimTime(10)).unwrap();
        assert_eq!(sim.value(map.signal("y").unwrap()).as_u64(), 7);
        assert_eq!(nl.operator_count(), 1);
    }

    #[test]
    fn full_kind_coverage_elaborates() {
        let mut nl = Netlist::new("all");
        for s in ["clk", "rst", "en", "we", "sel"] {
            nl.add_signal(s, 1);
        }
        for s in ["a", "b", "y0", "y1", "y2", "y3", "q", "addr", "din", "dout", "cnt"] {
            nl.add_signal(s, 8);
        }
        nl.add_instance(Instance::new("clock0", "clock").with_param("period", 10).with_conn("y", "clk"));
        nl.add_instance(Instance::new("reset0", "reset").with_param("ticks", 3).with_conn("y", "rst"));
        nl.add_instance(
            Instance::new("mul0", "mul")
                .with_param("width", 8)
                .with_conn("a", "a").with_conn("b", "b").with_conn("y", "y0"),
        );
        nl.add_instance(
            Instance::new("neg0", "neg")
                .with_param("width", 8)
                .with_conn("a", "a").with_conn("y", "y1"),
        );
        nl.add_instance(
            Instance::new("mux0", "mux")
                .with_param("width", 8)
                .with_param("inputs", 2)
                .with_conn("sel", "sel").with_conn("i0", "a").with_conn("i1", "b").with_conn("y", "y2"),
        );
        nl.add_instance(
            Instance::new("r0", "reg")
                .with_param("width", 8)
                .with_conn("clk", "clk").with_conn("d", "y0").with_conn("q", "q")
                .with_conn("en", "en").with_conn("rst", "rst"),
        );
        nl.add_instance(
            Instance::new("cnt0", "counter")
                .with_param("width", 8)
                .with_conn("clk", "clk").with_conn("q", "cnt"),
        );
        nl.add_instance(
            Instance::new("m0", "sram")
                .with_param("width", 8).with_param("size", 16)
                .with_conn("clk", "clk").with_conn("en", "en").with_conn("we", "we")
                .with_conn("addr", "addr").with_conn("din", "din").with_conn("dout", "dout"),
        );
        nl.add_instance(
            Instance::new("w0", "watchpoint")
                .with_param("value", 200)
                .with_conn("sig", "cnt"),
        );
        nl.add_instance(
            Instance::new("c0", "const")
                .with_param("width", 8).with_param("value", 5)
                .with_conn("y", "y3"),
        );
        let mut sim = Simulator::new();
        let map = nl.elaborate(&mut sim).unwrap();
        assert!(map.mems.contains_key("m0"));
        assert_eq!(sim.component_count(), 10);
        sim.run(SimTime(50)).unwrap();
    }

    #[test]
    fn duplicate_signal_rejected() {
        let mut nl = Netlist::new("t");
        nl.add_signal("a", 8);
        nl.add_signal("a", 8);
        let err = nl.elaborate(&mut Simulator::new()).unwrap_err();
        assert_eq!(err, ElaborateError::DuplicateSignal("a".into()));
    }

    #[test]
    fn duplicate_instance_rejected() {
        let mut nl = adder_netlist();
        nl.add_instance(
            Instance::new("add0", "add")
                .with_param("width", 8)
                .with_conn("a", "a").with_conn("b", "b").with_conn("y", "y"),
        );
        let err = nl.elaborate(&mut Simulator::new()).unwrap_err();
        assert_eq!(err, ElaborateError::DuplicateInstance("add0".into()));
    }

    #[test]
    fn unknown_kind_rejected() {
        let mut nl = Netlist::new("t");
        nl.add_signal("y", 8);
        nl.add_instance(Instance::new("z", "frobnicator").with_conn("y", "y"));
        let err = nl.elaborate(&mut Simulator::new()).unwrap_err();
        assert!(matches!(err, ElaborateError::UnknownKind { .. }));
    }

    #[test]
    fn dangling_connection_rejected() {
        let mut nl = Netlist::new("t");
        nl.add_signal("y", 8);
        nl.add_instance(
            Instance::new("add0", "add")
                .with_param("width", 8)
                .with_conn("a", "nothere").with_conn("b", "y").with_conn("y", "y"),
        );
        let err = nl.elaborate(&mut Simulator::new()).unwrap_err();
        assert_eq!(err, ElaborateError::UnknownSignal("nothere".into()));
    }

    #[test]
    fn missing_port_rejected() {
        let mut nl = Netlist::new("t");
        nl.add_signal("y", 8);
        nl.add_instance(
            Instance::new("add0", "add")
                .with_param("width", 8)
                .with_conn("y", "y"),
        );
        let err = nl.elaborate(&mut Simulator::new()).unwrap_err();
        assert!(matches!(err, ElaborateError::MissingConn { ref port, .. } if port == "a"));
    }

    #[test]
    fn bad_param_rejected() {
        let mut nl = Netlist::new("t");
        nl.add_signal("y", 8);
        nl.add_instance(
            Instance::new("c0", "const")
                .with_param("width", "eight")
                .with_param("value", 0)
                .with_conn("y", "y"),
        );
        let err = nl.elaborate(&mut Simulator::new()).unwrap_err();
        assert!(matches!(err, ElaborateError::BadParam { .. }));
        assert!(err.to_string().contains("width"));
    }

    #[test]
    fn zero_width_signal_rejected() {
        let mut nl = Netlist::new("t");
        nl.add_signal("a", 0);
        assert!(nl.elaborate(&mut Simulator::new()).is_err());
    }
}
