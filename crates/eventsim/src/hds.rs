//! The `.hds` structural text format.
//!
//! In the paper the datapath XML is translated ("to hds") into the input
//! format of the Hades simulator. Our equivalent is this line-oriented
//! netlist format, which the `xform` stylesheets emit and this module
//! parses back into a [`Netlist`]:
//!
//! ```text
//! # anything after '#' is a comment
//! hds fdct1
//! signal clk 1
//! signal a 16
//! inst clock0 clock period=10 y:clk
//! inst add0 add width=16 a:a b:a y:a
//! ```
//!
//! `key=value` pairs are parameters; `port:signal` pairs are connections.
//!
//! ```
//! use eventsim::hds;
//! # fn main() -> Result<(), hds::ParseHdsError> {
//! let nl = hds::parse("hds t\nsignal a 4\ninst c0 const width=4 value=7 y:a\n")?;
//! assert_eq!(nl.name, "t");
//! assert_eq!(hds::parse(&hds::emit(&nl))?, nl);
//! # Ok(())
//! # }
//! ```

use crate::netlist::{Instance, Netlist};
use std::error::Error;
use std::fmt;

/// Error produced when parsing malformed `.hds` text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseHdsError {
    message: String,
    line: usize,
}

impl ParseHdsError {
    fn new(message: impl Into<String>, line: usize) -> Self {
        ParseHdsError {
            message: message.into(),
            line,
        }
    }

    /// 1-based line of the error.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseHdsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (line {})", self.message, self.line)
    }
}

impl Error for ParseHdsError {}

/// Parses `.hds` text into a [`Netlist`].
///
/// # Errors
///
/// Returns [`ParseHdsError`] for missing headers, malformed directives, or
/// tokens that are neither `key=value` nor `port:signal`.
pub fn parse(input: &str) -> Result<Netlist, ParseHdsError> {
    let mut netlist: Option<Netlist> = None;
    for (index, raw_line) in input.lines().enumerate() {
        let lineno = index + 1;
        let line = match raw_line.find('#') {
            Some(i) => &raw_line[..i],
            None => raw_line,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let directive = tokens.next().expect("non-empty line has a token");
        match directive {
            "hds" => {
                if netlist.is_some() {
                    return Err(ParseHdsError::new("duplicate 'hds' header", lineno));
                }
                let name = tokens
                    .next()
                    .ok_or_else(|| ParseHdsError::new("'hds' needs a design name", lineno))?;
                netlist = Some(Netlist::new(name));
            }
            "signal" => {
                let nl = netlist
                    .as_mut()
                    .ok_or_else(|| ParseHdsError::new("'signal' before 'hds' header", lineno))?;
                let name = tokens
                    .next()
                    .ok_or_else(|| ParseHdsError::new("'signal' needs a name", lineno))?;
                let width: u32 = tokens
                    .next()
                    .ok_or_else(|| ParseHdsError::new("'signal' needs a width", lineno))?
                    .parse()
                    .map_err(|_| ParseHdsError::new("signal width must be an integer", lineno))?;
                if tokens.next().is_some() {
                    return Err(ParseHdsError::new("trailing tokens after signal", lineno));
                }
                nl.add_signal(name, width);
            }
            "inst" => {
                let nl = netlist
                    .as_mut()
                    .ok_or_else(|| ParseHdsError::new("'inst' before 'hds' header", lineno))?;
                let name = tokens
                    .next()
                    .ok_or_else(|| ParseHdsError::new("'inst' needs a name", lineno))?;
                let kind = tokens
                    .next()
                    .ok_or_else(|| ParseHdsError::new("'inst' needs a kind", lineno))?;
                let mut instance = Instance::new(name, kind);
                for token in tokens {
                    if let Some((key, value)) = token.split_once('=') {
                        instance = instance.with_param(key, value);
                    } else if let Some((port, signal)) = token.split_once(':') {
                        instance = instance.with_conn(port, signal);
                    } else {
                        return Err(ParseHdsError::new(
                            format!("token '{token}' is neither key=value nor port:signal"),
                            lineno,
                        ));
                    }
                }
                nl.add_instance(instance);
            }
            other => {
                return Err(ParseHdsError::new(
                    format!("unknown directive '{other}'"),
                    lineno,
                ));
            }
        }
    }
    netlist.ok_or_else(|| ParseHdsError::new("missing 'hds' header", input.lines().count().max(1)))
}

/// Renders a [`Netlist`] as `.hds` text (the inverse of [`parse`]).
pub fn emit(netlist: &Netlist) -> String {
    let mut out = String::new();
    out.push_str(&format!("hds {}\n", netlist.name));
    for signal in netlist.signals() {
        out.push_str(&format!("signal {} {}\n", signal.name, signal.width));
    }
    for instance in netlist.instances() {
        out.push_str(&format!("inst {} {}", instance.name, instance.kind));
        for (key, value) in instance.params() {
            out.push_str(&format!(" {key}={value}"));
        }
        for (port, signal) in instance.conns() {
            out.push_str(&format!(" {port}:{signal}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a small design
hds demo
signal clk 1
signal a 8   # data
signal y 8
inst clock0 clock period=10 y:clk
inst add0 add width=8 delay=1 a:a b:a y:y
";

    #[test]
    fn parses_sample() {
        let nl = parse(SAMPLE).unwrap();
        assert_eq!(nl.name, "demo");
        assert_eq!(nl.signals().len(), 3);
        assert_eq!(nl.instances().len(), 2);
        let add = &nl.instances()[1];
        assert_eq!(add.param("delay"), Some("1"));
        assert_eq!(add.conn("b"), Some("a"));
    }

    #[test]
    fn emit_parse_roundtrip() {
        let nl = parse(SAMPLE).unwrap();
        let text = emit(&nl);
        assert_eq!(parse(&text).unwrap(), nl);
    }

    #[test]
    fn error_cases_report_lines() {
        assert!(parse("").is_err());
        assert_eq!(parse("signal a 4\n").unwrap_err().line(), 1);
        assert_eq!(parse("hds t\nsignal a\n").unwrap_err().line(), 2);
        assert_eq!(parse("hds t\nsignal a four\n").unwrap_err().line(), 2);
        assert_eq!(parse("hds t\nbogus x\n").unwrap_err().line(), 2);
        assert_eq!(parse("hds t\nhds u\n").unwrap_err().line(), 2);
        assert_eq!(parse("hds t\ninst a add junk\n").unwrap_err().line(), 3 - 1);
        assert_eq!(parse("hds t\nsignal a 4 extra\n").unwrap_err().line(), 2);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let nl = parse("\n# header only\nhds x\n\n# done\n").unwrap();
        assert_eq!(nl.name, "x");
        assert!(nl.signals().is_empty());
    }

    #[test]
    fn parsed_netlist_elaborates() {
        use crate::kernel::{SimTime, Simulator};
        let text = "\
hds sum
signal a 8
signal b 8
signal y 8
inst ca const width=8 value=20 y:a
inst cb const width=8 value=22 y:b
inst add0 add width=8 a:a b:b y:y
";
        let nl = parse(text).unwrap();
        let mut sim = Simulator::new();
        let map = nl.elaborate(&mut sim).unwrap();
        sim.run(SimTime(5)).unwrap();
        assert_eq!(sim.value(map.signal("y").unwrap()).as_u64(), 42);
    }
}
