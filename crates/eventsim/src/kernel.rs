//! The discrete-event simulation kernel.
//!
//! Equivalent to the event-based core of Hades: a time-ordered event queue
//! with delta cycles. Signal updates scheduled for the same instant are
//! separated into *delta* steps so that zero-delay combinational logic
//! settles deterministically; a bounded delta count per instant detects
//! zero-delay oscillation (one of the paper's required "stop mechanisms").
//!
//! # Hot-path layout
//!
//! The kernel stores simulation state in a cache-friendly structure-of-
//! arrays form:
//!
//! * Signal values live in one dense `Vec<Value>`; names, widths, and
//!   trace flags are kept in cold side arrays so that the `get`/`set`
//!   traffic of component evaluations stays in a compact working set.
//! * Sink adjacency (which components react to which signal) is a flat
//!   CSR-style arena built by [`Simulator::seal`]: one shared `Vec` of
//!   component indices plus a per-signal range. Within each range the
//!   level-sensitive (`Sense::Any`) sinks come first and the edge-
//!   sensitive (`Sense::Rising`) sinks after a split point, so a
//!   non-rising update (e.g. the falling clock edge) never touches the
//!   edge-triggered sinks at all.
//! * Future events are split between a small time wheel for near events
//!   (clock-period-dominated traffic) and a binary heap for far events,
//!   making the common clock tick O(1) instead of O(log n).

use crate::component::{Component, ComponentId, SignalId};
use crate::value::Value;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::time::Instant;

/// Simulation timestamp in kernel ticks.
///
/// The infrastructure uses a 10-tick clock period by convention (see
/// [`crate::ops::Clock`]); absolute tick meaning is up to the netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The zero timestamp.
    pub const ZERO: SimTime = SimTime(0);

    /// Tick count.
    pub fn ticks(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Why a run returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// No events remained (every generator went quiet).
    QueueEmpty,
    /// The time limit passed to [`Simulator::run`] was reached.
    TimeLimit,
    /// A component requested a stop (watchpoint hit, done flag, …).
    Stopped(String),
    /// A component reported a failure (assertion violation, bad memory
    /// access, …).
    Failed(String),
}

impl RunOutcome {
    /// Whether the run ended without a reported failure.
    pub fn is_ok(&self) -> bool {
        !matches!(self, RunOutcome::Failed(_))
    }
}

/// Summary statistics of one [`Simulator::run`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Why the run returned.
    pub outcome: RunOutcome,
    /// Final simulation time.
    pub end_time: SimTime,
    /// Number of events dequeued.
    pub events: u64,
    /// Number of effective signal updates (value actually changed).
    pub updates: u64,
    /// Number of component evaluations.
    pub evals: u64,
    /// Number of delta cycles entered (same-instant settle steps).
    pub delta_cycles: u64,
    /// Largest number of pending events observed during the run: the time
    /// wheel plus the far-event heap plus undrained same-instant batches.
    pub max_queue_depth: usize,
    /// Host wall-clock seconds spent inside the kernel loop.
    pub wall_seconds: f64,
}

/// Cumulative kernel counters since the simulator was created, across
/// every [`Simulator::run`] call. One run's deltas are in [`RunSummary`];
/// these absolute values feed the telemetry layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelStats {
    /// Events dequeued.
    pub events: u64,
    /// Effective signal updates.
    pub updates: u64,
    /// Component evaluations.
    pub evals: u64,
    /// Delta cycles entered.
    pub delta_cycles: u64,
    /// Largest pending-event count ever observed (wheel + heap + delta
    /// batches).
    pub max_queue_depth: usize,
}

/// Kernel-level error: the model itself is broken.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// More than the configured number of delta cycles elapsed at a single
    /// instant — a zero-delay combinational loop.
    DeltaOverflow {
        /// Instant at which the loop was detected.
        time: SimTime,
        /// The configured limit that was exceeded.
        limit: u32,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::DeltaOverflow { time, limit } => write!(
                f,
                "zero-delay loop: more than {limit} delta cycles at {time}"
            ),
        }
    }
}

impl Error for SimError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    Update(SignalId, Value),
    Eval(ComponentId),
}

/// A far-future event held in the heap (near events live in the wheel,
/// same-instant delta events in flat batches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Event {
    time: u64,
    seq: u64,
    kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Number of slots in the near-event time wheel. Events scheduled fewer
/// than this many ticks ahead go into the wheel (O(1) insert/extract);
/// farther events fall back to the heap. 64 comfortably covers the
/// conventional 10-tick clock period and every operator delay the
/// compiler emits.
const WHEEL_SLOTS: usize = 64;
const WHEEL_MASK: usize = WHEEL_SLOTS - 1;

/// One recorded waveform change (used by the VCD writer and probes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Change {
    /// Instant of the change.
    pub time: SimTime,
    /// The signal that changed.
    pub signal: SignalId,
    /// The new value.
    pub value: Value,
}

/// CSR-style sink adjacency: for signal `s`, `arena[ranges[s].start..
/// ranges[s].split]` holds the level-sensitive sinks and
/// `arena[ranges[s].split..ranges[s].end]` the rising-edge sinks, both in
/// component registration order.
#[derive(Debug, Default)]
struct SinkTable {
    arena: Vec<u32>,
    ranges: Vec<SinkRange>,
}

#[derive(Debug, Clone, Copy, Default)]
struct SinkRange {
    start: u32,
    split: u32,
    end: u32,
}

/// Per-signal sink lists accumulated during component registration, the
/// source from which [`SinkTable`] is (re)built at seal time.
#[derive(Debug, Default, Clone)]
struct SinkBuild {
    any: Vec<u32>,
    rising: Vec<u32>,
}

pub(crate) struct SimCore {
    /// Current signal values, densely packed (the hot array).
    values: Vec<Value>,
    /// Signal widths, parallel to `values`.
    widths: Vec<u32>,
    /// Waveform-recording flags, parallel to `values`.
    traced: Vec<bool>,
    /// Signal names (cold; only read by diagnostics and lookups).
    names: Vec<String>,
    /// Events of the instant currently being processed, drained in order.
    current: Vec<EventKind>,
    cursor: usize,
    /// Events scheduled for the next delta cycle of the current instant.
    next_delta: Vec<EventKind>,
    /// Far-future events (ordered by time, then insertion).
    future: BinaryHeap<Reverse<Event>>,
    /// Near-future events, indexed by `time % WHEEL_SLOTS`. Each slot
    /// holds `(seq, kind)` pairs in insertion order.
    wheel: Vec<Vec<(u64, EventKind)>>,
    /// Total number of events currently in the wheel.
    wheel_len: usize,
    seq: u64,
    now: u64,
    delta: u32,
    stop: Option<RunOutcome>,
    eval_marks: Vec<(u64, u32)>,
    pub(crate) trace: Vec<Change>,
    events: u64,
    updates: u64,
    evals: u64,
    delta_cycles: u64,
    max_queue_depth: usize,
    run_max_queue_depth: usize,
}

impl SimCore {
    fn push_future(&mut self, time: u64, kind: EventKind) {
        debug_assert!(time > self.now);
        let seq = self.seq;
        self.seq += 1;
        let dt = time - self.now;
        if dt < WHEEL_SLOTS as u64 {
            // Near event: O(1) wheel insert. Within the (now, now+64)
            // window each tick maps to a distinct slot, and `now` only
            // ever advances to the earliest pending time, so a slot never
            // mixes events of different instants.
            self.wheel[time as usize & WHEEL_MASK].push((seq, kind));
            self.wheel_len += 1;
        } else {
            self.future.push(Reverse(Event { time, seq, kind }));
        }
        self.note_depth();
    }

    fn push_next_delta(&mut self, kind: EventKind) {
        self.next_delta.push(kind);
        self.note_depth();
    }

    /// Schedules an evaluation in the next delta of the current instant,
    /// deduplicated: one evaluation per component per (time, delta) is
    /// enough since react reads whole input state, not individual edges.
    #[inline]
    fn schedule_eval_next(&mut self, component: ComponentId) {
        let mark = (self.now, self.delta + 1);
        if self.eval_marks[component.0] == mark {
            return;
        }
        self.eval_marks[component.0] = mark;
        self.push_next_delta(EventKind::Eval(component));
    }

    /// Records the current pending-event count: the time wheel plus the
    /// far-event heap plus the undrained part of the current delta batch
    /// plus the next delta batch.
    #[inline]
    fn note_depth(&mut self) {
        let depth = self.future.len()
            + self.wheel_len
            + self.next_delta.len()
            + (self.current.len() - self.cursor);
        if depth > self.max_queue_depth {
            self.max_queue_depth = depth;
        }
        if depth > self.run_max_queue_depth {
            self.run_max_queue_depth = depth;
        }
    }

    /// The instant of the earliest pending future event, across the time
    /// wheel and the far-event heap.
    fn next_event_time(&self) -> Option<u64> {
        let heap_time = self.future.peek().map(|Reverse(event)| event.time);
        if self.wheel_len > 0 {
            for t in self.now + 1..self.now + WHEEL_SLOTS as u64 {
                if !self.wheel[t as usize & WHEEL_MASK].is_empty() {
                    return Some(match heap_time {
                        Some(h) if h < t => h,
                        _ => t,
                    });
                }
            }
            debug_assert!(false, "wheel_len > 0 but no occupied slot in window");
        }
        heap_time
    }

    /// Advances `now` to `t` and gathers every event scheduled for `t`
    /// into the `current` batch, merging the wheel slot with same-time
    /// heap events in global insertion (seq) order.
    fn advance_to(&mut self, t: u64) {
        self.now = t;
        self.delta = 0;
        self.current.clear();
        self.cursor = 0;
        let mut slot = std::mem::take(&mut self.wheel[t as usize & WHEEL_MASK]);
        self.wheel_len -= slot.len();
        let mut i = 0;
        loop {
            let heap_seq = match self.future.peek() {
                Some(Reverse(event)) if event.time == t => Some(event.seq),
                _ => None,
            };
            match (slot.get(i), heap_seq) {
                (Some(&(wheel_seq, _)), Some(heap_seq)) if heap_seq < wheel_seq => {
                    let Reverse(event) = self.future.pop().expect("peeked");
                    self.current.push(event.kind);
                }
                (Some(&(_, kind)), _) => {
                    self.current.push(kind);
                    i += 1;
                }
                (None, Some(_)) => {
                    let Reverse(event) = self.future.pop().expect("peeked");
                    self.current.push(event.kind);
                }
                (None, None) => break,
            }
        }
        // Hand the slot's buffer back so its capacity is reused.
        slot.clear();
        self.wheel[t as usize & WHEEL_MASK] = slot;
    }
}

/// Observer of kernel run boundaries, for telemetry layers that want to
/// time or log runs without owning the [`Simulator`]. Installed with
/// [`Simulator::set_hook`]; all methods have empty defaults.
pub trait KernelHook {
    /// Called when [`Simulator::run`] enters its event loop.
    fn on_run_start(&mut self, _now: SimTime) {}

    /// Called when [`Simulator::run`] returns successfully, with the
    /// summary that is about to be handed to the caller.
    fn on_run_end(&mut self, _summary: &RunSummary) {}

    /// Whether the kernel should time each ungated component evaluation
    /// and report it via [`on_eval`](Self::on_eval). Sampled once per
    /// [`Simulator::run`], before the event loop starts, so the hot path
    /// pays a single cached-bool branch when this returns `false` (the
    /// default) and nothing at all when no hook is installed.
    fn wants_evals(&self) -> bool {
        false
    }

    /// Called after each ungated evaluation when
    /// [`wants_evals`](Self::wants_evals) returned `true`, with the
    /// monotonic nanoseconds the `react` call took. Timing only
    /// observes: counters and scheduling are identical either way.
    fn on_eval(&mut self, _component: ComponentId, _nanos: u64) {}
}

/// The event-driven simulator: signals, components, and the event queue.
///
/// Build a model by adding signals and components, then call
/// [`run`](Self::run):
///
/// ```
/// use eventsim::{Simulator, Value, ops::{Clock, Counter}};
///
/// # fn main() -> Result<(), eventsim::SimError> {
/// let mut sim = Simulator::new();
/// let clk = sim.add_signal("clk", 1);
/// let count = sim.add_signal("count", 8);
/// sim.add_component(Clock::new("clk0", clk, 10));
/// sim.add_component(Counter::new("cnt0", clk, count));
/// sim.run(eventsim::SimTime(100))?;
/// assert_eq!(sim.value(count).as_u64(), 10); // ten rising edges in 100 ticks
/// # Ok(())
/// # }
/// ```
pub struct Simulator {
    core: SimCore,
    components: Vec<Box<dyn Component>>,
    component_names: Vec<String>,
    /// Per-component reactive evaluation counts (init calls excluded) —
    /// the "hot operator" histogram.
    activations: Vec<u64>,
    /// Per-component evaluation gate ([`Component::eval_gate`]), encoded
    /// as a signal index or `u32::MAX` for "no gate".
    gates: Vec<u32>,
    /// Signal name → id of the *first* signal registered under that name.
    name_index: HashMap<String, SignalId>,
    /// Per-signal sink lists in registration order (seal-time source).
    build_sinks: Vec<SinkBuild>,
    /// Flattened sink adjacency used by the event loop.
    sinks: SinkTable,
    sealed: bool,
    hook: Option<Box<dyn KernelHook>>,
    delta_limit: u32,
    initialized: bool,
}

impl Default for Simulator {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulator {
    /// Creates an empty simulator with the default delta limit (4096).
    pub fn new() -> Self {
        Simulator {
            core: SimCore {
                values: Vec::new(),
                widths: Vec::new(),
                traced: Vec::new(),
                names: Vec::new(),
                current: Vec::new(),
                cursor: 0,
                next_delta: Vec::new(),
                future: BinaryHeap::new(),
                wheel: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
                wheel_len: 0,
                seq: 0,
                now: 0,
                delta: 0,
                stop: None,
                eval_marks: Vec::new(),
                trace: Vec::new(),
                events: 0,
                updates: 0,
                evals: 0,
                delta_cycles: 0,
                max_queue_depth: 0,
                run_max_queue_depth: 0,
            },
            components: Vec::new(),
            component_names: Vec::new(),
            activations: Vec::new(),
            gates: Vec::new(),
            name_index: HashMap::new(),
            build_sinks: Vec::new(),
            sinks: SinkTable::default(),
            sealed: false,
            hook: None,
            delta_limit: 4096,
            initialized: false,
        }
    }

    /// Installs a [`KernelHook`] observing run boundaries, replacing any
    /// previous hook.
    pub fn set_hook(&mut self, hook: Box<dyn KernelHook>) {
        self.hook = Some(hook);
    }

    /// Overrides the delta-cycle limit used for zero-delay loop detection.
    pub fn set_delta_limit(&mut self, limit: u32) {
        self.delta_limit = limit.max(1);
    }

    /// Adds a signal and returns its id. Signals start at `X`.
    ///
    /// # Panics
    ///
    /// Panics when `width` is outside `1..=64`.
    pub fn add_signal(&mut self, name: impl Into<String>, width: u32) -> SignalId {
        let id = SignalId(self.core.values.len());
        let name = name.into();
        self.core.values.push(Value::x(width));
        self.core.widths.push(width);
        self.core.traced.push(false);
        self.name_index.entry(name.clone()).or_insert(id);
        self.core.names.push(name);
        self.build_sinks.push(SinkBuild::default());
        id
    }

    /// Registers a component, wiring its sensitivity list, and returns its
    /// id.
    pub fn add_component(&mut self, component: impl Component + 'static) -> ComponentId {
        self.add_boxed_component(Box::new(component))
    }

    /// [`add_component`](Self::add_component) for already-boxed components
    /// (used by netlist elaboration).
    pub fn add_boxed_component(&mut self, component: Box<dyn Component>) -> ComponentId {
        let id = ComponentId(self.components.len());
        for input in component.inputs() {
            let build = &mut self.build_sinks[input.signal.0];
            match input.sense {
                crate::component::Sense::Any => build.any.push(id.0 as u32),
                crate::component::Sense::Rising => build.rising.push(id.0 as u32),
            }
        }
        self.sealed = false;
        self.component_names.push(component.name().to_string());
        self.gates.push(match component.eval_gate() {
            Some(signal) => signal.0 as u32,
            None => u32::MAX,
        });
        self.components.push(component);
        self.activations.push(0);
        self.core.eval_marks.push((u64::MAX, u32::MAX));
        id
    }

    /// Flattens the registered sensitivity lists into the CSR sink arena
    /// the event loop iterates. Called automatically by
    /// [`run`](Self::run); explicit calls are only useful to front-load
    /// the (cheap) rebuild. Adding a component after sealing marks the
    /// table dirty and the next run reseals.
    pub fn seal(&mut self) {
        let signal_count = self.core.values.len();
        self.sinks.arena.clear();
        self.sinks.ranges.clear();
        self.sinks.ranges.reserve(signal_count);
        for build in &self.build_sinks {
            let start = self.sinks.arena.len() as u32;
            self.sinks.arena.extend_from_slice(&build.any);
            let split = self.sinks.arena.len() as u32;
            self.sinks.arena.extend_from_slice(&build.rising);
            let end = self.sinks.arena.len() as u32;
            self.sinks.ranges.push(SinkRange { start, split, end });
        }
        self.sealed = true;
    }

    /// Current value of a signal.
    pub fn value(&self, signal: SignalId) -> Value {
        self.core.values[signal.0]
    }

    /// Name of a signal.
    pub fn signal_name(&self, signal: SignalId) -> &str {
        &self.core.names[signal.0]
    }

    /// Width of a signal.
    pub fn signal_width(&self, signal: SignalId) -> u32 {
        self.core.widths[signal.0]
    }

    /// Number of signals.
    pub fn signal_count(&self) -> usize {
        self.core.values.len()
    }

    /// Number of components.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Looks a signal up by name through the name index (first signal
    /// registered under the name, O(1)).
    pub fn find_signal(&self, name: &str) -> Option<SignalId> {
        self.name_index.get(name).copied()
    }

    /// Name of a component.
    pub fn component_name(&self, component: ComponentId) -> &str {
        &self.component_names[component.0]
    }

    /// Marks a signal for waveform recording (see [`Self::changes`] and
    /// [`crate::vcd`]).
    pub fn trace_signal(&mut self, signal: SignalId) {
        self.core.traced[signal.0] = true;
    }

    /// The recorded changes of all traced signals, in order.
    pub fn changes(&self) -> &[Change] {
        &self.core.trace
    }

    /// The signals currently marked for tracing, in id order.
    pub fn traced_signals(&self) -> Vec<SignalId> {
        self.core
            .traced
            .iter()
            .enumerate()
            .filter(|(_, &t)| t)
            .map(|(i, _)| SignalId(i))
            .collect()
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        SimTime(self.core.now)
    }

    /// Runs until the event queue drains, a component stops the run, or
    /// simulation time exceeds `limit`.
    ///
    /// The first call initializes every component. Subsequent calls resume
    /// where the previous run left off, so a test bench can single-step
    /// through interesting windows.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DeltaOverflow`] when a zero-delay loop is
    /// detected.
    pub fn run(&mut self, limit: SimTime) -> Result<RunSummary, SimError> {
        let started = Instant::now();
        let events0 = self.core.events;
        let updates0 = self.core.updates;
        let evals0 = self.core.evals;
        let delta_cycles0 = self.core.delta_cycles;
        self.core.run_max_queue_depth = 0;
        self.core.stop = None;
        if !self.sealed {
            self.seal();
        }
        if let Some(mut hook) = self.hook.take() {
            hook.on_run_start(SimTime(self.core.now));
            self.hook = Some(hook);
        }
        // Sampled once per run: the Eval arm pays one branch on this
        // cached bool, never a virtual call, when timing is off.
        let timed = self.hook.as_ref().is_some_and(|hook| hook.wants_evals());

        if !self.initialized {
            self.initialized = true;
            for i in 0..self.components.len() {
                self.call_component(ComponentId(i), true);
            }
        }

        let outcome = loop {
            // Drain the current delta batch.
            while self.core.cursor < self.core.current.len() {
                let kind = self.core.current[self.core.cursor];
                self.core.cursor += 1;
                self.core.events += 1;
                match kind {
                    EventKind::Update(signal, value) => {
                        let index = signal.0;
                        debug_assert_eq!(self.core.widths[index], value.width());
                        let old = self.core.values[index];
                        if old != value {
                            self.core.values[index] = value;
                            self.core.updates += 1;
                            if self.core.traced[index] {
                                self.core.trace.push(Change {
                                    time: SimTime(self.core.now),
                                    signal,
                                    value,
                                });
                            }
                            // A genuine rising edge: the old value was not
                            // true (0 or X), the new one is. Leaving X for
                            // a true value counts as the first edge; a
                            // change between two non-zero values (1→2 on a
                            // multi-bit net) does not.
                            let range = self.sinks.ranges[index];
                            let end = if value.is_true() && !old.is_true() {
                                range.end
                            } else {
                                range.split
                            };
                            for i in range.start..end {
                                let sink = ComponentId(self.sinks.arena[i as usize] as usize);
                                self.core.schedule_eval_next(sink);
                            }
                        }
                    }
                    EventKind::Eval(component) => {
                        self.core.evals += 1;
                        let gate = self.gates[component.0];
                        if gate == u32::MAX || self.core.values[gate as usize].is_true() {
                            if timed {
                                let eval_started = Instant::now();
                                self.call_component(component, false);
                                let nanos = eval_started.elapsed().as_nanos() as u64;
                                if let Some(hook) = self.hook.as_mut() {
                                    hook.on_eval(component, nanos);
                                }
                            } else {
                                self.call_component(component, false);
                            }
                        } else {
                            // Gated no-op (see [`Component::eval_gate`]):
                            // counters advance exactly as if `react` had
                            // run and returned immediately.
                            self.activations[component.0] += 1;
                        }
                    }
                }
            }

            // Advance to the next delta of this instant.
            if !self.core.next_delta.is_empty() {
                self.core.delta += 1;
                self.core.delta_cycles += 1;
                if self.core.delta > self.delta_limit {
                    return Err(SimError::DeltaOverflow {
                        time: SimTime(self.core.now),
                        limit: self.delta_limit,
                    });
                }
                self.core.current.clear();
                self.core.cursor = 0;
                std::mem::swap(&mut self.core.current, &mut self.core.next_delta);
                continue;
            }

            // The instant has fully settled: a pending stop/fail takes
            // effect now, so the final clock edge's register latches and
            // delta ripples are not lost.
            if let Some(stop) = self.core.stop.take() {
                break stop;
            }

            // Advance time to the next future batch.
            let Some(t) = self.core.next_event_time() else {
                break RunOutcome::QueueEmpty;
            };
            if t > limit.0 {
                // A resume may pass a limit below `now`; time never moves
                // backwards (the wheel indexes slots relative to `now`, so
                // rewinding would alias far events into the near window).
                self.core.now = limit.0.max(self.core.now);
                break RunOutcome::TimeLimit;
            }
            self.core.advance_to(t);
        };

        let summary = RunSummary {
            outcome,
            end_time: SimTime(self.core.now),
            events: self.core.events - events0,
            updates: self.core.updates - updates0,
            evals: self.core.evals - evals0,
            delta_cycles: self.core.delta_cycles - delta_cycles0,
            max_queue_depth: self.core.run_max_queue_depth,
            wall_seconds: started.elapsed().as_secs_f64(),
        };
        if let Some(mut hook) = self.hook.take() {
            hook.on_run_end(&summary);
            self.hook = Some(hook);
        }
        Ok(summary)
    }

    /// Runs to completion with a generous default limit, failing the run if
    /// the limit is hit (useful for "must finish" tests).
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from [`run`](Self::run).
    pub fn run_to_quiescence(&mut self) -> Result<RunSummary, SimError> {
        self.run(SimTime(u64::MAX / 2))
    }

    /// Cumulative kernel counters since the simulator was created.
    pub fn stats(&self) -> KernelStats {
        KernelStats {
            events: self.core.events,
            updates: self.core.updates,
            evals: self.core.evals,
            delta_cycles: self.core.delta_cycles,
            max_queue_depth: self.core.max_queue_depth,
        }
    }

    /// Number of reactive evaluations of one component (init excluded).
    pub fn activation_count(&self, component: ComponentId) -> u64 {
        self.activations[component.0]
    }

    /// Per-component reactive evaluation counts, indexed by component id.
    pub fn activation_counts(&self) -> &[u64] {
        &self.activations
    }

    /// The `top` most-activated components (ties broken by id), skipping
    /// components that never reacted — the "hot operator" histogram.
    pub fn hot_components(&self, top: usize) -> Vec<(ComponentId, u64)> {
        let mut ranked: Vec<(ComponentId, u64)> = self
            .activations
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (ComponentId(i), n))
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));
        ranked.truncate(top);
        ranked
    }

    // Components are dispatched in place: `Context` borrows only `core`,
    // which is disjoint from the component storage, so no take/restore
    // dance is needed on the hot path.
    #[inline]
    fn call_component(&mut self, id: ComponentId, init: bool) {
        if !init {
            self.activations[id.0] += 1;
        }
        let mut ctx = Context {
            core: &mut self.core,
            id,
        };
        if init {
            self.components[id.0].init(&mut ctx);
        } else {
            self.components[id.0].react(&mut ctx);
        }
    }
}

/// Scheduling interface handed to components during
/// [`init`](Component::init) and [`react`](Component::react).
pub struct Context<'a> {
    core: &'a mut SimCore,
    id: ComponentId,
}

impl Context<'_> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        SimTime(self.core.now)
    }

    /// Reads the current value of a signal.
    #[inline]
    pub fn get(&self, signal: SignalId) -> Value {
        self.core.values[signal.0]
    }

    /// Schedules a zero-delay write: the signal takes the value in the next
    /// delta cycle of the current instant.
    ///
    /// # Panics
    ///
    /// Panics when the value width does not match the signal width — that
    /// is an elaboration bug, not a runtime condition.
    #[inline]
    pub fn set(&mut self, signal: SignalId, value: Value) {
        self.check_width(signal, &value);
        self.core.push_next_delta(EventKind::Update(signal, value));
    }

    /// Schedules a write `delay` ticks in the future (delta 0 of that
    /// instant). A `delay` of zero behaves like [`set`](Self::set).
    ///
    /// A delay that would overflow the 64-bit time axis saturates to
    /// `u64::MAX` ticks instead of wrapping into the past; an event that
    /// cannot be placed after the current instant (only possible at the
    /// very end of the time axis) is dropped.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch, as for [`set`](Self::set).
    pub fn set_after(&mut self, signal: SignalId, value: Value, delay: u64) {
        if delay == 0 {
            self.set(signal, value);
            return;
        }
        self.check_width(signal, &value);
        let time = self.core.now.saturating_add(delay);
        if time == self.core.now {
            return;
        }
        self.core.push_future(time, EventKind::Update(signal, value));
    }

    /// Requests a re-evaluation of this component `delay` ticks from now
    /// (self-scheduling, used by generators such as clocks). Overflowing
    /// delays saturate as for [`set_after`](Self::set_after).
    pub fn wake_after(&mut self, delay: u64) {
        let time = self.core.now.saturating_add(delay.max(1));
        if time == self.core.now {
            return;
        }
        let id = self.id;
        self.core.push_future(time, EventKind::Eval(id));
    }

    /// Stops the run after the current delta with [`RunOutcome::Stopped`].
    pub fn stop(&mut self, reason: impl Into<String>) {
        if self.core.stop.is_none() {
            self.core.stop = Some(RunOutcome::Stopped(reason.into()));
        }
    }

    /// Stops the run reporting a failure ([`RunOutcome::Failed`]).
    pub fn fail(&mut self, message: impl Into<String>) {
        // A failure overrides a plain stop recorded in the same delta.
        self.core.stop = Some(RunOutcome::Failed(message.into()));
    }

    #[inline]
    fn check_width(&self, signal: SignalId, value: &Value) {
        let width = self.core.widths[signal.0];
        assert_eq!(
            width,
            value.width(),
            "width mismatch driving signal '{}' ({} bits) with {} ",
            self.core.names[signal.0],
            width,
            value
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::Component;

    /// Drives a constant after an optional delay.
    struct Driver {
        out: SignalId,
        value: Value,
        delay: u64,
    }

    impl Component for Driver {
        fn name(&self) -> &str {
            "driver"
        }
        fn inputs(&self) -> Vec<crate::component::Sensitivity> {
            Vec::new()
        }
        fn init(&mut self, ctx: &mut Context<'_>) {
            ctx.set_after(self.out, self.value, self.delay);
        }
        fn react(&mut self, _ctx: &mut Context<'_>) {}
    }

    /// Inverter with zero (delta) delay.
    struct Not {
        a: SignalId,
        y: SignalId,
    }

    impl Component for Not {
        fn name(&self) -> &str {
            "not"
        }
        fn inputs(&self) -> Vec<crate::component::Sensitivity> {
            vec![crate::component::Sensitivity::any(self.a)]
        }
        fn react(&mut self, ctx: &mut Context<'_>) {
            let a = ctx.get(self.a);
            let out = match a.try_u64() {
                Some(v) => Value::known(1, (v == 0) as i64),
                None => Value::x(1),
            };
            ctx.set(self.y, out);
        }
    }

    /// Counts how often it was evaluated (for edge-sensitivity tests).
    struct EvalCounter {
        watched: SignalId,
        sense: crate::component::Sense,
    }

    impl Component for EvalCounter {
        fn name(&self) -> &str {
            "eval_counter"
        }
        fn inputs(&self) -> Vec<crate::component::Sensitivity> {
            vec![crate::component::Sensitivity {
                signal: self.watched,
                sense: self.sense,
            }]
        }
        fn react(&mut self, _ctx: &mut Context<'_>) {}
    }

    #[test]
    fn empty_simulator_drains_immediately() {
        let mut sim = Simulator::new();
        let summary = sim.run(SimTime(100)).unwrap();
        assert_eq!(summary.outcome, RunOutcome::QueueEmpty);
        assert_eq!(summary.events, 0);
    }

    #[test]
    fn driver_sets_value_at_delay() {
        let mut sim = Simulator::new();
        let s = sim.add_signal("s", 8);
        sim.add_component(Driver {
            out: s,
            value: Value::known(8, 42),
            delay: 7,
        });
        let summary = sim.run(SimTime(100)).unwrap();
        assert_eq!(sim.value(s).as_u64(), 42);
        assert_eq!(summary.end_time, SimTime(7));
        assert_eq!(summary.updates, 1);
    }

    #[test]
    fn far_events_use_the_heap_and_still_fire() {
        let mut sim = Simulator::new();
        let near = sim.add_signal("near", 8);
        let far = sim.add_signal("far", 8);
        sim.add_component(Driver {
            out: near,
            value: Value::known(8, 1),
            delay: 3, // wheel
        });
        sim.add_component(Driver {
            out: far,
            value: Value::known(8, 2),
            delay: 1_000_000, // heap
        });
        let summary = sim.run(SimTime(2_000_000)).unwrap();
        assert_eq!(summary.outcome, RunOutcome::QueueEmpty);
        assert_eq!(sim.value(near).as_u64(), 1);
        assert_eq!(sim.value(far).as_u64(), 2);
        assert_eq!(summary.end_time, SimTime(1_000_000));
    }

    #[test]
    fn same_instant_wheel_and_heap_events_merge_in_schedule_order() {
        // Two writes to the same signal at the same instant: one scheduled
        // far ahead (heap), one scheduled later in wall-clock order but
        // near (wheel). The later-scheduled write must win, exactly as if
        // both had sat in one queue.
        struct TwoPhase {
            out: SignalId,
            phase: u8,
        }
        impl Component for TwoPhase {
            fn name(&self) -> &str {
                "two_phase"
            }
            fn inputs(&self) -> Vec<crate::component::Sensitivity> {
                Vec::new()
            }
            fn init(&mut self, ctx: &mut Context<'_>) {
                // t=100 via the heap (delta 100 >= wheel span).
                ctx.set_after(self.out, Value::known(8, 1), 100);
                ctx.wake_after(90);
            }
            fn react(&mut self, ctx: &mut Context<'_>) {
                if self.phase == 0 {
                    self.phase = 1;
                    // Scheduled at t=90 for t=100: lands in the wheel, and
                    // its seq is later than the heap event's.
                    ctx.set_after(self.out, Value::known(8, 2), 10);
                }
            }
        }
        let mut sim = Simulator::new();
        let s = sim.add_signal("s", 8);
        sim.add_component(TwoPhase { out: s, phase: 0 });
        sim.run(SimTime(200)).unwrap();
        assert_eq!(sim.value(s).as_u64(), 2, "later-scheduled write wins");
    }

    #[test]
    fn combinational_chain_settles_in_deltas() {
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 1);
        let b = sim.add_signal("b", 1);
        let c = sim.add_signal("c", 1);
        sim.add_component(Driver {
            out: a,
            value: Value::bit(true),
            delay: 1,
        });
        sim.add_component(Not { a, y: b });
        sim.add_component(Not { a: b, y: c });
        let summary = sim.run(SimTime(10)).unwrap();
        assert!(sim.value(b).is_false());
        assert!(sim.value(c).is_true());
        // Everything happened at t=1 across delta cycles.
        assert_eq!(summary.end_time, SimTime(1));
    }

    #[test]
    fn zero_delay_loop_is_detected() {
        let mut sim = Simulator::new();
        sim.set_delta_limit(64);
        let a = sim.add_signal("a", 1);
        let b = sim.add_signal("b", 1);
        sim.add_component(Driver {
            out: a,
            value: Value::bit(true),
            delay: 1,
        });
        // a = !a: a combinational loop oscillating at zero delay.
        let _ = b;
        sim.add_component(Not { a, y: a });
        let err = sim.run(SimTime(10)).unwrap_err();
        assert!(matches!(err, SimError::DeltaOverflow { limit: 64, .. }));
    }

    #[test]
    fn time_limit_outcome() {
        let mut sim = Simulator::new();
        let s = sim.add_signal("s", 1);
        sim.add_component(Driver {
            out: s,
            value: Value::bit(true),
            delay: 1000,
        });
        let summary = sim.run(SimTime(10)).unwrap();
        assert_eq!(summary.outcome, RunOutcome::TimeLimit);
        assert!(sim.value(s).is_x());
        // Resume past the event.
        let summary = sim.run(SimTime(2000)).unwrap();
        assert_eq!(summary.outcome, RunOutcome::QueueEmpty);
        assert!(sim.value(s).is_true());
    }

    #[test]
    fn redundant_updates_do_not_ripple() {
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 1);
        let b = sim.add_signal("b", 1);
        sim.add_component(Driver {
            out: a,
            value: Value::bit(true),
            delay: 1,
        });
        sim.add_component(Driver {
            out: a,
            value: Value::bit(true),
            delay: 5,
        });
        sim.add_component(Not { a, y: b });
        let summary = sim.run(SimTime(100)).unwrap();
        // The second identical update must not re-evaluate the inverter.
        assert_eq!(summary.updates, 2); // a and b once each
    }

    #[test]
    fn rising_sense_requires_a_genuine_edge() {
        // Regression (pre-overhaul bug): any change *to* a truthy value
        // fired rising-edge sinks, so a 2-bit signal changing 1→2 — or
        // 2→3 — retriggered "edge-triggered" components.
        let mut sim = Simulator::new();
        let s = sim.add_signal("s", 2);
        let driver = sim.add_component(Driver {
            out: s,
            value: Value::known(2, 1),
            delay: 1,
        });
        sim.add_component(Driver {
            out: s,
            value: Value::known(2, 2),
            delay: 5,
        });
        sim.add_component(Driver {
            out: s,
            value: Value::known(2, 0),
            delay: 9,
        });
        sim.add_component(Driver {
            out: s,
            value: Value::known(2, 3),
            delay: 13,
        });
        let rising = sim.add_component(EvalCounter {
            watched: s,
            sense: crate::component::Sense::Rising,
        });
        let any = sim.add_component(EvalCounter {
            watched: s,
            sense: crate::component::Sense::Any,
        });
        let _ = driver;
        sim.run(SimTime(100)).unwrap();
        // X→1 (first edge) and 0→3 (second edge) fire; 1→2 must not.
        assert_eq!(sim.activation_count(rising), 2);
        // The Any sink sees all four changes.
        assert_eq!(sim.activation_count(any), 4);
    }

    #[test]
    fn rising_sense_fires_on_x_to_one() {
        // Documented choice: a net leaving X for a true value counts as
        // its first rising edge (a register whose clock is initialized
        // high latches once at start-up instead of missing the edge).
        let mut sim = Simulator::new();
        let s = sim.add_signal("s", 1);
        sim.add_component(Driver {
            out: s,
            value: Value::bit(true),
            delay: 2,
        });
        let rising = sim.add_component(EvalCounter {
            watched: s,
            sense: crate::component::Sense::Rising,
        });
        sim.run(SimTime(10)).unwrap();
        assert_eq!(sim.activation_count(rising), 1);
    }

    #[test]
    fn overflowing_delay_saturates_instead_of_wrapping() {
        // Regression: `now + delay` used to wrap, tripping the
        // push-future debug assertion (or silently scheduling in the past
        // in release builds). The event now saturates to the end of the
        // time axis and simply never fires within any reachable limit.
        struct HugeDelay {
            out: SignalId,
        }
        impl Component for HugeDelay {
            fn name(&self) -> &str {
                "huge"
            }
            fn inputs(&self) -> Vec<crate::component::Sensitivity> {
                Vec::new()
            }
            fn init(&mut self, ctx: &mut Context<'_>) {
                ctx.set_after(self.out, Value::bit(true), 5);
            }
            fn react(&mut self, _ctx: &mut Context<'_>) {}
        }
        struct WakeForever;
        impl Component for WakeForever {
            fn name(&self) -> &str {
                "wake_forever"
            }
            fn inputs(&self) -> Vec<crate::component::Sensitivity> {
                Vec::new()
            }
            fn init(&mut self, ctx: &mut Context<'_>) {
                ctx.wake_after(1);
            }
            fn react(&mut self, ctx: &mut Context<'_>) {
                // At t=1: both of these used to wrap past u64::MAX.
                ctx.wake_after(u64::MAX);
            }
        }
        let mut sim = Simulator::new();
        let s = sim.add_signal("s", 1);
        let t = sim.add_signal("t", 1);
        sim.add_component(HugeDelay { out: t });
        sim.add_component(WakeForever);
        // A write scheduled with a delay that overflows the time axis.
        struct OverflowSet {
            out: SignalId,
        }
        impl Component for OverflowSet {
            fn name(&self) -> &str {
                "overflow_set"
            }
            fn inputs(&self) -> Vec<crate::component::Sensitivity> {
                Vec::new()
            }
            fn init(&mut self, ctx: &mut Context<'_>) {
                ctx.wake_after(3);
            }
            fn react(&mut self, ctx: &mut Context<'_>) {
                ctx.set_after(self.out, Value::bit(false), u64::MAX - 1);
            }
        }
        sim.add_component(OverflowSet { out: s });
        let summary = sim.run_to_quiescence().unwrap();
        // The saturated events sit beyond the quiescence limit: the run
        // ends at the limit, not in a panic or a time warp.
        assert_eq!(summary.outcome, RunOutcome::TimeLimit);
        assert!(sim.value(t).is_true());
        assert!(sim.value(s).is_x(), "saturated write never fired");
    }

    #[test]
    fn tracing_records_changes() {
        let mut sim = Simulator::new();
        let s = sim.add_signal("s", 4);
        sim.trace_signal(s);
        sim.add_component(Driver {
            out: s,
            value: Value::known(4, 3),
            delay: 2,
        });
        sim.run(SimTime(10)).unwrap();
        let changes = sim.changes();
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].time, SimTime(2));
        assert_eq!(changes[0].value.as_u64(), 3);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let mut sim = Simulator::new();
        let s = sim.add_signal("s", 4);
        sim.add_component(Driver {
            out: s,
            value: Value::known(8, 1),
            delay: 1,
        });
        let _ = sim.run(SimTime(10));
    }

    #[test]
    fn run_resumes_after_stop() {
        use crate::ops::{Clock, Counter};
        use crate::probe::Watchpoint;
        let mut sim = Simulator::new();
        let clk = sim.add_signal("clk", 1);
        let q = sim.add_signal("q", 8);
        sim.add_component(Clock::new("clk0", clk, 10));
        sim.add_component(Counter::new("cnt", clk, q));
        sim.add_component(Watchpoint::new("w", q, 3));
        let summary = sim.run(SimTime(10_000)).unwrap();
        assert!(matches!(summary.outcome, RunOutcome::Stopped(_)));
        assert_eq!(sim.value(q).as_u64(), 3);
        // Resuming continues from the stop point; the watchpoint only
        // fires on *changes to* its value, so the run proceeds until the
        // time limit.
        let summary = sim.run(SimTime(200)).unwrap();
        assert_eq!(summary.outcome, RunOutcome::TimeLimit);
        assert!(sim.value(q).as_u64() > 3);
    }

    #[test]
    fn components_added_after_a_run_are_wired_in() {
        // Adding a component dirties the sealed sink table; the next run
        // reseals and the new sink sees subsequent updates.
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 1);
        let b = sim.add_signal("b", 1);
        sim.add_component(Driver {
            out: a,
            value: Value::bit(true),
            delay: 1,
        });
        sim.add_component(Driver {
            out: a,
            value: Value::bit(false),
            delay: 10,
        });
        sim.run(SimTime(5)).unwrap();
        assert!(sim.value(a).is_true());
        sim.add_component(Not { a, y: b });
        sim.run(SimTime(50)).unwrap();
        assert!(sim.value(a).is_false());
        assert!(sim.value(b).is_true(), "late-added inverter reacted");
    }

    #[test]
    fn counters_track_deltas_depth_and_activations() {
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 1);
        let b = sim.add_signal("b", 1);
        let c = sim.add_signal("c", 1);
        sim.add_component(Driver {
            out: a,
            value: Value::bit(true),
            delay: 1,
        });
        let n1 = sim.add_component(Not { a, y: b });
        let n2 = sim.add_component(Not { a: b, y: c });
        let summary = sim.run(SimTime(10)).unwrap();
        // a flips at t=1, ripples through two inverters: at least one delta
        // cycle per stage of the chain.
        assert!(summary.delta_cycles >= 2, "deltas: {}", summary.delta_cycles);
        assert!(summary.max_queue_depth >= 1);
        let stats = sim.stats();
        assert_eq!(stats.events, summary.events);
        assert_eq!(stats.delta_cycles, summary.delta_cycles);
        assert_eq!(stats.max_queue_depth, summary.max_queue_depth);
        // Each inverter reacted exactly once (dedup holds).
        assert_eq!(sim.activation_count(n1), 1);
        assert_eq!(sim.activation_count(n2), 1);
        let hot = sim.hot_components(10);
        assert_eq!(hot.len(), 2);
        assert!(hot.iter().all(|&(_, n)| n == 1));
    }

    #[test]
    fn run_summary_counters_are_per_run() {
        let mut sim = Simulator::new();
        let s = sim.add_signal("s", 1);
        let y = sim.add_signal("y", 1);
        sim.add_component(Driver {
            out: s,
            value: Value::bit(true),
            delay: 5,
        });
        sim.add_component(Not { a: s, y });
        let first = sim.run(SimTime(3)).unwrap();
        assert_eq!(first.outcome, RunOutcome::TimeLimit);
        let second = sim.run(SimTime(100)).unwrap();
        // The delta ripple through the inverter at t=5 belongs to the
        // second run only; cumulative stats cover both runs.
        assert_eq!(first.delta_cycles, 0);
        assert!(second.delta_cycles >= 1);
        assert_eq!(sim.stats().delta_cycles, second.delta_cycles);
        assert_eq!(
            sim.stats().events,
            first.events + second.events
        );
    }

    #[test]
    fn hook_observes_run_boundaries() {
        use std::cell::RefCell;
        use std::rc::Rc;

        #[derive(Default)]
        struct Log {
            starts: Vec<SimTime>,
            end_events: Vec<u64>,
        }
        struct Spy(Rc<RefCell<Log>>);
        impl KernelHook for Spy {
            fn on_run_start(&mut self, now: SimTime) {
                self.0.borrow_mut().starts.push(now);
            }
            fn on_run_end(&mut self, summary: &RunSummary) {
                self.0.borrow_mut().end_events.push(summary.events);
            }
        }

        let log = Rc::new(RefCell::new(Log::default()));
        let mut sim = Simulator::new();
        let s = sim.add_signal("s", 1);
        sim.add_component(Driver {
            out: s,
            value: Value::bit(true),
            delay: 2,
        });
        sim.set_hook(Box::new(Spy(log.clone())));
        let summary = sim.run(SimTime(10)).unwrap();
        let log = log.borrow();
        assert_eq!(log.starts, vec![SimTime(0)]);
        assert_eq!(log.end_events, vec![summary.events]);
    }

    #[test]
    fn find_signal_by_name() {
        let mut sim = Simulator::new();
        let a = sim.add_signal("alpha", 1);
        let _ = sim.add_signal("beta", 1);
        assert_eq!(sim.find_signal("alpha"), Some(a));
        assert_eq!(sim.find_signal("gamma"), None);
        assert_eq!(sim.signal_name(a), "alpha");
        assert_eq!(sim.signal_width(a), 1);
    }

    #[test]
    fn find_signal_does_not_rescan() {
        // Probe wiring resolves every probe name through `find_signal`;
        // with the historical linear scan, N lookups over N signals are
        // quadratic (here: 2.5e9 string compares, tens of seconds in a
        // debug build). Through the name index the whole loop is
        // milliseconds, so the generous bound cleanly separates the two
        // while staying robust to slow CI machines.
        let n = 50_000;
        let mut sim = Simulator::new();
        let mut ids = Vec::with_capacity(n);
        for i in 0..n {
            ids.push(sim.add_signal(format!("net_{i}"), 8));
        }
        let started = std::time::Instant::now();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(sim.find_signal(&format!("net_{i}")), Some(*id));
        }
        assert!(
            started.elapsed() < std::time::Duration::from_secs(5),
            "find_signal rescanned: {n} lookups took {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn eval_gate_skips_dispatch_but_keeps_counters() {
        // A gated component whose gate is low must still be *counted* as
        // evaluated (evals and the activation histogram are part of the
        // kernel's observable contract), the dispatch is just skipped.
        struct Gated {
            en: SignalId,
            out: SignalId,
        }
        impl Component for Gated {
            fn name(&self) -> &str {
                "gated"
            }
            fn inputs(&self) -> Vec<crate::component::Sensitivity> {
                vec![crate::component::Sensitivity::any(self.en)]
            }
            fn react(&mut self, ctx: &mut Context<'_>) {
                if ctx.get(self.en).is_true() {
                    ctx.set(self.out, Value::bit(true));
                }
            }
            fn eval_gate(&self) -> Option<SignalId> {
                Some(self.en)
            }
        }
        let mut sim = Simulator::new();
        let en = sim.add_signal("en", 1);
        let out = sim.add_signal("out", 1);
        sim.add_component(Driver {
            out: en,
            value: Value::bit(false),
            delay: 1,
        });
        sim.add_component(Driver {
            out: en,
            value: Value::bit(true),
            delay: 5,
        });
        let gated = sim.add_component(Gated { en, out });
        sim.run(SimTime(20)).unwrap();
        // Both en changes count as evaluations; only the second one
        // actually dispatched and drove the output.
        assert_eq!(sim.activation_count(gated), 2);
        assert_eq!(sim.stats().evals, 2);
        assert!(sim.value(out).is_true());
    }

    #[test]
    fn find_signal_returns_first_registration_for_duplicates() {
        // The name index must preserve the historical linear-scan
        // semantics: the first signal registered under a name wins.
        let mut sim = Simulator::new();
        let first = sim.add_signal("dup", 4);
        let _second = sim.add_signal("dup", 8);
        assert_eq!(sim.find_signal("dup"), Some(first));
        assert_eq!(sim.signal_width(sim.find_signal("dup").unwrap()), 4);
    }
}
