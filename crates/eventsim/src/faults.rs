//! Event-kernel fault-injection components.
//!
//! Faults ride the ordinary component machinery, so the kernel needs no
//! special cases: a [`StuckAtClamp`] is a component sensitive to its
//! target signal that re-forces the clamped bit whenever anything else
//! drives it, and a [`TransientFlip`] is a self-scheduled one-shot that
//! inverts a bit just before a chosen instant. When no faults are
//! registered, nothing is added to the simulator and the event schedule
//! (and therefore every kernel counter) is bit-identical to a clean run.
//!
//! Clamp semantics: the clamped value lands one delta cycle after the
//! driving write, so within a single simulation instant the raw value is
//! briefly visible (enough, e.g., for a rising-edge glitch on a clamped
//! clock). Across instants — which is how registers, FSMs, and memories
//! sample their inputs in generated designs — the clamp always wins.
//! Whole-value `X` passes through unchanged: the fault forces known bits
//! only once the signal resolves.

use crate::component::{Component, Sensitivity, SignalId};
use crate::kernel::Context;
use crate::value::Value;

/// Permanently clamps one bit of a signal to a fixed value (stuck-at-0 or
/// stuck-at-1), re-asserting the clamp whenever the signal changes.
pub struct StuckAtClamp {
    name: String,
    signal: SignalId,
    and_mask: u64,
    or_mask: u64,
}

impl StuckAtClamp {
    /// A clamp forcing `bit` of `signal` to `value`. The caller is
    /// responsible for checking `bit` against the signal's width (the
    /// kernel panics on width-mismatched writes).
    pub fn new(name: impl Into<String>, signal: SignalId, bit: u32, value: bool) -> Self {
        let mask = 1u64 << bit;
        StuckAtClamp {
            name: name.into(),
            signal,
            and_mask: if value { u64::MAX } else { !mask },
            or_mask: if value { mask } else { 0 },
        }
    }

    fn clamp(&self, ctx: &mut Context<'_>) {
        let v = ctx.get(self.signal);
        let Some(bits) = v.try_u64() else {
            return;
        };
        let clamped = (bits & self.and_mask) | self.or_mask;
        if clamped != bits {
            ctx.set(self.signal, Value::known(v.width(), clamped as i64));
        }
    }
}

impl Component for StuckAtClamp {
    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> Vec<Sensitivity> {
        vec![Sensitivity::any(self.signal)]
    }

    fn init(&mut self, ctx: &mut Context<'_>) {
        self.clamp(ctx);
    }

    fn react(&mut self, ctx: &mut Context<'_>) {
        self.clamp(ctx);
    }
}

/// Inverts one bit of a signal at a chosen simulation instant, once — a
/// transient single-event upset. The flipped value persists until the
/// signal's normal driver next writes it (for a register output: until
/// the next enabled clock edge), which is exactly the SEU model.
pub struct TransientFlip {
    name: String,
    signal: SignalId,
    mask: u64,
    at_tick: u64,
    fired: bool,
}

impl TransientFlip {
    /// A one-shot flip of `bit` on `signal` at simulation time
    /// `at_tick`. To be observed by edge-sampling logic, schedule it just
    /// before a rising clock edge (the flow uses `edge_time - 1`). The
    /// caller is responsible for checking `bit` against the signal's
    /// width.
    pub fn new(name: impl Into<String>, signal: SignalId, bit: u32, at_tick: u64) -> Self {
        TransientFlip {
            name: name.into(),
            signal,
            mask: 1u64 << bit,
            at_tick,
            fired: false,
        }
    }
}

impl Component for TransientFlip {
    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> Vec<Sensitivity> {
        Vec::new()
    }

    fn init(&mut self, ctx: &mut Context<'_>) {
        ctx.wake_after(self.at_tick.max(1));
    }

    fn react(&mut self, ctx: &mut Context<'_>) {
        if self.fired {
            return;
        }
        self.fired = true;
        let v = ctx.get(self.signal);
        if let Some(bits) = v.try_u64() {
            ctx.set(self.signal, Value::known(v.width(), (bits ^ self.mask) as i64));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{SimTime, Simulator};
    use crate::ops::Clock;

    #[test]
    fn stuck_at_clamps_every_write() {
        let mut sim = Simulator::new();
        let s = sim.add_signal("s", 8);
        let clk = sim.add_signal("clk", 1);
        sim.add_component(Clock::new("clock0", clk, 10));
        // A driver writing an incrementing value each rising edge.
        struct Driver {
            clk: SignalId,
            s: SignalId,
            n: i64,
        }
        impl Component for Driver {
            fn name(&self) -> &str {
                "driver"
            }
            fn inputs(&self) -> Vec<Sensitivity> {
                vec![Sensitivity::rising(self.clk)]
            }
            fn react(&mut self, ctx: &mut Context<'_>) {
                self.n += 1;
                ctx.set(self.s, Value::known(8, self.n));
            }
        }
        sim.add_component(Driver { clk, s, n: 0 });
        sim.add_component(StuckAtClamp::new("fault0", s, 0, false));
        sim.run(SimTime(100)).unwrap();
        // The driver wrote 1..=10; bit 0 is always forced low.
        assert_eq!(sim.value(s).try_u64(), Some(10 & !1));
    }

    #[test]
    fn transient_flip_fires_once_and_is_overwritten_by_the_driver() {
        let mut sim = Simulator::new();
        let s = sim.add_signal("s", 8);
        struct Const(SignalId);
        impl Component for Const {
            fn name(&self) -> &str {
                "c"
            }
            fn inputs(&self) -> Vec<Sensitivity> {
                Vec::new()
            }
            fn init(&mut self, ctx: &mut Context<'_>) {
                ctx.set(self.0, Value::known(8, 0x10));
            }
            fn react(&mut self, _ctx: &mut Context<'_>) {}
        }
        sim.add_component(Const(s));
        sim.add_component(TransientFlip::new("seu0", s, 2, 7));
        sim.run(SimTime(100)).unwrap();
        // Nothing redrives s after the flip, so the upset persists.
        assert_eq!(sim.value(s).try_u64(), Some(0x10 ^ 0x4));
    }

    #[test]
    fn x_values_pass_through_unchanged() {
        let mut sim = Simulator::new();
        let s = sim.add_signal("s", 4);
        sim.add_component(StuckAtClamp::new("fault0", s, 1, true));
        sim.add_component(TransientFlip::new("seu0", s, 0, 3));
        sim.run(SimTime(50)).unwrap();
        assert!(sim.value(s).is_x(), "faults never resolve an X value");
    }
}
