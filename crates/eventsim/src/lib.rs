//! # eventsim — an event-driven functional logic simulator
//!
//! The simulation engine of the fpgatest infrastructure, playing the role
//! Hades plays in the DATE'05 paper: an event-based simulator whose
//! components can be structural (the operator library instantiated from
//! datapath netlists) or behavioral (control units interpreted from FSM
//! tables), with the observation and control features the paper lists as
//! requirements — probes, assertions, watchpoints/stop mechanisms, and
//! waveform (VCD) dumping.
//!
//! ## Layers
//!
//! * [`Simulator`]/[`Context`] — the delta-cycle event kernel.
//! * [`ops`] — the operator library: functional units, muxes, registers,
//!   clock/reset generators, and the behavioral [`ops::ControlUnit`].
//! * [`MemHandle`]/[`Sram`] — SRAM models with shared contents.
//! * [`probe`] — probes, watchpoints, assertions.
//! * [`netlist`] / [`hds`] — declarative structural netlists and the
//!   `.hds` text format the XML datapaths are translated into.
//! * [`vcd`] — waveform export.
//! * [`cyclesim`] — a naive evaluate-everything-per-cycle baseline used by
//!   the kernel-vs-baseline ablation benchmark.
//! * [`levelsim`] — a levelized compiled-schedule engine: ranks the
//!   combinational netlist at build time and evaluates each rank once per
//!   clock phase with a dirty bitset (see `Netlist::compile_levelized`).
//! * [`profile`] — opt-in per-component evaluation timing through
//!   [`KernelHook`]; strictly zero cost unless installed.
//!
//! ## Example
//!
//! ```
//! use eventsim::{Simulator, SimTime, Value, ops::{ConstDriver, BinOp, OpKind}};
//!
//! # fn main() -> Result<(), eventsim::SimError> {
//! let mut sim = Simulator::new();
//! let a = sim.add_signal("a", 16);
//! let b = sim.add_signal("b", 16);
//! let y = sim.add_signal("y", 16);
//! sim.add_component(ConstDriver::new("ca", a, Value::known(16, 40)));
//! sim.add_component(ConstDriver::new("cb", b, Value::known(16, 2)));
//! sim.add_component(BinOp::new("add0", OpKind::Add, a, b, y, 16));
//! sim.run(SimTime(10))?;
//! assert_eq!(sim.value(y).as_i64(), 42);
//! # Ok(())
//! # }
//! ```

mod component;
pub mod batchsim;
pub mod cyclesim;
pub mod cpu;
pub mod faults;
pub mod hds;
mod kernel;
pub mod levelsim;
mod memory;
pub mod netlist;
pub mod ops;
pub mod probe;
pub mod profile;
mod simmodel;
mod value;
pub mod vcd;

pub use component::{Component, ComponentId, Sensitivity, SignalId};
pub use kernel::{
    Change, Context, KernelHook, KernelStats, RunOutcome, RunSummary, SimError, SimTime, Simulator,
};
pub use memory::{MemHandle, Sram};
pub use value::{mask, sign_extend, Value, MAX_WIDTH};
