//! Shared harness code for the benchmark suite: canonical constructions
//! of the paper's workloads and the measurement records the table/figure
//! regenerators print.

use fpgatest::flow::{FlowOptions, TestFlow, TestReport};
use fpgatest::stimulus::Stimulus;
use fpgatest::suite::{CaseResult, SuiteReport};
use fpgatest::telemetry::{self, Recorder};
use fpgatest::workloads;
use nenya::schedule::SchedulePolicy;
use nenya::CompileOptions;
use std::path::Path;

/// Builds the FDCT test flow: `pixels` must be a multiple of 64;
/// `partitions == 1` is the paper's FDCT1, `2` is FDCT2.
pub fn fdct_flow(pixels: usize, partitions: usize, policy: SchedulePolicy) -> TestFlow {
    let name = if partitions == 1 { "fdct1" } else { "fdct2" };
    TestFlow::new(name, workloads::fdct_source(pixels))
        .with_options(FlowOptions {
            compile: CompileOptions {
                width: 32,
                policy,
                partitions,
                ..CompileOptions::default()
            },
            ..FlowOptions::default()
        })
        .stimulus("img", Stimulus::from_values(workloads::test_image(pixels)))
}

/// Builds the Hamming-decoder test flow over `words` codewords.
pub fn hamming_flow(words: usize) -> TestFlow {
    TestFlow::new("hamming", workloads::hamming_source(words)).stimulus(
        "code",
        Stimulus::from_values(workloads::hamming_codewords(words)),
    )
}

/// Runs a flow and asserts it passed (benchmarks must never time a
/// failing run).
///
/// # Panics
///
/// Panics when the flow errors or the verdict is FAIL.
pub fn run_checked(flow: &TestFlow) -> TestReport {
    run_checked_recorded(flow, &mut Recorder::new(), "bench")
}

/// [`run_checked`] with the flow's stage spans traced under a
/// `case.<label>` span in `recorder`.
///
/// # Panics
///
/// See [`run_checked`].
pub fn run_checked_recorded(
    flow: &TestFlow,
    recorder: &mut Recorder,
    label: &str,
) -> TestReport {
    let span = recorder.start(format!("case.{label}"));
    let report = flow
        .run_recorded(recorder)
        .unwrap_or_else(|e| panic!("flow error: {e}"));
    assert!(report.passed, "flow failed:\n{}", report.render());
    recorder.end(span);
    report
}

/// Pulls a `--metrics-out <path>` pair out of `args`, returning the path
/// (if present) and the remaining arguments.
pub fn take_metrics_out(args: Vec<String>) -> (Option<std::path::PathBuf>, Vec<String>) {
    let mut path = None;
    let mut rest = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--metrics-out" {
            path = it.next().map(std::path::PathBuf::from);
        } else {
            rest.push(arg);
        }
    }
    (path, rest)
}

/// Writes the same `fpgatest-metrics-v1` JSON report the CLI's
/// `--metrics-out` produces, so bench results diff against flow runs.
///
/// # Errors
///
/// Returns the I/O error from writing `path`.
pub fn write_metrics_json(
    path: &Path,
    reports: Vec<(String, TestReport)>,
    recorder: &Recorder,
) -> std::io::Result<()> {
    let suite = SuiteReport {
        results: reports
            .into_iter()
            .map(|(name, report)| (name, CaseResult::Finished(report)))
            .collect(),
    };
    // Canonical key order, matching the CLI: the same run serializes to
    // byte-identical bytes every time.
    let mut json = telemetry::suite_json(&suite, recorder);
    json.sort_keys();
    std::fs::write(path, json.emit_pretty())
}

/// A measured row for table/figure output: paper value vs ours.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Row label.
    pub label: String,
    /// The value the paper reports (None when not reported).
    pub paper: Option<f64>,
    /// Our measured value.
    pub measured: f64,
    /// Unit for display.
    pub unit: &'static str,
}

/// Renders comparisons with paper/measured/ratio columns.
pub fn render_comparisons(title: &str, rows: &[Comparison]) -> String {
    let mut out = format!("== {title} ==\n");
    out.push_str(&format!(
        "{:<34} {:>12} {:>12} {:>8}\n",
        "quantity", "paper", "measured", "ratio"
    ));
    for row in rows {
        let (paper, ratio) = match row.paper {
            Some(p) if p != 0.0 => (format!("{p:.4}"), format!("{:.3}", row.measured / p)),
            Some(p) => (format!("{p:.4}"), "-".to_string()),
            None => ("-".to_string(), "-".to_string()),
        };
        out.push_str(&format!(
            "{:<34} {:>12} {:>12.4} {:>8}  [{}]\n",
            row.label, paper, row.measured, ratio, row.unit
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_fdct_flows_pass() {
        for partitions in [1, 2] {
            let report = run_checked(&fdct_flow(64, partitions, SchedulePolicy::List));
            assert_eq!(report.runs.len(), partitions);
        }
    }

    #[test]
    fn hamming_flow_passes() {
        let report = run_checked(&hamming_flow(16));
        assert_eq!(report.sim_mems["data"][0], Some(0));
        assert_eq!(report.sim_mems["data"][5], Some(5));
    }

    #[test]
    fn engines_agree_on_paper_workloads() {
        use fpgatest::flow::Engine;
        let workloads: Vec<(&str, TestFlow)> = vec![
            ("fdct1", fdct_flow(256, 1, SchedulePolicy::List)),
            ("fdct2", fdct_flow(256, 2, SchedulePolicy::List)),
            ("hamming", hamming_flow(16)),
        ];
        for (name, flow) in workloads {
            let event = run_checked(&flow.clone().with_engine(Engine::Event));
            for engine in [Engine::Cycle, Engine::Level, Engine::Batch] {
                let compiled = run_checked(&flow.clone().with_engine(engine));
                assert_eq!(
                    compiled.sim_mems, event.sim_mems,
                    "{name}: {engine} engine memories differ from the event kernel"
                );
            }
        }
    }

    #[test]
    fn comparison_rendering() {
        let text = render_comparisons(
            "demo",
            &[
                Comparison {
                    label: "sim time".into(),
                    paper: Some(6.9),
                    measured: 0.69,
                    unit: "s",
                },
                Comparison {
                    label: "unreported".into(),
                    paper: None,
                    measured: 1.0,
                    unit: "x",
                },
            ],
        );
        assert!(text.contains("0.100"));
        assert!(text.contains('-'));
    }
}
