//! Sustained-throughput benchmark for the serve daemon.
//!
//! Boots an in-process `fpgatest serve` daemon, then drives it with N
//! concurrent clients submitting the paper's FDCT1 workload over and
//! over — first **cold** (every job sets `no_cache`, so the daemon
//! compiles from scratch each time), then **warm** (jobs share one
//! cached prepared design; the daemon compiles once and only
//! simulates). The report records cases/second for both phases and the
//! warm/cold speedup, which is the whole point of the design cache:
//! compile once, simulate many.
//!
//! Usage: `serve_bench [--pixels N] [--clients N] [--jobs N]
//! [--metrics-out FILE] [--min-speedup F] [--ledger FILE]`
//!
//! Defaults: 64 pixels (one 8×8 block — compile-dominated, the cache's
//! best case and the regime CI gates on), 4 clients, 6 jobs per client,
//! `BENCH_serve.json`, minimum speedup 2×. Exits non-zero when any job
//! fails or the warm phase is not at least `--min-speedup` times the
//! cold phase.

use fpgatest::ledger::{self, LedgerEntry};
use fpgatest::serve::{Client, JobSpec, ServeOptions, Server};
use fpgatest::stimulus::Stimulus;
use fpgatest::telemetry::Json;
use fpgatest::workloads;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

struct Phase {
    seconds: f64,
    cases_per_sec: f64,
    passed: usize,
    total: usize,
}

/// Runs `clients` threads, each submitting `jobs` FDCT1 jobs and
/// waiting for every verdict; returns the aggregate wall-clock rate.
fn run_phase(addr: &str, clients: usize, jobs: usize, spec: &JobSpec) -> Phase {
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let addr = addr.to_string();
            let spec = spec.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect to bench daemon");
                let mut passed = 0usize;
                for _ in 0..jobs {
                    let outcome = client.run_job(&spec).expect("job completes");
                    if outcome.verdict == "pass" {
                        passed += 1;
                    }
                }
                passed
            })
        })
        .collect();
    let passed: usize = handles.into_iter().map(|h| h.join().unwrap_or(0)).sum();
    let seconds = started.elapsed().as_secs_f64();
    let total = clients * jobs;
    Phase {
        seconds,
        cases_per_sec: total as f64 / seconds.max(1e-9),
        passed,
        total,
    }
}

fn phase_json(phase: &Phase) -> Json {
    Json::obj([
        ("seconds", Json::from(phase.seconds)),
        ("cases_per_sec", Json::from(phase.cases_per_sec)),
        ("passed", Json::from(phase.passed)),
        ("jobs", Json::from(phase.total)),
    ])
}

fn main() -> ExitCode {
    let mut pixels = 64usize;
    let mut clients = 4usize;
    let mut jobs = 6usize;
    let mut metrics_out = PathBuf::from("BENCH_serve.json");
    let mut min_speedup = 2.0f64;
    let mut ledger_out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| args.next().unwrap_or_else(|| panic!("{what} needs a value"));
        match arg.as_str() {
            "--pixels" => pixels = value("--pixels").parse().expect("--pixels: integer"),
            "--clients" => clients = value("--clients").parse().expect("--clients: integer"),
            "--jobs" => jobs = value("--jobs").parse().expect("--jobs: integer"),
            "--metrics-out" => metrics_out = PathBuf::from(value("--metrics-out")),
            "--min-speedup" => {
                min_speedup = value("--min-speedup").parse().expect("--min-speedup: number");
            }
            "--ledger" => ledger_out = Some(PathBuf::from(value("--ledger"))),
            other => {
                eprintln!("unexpected argument '{other}'");
                return ExitCode::from(2);
            }
        }
    }

    let server = Server::bind(
        "127.0.0.1:0",
        ServeOptions {
            workers: clients,
            cache_capacity: 4,
            ..ServeOptions::default()
        },
    )
    .expect("bind bench daemon");
    let addr = server.local_addr().to_string();
    let server_thread = std::thread::spawn(move || server.run());

    let mut spec = JobSpec::test("fdct1", &workloads::fdct_source(pixels))
        .stimulus("img", Stimulus::from_values(workloads::test_image(pixels)));
    spec.width = Some(32);
    // The level engine keeps per-job simulation cheap, so the phases
    // isolate what the cache actually removes: compile + transform.
    spec.engine = "level".parse().expect("level engine exists");

    println!("serve_bench: {clients} clients x {jobs} jobs, fdct1 @ {pixels} px, {addr}");

    spec.no_cache = true;
    let cold = run_phase(&addr, clients, jobs, &spec);
    println!(
        "  cold (compile every job): {:.2} cases/s ({:.3}s, {}/{} passed)",
        cold.cases_per_sec, cold.seconds, cold.passed, cold.total
    );

    // Pre-warm so the warm phase measures pure cache hits, then measure.
    spec.no_cache = false;
    let mut control = Client::connect(&addr).expect("connect control client");
    let warmup = control.run_job(&spec).expect("warm-up job");
    assert_eq!(warmup.verdict, "pass", "warm-up job must pass");
    let warm = run_phase(&addr, clients, jobs, &spec);
    println!(
        "  warm (cached design):     {:.2} cases/s ({:.3}s, {}/{} passed)",
        warm.cases_per_sec, warm.seconds, warm.passed, warm.total
    );

    let stats = control.stats().expect("stats");
    let cache = stats.get("cache").cloned().unwrap_or(Json::Null);
    let _ = control.shutdown().expect("shutdown");
    let _ = server_thread.join();

    let speedup = warm.cases_per_sec / cold.cases_per_sec.max(1e-9);
    println!("  warm/cold speedup: {speedup:.2}x (floor {min_speedup:.2}x)");

    let mut report = Json::obj([
        ("schema", Json::from("fpgatest-bench-serve-v1")),
        ("pixels", Json::from(pixels)),
        ("clients", Json::from(clients)),
        ("jobs_per_client", Json::from(jobs)),
        ("cold", phase_json(&cold)),
        ("warm", phase_json(&warm)),
        ("speedup", Json::from(speedup)),
        ("min_speedup", Json::from(min_speedup)),
        ("cache", cache),
    ]);
    report.sort_keys();
    if let Err(e) = std::fs::write(&metrics_out, report.emit_pretty()) {
        eprintln!("cannot write {}: {e}", metrics_out.display());
        return ExitCode::from(2);
    }
    println!("report written to {}", metrics_out.display());

    if let Some(path) = &ledger_out {
        let mut entry = LedgerEntry::new("bench", "serve:fdct1");
        entry.engine = "event".to_string();
        entry.wall_seconds = cold.seconds + warm.seconds;
        entry.passed = (cold.passed + warm.passed) as u64;
        entry.failed = (cold.total + warm.total - cold.passed - warm.passed) as u64;
        entry
            .counters
            .push(("cold_cases_per_sec".to_string(), cold.cases_per_sec));
        entry
            .counters
            .push(("warm_cases_per_sec".to_string(), warm.cases_per_sec));
        entry.counters.push(("speedup".to_string(), speedup));
        if let Err(e) = ledger::append(path, &entry) {
            eprintln!("cannot append {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    let all_passed = cold.passed == cold.total && warm.passed == warm.total;
    if !all_passed {
        eprintln!("FAIL: not every job passed");
        return ExitCode::FAILURE;
    }
    if speedup < min_speedup {
        eprintln!("FAIL: warm-cache speedup {speedup:.2}x below floor {min_speedup:.2}x");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
