//! Engine-ablation benchmark: event kernel vs cycle sweeper vs levelized
//! engine vs batch engine on the paper's FDCT1 workload.
//!
//! Runs FDCT1 at one or more image sizes through all four simulation
//! engines (`fpgatest --engine {event,cycle,level,batch}`) and writes a
//! `fpgatest-metrics-v1` report (default `BENCH_ablation.json`, keys
//! sorted for byte-stable diffs) extended with an `ablation_bench`
//! comparison block: per engine wall-clock, cycles, and evaluation
//! counts, plus the level engine's speedup over the naive cycle sweeper
//! and its ratio to the event kernel.
//!
//! A second batch column measures *effective case-throughput*: 64
//! distinct stimulus images dispatched as lanes of one
//! [`PreparedDesign::run_batch`] call, compared against 64 sequential
//! level-engine runs (priced at the level row's measured per-case sim
//! wall). Every lane must pass its golden comparison, and lane 0 — which
//! reuses the level row's stimulus — must leave memories word-identical
//! to the level engine's. The effective speedup is gated: at 65,536
//! pixels the batch engine must clear 10x by default, and `--batch-floor
//! F` applies a custom floor at every size run (CI smoke uses a small
//! size with a CI-safe floor).
//!
//! The run doubles as an equivalence gate: the four engines must leave
//! word-identical final memories, and their cycle counts may differ by
//! at most one (the compiled engines count the cycle-0 reset step; the
//! event path derives cycles from the stop time). Any disagreement exits
//! non-zero — CI runs this at 4,096 pixels as `ablation-smoke`.
//!
//! Usage: `ablation_bench [--pixels N]... [--repeat R] [--batch-floor F]
//! [--metrics-out FILE]` (default sizes 1024, 4096, 16384, 65536; `R`
//! defaults to 2 and the reported wall-clock is the best of the
//! repeats).

use bench::{fdct_flow, run_checked_recorded};
use fpgatest::flow::{prepare_design, BatchLaneSpec, Engine, FlowOptions, TestReport};
use fpgatest::stimulus::Stimulus;
use fpgatest::suite::{CaseResult, SuiteReport};
use fpgatest::telemetry::{self, Json, Recorder};
use fpgatest::workloads;
use nenya::schedule::SchedulePolicy;
use nenya::CompileOptions;
use std::path::PathBuf;
use std::process::ExitCode;

/// Lanes per batch walk (the batch engine's fixed width).
const BATCH_LANES: usize = 64;

/// Default effective-speedup floor, enforced at [`GATED_PIXELS`] when no
/// `--batch-floor` is given.
const DEFAULT_BATCH_FLOOR: f64 = 10.0;

/// The FDCT1-64k size the default batch gate applies to.
const GATED_PIXELS: usize = 65536;

struct EngineRow {
    engine: Engine,
    wall_seconds: f64,
    cycles: u64,
    evals: u64,
    report: TestReport,
}

fn main() -> ExitCode {
    let mut pixels: Vec<usize> = Vec::new();
    let mut repeat: usize = 2;
    let mut batch_floor: Option<f64> = None;
    let mut metrics_out = PathBuf::from("BENCH_ablation.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--pixels" => pixels.push(
                value("--pixels")
                    .parse()
                    .expect("--pixels must be an integer"),
            ),
            "--repeat" => {
                repeat = value("--repeat")
                    .parse()
                    .expect("--repeat must be an integer");
                assert!(repeat >= 1, "--repeat must be at least 1");
            }
            "--batch-floor" => {
                batch_floor = Some(
                    value("--batch-floor")
                        .parse()
                        .expect("--batch-floor must be a number"),
                );
            }
            "--metrics-out" => metrics_out = PathBuf::from(value("--metrics-out")),
            other => {
                eprintln!("ablation_bench: unknown argument '{other}'");
                eprintln!(
                    "usage: ablation_bench [--pixels N]... [--repeat R] \
                     [--batch-floor F] [--metrics-out FILE]"
                );
                return ExitCode::from(2);
            }
        }
    }
    if pixels.is_empty() {
        pixels = vec![1024, 4096, 16384, 65536];
    }

    println!("engine ablation (FDCT1): event kernel vs cycle sweeper vs levelized\n");
    let mut recorder = Recorder::new();
    let mut reports = Vec::new();
    let mut comparison_rows = Vec::new();
    let mut disagreement = false;
    for &px in &pixels {
        let mut rows: Vec<EngineRow> = Vec::new();
        for engine in Engine::ALL {
            let label = format!("fdct1_{px}px_{engine}");
            let flow = fdct_flow(px, 1, SchedulePolicy::List).with_engine(engine);
            // Best-of-`repeat` wall-clock; counters asserted stable.
            let mut best: Option<(f64, TestReport)> = None;
            for _ in 0..repeat {
                let report = run_checked_recorded(&flow, &mut recorder, &label);
                let wall = report.runs[0].summary.wall_seconds;
                if let Some((_, prev)) = &best {
                    assert_eq!(
                        report.runs[0].kernel, prev.runs[0].kernel,
                        "{engine} counters not deterministic across repeats at {px} px"
                    );
                }
                if best.as_ref().is_none_or(|(w, _)| wall < *w) {
                    best = Some((wall, report));
                }
            }
            let (wall_seconds, report) = best.expect("at least one repeat");
            let run = &report.runs[0];
            rows.push(EngineRow {
                engine,
                wall_seconds,
                cycles: run.cycles,
                evals: run.kernel.evals,
                report,
            });
        }

        // Equivalence gate: word-identical memories, cycle counts within
        // one of the event kernel's.
        let event = &rows[0];
        for row in &rows[1..] {
            if row.report.sim_mems != event.report.sim_mems {
                eprintln!(
                    "ablation_bench: ENGINE DISAGREEMENT at {px} px: \
                     '{}' final memories differ from the event kernel",
                    row.engine
                );
                disagreement = true;
            }
            if row.cycles.abs_diff(event.cycles) > 1 {
                eprintln!(
                    "ablation_bench: CYCLE DRIFT at {px} px: '{}' ran {} cycles, \
                     event kernel {} (allowed difference: 1)",
                    row.engine, row.cycles, event.cycles
                );
                disagreement = true;
            }
        }

        let wall_of = |engine: Engine| {
            rows.iter()
                .find(|r| r.engine == engine)
                .expect("all engines ran")
                .wall_seconds
        };
        let level_speedup_vs_cycle = wall_of(Engine::Cycle) / wall_of(Engine::Level);
        let level_ratio_vs_event = wall_of(Engine::Level) / wall_of(Engine::Event);

        // Batch throughput column: 64 distinct stimulus images as lanes
        // of one run_batch call. Lane 0 reuses the sequential rows'
        // stimulus so its final memories can be compared word for word
        // against the level engine's; the other lanes are perturbed
        // images verified against their own golden runs.
        let design = nenya::compile(
            "fdct1",
            &workloads::fdct_source(px),
            &CompileOptions {
                width: 32,
                policy: SchedulePolicy::List,
                partitions: 1,
                ..CompileOptions::default()
            },
        )
        .expect("FDCT compiles");
        let prepared = prepare_design(design).expect("FDCT elaborates");
        let base = workloads::test_image(px);
        let specs: Vec<BatchLaneSpec> = (0..BATCH_LANES)
            .map(|lane| {
                let image: Vec<i64> = if lane == 0 {
                    base.clone()
                } else {
                    base.iter()
                        .enumerate()
                        .map(|(j, &p)| (p + 7 * lane as i64 + (j % 11) as i64) & 0xFF)
                        .collect()
                };
                BatchLaneSpec {
                    stimuli: vec![("img".to_string(), Stimulus::from_values(image))],
                    faults: Vec::new(),
                }
            })
            .collect();
        // Best-of-`repeat` sim wall, like the sequential rows; lane
        // verdicts and memories are identical across repeats.
        let mut batch_report = prepared
            .run_batch(&specs, &FlowOptions::default())
            .unwrap_or_else(|e| panic!("batch run at {px} px: {e}"));
        for _ in 1..repeat {
            let again = prepared
                .run_batch(&specs, &FlowOptions::default())
                .unwrap_or_else(|e| panic!("batch run at {px} px: {e}"));
            if again.sim_wall_seconds < batch_report.sim_wall_seconds {
                batch_report = again;
            }
        }
        for (lane, report) in batch_report.lanes.iter().enumerate() {
            if !report.passed {
                eprintln!(
                    "ablation_bench: BATCH LANE FAILURE at {px} px: lane {lane}: {}",
                    report
                        .failure
                        .as_deref()
                        .or(report.timed_out.as_deref())
                        .or(report.flow_error.as_deref())
                        .unwrap_or("golden mismatch")
                );
                disagreement = true;
            }
        }
        let level_row = rows
            .iter()
            .find(|r| r.engine == Engine::Level)
            .expect("all engines ran");
        if batch_report.lanes[0].sim_mems != level_row.report.sim_mems {
            eprintln!(
                "ablation_bench: ENGINE DISAGREEMENT at {px} px: batch lane 0 \
                 final memories differ from the level engine"
            );
            disagreement = true;
        }
        let batch_sim_wall = batch_report.sim_wall_seconds;
        let batch_effective_speedup =
            BATCH_LANES as f64 * wall_of(Engine::Level) / batch_sim_wall;

        println!("  {px:>7} px:");
        for row in &rows {
            println!(
                "    {:<5} {:>9.3} s   cycles={} evals={}",
                row.engine.to_string(),
                row.wall_seconds,
                row.cycles,
                row.evals
            );
        }
        println!(
            "    level vs cycle: {level_speedup_vs_cycle:.2}x faster;  \
             level/event wall ratio: {level_ratio_vs_event:.2}"
        );
        println!(
            "    batch: {BATCH_LANES} lanes in {batch_sim_wall:.3} s  \
             (effective {batch_effective_speedup:.1}x case-throughput vs level)"
        );
        let floor = match batch_floor {
            Some(f) => Some(f),
            None if px == GATED_PIXELS => Some(DEFAULT_BATCH_FLOOR),
            None => None,
        };
        if let Some(floor) = floor {
            if batch_effective_speedup < floor {
                eprintln!(
                    "ablation_bench: BATCH THROUGHPUT GATE at {px} px: effective \
                     speedup {batch_effective_speedup:.2}x is below the {floor:.2}x floor"
                );
                disagreement = true;
            }
        }

        let engine_rows: Vec<Json> = rows
            .iter()
            .map(|row| {
                Json::obj([
                    ("engine", Json::from(row.engine.to_string())),
                    ("wall_seconds", Json::from(row.wall_seconds)),
                    ("cycles", Json::from(row.cycles as f64)),
                    ("evals", Json::from(row.evals as f64)),
                ])
            })
            .collect();
        comparison_rows.push(Json::obj([
            ("pixels", Json::from(px as f64)),
            ("engines", Json::Arr(engine_rows)),
            ("level_speedup_vs_cycle", Json::from(level_speedup_vs_cycle)),
            ("level_ratio_vs_event", Json::from(level_ratio_vs_event)),
            ("batch_lanes", Json::from(BATCH_LANES as f64)),
            ("batch_sim_wall_seconds", Json::from(batch_sim_wall)),
            (
                "batch_effective_speedup_vs_level",
                Json::from(batch_effective_speedup),
            ),
        ]));
        for row in rows {
            reports.push((format!("fdct1_{px}px_{}", row.engine), row.report));
        }
    }

    // The standard metrics report plus the comparison block, keys sorted
    // so the file is byte-stable across runs of the same build.
    let suite = SuiteReport {
        results: reports
            .into_iter()
            .map(|(name, report)| (name, CaseResult::Finished(report)))
            .collect(),
    };
    let mut json = telemetry::suite_json(&suite, &recorder);
    if let Json::Obj(pairs) = &mut json {
        pairs.push((
            "ablation_bench".to_string(),
            Json::obj([("sizes", Json::Arr(comparison_rows))]),
        ));
    }
    json.sort_keys();
    if let Err(e) = std::fs::write(&metrics_out, json.emit_pretty()) {
        eprintln!("ablation_bench: writing {}: {e}", metrics_out.display());
        return ExitCode::from(2);
    }
    println!("\nwrote {}", metrics_out.display());

    if disagreement {
        eprintln!("ablation_bench: engines disagree — the compiled engines are not equivalent");
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
