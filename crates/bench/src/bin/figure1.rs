//! Regenerates **Figure 1** of the paper — the diagram of the test
//! infrastructure — as Graphviz dot, generated from the flow the code
//! actually executes (see [`fpgatest::dot::flow_diagram`]).
//!
//! Usage: `cargo run -p bench --bin figure1 [> figure1.dot]`
//! Render with: `dot -Tpng figure1.dot -o figure1.png`

fn main() {
    print!("{}", fpgatest::dot::flow_diagram());
}
