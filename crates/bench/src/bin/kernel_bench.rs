//! Event-kernel benchmark harness with a counter-drift guard.
//!
//! Runs the paper's FDCT1 workload through the event kernel at one or
//! more image sizes, writes a `fpgatest-metrics-v1` report (default
//! `BENCH_kernel.json`) extended with a `kernel_bench` comparison block,
//! and checks the kernel's `events`/`evals`/`updates` counters against
//! the checked-in baseline (`crates/bench/baselines/kernel_counters.json`).
//!
//! The baseline serves two purposes:
//!
//! * **Correctness ratchet** — the counters are a fingerprint of the
//!   kernel's scheduling semantics. Any drift means simulation behaviour
//!   changed, and the run exits non-zero unless the baseline file is
//!   updated in the same change (CI runs this at 4,096 pixels).
//! * **Performance record** — the baseline's `wall_seconds` are the
//!   pre-overhaul kernel's wall-clock times, so the report shows the
//!   speedup of the current kernel against that fixed reference.
//!
//! Usage: `kernel_bench [--pixels N] [--repeat R] [--metrics-out FILE]
//! [--baseline FILE] [--ledger FILE]` (`--pixels` may repeat; default
//! 4096 and 65536). `--ledger` appends one `fpgatest-ledger-v1` summary
//! line per invocation, for `fpgatest trends`.
//! Each size runs `R` times (default 3): the reported wall-clock is the
//! best of the repeats — the standard estimator under scheduler noise —
//! and the counters are additionally asserted identical across repeats.

use bench::{fdct_flow, run_checked_recorded};
use fpgatest::ledger::{self, LedgerEntry};
use fpgatest::suite::{CaseResult, SuiteReport};
use fpgatest::telemetry::{self, Json, Recorder};
use nenya::schedule::SchedulePolicy;
use std::path::PathBuf;
use std::process::ExitCode;

struct BaselineRow {
    pixels: usize,
    events: u64,
    evals: u64,
    updates: u64,
    wall_seconds: f64,
}

fn load_baseline(path: &PathBuf) -> Result<Vec<BaselineRow>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("baseline {}: {e}", path.display()))?;
    let json = Json::parse(&text).map_err(|e| format!("baseline {}: {e}", path.display()))?;
    let sizes = json
        .get("sizes")
        .and_then(|s| match s {
            Json::Arr(rows) => Some(rows),
            _ => None,
        })
        .ok_or("baseline: missing 'sizes' array")?;
    let field = |row: &Json, key: &str| -> Result<f64, String> {
        row.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("baseline row: missing numeric '{key}'"))
    };
    sizes
        .iter()
        .map(|row| {
            Ok(BaselineRow {
                pixels: field(row, "pixels")? as usize,
                events: field(row, "events")? as u64,
                evals: field(row, "evals")? as u64,
                updates: field(row, "updates")? as u64,
                wall_seconds: field(row, "wall_seconds")?,
            })
        })
        .collect()
}

fn main() -> ExitCode {
    let mut pixels: Vec<usize> = Vec::new();
    let mut repeat: usize = 3;
    let mut metrics_out = PathBuf::from("BENCH_kernel.json");
    let mut ledger_out: Option<PathBuf> = None;
    let mut baseline_path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("baselines/kernel_counters.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--pixels" => pixels.push(
                value("--pixels")
                    .parse()
                    .expect("--pixels must be an integer"),
            ),
            "--repeat" => {
                repeat = value("--repeat")
                    .parse()
                    .expect("--repeat must be an integer");
                assert!(repeat >= 1, "--repeat must be at least 1");
            }
            "--metrics-out" => metrics_out = PathBuf::from(value("--metrics-out")),
            "--baseline" => baseline_path = PathBuf::from(value("--baseline")),
            "--ledger" => ledger_out = Some(PathBuf::from(value("--ledger"))),
            other => {
                eprintln!("kernel_bench: unknown argument '{other}'");
                eprintln!(
                    "usage: kernel_bench [--pixels N]... [--metrics-out FILE] [--baseline FILE] [--ledger FILE]"
                );
                return ExitCode::from(2);
            }
        }
    }
    if pixels.is_empty() {
        pixels = vec![4096, 65536];
    }

    let baseline = match load_baseline(&baseline_path) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("kernel_bench: {e}");
            return ExitCode::from(2);
        }
    };

    println!("event-kernel benchmark (FDCT1) vs checked-in baseline\n");
    let mut recorder = Recorder::new();
    let mut reports = Vec::new();
    let mut comparison_rows = Vec::new();
    let mut drift = false;
    let mut total_wall = 0.0f64;
    let mut total_events = 0u64;
    let mut total_evals = 0u64;
    let mut passed = 0u64;
    let mut failed = 0u64;
    for &px in &pixels {
        let label = format!("fdct1_{px}px");
        // Best-of-`repeat`: minimum wall-clock, counters asserted stable.
        let mut best: Option<(f64, fpgatest::flow::TestReport)> = None;
        for _ in 0..repeat {
            let report = run_checked_recorded(
                &fdct_flow(px, 1, SchedulePolicy::List),
                &mut recorder,
                &label,
            );
            let wall = report.runs[0].summary.wall_seconds;
            if let Some((_, prev)) = &best {
                assert_eq!(
                    report.runs[0].kernel, prev.runs[0].kernel,
                    "kernel counters not deterministic across repeats at {px} px"
                );
            }
            if best.as_ref().is_none_or(|(w, _)| wall < *w) {
                best = Some((wall, report));
            }
        }
        let (wall, report) = best.expect("at least one repeat");
        let run = &report.runs[0];
        let stats = run.kernel;
        total_wall += wall;
        total_events += stats.events;
        total_evals += stats.evals;
        if report.passed {
            passed += 1;
        } else {
            failed += 1;
        }
        println!(
            "  {px:>7} px: {wall:>9.3} s   events={} evals={} updates={}",
            stats.events, stats.evals, stats.updates
        );

        let mut row = vec![
            ("pixels", Json::from(px as f64)),
            ("events", Json::from(stats.events as f64)),
            ("evals", Json::from(stats.evals as f64)),
            ("updates", Json::from(stats.updates as f64)),
            ("wall_seconds", Json::from(wall)),
            ("verdict", Json::from(if report.passed { "pass" } else { "fail" })),
        ];
        match baseline.iter().find(|b| b.pixels == px) {
            Some(base) => {
                let speedup = base.wall_seconds / wall;
                println!(
                    "           baseline: {:>9.3} s   speedup {speedup:.2}x",
                    base.wall_seconds
                );
                row.push(("baseline_wall_seconds", Json::from(base.wall_seconds)));
                row.push(("speedup", Json::from(speedup)));
                let mut check = |what: &str, got: u64, want: u64| {
                    if got != want {
                        eprintln!(
                            "kernel_bench: COUNTER DRIFT at {px} px: {what} = {got}, baseline {want}"
                        );
                        drift = true;
                    }
                };
                check("events", stats.events, base.events);
                check("evals", stats.evals, base.evals);
                check("updates", stats.updates, base.updates);
            }
            None => println!("           (no baseline entry for {px} px)"),
        }
        comparison_rows.push(Json::Obj(
            row.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
        ));
        reports.push((label, report));
    }

    // The standard metrics report, extended with the comparison block.
    let suite = SuiteReport {
        results: reports
            .into_iter()
            .map(|(name, report)| (name, CaseResult::Finished(report)))
            .collect(),
    };
    let mut json = telemetry::suite_json(&suite, &recorder);
    if let Json::Obj(pairs) = &mut json {
        pairs.push((
            "kernel_bench".to_string(),
            Json::Obj(vec![
                (
                    "baseline".to_string(),
                    Json::from(baseline_path.display().to_string()),
                ),
                ("sizes".to_string(), Json::Arr(comparison_rows)),
            ]),
        ));
    }
    // Canonical key order, matching every other report writer: the same
    // run serializes to byte-identical bytes every time.
    json.sort_keys();
    if let Err(e) = std::fs::write(&metrics_out, json.emit_pretty()) {
        eprintln!("kernel_bench: writing {}: {e}", metrics_out.display());
        return ExitCode::from(2);
    }
    println!("\nwrote {}", metrics_out.display());

    if let Some(path) = &ledger_out {
        let sizes = pixels
            .iter()
            .map(|px| px.to_string())
            .collect::<Vec<_>>()
            .join("+");
        let entry = LedgerEntry {
            engine: "event".to_string(),
            wall_seconds: total_wall,
            passed,
            failed,
            counters: vec![
                ("events".to_string(), total_events as f64),
                ("evals".to_string(), total_evals as f64),
            ],
            ..LedgerEntry::new("bench", &format!("fdct1_{sizes}"))
        };
        if let Err(e) = ledger::append(path, &entry) {
            eprintln!("kernel_bench: appending ledger {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("appended ledger entry to {}", path.display());
    }

    if drift {
        eprintln!(
            "kernel_bench: counters drifted from {} — a semantic kernel change; \
             update the baseline in the same PR if intentional",
            baseline_path.display()
        );
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
