//! Regenerates the shippable example suite under `examples/suite/`
//! (sources, stimulus files, and the manifest). Run from the workspace
//! root after changing the workload generators:
//! `cargo run -p bench --bin gen_suite`.

fn main() {
    use std::fmt::Write as _;
    let dir = std::path::Path::new("examples/suite");
    std::fs::create_dir_all(dir).unwrap();
    std::fs::write(dir.join("fdct.src"), fpgatest::workloads::fdct_source(256)).unwrap();
    std::fs::write(dir.join("hamming.src"), fpgatest::workloads::hamming_source(32)).unwrap();
    std::fs::write(dir.join("sort.src"), fpgatest::workloads::sort_source(16)).unwrap();
    let mut img = String::from("@mem img\n@size 256\n");
    for (a, v) in fpgatest::workloads::test_image(256).iter().enumerate() {
        writeln!(img, "{a}: {v}").unwrap();
    }
    std::fs::write(dir.join("img.stim"), img).unwrap();
    let mut code = String::from("@mem code\n@size 32\n");
    for (a, v) in fpgatest::workloads::hamming_codewords(32).iter().enumerate() {
        writeln!(code, "{a}: {v}").unwrap();
    }
    std::fs::write(dir.join("code.stim"), code).unwrap();
    let mut data = String::from("@mem data\n@size 16\n");
    for a in 0..16i64 {
        writeln!(data, "{a}: {}", (a * 37 + 11) % 60 - 25).unwrap();
    }
    std::fs::write(dir.join("data.stim"), data).unwrap();
    std::fs::write(dir.join("suite.manifest"), "\
# The paper's workloads plus a data-dependent sort, runnable with:
#   cargo run -p fpgatest --bin fpgatest -- run examples/suite/suite.manifest

case fdct1
  source fdct.src
  stimulus img img.stim
  width 32

case fdct2
  source fdct.src
  stimulus img img.stim
  width 32
  partitions 2

case fdct1_optimized
  source fdct.src
  stimulus img img.stim
  width 32
  optimize

case hamming
  source hamming.src
  stimulus code code.stim

case sort
  source sort.src
  stimulus data data.stim
").unwrap();
    println!("suite files written");
}
