//! Regenerates the paper's **in-text scaling experiment**: FDCT1
//! simulation time as a function of image size. The paper reports 6.9 s
//! for 4,096 pixels, ~1 min for 65,536, and ~6.5 min for 345,600 —
//! i.e. time grows linearly with pixel count.
//!
//! Usage: `cargo run --release -p bench --bin scaling [--paper]
//! [--metrics-out FILE]`
//!
//! Default sizes are 1,024 / 4,096 / 16,384 / 65,536 pixels; `--paper`
//! additionally runs the full 345,600-pixel image (several minutes).
//! `--metrics-out` writes the `fpgatest-metrics-v1` JSON report with one
//! entry per size (`fdct1_<pixels>px`).

use bench::{
    fdct_flow, render_comparisons, run_checked_recorded, take_metrics_out, write_metrics_json,
    Comparison,
};
use fpgatest::telemetry::Recorder;
use nenya::schedule::SchedulePolicy;

fn main() {
    let (metrics_out, rest) = take_metrics_out(std::env::args().skip(1).collect());
    let full = rest.iter().any(|a| a == "--paper");
    let mut sizes = vec![1024usize, 4096, 16384, 65536];
    if full {
        sizes.push(345_600);
    }
    // Paper values in seconds, where reported.
    let paper: &[(usize, f64)] = &[(4096, 6.9), (65_536, 60.0), (345_600, 390.0)];

    println!("FDCT1 simulation time vs image size (event-driven kernel)\n");
    let mut recorder = Recorder::new();
    let mut reports = Vec::new();
    let mut rows = Vec::new();
    let mut points = Vec::new();
    for &pixels in &sizes {
        let label = format!("fdct1_{pixels}px");
        let report =
            run_checked_recorded(&fdct_flow(pixels, 1, SchedulePolicy::List), &mut recorder, &label);
        let seconds = report.metrics.total_sim_seconds();
        let cycles = report.metrics.total_cycles();
        reports.push((label, report));
        println!(
            "  {:>7} px: {:>9.3} s   {:>10} cycles   {:>7.2} us/pixel",
            pixels,
            seconds,
            cycles,
            seconds * 1e6 / pixels as f64
        );
        points.push((pixels, seconds));
        rows.push(Comparison {
            label: format!("fdct1 sim time @ {pixels} px"),
            paper: paper.iter().find(|(p, _)| *p == pixels).map(|(_, s)| *s),
            measured: seconds,
            unit: "s",
        });
    }
    println!();
    println!("{}", render_comparisons("scaling: paper vs measured", &rows));

    // Shape check: time per pixel must be roughly constant (linear
    // scaling). Allow 2x drift across the sweep.
    let per_pixel: Vec<f64> = points
        .iter()
        .map(|(px, s)| s / *px as f64)
        .collect();
    let min = per_pixel.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_pixel.iter().cloned().fold(0.0, f64::max);
    let linear = max / min < 2.0;
    println!(
        "shape: time scales ~linearly in pixels ({}x spread)   {}",
        max / min,
        if linear { "OK" } else { "VIOLATED" }
    );

    if let Some(path) = metrics_out {
        write_metrics_json(&path, reports, &recorder)
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        println!("metrics written to {}", path.display());
    }

    if !linear {
        std::process::exit(1);
    }
}
