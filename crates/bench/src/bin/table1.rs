//! Regenerates **Table I** of the paper: FDCT1 (one configuration),
//! FDCT2 (two configurations), and the Hamming decoder — reporting
//! `loJava`, `loXML FSM`, `loXML datapath`, `loJava FSM` (behavioral
//! lines), operator counts, and simulation time.
//!
//! Usage: `cargo run --release -p bench --bin table1
//! [pixels] [hamming_words] [--metrics-out FILE]`
//! (defaults: 4096 pixels = the paper's 64 DCT blocks, 64 codewords;
//! `--metrics-out` writes the `fpgatest-metrics-v1` JSON report).

use bench::{
    fdct_flow, hamming_flow, render_comparisons, run_checked_recorded, take_metrics_out,
    write_metrics_json, Comparison,
};
use fpgatest::metrics::render_table1;
use fpgatest::telemetry::Recorder;
use nenya::schedule::SchedulePolicy;

fn main() {
    let (metrics_out, rest) = take_metrics_out(std::env::args().skip(1).collect());
    let mut args = rest.into_iter();
    let pixels: usize = args
        .next()
        .map(|a| a.parse().expect("pixels must be an integer"))
        .unwrap_or(fpgatest::workloads::FDCT_BASE_PIXELS);
    let words: usize = args
        .next()
        .map(|a| a.parse().expect("words must be an integer"))
        .unwrap_or(64);

    println!("regenerating Table I (fdct over {pixels} pixels, hamming over {words} words)\n");

    let mut recorder = Recorder::new();
    let fdct1 = run_checked_recorded(&fdct_flow(pixels, 1, SchedulePolicy::List), &mut recorder, "fdct1");
    let fdct2 = run_checked_recorded(&fdct_flow(pixels, 2, SchedulePolicy::List), &mut recorder, "fdct2");
    let hamming = run_checked_recorded(&hamming_flow(words), &mut recorder, "hamming");

    println!(
        "{}",
        render_table1(&[
            fdct1.metrics.clone(),
            fdct2.metrics.clone(),
            hamming.metrics.clone()
        ])
    );

    // Paper values (Pentium 4 @ 2.8 GHz, Windows XP, Java/Hades) for
    // shape comparison. Absolute times are expected to differ by orders
    // of magnitude; orderings and rough factors are the reproduction
    // target.
    let rows = vec![
        Comparison {
            label: "fdct1 operators".into(),
            paper: Some(169.0),
            measured: fdct1.metrics.total_operators() as f64,
            unit: "FUs",
        },
        Comparison {
            label: "fdct2 operators (per config avg)".into(),
            paper: Some(90.0),
            measured: fdct2.metrics.total_operators() as f64 / fdct2.metrics.configs.len() as f64,
            unit: "FUs",
        },
        Comparison {
            label: "hamming operators".into(),
            paper: Some(37.0),
            measured: hamming.metrics.total_operators() as f64,
            unit: "FUs",
        },
        Comparison {
            label: "fdct1 sim time".into(),
            paper: Some(6.9),
            measured: fdct1.metrics.total_sim_seconds(),
            unit: "s",
        },
        Comparison {
            label: "fdct2 sim time (total)".into(),
            paper: Some(5.8),
            measured: fdct2.metrics.total_sim_seconds(),
            unit: "s",
        },
        Comparison {
            label: "hamming sim time".into(),
            paper: Some(1.5),
            measured: hamming.metrics.total_sim_seconds(),
            unit: "s",
        },
        Comparison {
            label: "fdct1 loJava".into(),
            paper: Some(138.0),
            measured: fdct1.metrics.lo_java as f64,
            unit: "lines",
        },
        Comparison {
            label: "hamming loJava".into(),
            paper: Some(45.0),
            measured: hamming.metrics.lo_java as f64,
            unit: "lines",
        },
    ];
    println!("{}", render_comparisons("Table I: paper vs measured", &rows));

    // Shape assertions the reproduction must satisfy.
    let t_fdct1 = fdct1.metrics.total_sim_seconds();
    let t_fdct2 = fdct2.metrics.total_sim_seconds();
    let t_ham = hamming.metrics.total_sim_seconds();
    let shape_checks = [
        ("hamming is the cheapest simulation", t_ham < t_fdct1 && t_ham < t_fdct2),
        (
            "each fdct2 configuration is cheaper than fdct1",
            fdct2.metrics.configs.iter().all(|c| c.sim_seconds < t_fdct1),
        ),
        (
            "fdct2 per-config operators ~ half of fdct1",
            {
                let per = fdct2.metrics.total_operators() / 2;
                per * 3 > fdct1.metrics.total_operators()
                    && per * 2 < fdct1.metrics.total_operators() * 3
            },
        ),
        (
            "hamming has far fewer operators than fdct1",
            hamming.metrics.total_operators() * 3 < fdct1.metrics.total_operators(),
        ),
    ];
    let mut ok = true;
    for (what, holds) in shape_checks {
        println!("shape: {:<46} {}", what, if holds { "OK" } else { "VIOLATED" });
        ok &= holds;
    }

    if let Some(path) = metrics_out {
        let reports = vec![
            ("fdct1".to_string(), fdct1),
            ("fdct2".to_string(), fdct2),
            ("hamming".to_string(), hamming),
        ];
        write_metrics_json(&path, reports, &recorder)
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        println!("metrics written to {}", path.display());
    }

    if !ok {
        std::process::exit(1);
    }
}
