//! Wall-clock gate for the sharded campaign runtime.
//!
//! Runs the mega-campaign workload — a fuzz campaign plus a fault
//! campaign — once at 1 shard and once at 4 shards, and a third leg
//! that isolates the *amortization* win: the sharded fault path
//! prepares the design and the golden reference once per campaign,
//! where the legacy per-site path re-transforms the design and re-runs
//! the golden model for every injection.
//!
//! The gate is core-count-aware. With 4+ hardware threads the 4-shard
//! run must beat the 1-shard run by `--floor` (default 3×). On smaller
//! hosts (CI runners, 1-core containers) a parallel speedup is
//! physically impossible, so the gate flips to: 4 shards must not
//! regress past ~1.3× of 1 shard, and the prepare-once amortization
//! speedup must clear the floor instead. Either way the report records
//! every wall so the trend ledger can watch both numbers.
//!
//! Usage: `campaign_bench [--cases N] [--sites N] [--floor F]
//! [--out FILE] [--ledger FILE]`
//!
//! Defaults: 2000 fuzz cases, 512 fault sites, floor 3×,
//! `BENCH_campaign.json`.

use fpgafuzz::campaign::{
    run_campaign_sharded as run_fuzz_sharded, CampaignOptions as FuzzOptions,
    ShardedCampaignOptions as FuzzShardOptions,
};
use fpgatest::events::EventSink;
use fpgatest::faults::{
    run_campaign, run_campaign_sharded as run_faults_sharded,
    CampaignOptions as FaultOptions, ShardedCampaignOptions as FaultShardOptions,
};
use fpgatest::flow::Engine;
use fpgatest::ledger::{self, LedgerEntry};
use fpgatest::stimulus::Stimulus;
use fpgatest::suite::TestCase;
use fpgatest::telemetry::Json;
use fpgatest::workloads;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

const PIXELS: usize = 64;

fn fdct_case() -> TestCase {
    let mut case = TestCase::new("fdct1", workloads::fdct_source(PIXELS))
        .with_stimulus("img", Stimulus::from_values(workloads::test_image(PIXELS)));
    case.options.compile.width = 32;
    case
}

/// One full mega-campaign (fuzz + faults) at the given shard count;
/// returns (fuzz wall, faults wall).
fn mega_campaign(shards: usize, cases: u64, sites: usize) -> (f64, f64) {
    let fuzz = FuzzOptions {
        seed: 42,
        cases,
        max_ticks: 50_000,
        max_shrink_evals: 60,
        events: EventSink::disabled(),
        ..FuzzOptions::default()
    };
    let started = Instant::now();
    let outcome = run_fuzz_sharded(
        &fuzz,
        &FuzzShardOptions {
            shards,
            ..FuzzShardOptions::default()
        },
    )
    .expect("fuzz campaign");
    assert!(!outcome.interrupted);
    let fuzz_wall = started.elapsed().as_secs_f64();

    let started = Instant::now();
    let outcome = run_faults_sharded(
        &fdct_case(),
        &FaultOptions {
            seed: 5,
            sites,
            engine: Engine::Batch,
            max_ticks: None,
            events: EventSink::disabled(),
        },
        &FaultShardOptions {
            shards,
            ..FaultShardOptions::default()
        },
    )
    .expect("fault campaign");
    assert!(!outcome.interrupted);
    (fuzz_wall, started.elapsed().as_secs_f64())
}

fn main() -> ExitCode {
    let mut cases = 2000u64;
    let mut sites = 512usize;
    let mut floor = 3.0f64;
    let mut out = PathBuf::from("BENCH_campaign.json");
    let mut ledger_out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| args.next().unwrap_or_else(|| panic!("{what} needs a value"));
        match arg.as_str() {
            "--cases" => cases = value("--cases").parse().expect("--cases: integer"),
            "--sites" => sites = value("--sites").parse().expect("--sites: integer"),
            "--floor" => floor = value("--floor").parse().expect("--floor: number"),
            "--out" => out = PathBuf::from(value("--out")),
            "--ledger" => ledger_out = Some(PathBuf::from(value("--ledger"))),
            other => {
                eprintln!("unexpected argument '{other}'");
                return ExitCode::from(2);
            }
        }
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "campaign_bench: {cases} fuzz cases + {sites} fault sites, floor {floor:.2}x, {cores} cores"
    );

    let (fuzz_1, faults_1) = mega_campaign(1, cases, sites);
    let wall_1 = fuzz_1 + faults_1;
    println!("  1 shard:  {wall_1:.3}s (fuzz {fuzz_1:.3}s + faults {faults_1:.3}s)");
    let (fuzz_4, faults_4) = mega_campaign(4, cases, sites);
    let wall_4 = fuzz_4 + faults_4;
    println!("  4 shards: {wall_4:.3}s (fuzz {fuzz_4:.3}s + faults {faults_4:.3}s)");
    let shard_speedup = wall_1 / wall_4.max(1e-9);
    println!("  4-shard speedup: {shard_speedup:.2}x");

    // Amortization leg: the level engine has no lane batching, so the
    // sharded-vs-legacy gap there is purely prepare-once (one transform,
    // one golden run) against re-transform-and-re-golden per site.
    let amortize_sites = sites.min(48);
    let started = Instant::now();
    let legacy = run_campaign(
        &fdct_case(),
        &FaultOptions {
            seed: 5,
            sites: amortize_sites,
            engine: Engine::Level,
            max_ticks: None,
            events: EventSink::disabled(),
        },
    )
    .expect("legacy fault campaign");
    let legacy_wall = started.elapsed().as_secs_f64();
    let started = Instant::now();
    let sharded = run_faults_sharded(
        &fdct_case(),
        &FaultOptions {
            seed: 5,
            sites: amortize_sites,
            engine: Engine::Level,
            max_ticks: None,
            events: EventSink::disabled(),
        },
        &FaultShardOptions {
            shards: 4,
            ..FaultShardOptions::default()
        },
    )
    .expect("sharded fault campaign");
    let sharded_wall = started.elapsed().as_secs_f64();
    assert_eq!(
        legacy.injections.len(),
        sharded.report.injections.len(),
        "both amortization legs must classify the same sites"
    );
    let amortization = legacy_wall / sharded_wall.max(1e-9);
    println!(
        "  prepare-once amortization ({amortize_sites} level-engine sites): \
         {legacy_wall:.3}s legacy vs {sharded_wall:.3}s sharded = {amortization:.2}x"
    );

    let parallel_gate = cores >= 4;
    let (gate, gated_speedup) = if parallel_gate {
        ("4-shard parallel speedup", shard_speedup)
    } else {
        ("prepare-once amortization", amortization)
    };
    println!("  gate [{cores} cores]: {gate} {gated_speedup:.2}x vs floor {floor:.2}x");

    let mut report = Json::obj([
        ("schema", Json::from("fpgatest-bench-campaign-v1")),
        ("cores", Json::from(cores)),
        ("fuzz_cases", Json::from(cases)),
        ("fault_sites", Json::from(sites)),
        ("floor", Json::from(floor)),
        ("gate", Json::from(gate)),
        ("wall_1_shard", Json::from(wall_1)),
        ("wall_4_shards", Json::from(wall_4)),
        ("fuzz_wall_1_shard", Json::from(fuzz_1)),
        ("fuzz_wall_4_shards", Json::from(fuzz_4)),
        ("faults_wall_1_shard", Json::from(faults_1)),
        ("faults_wall_4_shards", Json::from(faults_4)),
        ("shard_speedup", Json::from(shard_speedup)),
        ("amortization_sites", Json::from(amortize_sites)),
        ("amortization_legacy_wall", Json::from(legacy_wall)),
        ("amortization_sharded_wall", Json::from(sharded_wall)),
        ("amortization_speedup", Json::from(amortization)),
    ]);
    report.sort_keys();
    if let Err(e) = std::fs::write(&out, report.emit_pretty()) {
        eprintln!("cannot write {}: {e}", out.display());
        return ExitCode::from(2);
    }
    println!("report written to {}", out.display());

    if let Some(path) = &ledger_out {
        let mut entry = LedgerEntry::new("bench", "campaign:mega");
        entry.engine = "batch".to_string();
        entry.wall_seconds = wall_1 + wall_4;
        entry.passed = (cases as usize + sites) as u64 * 2;
        entry
            .counters
            .push(("shard_speedup".to_string(), shard_speedup));
        entry
            .counters
            .push(("amortization_speedup".to_string(), amortization));
        entry.counters.push(("cores".to_string(), cores as f64));
        if let Err(e) = ledger::append(path, &entry) {
            eprintln!("cannot append {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if gated_speedup < floor {
        eprintln!("FAIL: {gate} {gated_speedup:.2}x below floor {floor:.2}x");
        return ExitCode::FAILURE;
    }
    if !parallel_gate && wall_4 > wall_1 * 1.3 {
        eprintln!(
            "FAIL: 4-shard wall {wall_4:.3}s regresses past 1.3x of 1-shard {wall_1:.3}s \
             on a {cores}-core host"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
