//! Diagnostic utility: kernel event statistics for the FDCT workload
//! (events per cycle, events per second). Useful when tuning the kernel.
//!
//! Usage: `cargo run --release -p bench --bin probe_events [pixels]`

fn main() {
    let pixels: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("pixels must be an integer"))
        .unwrap_or(256);
    let report = bench::run_checked(&bench::fdct_flow(
        pixels,
        1,
        nenya::schedule::SchedulePolicy::List,
    ));
    for run in &report.runs {
        println!(
            "{}: cycles={} events={} updates={} evals={} wall={:.3}s -> {:.1} Mev/s, {:.0} events/cycle",
            run.name,
            run.cycles,
            run.summary.events,
            run.summary.updates,
            run.summary.evals,
            run.summary.wall_seconds,
            run.summary.events as f64 / run.summary.wall_seconds / 1e6,
            run.summary.events as f64 / run.cycles as f64
        );
    }
}
