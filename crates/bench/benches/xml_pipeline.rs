//! Infrastructure micro-benchmarks: the XML layer and the stylesheet
//! engine on a real generated datapath. These are the fixed per-run costs
//! of the flow (the paper's "feasible time over a complete test suite"
//! claim depends on them staying negligible next to simulation).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fpgatest::workloads;
use nenya::{compile, CompileOptions};
use std::hint::black_box;

fn xml_pipeline(c: &mut Criterion) {
    let design = compile(
        "fdct1",
        &workloads::fdct_source(64),
        &CompileOptions {
            width: 32,
            ..CompileOptions::default()
        },
    )
    .expect("fdct compiles");
    let dp_doc = nenya::xml::emit_datapath(&design.configs[0].datapath);
    let dp_text = dp_doc.to_pretty_string();
    let hds_sheet = xform::stylesheets::datapath_to_hds();

    let mut group = c.benchmark_group("xml_pipeline");
    group.throughput(Throughput::Bytes(dp_text.len() as u64));

    group.bench_function("parse_datapath_xml", |b| {
        b.iter(|| black_box(xmlite::Document::parse(&dp_text).expect("parses")));
    });
    group.bench_function("emit_datapath_xml", |b| {
        b.iter(|| black_box(dp_doc.to_pretty_string()));
    });
    group.bench_function("stylesheet_to_hds", |b| {
        b.iter(|| black_box(xform::apply(&hds_sheet, dp_doc.root()).expect("applies")));
    });
    group.bench_function("hds_parse", |b| {
        let hds = xform::apply(&hds_sheet, dp_doc.root()).expect("applies");
        b.iter(|| black_box(eventsim::hds::parse(&hds).expect("parses")));
    });
    group.bench_function("compile_fdct_64px", |b| {
        let src = workloads::fdct_source(64);
        let options = CompileOptions {
            width: 32,
            ..CompileOptions::default()
        };
        b.iter(|| black_box(compile("fdct1", &src, &options).expect("compiles")));
    });

    group.finish();
}

criterion_group!(benches, xml_pipeline);
criterion_main!(benches);
