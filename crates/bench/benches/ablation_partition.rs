//! Ablation **A2** (DESIGN.md): monolithic vs temporally partitioned
//! simulation cost — the paper's FDCT1 (6.9 s) vs FDCT2 (2 × 2.9 s)
//! effect: each configuration of the partitioned design simulates faster
//! than the monolithic one because its datapath has roughly half the
//! operators (fewer components to evaluate per event).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nenya::schedule::SchedulePolicy;
use std::hint::black_box;

fn ablation_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_partition");
    group.sample_size(10);

    for (label, partitions) in [("fdct1", 1usize), ("fdct2", 2)] {
        group.bench_function(BenchmarkId::new("flow_128px", label), |b| {
            let flow = bench::fdct_flow(128, partitions, SchedulePolicy::List);
            b.iter(|| black_box(bench::run_checked(&flow)));
        });
    }
    group.finish();

    // The paper's headline shape: per-configuration time of FDCT2 is well
    // below FDCT1's single-configuration time.
    let fdct1 = bench::run_checked(&bench::fdct_flow(128, 1, SchedulePolicy::List));
    let fdct2 = bench::run_checked(&bench::fdct_flow(128, 2, SchedulePolicy::List));
    let t1 = fdct1.metrics.total_sim_seconds();
    for config in &fdct2.metrics.configs {
        println!(
            "fdct2 config '{}': {:.4}s vs fdct1 {:.4}s",
            config.name, config.sim_seconds, t1
        );
        assert!(config.sim_seconds < t1, "per-config time must beat monolithic");
    }
}

criterion_group!(benches, ablation_partition);
criterion_main!(benches);
