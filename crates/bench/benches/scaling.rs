//! Criterion bench behind the **in-text scaling figure**: FDCT1
//! simulation time vs image size (the paper: 4,096 px → 6.9 s,
//! 65,536 px → ~1 min, 345,600 px → ~6.5 min; linear in pixels).
//!
//! Throughput is reported in pixels so criterion's `Elements/s` column
//! directly exposes the (expected constant) per-pixel cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nenya::schedule::SchedulePolicy;
use std::hint::black_box;

fn scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling");
    group.sample_size(10);

    for pixels in [64usize, 128, 256, 512] {
        group.throughput(Throughput::Elements(pixels as u64));
        group.bench_with_input(BenchmarkId::new("fdct1", pixels), &pixels, |b, &pixels| {
            let flow = bench::fdct_flow(pixels, 1, SchedulePolicy::List);
            b.iter(|| black_box(bench::run_checked(&flow)));
        });
    }

    group.finish();
}

criterion_group!(benches, scaling);
criterion_main!(benches);
