//! Ablation **A4** (DESIGN.md): effect of the compiler's TAC optimization
//! passes (constant folding, copy coalescing, dead-code elimination) on
//! the generated design — the "new optimization technique" scenario the
//! paper's infrastructure exists for. Both variants must pass functional
//! verification; the optimized one should need fewer operators, fewer
//! control steps, and less simulation time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fpgatest::flow::{FlowOptions, TestFlow};
use fpgatest::stimulus::Stimulus;
use fpgatest::workloads;
use nenya::CompileOptions;
use std::hint::black_box;

fn fdct_flow(pixels: usize, optimize: bool) -> TestFlow {
    TestFlow::new(
        if optimize { "fdct1_opt" } else { "fdct1" },
        workloads::fdct_source(pixels),
    )
    .with_options(FlowOptions {
        compile: CompileOptions {
            width: 32,
            optimize,
            ..CompileOptions::default()
        },
        ..FlowOptions::default()
    })
    .stimulus("img", Stimulus::from_values(workloads::test_image(pixels)))
}

fn ablation_optimize(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_optimize");
    group.sample_size(10);
    for (label, optimize) in [("baseline", false), ("optimized", true)] {
        group.bench_function(BenchmarkId::new("fdct1_128px", label), |b| {
            let flow = fdct_flow(128, optimize);
            b.iter(|| black_box(bench::run_checked(&flow)));
        });
    }
    group.finish();

    let plain = bench::run_checked(&fdct_flow(128, false));
    let optimized = bench::run_checked(&fdct_flow(128, true));
    println!(
        "operators: {} -> {} | cycles: {} -> {} | sim: {:.4}s -> {:.4}s",
        plain.metrics.total_operators(),
        optimized.metrics.total_operators(),
        plain.metrics.total_cycles(),
        optimized.metrics.total_cycles(),
        plain.metrics.total_sim_seconds(),
        optimized.metrics.total_sim_seconds(),
    );
    assert!(optimized.metrics.total_operators() <= plain.metrics.total_operators());
    assert!(optimized.metrics.total_cycles() < plain.metrics.total_cycles());
}

criterion_group!(benches, ablation_optimize);
criterion_main!(benches);
