//! Ablation **A1** (DESIGN.md): effect of the scheduling policy — greedy
//! list scheduling vs the naive one-op-per-state baseline — on simulated
//! cycle count and wall-clock simulation time. This is the kind of
//! "new optimization technique" whose functional correctness the paper's
//! infrastructure exists to re-verify.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nenya::schedule::SchedulePolicy;
use std::hint::black_box;

fn ablation_schedule(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_schedule");
    group.sample_size(10);

    for (label, policy) in [
        ("one-op-per-state", SchedulePolicy::OneOpPerState),
        ("list", SchedulePolicy::List),
    ] {
        group.bench_function(BenchmarkId::new("fdct1_128px", label), |b| {
            let flow = bench::fdct_flow(128, 1, policy);
            b.iter(|| black_box(bench::run_checked(&flow)));
        });
    }
    group.finish();

    // One non-statistical comparison printed for the record.
    let naive = bench::run_checked(&bench::fdct_flow(128, 1, SchedulePolicy::OneOpPerState));
    let packed = bench::run_checked(&bench::fdct_flow(128, 1, SchedulePolicy::List));
    println!(
        "cycles: one-op-per-state = {}, list = {} ({:.2}x fewer)",
        naive.metrics.total_cycles(),
        packed.metrics.total_cycles(),
        naive.metrics.total_cycles() as f64 / packed.metrics.total_cycles() as f64
    );
    assert!(packed.metrics.total_cycles() < naive.metrics.total_cycles());
}

criterion_group!(benches, ablation_schedule);
criterion_main!(benches);
