//! Ablation **A3** (DESIGN.md): the event-driven kernel vs the naive
//! evaluate-everything-per-cycle baseline on the *same* design. The paper
//! motivates software event-driven simulation by speed ("RTL simulation
//! based on software languages can be faster than commercial HDL
//! simulators"); the cycle sweeper stands in for the slow comparator and
//! additionally cross-checks results word for word.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eventsim::cyclesim::{CycleOutcome, CycleSim};
use eventsim::{RunOutcome, SimTime, Simulator};
use fpgatest::elaborate::fsm_to_table;
use fpgatest::workloads;
use nenya::{compile, CompileOptions};
use std::hint::black_box;

struct Prepared {
    netlist: eventsim::netlist::Netlist,
    fsm: nenya::fsm::Fsm,
    image: Vec<i64>,
}

fn prepare(pixels: usize) -> Prepared {
    let design = compile(
        "fdct1",
        &workloads::fdct_source(pixels),
        &CompileOptions {
            width: 32,
            ..CompileOptions::default()
        },
    )
    .expect("fdct compiles");
    let config = &design.configs[0];
    let dp_doc = nenya::xml::emit_datapath(&config.datapath);
    let hds = xform::apply(&xform::stylesheets::datapath_to_hds(), dp_doc.root())
        .expect("stylesheet applies");
    Prepared {
        netlist: eventsim::hds::parse(&hds).expect("hds parses"),
        fsm: config.fsm.clone(),
        image: workloads::test_image(pixels),
    }
}

/// Runs the design on the event kernel; returns the output image.
fn run_event(p: &Prepared) -> Vec<Option<i64>> {
    let mut sim = Simulator::new();
    let map = p.netlist.elaborate(&mut sim).expect("elaborates");
    let clk = map.signal("clk").expect("clk");
    fpgatest::elaborate::attach_control_unit(&mut sim, &map, &p.fsm, clk).expect("fsm binds");
    for (addr, &v) in p.image.iter().enumerate() {
        map.mems["img"].store(addr, v);
    }
    let summary = sim.run(SimTime(u64::MAX / 4)).expect("no kernel error");
    assert!(matches!(summary.outcome, RunOutcome::Stopped(_)));
    map.mems["out"].snapshot()
}

/// Runs the same design on the cycle sweeper; returns the output image.
fn run_cycle(p: &Prepared) -> Vec<Option<i64>> {
    let mut sim = CycleSim::from_netlist(&p.netlist).expect("cycle model builds");
    let (table, conds, outs) = fsm_to_table(&p.fsm).expect("fsm converts");
    let cond_refs: Vec<&str> = conds.iter().map(String::as_str).collect();
    let out_refs: Vec<(&str, u32)> = outs.iter().map(|(n, w)| (n.as_str(), *w)).collect();
    sim.add_control_unit(&p.fsm.name, &cond_refs, &out_refs, table)
        .expect("control unit binds");
    for (addr, &v) in p.image.iter().enumerate() {
        sim.mem("img").expect("img").store(addr, v);
    }
    let summary = sim.run(50_000_000).expect("cycle run");
    assert_eq!(summary.outcome, CycleOutcome::Done);
    sim.mem("out").expect("out").snapshot()
}

fn ablation_kernel(c: &mut Criterion) {
    let prepared = prepare(128);

    // Cross-check once: both engines must agree word for word.
    let ev = run_event(&prepared);
    let cy = run_cycle(&prepared);
    assert_eq!(ev, cy, "engines disagree on the FDCT output image");

    let mut group = c.benchmark_group("ablation_kernel");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("event_kernel", "fdct1_128px"), |b| {
        b.iter(|| black_box(run_event(&prepared)));
    });
    group.bench_function(BenchmarkId::new("cycle_baseline", "fdct1_128px"), |b| {
        b.iter(|| black_box(run_cycle(&prepared)));
    });
    group.finish();
}

criterion_group!(benches, ablation_kernel);
criterion_main!(benches);
