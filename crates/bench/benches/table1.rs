//! Criterion bench behind **Table I**: end-to-end test-flow time for the
//! three designs of the paper's evaluation (compile → XML → transform →
//! simulate → compare). Statistical sampling uses scaled-down workloads;
//! the `table1` binary reproduces the full-size table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nenya::schedule::SchedulePolicy;
use std::hint::black_box;

fn table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("fdct1", "128px"), |b| {
        let flow = bench::fdct_flow(128, 1, SchedulePolicy::List);
        b.iter(|| black_box(bench::run_checked(&flow)));
    });
    group.bench_function(BenchmarkId::new("fdct2", "128px"), |b| {
        let flow = bench::fdct_flow(128, 2, SchedulePolicy::List);
        b.iter(|| black_box(bench::run_checked(&flow)));
    });
    group.bench_function(BenchmarkId::new("hamming", "32w"), |b| {
        let flow = bench::hamming_flow(32);
        b.iter(|| black_box(bench::run_checked(&flow)));
    });

    group.finish();
}

criterion_group!(benches, table1);
criterion_main!(benches);
