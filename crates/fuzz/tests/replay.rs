//! Replay of the checked-in fuzz corpus against the current kernel.
//!
//! The corpus under `crates/fuzz/corpus/` was captured from a coverage-
//! guided campaign (`fpgafuzz run --seed 42 --cases 200`), and
//! `replay_golden.txt` records the `fpgafuzz repro` classification of
//! every case at capture time. This test regenerates each case from its
//! (seed, index), re-runs the differential executor, and compares
//! the classification lines against the golden — so any kernel change
//! that alters simulation results, coverage keys, or divergence
//! classification shows up as a diff here.

use fpgafuzz::exec::{run_case, CaseOutcome, ExecOptions};
use fpgafuzz::gen::{generate_case, Budget};
use std::fmt::Write as _;
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

/// Parses `seed42-case7.src` into `(42, 7)`.
fn parse_case_name(stem: &str) -> Option<(u64, u64)> {
    let rest = stem.strip_prefix("seed")?;
    let (seed, case) = rest.split_once("-case")?;
    Some((seed.parse().ok()?, case.parse().ok()?))
}

#[test]
fn corpus_replay_matches_golden_classifications() {
    let dir = corpus_dir();
    let mut sources: Vec<(String, u64, u64)> = std::fs::read_dir(&dir)
        .expect("corpus directory is checked in")
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            if path.extension()? != "src" {
                return None;
            }
            let stem = path.file_stem()?.to_str()?.to_string();
            let (seed, index) = parse_case_name(&stem)?;
            Some((stem, seed, index))
        })
        .collect();
    assert!(!sources.is_empty(), "no .src files in {}", dir.display());
    // The golden is in filename-sort order, matching `Corpus::cases()`.
    sources.sort_by(|a, b| a.0.cmp(&b.0));

    let width = 16; // the campaign's default width
    let mut log = String::new();
    for (stem, seed, index) in &sources {
        let budget = Budget {
            width,
            ..Budget::default()
        };
        // `fpgafuzz repro` regenerates from (seed, index) with the
        // default budget — campaign-saved sources may differ because of
        // coverage-guided generation bias, so the .src files document the
        // corpus but the replay contract is the repro path.
        let case = generate_case(*seed, *index, &budget)
            .unwrap_or_else(|e| panic!("{stem}: generator error: {e}"));
        match run_case(&case, width, &ExecOptions::default()) {
            CaseOutcome::Pass { coverage } => {
                writeln!(log, "case {index}: PASS ({} coverage keys)", coverage.len()).unwrap();
            }
            CaseOutcome::Divergence(d) => {
                writeln!(
                    log,
                    "case {index}: DIVERGENCE [{}] {:?}: {}",
                    d.variant, d.kind, d.detail
                )
                .unwrap();
            }
            CaseOutcome::GeneratorError(e) => {
                writeln!(log, "case {index}: generator error: {e}").unwrap();
            }
        }
    }

    let golden = std::fs::read_to_string(
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/replay_golden.txt"),
    )
    .expect("replay_golden.txt is checked in");
    assert_eq!(
        log, golden,
        "corpus classifications drifted from the recorded golden"
    );
}
