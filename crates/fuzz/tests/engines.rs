//! Cross-engine equivalence over the checked-in corpus, plus the
//! levelization-order property.
//!
//! The event kernel is the reference semantics; the compiled cycle,
//! level, and batch engines must leave *word-identical* final memories
//! on every corpus case. A second, structural property checks the level engine's
//! schedule itself: in the rank table of every generated netlist, each
//! combinational instance is ranked strictly after all of its producers,
//! so a single ascending pass per clock phase is sufficient.

use fpgafuzz::gen::{generate_case, Budget, Case};
use fpgatest::flow::{Engine, TestFlow};
use fpgatest::stimulus::Stimulus;
use nenya::{compile_program, CompileOptions};
use proptest::prelude::*;
use std::path::PathBuf;

/// The campaign's default width (matches `tests/replay.rs`).
const WIDTH: u32 = 16;

fn corpus_cases() -> Vec<(u64, u64)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let mut cases: Vec<(u64, u64)> = std::fs::read_dir(&dir)
        .expect("corpus directory is checked in")
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            if path.extension()? != "src" {
                return None;
            }
            let stem = path.file_stem()?.to_str()?;
            let rest = stem.strip_prefix("seed")?;
            let (seed, case) = rest.split_once("-case")?;
            Some((seed.parse().ok()?, case.parse().ok()?))
        })
        .collect();
    cases.sort_unstable();
    assert!(!cases.is_empty(), "no .src files in {}", dir.display());
    cases
}

fn regenerate(seed: u64, index: u64) -> Case {
    let budget = Budget {
        width: WIDTH,
        ..Budget::default()
    };
    generate_case(seed, index, &budget).expect("generator emits valid programs")
}

fn flow(case: &Case, engine: Engine) -> TestFlow {
    let mut flow = TestFlow::new("gen", &case.source)
        .with_width(WIDTH)
        .with_engine(engine);
    for (mem, values) in &case.stimuli {
        flow = flow.stimulus(mem, Stimulus::from_values(values.iter().copied()));
    }
    flow
}

/// Every corpus case, replayed on all four engines: all must pass the
/// golden comparison *and* agree with each other word for word.
#[test]
fn corpus_final_memories_identical_across_engines() {
    for (seed, index) in corpus_cases() {
        let case = regenerate(seed, index);
        let event = flow(&case, Engine::Event)
            .run()
            .unwrap_or_else(|e| panic!("case {seed}/{index}: event flow: {e}"));
        assert!(
            event.passed,
            "case {seed}/{index} fails on the event kernel:\n{}",
            event.render()
        );
        for engine in [Engine::Cycle, Engine::Level, Engine::Batch] {
            let compiled = flow(&case, engine)
                .run()
                .unwrap_or_else(|e| panic!("case {seed}/{index}: {engine} flow: {e}"));
            assert!(
                compiled.passed,
                "case {seed}/{index} fails on the {engine} engine:\n{}",
                compiled.render()
            );
            assert_eq!(
                compiled.sim_mems, event.sim_mems,
                "case {seed}/{index}: {engine} engine memories differ from the event kernel"
            );
        }
    }
}

/// Levelizes every configuration of a compiled design and returns the
/// rank tables, one per configuration.
fn rank_tables(case: &Case) -> Vec<Vec<eventsim::levelsim::RankEntry>> {
    let options = CompileOptions {
        width: WIDTH,
        ..CompileOptions::default()
    };
    let design =
        compile_program("gen", &case.program, &options).expect("generator emits valid programs");
    design
        .configs
        .iter()
        .map(|config| {
            let dp_doc = nenya::xml::emit_datapath(&config.datapath);
            let hds = xform::apply(&xform::stylesheets::datapath_to_hds(), dp_doc.root())
                .expect("datapath stylesheet applies");
            let netlist = eventsim::hds::parse(&hds).expect("stylesheet output parses");
            let sim = netlist
                .compile_levelized()
                .expect("generated datapaths are acyclic");
            sim.rank_table()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// In every levelized schedule, each combinational instance ranks
    /// strictly after all of its combinational producers — the property
    /// that makes one ascending sweep per clock phase sufficient.
    #[test]
    fn levelization_ranks_respect_sources(
        seed in any::<u64>(),
        index in 0u64..1024,
    ) {
        let case = regenerate(seed, index);
        for table in rank_tables(&case) {
            prop_assert!(!table.is_empty(), "no combinational instances levelized");
            for entry in &table {
                for (producer, producer_rank) in &entry.sources {
                    prop_assert!(
                        entry.rank > *producer_rank,
                        "'{}' (rank {}) does not come after its producer '{}' (rank {})",
                        entry.instance, entry.rank, producer, producer_rank
                    );
                }
            }
        }
    }
}
