//! The batch engine's lane-equivalence property, fuzzed.
//!
//! For random generated programs and 64 random stimulus vectors, lane
//! `k` of one [`PreparedDesign::run_batch`] walk must be
//! indistinguishable from a fresh sequential `--engine level` run of
//! vector `k` alone: same verdict, same failure/timeout strings, same
//! final memories, same cycle counts. This is the correctness bar of
//! the batch engine — packing 64 stimuli into one schedule walk is an
//! implementation detail no observer may detect.

use fpgafuzz::gen::{generate_case, Budget, Case};
use fpgatest::flow::{
    prepare_design, run_design, BatchLaneSpec, Engine, FlowError, FlowOptions,
};
use fpgatest::stimulus::Stimulus;
use nenya::{compile_program, CompileOptions};
use proptest::prelude::*;

const WIDTH: u32 = 16;
const LANES: usize = 64;

fn regenerate(seed: u64, index: u64) -> Case {
    let budget = Budget {
        width: WIDTH,
        ..Budget::default()
    };
    generate_case(seed, index, &budget).expect("generator emits valid programs")
}

/// Deterministic value stream for lane stimuli (splitmix64).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// 64 independent stimulus vectors with the same memory shapes as the
/// generated case, each lane's values drawn from its own seeded stream.
fn lane_stimuli(case: &Case, lane_seed: u64) -> Vec<Vec<(String, Stimulus)>> {
    (0..LANES)
        .map(|lane| {
            let mut state = lane_seed ^ (lane as u64).wrapping_mul(0xa076_1d64_78bd_642f);
            case.stimuli
                .iter()
                .map(|(mem, values)| {
                    let fresh: Vec<i64> = values
                        .iter()
                        .map(|_| (splitmix64(&mut state) & 0xFFFF) as i64)
                        .collect();
                    (mem.clone(), Stimulus::from_values(fresh))
                })
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Batch lane `k` ≡ fresh sequential level run of vector `k`.
    #[test]
    fn batch_lanes_match_fresh_sequential_level_runs(
        seed in any::<u64>(),
        index in 0u64..1024,
        lane_seed in any::<u64>(),
    ) {
        let case = regenerate(seed, index);
        let options = CompileOptions {
            width: WIDTH,
            ..CompileOptions::default()
        };
        let design = compile_program("gen", &case.program, &options)
            .expect("generator emits valid programs");
        let stimuli = lane_stimuli(&case, lane_seed);

        let flow_options = FlowOptions {
            max_ticks: 200_000,
            ..FlowOptions::default()
        };
        let prepared = prepare_design(design.clone()).expect("prepared design");
        let specs: Vec<BatchLaneSpec> = stimuli
            .iter()
            .map(|lane| BatchLaneSpec {
                stimuli: lane.clone(),
                faults: Vec::new(),
            })
            .collect();
        let batch = prepared
            .run_batch(&specs, &flow_options)
            .expect("batch run on a valid generated design");
        prop_assert_eq!(batch.lanes.len(), LANES);

        for (k, lane) in batch.lanes.iter().enumerate() {
            let sequential_options = FlowOptions {
                engine: Engine::Level,
                ..flow_options.clone()
            };
            match run_design(&design, &stimuli[k], &sequential_options) {
                Ok(report) => {
                    prop_assert_eq!(
                        lane.flow_error.as_deref(), None,
                        "lane {}: unexpected flow error", k
                    );
                    prop_assert_eq!(
                        lane.timed_out.as_deref(), None,
                        "lane {}: batch timed out, sequential did not", k
                    );
                    prop_assert_eq!(
                        lane.passed, report.passed,
                        "lane {}: verdicts disagree", k
                    );
                    prop_assert_eq!(
                        &lane.failure, &report.failure,
                        "lane {}: failure strings disagree", k
                    );
                    prop_assert_eq!(
                        &lane.mismatches, &report.mismatches,
                        "lane {}: golden mismatches disagree", k
                    );
                    prop_assert_eq!(
                        &lane.sim_mems, &report.sim_mems,
                        "lane {}: final memories disagree", k
                    );
                    let sequential_cycles: u64 =
                        report.runs.iter().map(|r| r.cycles).sum();
                    prop_assert_eq!(
                        lane.cycles, sequential_cycles,
                        "lane {}: cycle counts disagree", k
                    );
                }
                Err(FlowError::Timeout { .. }) => {
                    let rendered = run_design(&design, &stimuli[k], &sequential_options)
                        .unwrap_err()
                        .to_string();
                    prop_assert_eq!(
                        lane.timed_out.as_deref(),
                        Some(rendered.as_str()),
                        "lane {}: timeout strings disagree", k
                    );
                }
                Err(e) => {
                    let rendered = e.to_string();
                    prop_assert_eq!(
                        lane.flow_error.as_deref(),
                        Some(rendered.as_str()),
                        "lane {}: flow errors disagree", k
                    );
                }
            }
        }
    }
}
