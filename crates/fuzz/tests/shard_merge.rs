//! Property tests of the sharded fuzz-campaign runtime: the merged
//! result is bit-identical at every shard count, a stop-flag interrupt
//! plus `--resume` reproduces the uninterrupted run exactly (log,
//! coverage, corpus, events), and a SIGKILLed CLI campaign resumes from
//! its checkpoint to the same bytes.

use fpgafuzz::campaign::{
    run_campaign_sharded, CampaignOptions, ShardedCampaignOptions,
};
use fpgafuzz::exec::Injection;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fpgafuzz_shard_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn opts(seed: u64, cases: u64, events: fpgatest::events::EventSink) -> CampaignOptions {
    CampaignOptions {
        seed,
        cases,
        max_ticks: 50_000,
        // Keep shrinking cheap: these tests are about merging, not
        // minimization quality.
        max_shrink_evals: 60,
        events,
        ..CampaignOptions::default()
    }
}

/// `(log, coverage render, event bytes, corpus files)` of one run.
type RunSnapshot = (String, String, String, Vec<(String, String)>);

/// All corpus files of a directory as sorted `(name, contents)` pairs.
fn corpus_snapshot(dir: &Path) -> Vec<(String, String)> {
    let mut files: Vec<(String, String)> = std::fs::read_dir(dir)
        .unwrap()
        .map(|entry| {
            let path = entry.unwrap().path();
            (
                path.file_name().unwrap().to_str().unwrap().to_string(),
                std::fs::read_to_string(&path).unwrap(),
            )
        })
        .collect();
    files.sort();
    files
}

#[test]
fn merge_of_shard_parts_equals_the_single_shard_run() {
    let base = temp_dir("counts");
    let mut reference: Option<RunSnapshot> = None;
    for shards in [1usize, 2, 3, 7] {
        let corpus = base.join(format!("corpus{shards}"));
        let (sink, captured) = fpgatest::events::EventSink::capture();
        let outcome = run_campaign_sharded(
            &CampaignOptions {
                corpus_dir: Some(corpus.clone()),
                injection: Some(Injection::BranchPolarity),
                ..opts(42, 30, sink)
            },
            &ShardedCampaignOptions {
                shards,
                ..ShardedCampaignOptions::default()
            },
        )
        .unwrap();
        assert!(!outcome.interrupted);
        assert_eq!(outcome.resumed, 0);
        let snapshot = (
            outcome.report.log.clone(),
            outcome.report.coverage.render(),
            captured.text(),
            corpus_snapshot(&corpus),
        );
        assert!(
            outcome.report.divergences > 0,
            "the planted bug must surface for the merge to be interesting:\n{}",
            outcome.report.log
        );
        match &reference {
            None => reference = Some(snapshot),
            Some(reference) => {
                assert_eq!(reference.0, snapshot.0, "log differs at {shards} shards");
                assert_eq!(
                    reference.1, snapshot.1,
                    "coverage differs at {shards} shards"
                );
                assert_eq!(
                    reference.2, snapshot.2,
                    "event stream differs at {shards} shards"
                );
                assert_eq!(
                    reference.3, snapshot.3,
                    "corpus differs at {shards} shards"
                );
            }
        }
    }
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn stop_flag_interrupt_then_resume_reproduces_the_uninterrupted_run() {
    let base = temp_dir("resume");
    let (sink, reference_events) = fpgatest::events::EventSink::capture();
    let reference = run_campaign_sharded(
        &CampaignOptions {
            corpus_dir: Some(base.join("ref")),
            ..opts(7, 40, sink)
        },
        &ShardedCampaignOptions {
            shards: 2,
            ..ShardedCampaignOptions::default()
        },
    )
    .unwrap();
    assert!(!reference.interrupted);

    // Interrupted run: a timer trips the stop flag mid-campaign. The
    // exact cut point is scheduling-dependent; every cut point must
    // resume to the same final bytes (and if the timer loses the race
    // entirely, the equality still holds with nothing to resume).
    let checkpoint = base.join("campaign.ckpt");
    let stop = Arc::new(AtomicBool::new(false));
    let timer = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(150));
            stop.store(true, Ordering::SeqCst);
        })
    };
    let first = run_campaign_sharded(
        &CampaignOptions {
            corpus_dir: Some(base.join("cut")),
            ..opts(7, 40, fpgatest::events::EventSink::disabled())
        },
        &ShardedCampaignOptions {
            shards: 2,
            checkpoint: Some(checkpoint.clone()),
            checkpoint_every: 1,
            stop: Some(stop),
            ..ShardedCampaignOptions::default()
        },
    )
    .unwrap();
    timer.join().unwrap();

    let (final_log, final_events) = if first.interrupted {
        assert!(checkpoint.is_file(), "interrupt leaves a checkpoint");
        let text = std::fs::read_to_string(&checkpoint).unwrap();
        assert!(
            text.contains("fpgatest-checkpoint-v1"),
            "checkpoint carries its schema tag"
        );
        let (sink, resumed_events) = fpgatest::events::EventSink::capture();
        let resumed = run_campaign_sharded(
            &CampaignOptions {
                corpus_dir: Some(base.join("cut")),
                ..opts(7, 40, sink)
            },
            &ShardedCampaignOptions {
                shards: 2,
                resume: Some(checkpoint.clone()),
                ..ShardedCampaignOptions::default()
            },
        )
        .unwrap();
        assert!(!resumed.interrupted);
        assert!(
            resumed.resumed > 0,
            "the checkpoint held at least one completed case"
        );
        (resumed.report.log, resumed_events.text())
    } else {
        // The campaign outran the timer — it is itself the comparison.
        let (sink, events) = fpgatest::events::EventSink::capture();
        let rerun = run_campaign_sharded(
            &CampaignOptions {
                corpus_dir: Some(base.join("cut")),
                ..opts(7, 40, sink)
            },
            &ShardedCampaignOptions {
                shards: 2,
                ..ShardedCampaignOptions::default()
            },
        )
        .unwrap();
        (rerun.report.log, events.text())
    };
    assert_eq!(reference.report.log, final_log);
    assert_eq!(reference_events.text(), final_events);
    assert_eq!(
        corpus_snapshot(&base.join("ref")),
        corpus_snapshot(&base.join("cut")),
        "the resumed corpus matches the uninterrupted one"
    );
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn resume_rejects_a_mismatched_checkpoint() {
    let base = temp_dir("mismatch");
    let checkpoint = base.join("cp.json");
    let stop = Arc::new(AtomicBool::new(true));
    // Seed a checkpoint by running one campaign to completion.
    let done = run_campaign_sharded(
        &opts(3, 10, fpgatest::events::EventSink::disabled()),
        &ShardedCampaignOptions {
            shards: 2,
            checkpoint: Some(checkpoint.clone()),
            ..ShardedCampaignOptions::default()
        },
    )
    .unwrap();
    assert!(!done.interrupted);
    drop(stop);
    // Same checkpoint, different seed: the identity check must refuse.
    let err = run_campaign_sharded(
        &opts(4, 10, fpgatest::events::EventSink::disabled()),
        &ShardedCampaignOptions {
            shards: 2,
            resume: Some(checkpoint),
            ..ShardedCampaignOptions::default()
        },
    )
    .unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn sigkilled_cli_campaign_resumes_to_identical_bytes() {
    let exe = env!("CARGO_BIN_EXE_fpgafuzz");
    let base = temp_dir("sigkill");
    let reference_events = base.join("reference.events");
    let killed_events = base.join("killed.events");
    let checkpoint = base.join("killed.ckpt");

    let run = |extra: &[&str]| {
        let mut cmd = std::process::Command::new(exe);
        cmd.args(["run", "--seed", "11", "--cases", "40", "--shards", "2"])
            .args(extra)
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::piped());
        cmd
    };

    let reference = run(&["--events-out", reference_events.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        reference.status.success(),
        "reference run failed: {}",
        String::from_utf8_lossy(&reference.stderr)
    );

    let mut victim = run(&[
        "--events-out",
        killed_events.to_str().unwrap(),
        "--checkpoint",
        checkpoint.to_str().unwrap(),
        "--checkpoint-every",
        "1",
    ])
    .spawn()
    .unwrap();
    // SIGKILL as soon as the first snapshot lands — no signal handler
    // runs, so only the checkpoint discipline protects the campaign.
    let mut killed_mid_run = true;
    loop {
        if checkpoint.is_file() {
            victim.kill().ok();
            break;
        }
        if let Some(status) = victim.try_wait().unwrap() {
            // Outran the poller: the campaign completed uninterrupted.
            assert!(status.success());
            killed_mid_run = false;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    victim.wait().unwrap();

    if killed_mid_run {
        let resumed = run(&[
            "--events-out",
            killed_events.to_str().unwrap(),
            "--resume",
            checkpoint.to_str().unwrap(),
        ])
        .output()
        .unwrap();
        assert!(
            resumed.status.success(),
            "resume failed: {}",
            String::from_utf8_lossy(&resumed.stderr)
        );
        assert_eq!(
            String::from_utf8_lossy(&reference.stdout),
            String::from_utf8_lossy(&resumed.stdout),
            "resumed log differs from the uninterrupted run"
        );
    }
    assert_eq!(
        std::fs::read_to_string(&reference_events).unwrap(),
        std::fs::read_to_string(&killed_events).unwrap(),
        "event stream bytes differ after kill-and-resume"
    );
    let _ = std::fs::remove_dir_all(&base);
}
