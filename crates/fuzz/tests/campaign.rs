//! End-to-end tests of the fuzzing campaign: determinism, the planted
//! branch-polarity bug being caught and shrunk small, and corpus
//! persistence.

use fpgafuzz::campaign::{run_campaign, CampaignOptions};
use fpgafuzz::exec::Injection;
use fpgafuzz::shrink::line_count;

fn quick(seed: u64, cases: u64) -> CampaignOptions {
    CampaignOptions {
        seed,
        cases,
        // A small watchdog: the planted bug can loop the FSM forever, and
        // the timeout is then the divergence signal.
        max_ticks: 50_000,
        ..CampaignOptions::default()
    }
}

#[test]
fn fresh_campaigns_are_bit_identical() {
    let opts = quick(7, 40);
    let a = run_campaign(&opts).unwrap();
    let b = run_campaign(&opts).unwrap();
    assert_eq!(a.log, b.log);
    assert_eq!(a.divergences, 0, "clean compiler must not diverge:\n{}", a.log);
    assert_eq!(a.generator_errors, 0, "generator must emit valid cases:\n{}", a.log);
    assert!(a.coverage.len() > 10, "a run this size covers many keys");
}

#[test]
fn injected_branch_polarity_is_caught_and_shrunk() {
    let opts = CampaignOptions {
        injection: Some(Injection::BranchPolarity),
        ..quick(42, 20)
    };
    let report = run_campaign(&opts).unwrap();
    assert!(
        report.divergences > 0,
        "the planted bug must be detected:\n{}",
        report.log
    );
    let smallest = report
        .shrunk
        .iter()
        .map(line_count)
        .min()
        .expect("at least one shrunk case");
    assert!(
        smallest <= 10,
        "expected a shrunk case of <= 10 source lines, got {smallest}:\n{}",
        report.log
    );
}

#[test]
fn injected_signal_fault_is_never_a_clean_pass() {
    use fpgafuzz::exec::{run_case, signal_fault_for, CaseOutcome, ExecOptions};
    use fpgafuzz::gen::{generate_case, Budget};

    let budget = Budget {
        width: 16,
        ..Budget::default()
    };
    let exec = ExecOptions {
        max_ticks: 50_000,
        injection: Some(Injection::SignalFault),
        ..ExecOptions::default()
    };
    let mut faulted = 0;
    for index in 0..8 {
        let case = generate_case(11, index, &budget).expect("generator emits a valid case");
        match run_case(&case, 16, &exec) {
            // A fault-injected run must never come back as Pass; the
            // only clean Pass allowed is a design with nothing to fault.
            CaseOutcome::Pass { .. } => {
                let compile = nenya::CompileOptions {
                    width: 16,
                    ..nenya::CompileOptions::default()
                };
                let name = format!("fuzz_11_{index}");
                let design = nenya::compile_program(&name, &case.program, &compile).unwrap();
                assert!(
                    signal_fault_for(&design, index).is_none(),
                    "case {index} passed despite a faultable memory"
                );
            }
            CaseOutcome::Divergence(_) => faulted += 1,
            CaseOutcome::GeneratorError(e) => panic!("case {index}: generator error: {e}"),
        }
    }
    assert!(
        faulted > 0,
        "at least one case in the batch must carry a detected fault"
    );
}

#[test]
fn corpus_accumulates_coverage_across_runs() {
    let dir = std::env::temp_dir().join("fpgafuzz_campaign_corpus");
    let _ = std::fs::remove_dir_all(&dir);
    let opts = CampaignOptions {
        corpus_dir: Some(dir.clone()),
        ..quick(9, 25)
    };
    let first = run_campaign(&opts).unwrap();
    assert!(first.new_keys > 0);
    assert!(dir.join("coverage.txt").is_file());
    assert!(
        std::fs::read_dir(&dir).unwrap().next().is_some(),
        "coverage-increasing cases are saved"
    );
    // A second run starts from the saved map. Its generation is biased
    // differently (the missing-operator set shrank), so it may still add
    // the odd key, but coverage only grows and mostly saturates.
    let second = run_campaign(&opts).unwrap();
    assert!(second.new_keys <= first.new_keys / 2);
    assert!(second.coverage.len() >= first.coverage.len());
    assert_eq!(
        std::fs::read_to_string(dir.join("coverage.txt")).unwrap(),
        second.coverage.render()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
