//! Coverage feedback: what a case exercised, as a set of string keys.
//!
//! Two sources feed the map: structural features of the generated
//! program (`prog:*` keys) and execution coverage extracted from the
//! flow's telemetry layer — FSM state/transition counts bucketed into
//! powers of two (`fsm:*`) and activated functional-unit kinds (`op:*`).
//! A case that contributes any key the corpus has not seen is worth
//! keeping, and operator kinds still missing from the map bias future
//! generation toward the hardware they would instantiate.

use fpgatest::flow::TestReport;
use nenya::lang::{BinaryOp, Block, Expr, Program, Stmt, Type};
use std::collections::BTreeSet;

/// An ordered set of coverage keys (ordered so reports and corpus files
/// are deterministic).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverageMap {
    keys: BTreeSet<String>,
}

impl CoverageMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a key; true when it was new.
    pub fn insert(&mut self, key: impl Into<String>) -> bool {
        self.keys.insert(key.into())
    }

    /// Merges another map in, returning how many keys were new.
    pub fn merge(&mut self, other: CoverageMap) -> usize {
        let before = self.keys.len();
        self.keys.extend(other.keys);
        self.keys.len() - before
    }

    /// Whether the key is present.
    pub fn contains(&self, key: &str) -> bool {
        self.keys.contains(key)
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The keys in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.keys.iter().map(String::as_str)
    }

    /// Parses the one-key-per-line format produced by [`render`](Self::render).
    pub fn parse(text: &str) -> CoverageMap {
        let keys = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .map(String::from)
            .collect();
        CoverageMap { keys }
    }

    /// One key per line, sorted — the corpus's on-disk format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for key in &self.keys {
            out.push_str(key);
            out.push('\n');
        }
        out
    }
}

/// The functional-unit kind ↔ AST operator correspondence used by both
/// the `op:*` coverage keys and the generation bias.
const KIND_OPS: &[(&str, BinaryOp)] = &[
    ("add", BinaryOp::Add),
    ("sub", BinaryOp::Sub),
    ("mul", BinaryOp::Mul),
    ("div", BinaryOp::Div),
    ("rem", BinaryOp::Rem),
    ("and", BinaryOp::BitAnd),
    ("or", BinaryOp::BitOr),
    ("xor", BinaryOp::BitXor),
    ("shl", BinaryOp::Shl),
    ("shr", BinaryOp::Shr),
    ("ushr", BinaryOp::Ushr),
    ("eq", BinaryOp::Eq),
    ("ne", BinaryOp::Ne),
    ("lt", BinaryOp::Lt),
    ("le", BinaryOp::Le),
    ("gt", BinaryOp::Gt),
    ("ge", BinaryOp::Ge),
];

/// Operator kinds the map has not seen activated, mapped back to the
/// AST operators whose lowering instantiates them — the generation bias.
pub fn missing_ops(coverage: &CoverageMap) -> Vec<BinaryOp> {
    KIND_OPS
        .iter()
        .filter(|(kind, _)| !coverage.contains(&format!("op:{kind}")))
        .map(|(_, op)| *op)
        .collect()
}

/// The functional-unit kind name for an operator (`add`, `shl`, …), or
/// `None` for operators no coverage key tracks. Checkpoints persist a
/// frozen bias as these names.
pub fn op_kind_name(op: BinaryOp) -> Option<&'static str> {
    KIND_OPS
        .iter()
        .find(|(_, candidate)| *candidate == op)
        .map(|(kind, _)| *kind)
}

/// Inverse of [`op_kind_name`] (checkpoint resume).
pub fn op_from_kind_name(kind: &str) -> Option<BinaryOp> {
    KIND_OPS
        .iter()
        .find(|(candidate, _)| *candidate == kind)
        .map(|(_, op)| *op)
}

/// Structural coverage of the program itself.
pub fn program_coverage(program: &Program) -> CoverageMap {
    let mut map = CoverageMap::new();
    map.insert(format!(
        "prog:mems:{}",
        bucket(program.mems.len() as u64)
    ));
    walk_block(&program.body, 0, &mut map);
    map
}

fn walk_block(block: &Block, depth: usize, map: &mut CoverageMap) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Decl { ty, init, .. } => {
                if *ty == Type::Bool {
                    map.insert("prog:bool-var");
                }
                if let Some(expr) = init {
                    walk_expr(expr, map);
                }
            }
            Stmt::Assign { value, .. } => walk_expr(value, map),
            Stmt::MemStore { addr, value, .. } => {
                map.insert("prog:store");
                walk_expr(addr, map);
                walk_expr(value, map);
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
            } => {
                map.insert("prog:if");
                if !else_block.stmts.is_empty() {
                    map.insert("prog:else");
                }
                map.insert(format!("prog:nest:{depth}"));
                walk_expr(cond, map);
                walk_block(then_block, depth + 1, map);
                walk_block(else_block, depth + 1, map);
            }
            Stmt::While { cond, body } => {
                map.insert("prog:while");
                map.insert(format!("prog:nest:{depth}"));
                walk_expr(cond, map);
                walk_block(body, depth + 1, map);
            }
            Stmt::For { cond, body, .. } => {
                map.insert("prog:for");
                map.insert(format!("prog:nest:{depth}"));
                walk_expr(cond, map);
                walk_block(body, depth + 1, map);
            }
        }
    }
}

fn walk_expr(expr: &Expr, map: &mut CoverageMap) {
    match expr {
        Expr::Int(_) | Expr::Bool(_) | Expr::Var(_) => {}
        Expr::MemLoad { addr, .. } => {
            map.insert("prog:load");
            walk_expr(addr, map);
        }
        Expr::Unary { expr, .. } => walk_expr(expr, map),
        Expr::Binary { op, lhs, rhs } => {
            map.insert(format!("prog:binop:{}", op.symbol()));
            walk_expr(lhs, map);
            walk_expr(rhs, map);
        }
    }
}

/// Execution coverage extracted from a flow report's per-configuration
/// coverage blocks.
pub fn case_coverage(report: &TestReport) -> CoverageMap {
    let mut map = CoverageMap::new();
    for run in &report.runs {
        let Some(cov) = &run.coverage else { continue };
        for (kind, count) in &cov.operator_activations {
            if *count > 0 {
                map.insert(format!("op:{kind}"));
            }
        }
        map.insert(format!("fsm:states:{}", bucket(cov.visited_states.len() as u64)));
        map.insert(format!("fsm:trans:{}", bucket(cov.transitions_taken as u64)));
    }
    map
}

/// Power-of-two bucket: 0, 1, 2, 4, 8, … — coarse enough that coverage
/// keys saturate instead of growing without bound.
fn bucket(n: u64) -> u64 {
    match n {
        0 => 0,
        _ => 1u64 << (63 - n.leading_zeros()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(bucket(0), 0);
        assert_eq!(bucket(1), 1);
        assert_eq!(bucket(2), 2);
        assert_eq!(bucket(3), 2);
        assert_eq!(bucket(4), 4);
        assert_eq!(bucket(7), 4);
        assert_eq!(bucket(8), 8);
    }

    #[test]
    fn merge_counts_new_keys() {
        let mut a = CoverageMap::new();
        a.insert("op:add");
        let mut b = CoverageMap::new();
        b.insert("op:add");
        b.insert("op:mul");
        assert_eq!(a.merge(b), 1);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn render_parse_round_trips() {
        let mut map = CoverageMap::new();
        map.insert("op:add");
        map.insert("prog:if");
        assert_eq!(CoverageMap::parse(&map.render()), map);
    }

    #[test]
    fn missing_ops_shrinks_as_coverage_grows() {
        let mut map = CoverageMap::new();
        let all = missing_ops(&map).len();
        map.insert("op:add");
        map.insert("op:lt");
        assert_eq!(missing_ops(&map).len(), all - 2);
        assert!(!missing_ops(&map).contains(&BinaryOp::Add));
    }

    #[test]
    fn program_coverage_sees_structure() {
        let program = nenya::lang::parse(
            "mem m0[4]; void main() { int v0 = 1; if ((v0 < 2)) { m0[0] = m0[1]; } }",
        )
        .unwrap();
        let map = program_coverage(&program);
        assert!(map.contains("prog:if"));
        assert!(map.contains("prog:load"));
        assert!(map.contains("prog:store"));
        assert!(map.contains("prog:binop:<"));
        assert!(!map.contains("prog:while"));
    }
}
