//! The differential executor: golden interpreter vs full flow.
//!
//! Each case runs through [`fpgatest::flow::run_design`], which executes
//! the golden TAC interpreter *and* elaborates + simulates the design,
//! then compares final memory images word for word. The executor drives
//! that oracle across compile variants — both schedule policies and 1 vs
//! 2 temporal partitions — and classifies the outcome:
//!
//! * any memory mismatch, simulation failure, elaboration error, or
//!   watchdog timeout is a **divergence** (a compiler bug, or our
//!   injected one);
//! * a compile or golden-reference error is a **generator error** — the
//!   case violated the valid-by-construction contract, so the generator
//!   (not the compiler) is at fault.

use crate::coverage::{case_coverage, CoverageMap};
use crate::gen::Case;
use fpgatest::faults::FaultSpec;
use fpgatest::flow::{run_design, Engine, FlowError, FlowOptions, TestReport};
use fpgatest::stimulus::Stimulus;
use nenya::schedule::SchedulePolicy;
use nenya::tac::MemRole;
use nenya::{compile_program, CompileOptions, Design};

/// A deliberately planted compiler bug, for validating that the fuzzer
/// catches what it is supposed to catch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Injection {
    /// Flip the polarity of the first conditional FSM transition — the
    /// classic "branch taken the wrong way" lowering bug.
    BranchPolarity,
    /// Inject one hardware fault per case through the flow's fault
    /// machinery: stuck-at-0 on the write-enable of a memory the design
    /// writes, chosen deterministically from the case index. Exercises
    /// the fault path under fuzz-generated designs; a faulted run must
    /// never be classified as a clean pass.
    SignalFault,
}

impl Injection {
    /// Applies the bug to a compiled design. Returns `false` when the
    /// design has nothing to corrupt (e.g. no conditional transitions),
    /// in which case the case runs unmodified.
    pub fn apply(self, design: &mut Design) -> bool {
        match self {
            Injection::BranchPolarity => {
                for config in &mut design.configs {
                    if let Some(t) = config
                        .fsm
                        .states
                        .iter_mut()
                        .flat_map(|s| s.transitions.iter_mut())
                        .find(|t| t.cond.is_some())
                    {
                        let (signal, when) = t.cond.clone().expect("conditional");
                        t.cond = Some((signal, !when));
                        return true;
                    }
                }
                false
            }
            // SignalFault does not mutate the design; the fault rides in
            // through FlowOptions instead (see `signal_fault_for`).
            Injection::SignalFault => false,
        }
    }
}

/// Picks the fault a [`Injection::SignalFault`] run injects: stuck-at-0
/// on the write-enable of one memory the program writes, rotated by the
/// case index so a campaign spreads faults across the design's
/// memories. `None` when the design writes no memory — the case then
/// runs unfaulted, like a `BranchPolarity` design with no conditionals.
pub fn signal_fault_for(design: &Design, index: u64) -> Option<FaultSpec> {
    let written: Vec<&str> = design
        .mems
        .iter()
        .filter(|m| matches!(m.role, MemRole::Output | MemRole::Intermediate))
        .map(|m| m.name.as_str())
        .collect();
    if written.is_empty() {
        return None;
    }
    let mem = written[(index % written.len() as u64) as usize];
    Some(FaultSpec::StuckAt {
        signal: format!("{mem}_we"),
        bit: 0,
        value: false,
    })
}

/// Executor knobs. The watchdog is far below the flow default because an
/// injected control bug can loop the FSM forever — the timeout then *is*
/// the divergence signal and should fire in milliseconds, not minutes.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Kernel-tick watchdog per configuration.
    pub max_ticks: u64,
    /// Golden-reference step budget.
    pub golden_step_limit: u64,
    /// The planted bug, if any.
    pub injection: Option<Injection>,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            max_ticks: 5_000_000,
            golden_step_limit: 1_000_000,
            injection: None,
        }
    }
}

/// One compile variant of the differential matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Variant {
    /// Schedule policy under test.
    pub policy: SchedulePolicy,
    /// Temporal partition count.
    pub partitions: usize,
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/p{}", self.policy, self.partitions)
    }
}

/// The variants a given case index runs: always the baseline
/// (list schedule, single partition), plus one alternate cycled by index
/// so a whole run covers the full policy × partition matrix.
pub fn variants_for(index: u64) -> Vec<Variant> {
    let baseline = Variant {
        policy: SchedulePolicy::List,
        partitions: 1,
    };
    let alternate = match index % 3 {
        0 => Variant {
            policy: SchedulePolicy::OneOpPerState,
            partitions: 1,
        },
        1 => Variant {
            policy: SchedulePolicy::List,
            partitions: 2,
        },
        _ => Variant {
            policy: SchedulePolicy::OneOpPerState,
            partitions: 2,
        },
    };
    vec![baseline, alternate]
}

/// How a divergence manifested. The shrinker preserves this class, so a
/// memory mismatch cannot shrink into an unrelated infinite loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivKind {
    /// Simulation finished but memory contents disagree with golden.
    Mismatch,
    /// Simulation aborted (X condition, bad store, assertion).
    SimFailure,
    /// The watchdog fired — the hardware never reached `done`.
    Timeout,
    /// The flow itself broke (elaboration, kernel, RTG).
    FlowBroken,
    /// The event kernel passed but a compiled engine (cycle or level)
    /// produced different final memories, failed, or broke — a
    /// simulator-equivalence bug rather than a compiler bug.
    EngineMismatch,
    /// A run with an injected hardware fault still passed the
    /// differential oracle — the fault escaped detection. Reported as a
    /// divergence so a faulted case can never read as a clean pass.
    FaultEscape,
}

/// A detected divergence between the golden reference and the simulated
/// hardware.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The variant that diverged.
    pub variant: Variant,
    /// How it manifested.
    pub kind: DivKind,
    /// What went wrong (mismatch summary, failure message, or timeout).
    pub detail: String,
}

/// Outcome of one case across its variants.
#[derive(Debug)]
pub enum CaseOutcome {
    /// Golden and simulation agreed on every variant.
    Pass {
        /// Coverage observed across all variants.
        coverage: CoverageMap,
    },
    /// At least one variant disagreed — a compiler bug (or the injected
    /// one).
    Divergence(Divergence),
    /// The case itself is invalid (compile/golden error): a generator
    /// bug, not a compiler bug.
    GeneratorError(String),
}

/// Runs one case through every variant, with the given width.
pub fn run_case(case: &Case, width: u32, opts: &ExecOptions) -> CaseOutcome {
    let mut coverage = CoverageMap::new();
    coverage.merge(crate::coverage::program_coverage(&case.program));
    let stimuli: Vec<(String, Stimulus)> = case
        .stimuli
        .iter()
        .map(|(mem, values)| (mem.clone(), Stimulus::from_values(values.iter().copied())))
        .collect();

    for variant in variants_for(case.index) {
        // A 2-partition split needs at least 2 top-level statements; the
        // generator guarantees that, but shrinking can reduce below it —
        // the variant is then skipped rather than misreported.
        if variant.partitions > case.program.body.stmts.len() {
            continue;
        }
        let compile = CompileOptions {
            width,
            policy: variant.policy,
            partitions: variant.partitions,
            optimize: false,
        };
        let name = format!("fuzz_{}_{}", case.seed, case.index);
        let mut design = match compile_program(&name, &case.program, &compile) {
            Ok(design) => design,
            Err(e) => return CaseOutcome::GeneratorError(format!("{variant}: compile: {e}")),
        };
        let mut fault = None;
        match opts.injection {
            Some(Injection::SignalFault) => {
                fault = signal_fault_for(&design, case.index);
            }
            Some(injection) => {
                injection.apply(&mut design);
            }
            None => {}
        }
        let flow_options = FlowOptions {
            compile,
            max_ticks: opts.max_ticks,
            golden_step_limit: opts.golden_step_limit,
            keep_artifacts: false,
            coverage: true,
            faults: fault.iter().cloned().collect(),
            ..FlowOptions::default()
        };
        match run_design(&design, &stimuli, &flow_options) {
            Ok(report) if report.passed => {
                // A faulted run that sails through the oracle is a fault
                // escape, never a clean pass.
                if let Some(fault) = &fault {
                    return CaseOutcome::Divergence(Divergence {
                        variant,
                        kind: DivKind::FaultEscape,
                        detail: format!("injected fault '{fault}' went undetected"),
                    });
                }
                coverage.merge(case_coverage(&report));
                coverage.insert(format!("cfg:{variant}"));
                if let Some(divergence) = check_engines(&design, &stimuli, &flow_options, &report) {
                    return CaseOutcome::Divergence(Divergence {
                        variant,
                        ..divergence
                    });
                }
            }
            Ok(report) => {
                let (kind, detail) = match &report.failure {
                    Some(failure) => (DivKind::SimFailure, failure.clone()),
                    None => (
                        DivKind::Mismatch,
                        format!(
                            "{} memory mismatches (first: {})",
                            report.mismatches.len(),
                            report
                                .mismatches
                                .first()
                                .map(|m| m.to_string())
                                .unwrap_or_default()
                        ),
                    ),
                };
                return CaseOutcome::Divergence(Divergence {
                    variant,
                    kind,
                    detail,
                });
            }
            // The golden side already proved the program meaningful, so a
            // flow that cannot even produce a verdict indicts the
            // compiler/simulator path: count it as a divergence.
            Err(
                e @ (FlowError::Elaborate(_)
                | FlowError::Kernel(_)
                | FlowError::Timeout { .. }
                | FlowError::Rtg(_)
                | FlowError::Probe { .. }),
            ) => {
                let kind = match &e {
                    FlowError::Timeout { .. } => DivKind::Timeout,
                    _ => DivKind::FlowBroken,
                };
                return CaseOutcome::Divergence(Divergence {
                    variant,
                    kind,
                    detail: e.to_string(),
                });
            }
            Err(e) => return CaseOutcome::GeneratorError(format!("{variant}: {e}")),
        }
    }
    CaseOutcome::Pass { coverage }
}

/// The cross-engine leg of the differential matrix: once the event
/// kernel passes a variant, the same design re-runs on the compiled
/// cycle, level, and batch engines and the final memories must be
/// word-identical to the event kernel's. Coverage stays off on these
/// runs — the compiled engines reject observability features, and the
/// pass-side coverage keys must not change just because extra engines
/// ran. Any disagreement, failure, or flow error comes back as an
/// [`DivKind::EngineMismatch`] divergence (the caller fills in the
/// variant).
fn check_engines(
    design: &Design,
    stimuli: &[(String, Stimulus)],
    event_options: &FlowOptions,
    event_report: &TestReport,
) -> Option<Divergence> {
    for engine in [Engine::Cycle, Engine::Level, Engine::Batch] {
        let options = FlowOptions {
            engine,
            coverage: false,
            ..event_options.clone()
        };
        let detail = match run_design(design, stimuli, &options) {
            Ok(report) if report.passed => {
                if report.sim_mems == event_report.sim_mems {
                    continue;
                }
                let first = report
                    .sim_mems
                    .iter()
                    .find_map(|(mem, image)| {
                        (event_report.sim_mems.get(mem) != Some(image)).then(|| mem.clone())
                    })
                    .unwrap_or_else(|| "<memory set>".into());
                format!("engine '{engine}' disagrees with the event kernel on memory '{first}'")
            }
            Ok(report) => match &report.failure {
                Some(failure) => format!("engine '{engine}': {failure}"),
                None => format!(
                    "engine '{engine}': {} memory mismatches vs golden",
                    report.mismatches.len()
                ),
            },
            Err(e) => format!("engine '{engine}': {e}"),
        };
        return Some(Divergence {
            variant: Variant {
                policy: SchedulePolicy::List,
                partitions: 1,
            },
            kind: DivKind::EngineMismatch,
            detail,
        });
    }
    None
}

/// Whether the case still diverges — the shrinker's predicate.
pub fn diverges(case: &Case, width: u32, opts: &ExecOptions) -> bool {
    matches!(run_case(case, width, opts), CaseOutcome::Divergence(_))
}
