//! The on-disk corpus: coverage-increasing cases and the accumulated
//! coverage map.
//!
//! Layout (everything plain text, deterministic):
//!
//! ```text
//! corpus/
//!   coverage.txt              # one coverage key per line, sorted
//!   seed42-case17.src         # a case that added at least one new key
//!   seed42-case17.meta        # the keys that case added, sorted
//! ```
//!
//! Re-running with the same seed over an existing corpus is idempotent:
//! file names derive from `(seed, index)` and contents from the case, so
//! nothing changes on disk.

use crate::coverage::CoverageMap;
use crate::gen::Case;
use std::io;
use std::path::{Path, PathBuf};

/// A corpus directory.
#[derive(Debug, Clone)]
pub struct Corpus {
    dir: PathBuf,
}

impl Corpus {
    /// Opens (creating if needed) a corpus directory.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the directory cannot be
    /// created.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Corpus { dir })
    }

    /// The corpus directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Loads the accumulated coverage map (empty if none saved yet).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error for an unreadable file.
    pub fn load_coverage(&self) -> io::Result<CoverageMap> {
        let path = self.dir.join("coverage.txt");
        match std::fs::read_to_string(&path) {
            Ok(text) => Ok(CoverageMap::parse(&text)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(CoverageMap::new()),
            Err(e) => Err(e),
        }
    }

    /// Writes the accumulated coverage map.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error on write failure.
    pub fn save_coverage(&self, coverage: &CoverageMap) -> io::Result<()> {
        std::fs::write(self.dir.join("coverage.txt"), coverage.render())
    }

    /// Saves a coverage-increasing case: its source plus the keys it
    /// added. Returns the source path.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error on write failure.
    pub fn save_case(&self, case: &Case, new_keys: &[String]) -> io::Result<PathBuf> {
        let stem = format!("seed{}-case{}", case.seed, case.index);
        let src = self.dir.join(format!("{stem}.src"));
        std::fs::write(&src, &case.source)?;
        let mut meta = String::new();
        for key in new_keys {
            meta.push_str(key);
            meta.push('\n');
        }
        std::fs::write(self.dir.join(format!("{stem}.meta")), meta)?;
        Ok(src)
    }

    /// The saved case sources, sorted by file name.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the directory is unreadable.
    pub fn cases(&self) -> io::Result<Vec<PathBuf>> {
        let mut paths: Vec<PathBuf> = std::fs::read_dir(&self.dir)?
            .filter_map(|entry| entry.ok())
            .map(|entry| entry.path())
            .filter(|p| p.extension().is_some_and(|e| e == "src"))
            .collect();
        paths.sort();
        Ok(paths)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_case, Budget};

    fn temp_corpus(tag: &str) -> Corpus {
        let dir = std::env::temp_dir().join(format!("fpgafuzz_corpus_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        Corpus::open(dir).unwrap()
    }

    #[test]
    fn coverage_round_trips_through_disk() {
        let corpus = temp_corpus("cov");
        assert!(corpus.load_coverage().unwrap().is_empty());
        let mut map = CoverageMap::new();
        map.insert("op:add");
        map.insert("prog:if");
        corpus.save_coverage(&map).unwrap();
        assert_eq!(corpus.load_coverage().unwrap(), map);
    }

    #[test]
    fn saved_cases_are_listed_and_deterministic() {
        let corpus = temp_corpus("cases");
        let case = generate_case(42, 3, &Budget::default()).unwrap();
        let path = corpus
            .save_case(&case, &["op:add".to_string()])
            .unwrap();
        assert!(path.file_name().unwrap().to_str().unwrap().starts_with("seed42-case3"));
        // Saving again changes nothing (idempotent by construction).
        let again = corpus.save_case(&case, &["op:add".to_string()]).unwrap();
        assert_eq!(path, again);
        assert_eq!(corpus.cases().unwrap(), vec![path.clone()]);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), case.source);
    }
}
