//! Deterministic pseudo-random numbers for the fuzzer.
//!
//! SplitMix64: tiny, fast, and fully reproducible from a `u64` seed. The
//! fuzzer must never consult wall-clock or OS randomness in its hot loop
//! (the repo's determinism rule), so this is the only entropy source.

/// A SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Derives an independent stream for `(self.seed, lane)` — used to
    /// give every case index its own reproducible stream.
    pub fn derive(&self, lane: u64) -> Rng {
        let mut rng = Rng {
            state: self.state ^ lane.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        };
        // Burn a few outputs so nearby lanes decorrelate immediately.
        rng.next_u64();
        rng.next_u64();
        rng
    }

    /// The next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n` must be nonzero).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform value in `lo..=hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + self.below(span) as i64
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derived_lanes_differ() {
        let root = Rng::new(7);
        let mut a = root.derive(0);
        let mut b = root.derive(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_and_range_stay_in_bounds() {
        let mut rng = Rng::new(1);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
            let v = rng.range_i64(-3, 5);
            assert!((-3..=5).contains(&v));
        }
    }
}
