//! The `fpgafuzz` CLI.
//!
//! ```text
//! fpgafuzz run --seed 42 --cases 500 [--width 16] [--corpus DIR]
//!              [--inject branch-polarity|signal-fault] [--max-shrink-evals 500]
//! fpgafuzz gen --seed 42 --index 7 [--width 16]
//! fpgafuzz repro --seed 42 --index 7 [--width 16] [--inject ...]
//! ```
//!
//! Exit codes: 0 = clean, 1 = at least one divergence, 2 = usage or
//! generator error. Output is deterministic for a fresh run: same seed,
//! same cases, bit-identical bytes.

use fpgafuzz::campaign::{
    run_campaign, run_campaign_sharded, CampaignOptions, ShardedCampaignOptions,
};
use fpgafuzz::distill::{distill, DistillOptions};
use fpgafuzz::exec::{run_case, CaseOutcome, ExecOptions, Injection};
use fpgafuzz::gen::{generate_case, Budget};
use fpgafuzz::shrink::{line_count, shrink};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage:
  fpgafuzz run --seed N --cases K [--width W] [--corpus DIR] \\
               [--inject branch-polarity|signal-fault] [--max-shrink-evals E] [--max-ticks T] \\
               [--events-out FILE|-] [--shards N] [--checkpoint FILE] \\
               [--checkpoint-every K] [--resume FILE] [--ledger FILE]
  fpgafuzz distill --corpus DIR [--width W] [--out DIR] [--max-ticks T]
  fpgafuzz gen --seed N --index I [--width W]
  fpgafuzz repro --seed N --index I [--width W] [--inject branch-polarity|signal-fault] [--max-ticks T]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("fpgafuzz: {e}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn dispatch(args: &[String]) -> Result<ExitCode, String> {
    let (command, rest) = args.split_first().ok_or("missing command")?;
    let flags = Flags::parse(rest)?;
    match command.as_str() {
        "run" => cmd_run(&flags),
        "distill" => cmd_distill(&flags),
        "gen" => cmd_gen(&flags),
        "repro" => cmd_repro(&flags),
        other => Err(format!("unknown command '{other}'")),
    }
}

fn cmd_run(flags: &Flags) -> Result<ExitCode, String> {
    let events = match flags.get("events-out") {
        None => fpgatest::events::EventSink::disabled(),
        Some(path) => fpgatest::events::EventSink::to_path(path)
            .map_err(|e| format!("cannot open {path}: {e}"))?,
    };
    let opts = CampaignOptions {
        seed: flags.require_u64("seed")?,
        cases: flags.require_u64("cases")?,
        width: flags.u64_or("width", 16)? as u32,
        corpus_dir: flags.get("corpus").map(PathBuf::from),
        injection: flags.injection()?,
        max_shrink_evals: flags.u64_or("max-shrink-evals", 500)? as usize,
        max_ticks: flags.u64_or("max-ticks", 5_000_000)?,
        events,
    };
    let sharded = ["shards", "checkpoint", "checkpoint-every", "resume"]
        .iter()
        .any(|flag| flags.get(flag).is_some());
    let started = std::time::Instant::now();
    let (report, interrupted, shards) = if sharded {
        let shard = ShardedCampaignOptions {
            shards: flags.u64_or("shards", 1)? as usize,
            checkpoint: flags.get("checkpoint").map(PathBuf::from),
            checkpoint_every: flags.u64_or("checkpoint-every", 0)?,
            resume: flags.get("resume").map(PathBuf::from),
            stop: None,
            sigint: true,
        };
        fpgatest::campaign::install_sigint();
        let outcome = run_campaign_sharded(&opts, &shard).map_err(|e| format!("campaign: {e}"))?;
        if let Some(note) = &outcome.salvage {
            eprintln!("fpgafuzz: {note}");
        }
        (outcome.report, outcome.interrupted, shard.shards.max(1))
    } else {
        (
            run_campaign(&opts).map_err(|e| format!("corpus I/O: {e}"))?,
            false,
            1,
        )
    };
    print!("{}", report.log);
    if interrupted {
        eprintln!("fpgafuzz: interrupted; checkpoint holds the completed prefix");
        return Ok(ExitCode::from(130));
    }
    if let Some(path) = flags.get("ledger") {
        let wall = started.elapsed().as_secs_f64();
        let cases_per_sec = if wall > 0.0 {
            opts.cases as f64 / wall
        } else {
            0.0
        };
        let entry = fpgatest::ledger::LedgerEntry {
            engine: "fuzz".to_string(),
            wall_seconds: wall,
            passed: opts.cases - report.divergences as u64,
            failed: report.divergences as u64,
            counters: vec![
                ("shards".to_string(), shards as f64),
                ("cases_per_sec".to_string(), cases_per_sec),
                ("new_keys".to_string(), report.new_keys as f64),
            ],
            ..fpgatest::ledger::LedgerEntry::new("fuzz", &format!("seed{}", opts.seed))
        };
        fpgatest::ledger::append(std::path::Path::new(path), &entry)
            .map_err(|e| format!("cannot append to {path}: {e}"))?;
        eprintln!("ledger entry appended to {path}");
    }
    if report.divergences > 0 {
        Ok(ExitCode::from(1))
    } else if report.generator_errors > 0 {
        Ok(ExitCode::from(2))
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

fn cmd_distill(flags: &Flags) -> Result<ExitCode, String> {
    let corpus = flags
        .get("corpus")
        .ok_or("--corpus is required for distill")?;
    let report = distill(&DistillOptions {
        corpus_dir: PathBuf::from(corpus),
        width: flags.u64_or("width", 16)? as u32,
        out_dir: flags.get("out").map(PathBuf::from),
        max_ticks: flags.u64_or("max-ticks", 5_000_000)?,
    })
    .map_err(|e| format!("distill: {e}"))?;
    print!("{}", report.log);
    Ok(ExitCode::SUCCESS)
}

fn cmd_gen(flags: &Flags) -> Result<ExitCode, String> {
    let seed = flags.require_u64("seed")?;
    let index = flags.require_u64("index")?;
    let budget = Budget {
        width: flags.u64_or("width", 16)? as u32,
        ..Budget::default()
    };
    let case = generate_case(seed, index, &budget)?;
    print!("{}", case.source);
    for (mem, values) in &case.stimuli {
        let rendered: Vec<String> = values.iter().map(|v| v.to_string()).collect();
        println!("// stimulus {mem}: {}", rendered.join(" "));
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_repro(flags: &Flags) -> Result<ExitCode, String> {
    let seed = flags.require_u64("seed")?;
    let index = flags.require_u64("index")?;
    let width = flags.u64_or("width", 16)? as u32;
    let budget = Budget {
        width,
        ..Budget::default()
    };
    let exec = ExecOptions {
        injection: flags.injection()?,
        max_ticks: flags.u64_or("max-ticks", 5_000_000)?,
        ..ExecOptions::default()
    };
    let case = generate_case(seed, index, &budget)?;
    match run_case(&case, width, &exec) {
        CaseOutcome::Pass { coverage } => {
            println!("case {index}: PASS ({} coverage keys)", coverage.len());
            Ok(ExitCode::SUCCESS)
        }
        CaseOutcome::Divergence(d) => {
            println!(
                "case {index}: DIVERGENCE [{}] {:?}: {}",
                d.variant, d.kind, d.detail
            );
            let report = shrink(&case, width, &exec, 500);
            println!(
                "shrunk {} -> {} lines in {} evals:",
                line_count(&case),
                line_count(&report.case),
                report.evals
            );
            print!("{}", report.case.source);
            Ok(ExitCode::from(1))
        }
        CaseOutcome::GeneratorError(e) => {
            println!("case {index}: generator error: {e}");
            Ok(ExitCode::from(2))
        }
    }
}

/// Minimal `--flag value` parser (the container has no argument-parsing
/// crate, and the fuzzer's surface is small enough not to want one).
struct Flags {
    pairs: Vec<(String, String)>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, String> {
        let mut pairs = Vec::new();
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            let name = arg
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got '{arg}'"))?;
            let value = iter
                .next()
                .ok_or_else(|| format!("--{name} needs a value"))?;
            pairs.push((name.to_string(), value.clone()));
        }
        Ok(Flags { pairs })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn require_u64(&self, name: &str) -> Result<u64, String> {
        self.get(name)
            .ok_or_else(|| format!("--{name} is required"))?
            .parse()
            .map_err(|_| format!("--{name} must be an integer"))
    }

    fn u64_or(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.get(name) {
            Some(value) => value
                .parse()
                .map_err(|_| format!("--{name} must be an integer")),
            None => Ok(default),
        }
    }

    fn injection(&self) -> Result<Option<Injection>, String> {
        match self.get("inject") {
            None => Ok(None),
            Some("branch-polarity") => Ok(Some(Injection::BranchPolarity)),
            Some("signal-fault") => Ok(Some(Injection::SignalFault)),
            Some(other) => Err(format!(
                "unknown injection '{other}' (expected branch-polarity or signal-fault)"
            )),
        }
    }
}
