//! Deterministic greedy shrinking of failing cases.
//!
//! The shrinker repeatedly tries small structural edits — remove a
//! statement, splice a control body into its parent, drop an unused
//! memory, halve a memory, replace a binary expression with one of its
//! operands, zero or halve a constant — and keeps an edit only when the
//! edited case *still diverges the same way* (same variant, same
//! [`DivKind`](crate::exec::DivKind)). Preserving the divergence class
//! matters: without it, a memory-mismatch bug could "shrink" into an
//! unrelated infinite loop that merely times out.
//!
//! Every accepted edit strictly reduces a lexicographic size metric
//! (statements + memories, expression nodes, constant magnitude, source
//! length), so shrinking always terminates; `max_evals` additionally
//! bounds the number of executor invocations. Candidate programs are
//! rendered and re-parsed like generated ones, and stimuli are re-derived
//! per memory name, so surviving memories keep their original contents.

use crate::exec::{run_case, CaseOutcome, Divergence, ExecOptions};
use crate::gen::{render, stimuli_for, Case};
use nenya::lang::{Block, Expr, Program, Stmt};

/// The outcome of a shrink run.
#[derive(Debug)]
pub struct ShrinkReport {
    /// The smallest case found that still diverges like the original.
    pub case: Case,
    /// How many executor invocations were spent (including the initial
    /// classification run).
    pub evals: usize,
    /// How many greedy rounds ran before reaching a fixpoint.
    pub rounds: usize,
}

/// Shrinks a diverging case. A case that does not diverge is returned
/// unchanged.
pub fn shrink(case: &Case, width: u32, opts: &ExecOptions, max_evals: usize) -> ShrinkReport {
    let original = match run_case(case, width, opts) {
        CaseOutcome::Divergence(d) => d,
        _ => {
            return ShrinkReport {
                case: case.clone(),
                evals: 1,
                rounds: 0,
            }
        }
    };
    let mut best = case.clone();
    let mut evals = 1usize;
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        let mut improved = false;
        for candidate in candidates(&best.program) {
            if evals >= max_evals {
                return ShrinkReport {
                    case: best,
                    evals,
                    rounds,
                };
            }
            let Some(next) = rebuild(&best, candidate, width) else {
                continue;
            };
            if metric(&next) >= metric(&best) {
                continue;
            }
            evals += 1;
            if still_diverges(&next, width, opts, &original) {
                best = next;
                improved = true;
                break; // restart enumeration on the smaller program
            }
        }
        if !improved {
            return ShrinkReport {
                case: best,
                evals,
                rounds,
            };
        }
    }
}

/// Lines of the rendered source — the size the acceptance criterion is
/// stated in.
pub fn line_count(case: &Case) -> usize {
    case.source.lines().count()
}

fn still_diverges(case: &Case, width: u32, opts: &ExecOptions, original: &Divergence) -> bool {
    matches!(
        run_case(case, width, opts),
        CaseOutcome::Divergence(d) if d.kind == original.kind && d.variant == original.variant
    )
}

fn rebuild(base: &Case, program: Program, width: u32) -> Option<Case> {
    let source = render(&program);
    let program = nenya::lang::parse(&source).ok()?;
    let stimuli = stimuli_for(&program.mems, base.seed, base.index, width);
    Some(Case {
        seed: base.seed,
        index: base.index,
        source,
        program,
        stimuli,
    })
}

/// Strictly decreasing under every accepted edit, which guarantees the
/// greedy loop terminates.
fn metric(case: &Case) -> (usize, usize, u64, usize) {
    let program = &case.program;
    let mut stmts = program.mems.len();
    let mut exprs = 0usize;
    let mut consts: u64 = program.mems.iter().map(|m| m.size as u64).sum();
    count_block(&program.body, &mut stmts, &mut exprs, &mut consts);
    (stmts, exprs, consts, case.source.len())
}

fn count_block(block: &Block, stmts: &mut usize, exprs: &mut usize, consts: &mut u64) {
    for stmt in &block.stmts {
        *stmts += 1;
        match stmt {
            Stmt::Decl { init, .. } => {
                if let Some(expr) = init {
                    count_expr(expr, exprs, consts);
                }
            }
            Stmt::Assign { value, .. } => count_expr(value, exprs, consts),
            Stmt::MemStore { addr, value, .. } => {
                count_expr(addr, exprs, consts);
                count_expr(value, exprs, consts);
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
            } => {
                count_expr(cond, exprs, consts);
                count_block(then_block, stmts, exprs, consts);
                count_block(else_block, stmts, exprs, consts);
            }
            Stmt::While { cond, body } => {
                count_expr(cond, exprs, consts);
                count_block(body, stmts, exprs, consts);
            }
            Stmt::For {
                init,
                cond,
                update,
                body,
            } => {
                if let Stmt::Assign { value, .. } = &**init {
                    count_expr(value, exprs, consts);
                }
                count_expr(cond, exprs, consts);
                if let Stmt::Assign { value, .. } = &**update {
                    count_expr(value, exprs, consts);
                }
                count_block(body, stmts, exprs, consts);
            }
        }
    }
}

fn count_expr(expr: &Expr, exprs: &mut usize, consts: &mut u64) {
    *exprs += 1;
    match expr {
        Expr::Int(v) => *consts += v.unsigned_abs(),
        Expr::Bool(_) | Expr::Var(_) => {}
        Expr::MemLoad { addr, .. } => count_expr(addr, exprs, consts),
        Expr::Unary { expr, .. } => count_expr(expr, exprs, consts),
        Expr::Binary { lhs, rhs, .. } => {
            count_expr(lhs, exprs, consts);
            count_expr(rhs, exprs, consts);
        }
    }
}

/// All single-edit neighbours of a program, most aggressive first.
fn candidates(program: &Program) -> Vec<Program> {
    let mut out = Vec::new();
    // 1. Remove one statement (DFS order).
    let mut t = 0;
    loop {
        let mut p = program.clone();
        let mut target = t;
        if !remove_stmt(&mut p.body, &mut target) {
            break;
        }
        out.push(p);
        t += 1;
    }
    // 2. Splice one control statement's body into its parent.
    let mut t = 0;
    loop {
        let mut p = program.clone();
        let mut target = t;
        if !unwrap_stmt(&mut p.body, &mut target) {
            break;
        }
        out.push(p);
        t += 1;
    }
    // 3. Drop an unused memory (always keep at least one).
    for i in 0..program.mems.len() {
        if program.mems.len() > 1 && !mem_used(&program.body, &program.mems[i].name) {
            let mut p = program.clone();
            p.mems.remove(i);
            out.push(p);
        }
    }
    // 4. Halve a memory. Address masks may now exceed the memory; such
    //    candidates fail compile or golden and the predicate rejects them.
    for i in 0..program.mems.len() {
        if program.mems[i].size >= 4 {
            let mut p = program.clone();
            p.mems[i].size /= 2;
            out.push(p);
        }
    }
    // 5. Expression edits: replace a binary with an operand, then zero or
    //    halve constants.
    for kind in [
        ExprEdit::TakeLhs,
        ExprEdit::TakeRhs,
        ExprEdit::Zero,
        ExprEdit::Halve,
    ] {
        let mut t = 0;
        loop {
            let mut p = program.clone();
            let mut target = t;
            if !edit_block(&mut p.body, &mut target, kind) {
                break;
            }
            out.push(p);
            t += 1;
        }
    }
    out
}

fn remove_stmt(block: &mut Block, target: &mut usize) -> bool {
    let mut i = 0;
    while i < block.stmts.len() {
        if *target == 0 {
            block.stmts.remove(i);
            return true;
        }
        *target -= 1;
        let done = match &mut block.stmts[i] {
            Stmt::If {
                then_block,
                else_block,
                ..
            } => remove_stmt(then_block, target) || remove_stmt(else_block, target),
            Stmt::While { body, .. } | Stmt::For { body, .. } => remove_stmt(body, target),
            _ => false,
        };
        if done {
            return true;
        }
        i += 1;
    }
    false
}

fn unwrap_stmt(block: &mut Block, target: &mut usize) -> bool {
    let mut i = 0;
    while i < block.stmts.len() {
        let is_ctrl = matches!(
            block.stmts[i],
            Stmt::If { .. } | Stmt::While { .. } | Stmt::For { .. }
        );
        if is_ctrl {
            if *target == 0 {
                let inner = match block.stmts.remove(i) {
                    Stmt::If {
                        then_block,
                        mut else_block,
                        ..
                    } => {
                        let mut stmts = then_block.stmts;
                        stmts.append(&mut else_block.stmts);
                        stmts
                    }
                    Stmt::While { body, .. } | Stmt::For { body, .. } => body.stmts,
                    _ => unreachable!("is_ctrl checked above"),
                };
                for (j, stmt) in inner.into_iter().enumerate() {
                    block.stmts.insert(i + j, stmt);
                }
                return true;
            }
            *target -= 1;
        }
        let done = match &mut block.stmts[i] {
            Stmt::If {
                then_block,
                else_block,
                ..
            } => unwrap_stmt(then_block, target) || unwrap_stmt(else_block, target),
            Stmt::While { body, .. } | Stmt::For { body, .. } => unwrap_stmt(body, target),
            _ => false,
        };
        if done {
            return true;
        }
        i += 1;
    }
    false
}

fn mem_used(block: &Block, name: &str) -> bool {
    block.stmts.iter().any(|stmt| match stmt {
        Stmt::Decl { init, .. } => init.as_ref().is_some_and(|e| expr_uses_mem(e, name)),
        Stmt::Assign { value, .. } => expr_uses_mem(value, name),
        Stmt::MemStore { mem, addr, value } => {
            mem == name || expr_uses_mem(addr, name) || expr_uses_mem(value, name)
        }
        Stmt::If {
            cond,
            then_block,
            else_block,
        } => {
            expr_uses_mem(cond, name) || mem_used(then_block, name) || mem_used(else_block, name)
        }
        Stmt::While { cond, body } => expr_uses_mem(cond, name) || mem_used(body, name),
        Stmt::For {
            init,
            cond,
            update,
            body,
        } => {
            let header = |s: &Stmt| match s {
                Stmt::Assign { value, .. } => expr_uses_mem(value, name),
                _ => false,
            };
            header(init) || expr_uses_mem(cond, name) || header(update) || mem_used(body, name)
        }
    })
}

fn expr_uses_mem(expr: &Expr, name: &str) -> bool {
    match expr {
        Expr::Int(_) | Expr::Bool(_) | Expr::Var(_) => false,
        Expr::MemLoad { mem, addr } => mem == name || expr_uses_mem(addr, name),
        Expr::Unary { expr, .. } => expr_uses_mem(expr, name),
        Expr::Binary { lhs, rhs, .. } => expr_uses_mem(lhs, name) || expr_uses_mem(rhs, name),
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ExprEdit {
    TakeLhs,
    TakeRhs,
    Zero,
    Halve,
}

fn edit_block(block: &mut Block, target: &mut usize, kind: ExprEdit) -> bool {
    for stmt in &mut block.stmts {
        let done = match stmt {
            Stmt::Decl { init, .. } => init
                .as_mut()
                .is_some_and(|e| edit_expr(e, target, kind)),
            Stmt::Assign { value, .. } => edit_expr(value, target, kind),
            Stmt::MemStore { addr, value, .. } => {
                edit_expr(addr, target, kind) || edit_expr(value, target, kind)
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
            } => {
                edit_expr(cond, target, kind)
                    || edit_block(then_block, target, kind)
                    || edit_block(else_block, target, kind)
            }
            Stmt::While { cond, body } => {
                edit_expr(cond, target, kind) || edit_block(body, target, kind)
            }
            Stmt::For {
                init,
                cond,
                update,
                body,
            } => {
                edit_header(init, target, kind)
                    || edit_expr(cond, target, kind)
                    || edit_header(update, target, kind)
                    || edit_block(body, target, kind)
            }
        };
        if done {
            return true;
        }
    }
    false
}

fn edit_header(stmt: &mut Stmt, target: &mut usize, kind: ExprEdit) -> bool {
    match stmt {
        Stmt::Assign { value, .. } => edit_expr(value, target, kind),
        _ => false,
    }
}

fn edit_expr(expr: &mut Expr, target: &mut usize, kind: ExprEdit) -> bool {
    let applicable = match (kind, &*expr) {
        (ExprEdit::TakeLhs | ExprEdit::TakeRhs, Expr::Binary { .. }) => true,
        (ExprEdit::TakeLhs, Expr::Unary { .. }) => true,
        (ExprEdit::Zero, Expr::Int(v)) => *v != 0,
        (ExprEdit::Halve, Expr::Int(v)) => v.unsigned_abs() > 1,
        _ => false,
    };
    if applicable {
        if *target == 0 {
            match (kind, &mut *expr) {
                (ExprEdit::TakeLhs, Expr::Binary { lhs, .. }) => {
                    *expr = std::mem::replace(&mut **lhs, Expr::Int(0));
                }
                (ExprEdit::TakeLhs, Expr::Unary { expr: inner, .. }) => {
                    *expr = std::mem::replace(&mut **inner, Expr::Int(0));
                }
                (ExprEdit::TakeRhs, Expr::Binary { rhs, .. }) => {
                    *expr = std::mem::replace(&mut **rhs, Expr::Int(0));
                }
                (ExprEdit::Zero, Expr::Int(v)) => *v = 0,
                (ExprEdit::Halve, Expr::Int(v)) => *v /= 2,
                _ => unreachable!("applicability checked above"),
            }
            return true;
        }
        *target -= 1;
    }
    match expr {
        Expr::MemLoad { addr, .. } => edit_expr(addr, target, kind),
        Expr::Unary { expr, .. } => edit_expr(expr, target, kind),
        Expr::Binary { lhs, rhs, .. } => {
            edit_expr(lhs, target, kind) || edit_expr(rhs, target, kind)
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{diverges, Injection};
    use crate::gen::{generate_case, Budget};

    #[test]
    fn non_diverging_case_is_returned_unchanged() {
        let budget = Budget::default();
        let case = generate_case(1, 0, &budget).unwrap();
        let opts = ExecOptions::default();
        let report = shrink(&case, budget.width, &opts, 100);
        assert_eq!(report.case.source, case.source);
        assert_eq!(report.rounds, 0);
    }

    #[test]
    fn shrinking_preserves_divergence_and_reduces() {
        let budget = Budget::default();
        let opts = ExecOptions {
            injection: Some(Injection::BranchPolarity),
            max_ticks: 50_000,
            ..ExecOptions::default()
        };
        for index in 0..50 {
            let case = generate_case(42, index, &budget).unwrap();
            if !diverges(&case, budget.width, &opts) {
                continue;
            }
            let report = shrink(&case, budget.width, &opts, 500);
            assert!(report.case.source.len() <= case.source.len());
            assert!(diverges(&report.case, budget.width, &opts));
            // Shrinking is deterministic.
            let again = shrink(&case, budget.width, &opts, 500);
            assert_eq!(report.case.source, again.case.source);
            return;
        }
        panic!("no diverging case among the first 50 under injection");
    }
}
