//! The fuzzing campaign: generate → execute → track coverage → shrink.
//!
//! This is the engine behind `fpgafuzz run`. It lives in the library so
//! integration tests and the CI smoke job exercise exactly the code the
//! CLI runs. The produced log is fully deterministic for a fresh run —
//! no wall-clock, no OS randomness, no hash-order iteration — so two
//! invocations with the same seed and case count emit bit-identical
//! output (the repo's reproducibility contract).

use crate::corpus::Corpus;
use crate::coverage::{missing_ops, CoverageMap};
use crate::exec::{run_case, CaseOutcome, ExecOptions, Injection};
use crate::gen::{generate_case, Budget, Case};
use crate::shrink::{line_count, shrink};
use std::fmt::Write as _;
use std::io;
use std::path::PathBuf;

/// Campaign knobs, mirroring the `fpgafuzz run` flags.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Root seed for the whole run.
    pub seed: u64,
    /// Number of cases to generate and execute.
    pub cases: u64,
    /// Design data width.
    pub width: u32,
    /// Where to persist coverage-increasing cases (`None` = in-memory
    /// only).
    pub corpus_dir: Option<PathBuf>,
    /// A deliberately planted bug, for validating the fuzzer itself.
    pub injection: Option<Injection>,
    /// Executor-invocation budget per shrink.
    pub max_shrink_evals: usize,
    /// Kernel-tick watchdog per configuration.
    pub max_ticks: u64,
    /// Live `fpgatest-events-v1` stream (`--events-out`). A separate
    /// channel from the deterministic log: events carry wall-clock
    /// rates/ETAs and never feed back into the log text, so the
    /// reproducibility contract holds with streaming on.
    pub events: fpgatest::events::EventSink,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            seed: 0,
            cases: 100,
            width: 16,
            corpus_dir: None,
            injection: None,
            max_shrink_evals: 500,
            max_ticks: 5_000_000,
            events: fpgatest::events::EventSink::disabled(),
        }
    }
}

/// What a campaign produced.
#[derive(Debug)]
pub struct CampaignReport {
    /// The deterministic human-readable log, ready to print.
    pub log: String,
    /// Cases that diverged, already shrunk.
    pub shrunk: Vec<Case>,
    /// Divergence count.
    pub divergences: usize,
    /// Generator-error count (invalid cases: *our* bugs, not the
    /// compiler's).
    pub generator_errors: usize,
    /// Accumulated coverage at the end of the run.
    pub coverage: CoverageMap,
    /// How many coverage keys this run added over the starting map.
    pub new_keys: usize,
}

/// Runs a campaign.
///
/// # Errors
///
/// Returns the underlying I/O error when the corpus directory cannot be
/// read or written; execution itself never errors (failures are counted
/// in the report).
pub fn run_campaign(opts: &CampaignOptions) -> io::Result<CampaignReport> {
    let corpus = match &opts.corpus_dir {
        Some(dir) => Some(Corpus::open(dir.clone())?),
        None => None,
    };
    let mut coverage = match &corpus {
        Some(corpus) => corpus.load_coverage()?,
        None => CoverageMap::new(),
    };
    let exec = ExecOptions {
        max_ticks: opts.max_ticks,
        injection: opts.injection,
        ..ExecOptions::default()
    };
    let mut budget = Budget {
        width: opts.width,
        ..Budget::default()
    };

    let mut log = String::new();
    let _ = writeln!(
        log,
        "fpgafuzz: seed {} cases {} width {}{}",
        opts.seed,
        opts.cases,
        opts.width,
        match opts.injection {
            Some(Injection::BranchPolarity) => " inject branch-polarity",
            Some(Injection::SignalFault) => " inject signal-fault",
            None => "",
        }
    );

    let mut shrunk = Vec::new();
    let mut divergences = 0usize;
    let mut generator_errors = 0usize;
    let mut new_keys = 0usize;
    let mut saved = 0usize;

    // Heartbeat every ~25 cases: fuzz cases are small and fast, so a
    // per-case heartbeat would dominate the stream.
    let mut progress = fpgatest::events::CampaignProgress::start(
        opts.events.clone(),
        "fuzz",
        &format!("seed{}", opts.seed),
        opts.cases,
    )
    .heartbeat_every(25);

    for index in 0..opts.cases {
        let case_started = std::time::Instant::now();
        // Coverage feedback: bias generation toward operator kinds the
        // accumulated map has not seen activated yet.
        budget.op_bias = missing_ops(&coverage);
        let case = match generate_case(opts.seed, index, &budget) {
            Ok(case) => case,
            Err(e) => {
                generator_errors += 1;
                let _ = writeln!(log, "case {index}: generator error: {e}");
                progress.unit_done(
                    &format!("case{index}"),
                    case_started.elapsed().as_secs_f64(),
                    false,
                );
                continue;
            }
        };
        let mut diverged = false;
        match run_case(&case, opts.width, &exec) {
            CaseOutcome::Pass { coverage: seen } => {
                let fresh: Vec<String> = seen
                    .iter()
                    .filter(|key| !coverage.contains(key))
                    .map(String::from)
                    .collect();
                if !fresh.is_empty() {
                    new_keys += fresh.len();
                    coverage.merge(seen);
                    if let Some(corpus) = &corpus {
                        corpus.save_case(&case, &fresh)?;
                        saved += 1;
                    }
                    let _ = writeln!(log, "case {index}: +{} coverage keys", fresh.len());
                }
            }
            CaseOutcome::Divergence(d) => {
                divergences += 1;
                diverged = true;
                if opts.events.is_enabled() {
                    opts.events.emit(&fpgatest::events::Event::FuzzDivergence {
                        index,
                        variant: d.variant.to_string(),
                        kind: format!("{:?}", d.kind),
                        detail: d.detail.clone(),
                    });
                }
                let _ = writeln!(
                    log,
                    "case {index}: DIVERGENCE [{}] {:?}: {}",
                    d.variant, d.kind, d.detail
                );
                let report = shrink(&case, opts.width, &exec, opts.max_shrink_evals);
                let _ = writeln!(
                    log,
                    "case {index}: shrunk {} -> {} lines in {} evals:",
                    line_count(&case),
                    line_count(&report.case),
                    report.evals
                );
                for line in report.case.source.lines() {
                    let _ = writeln!(log, "    {line}");
                }
                shrunk.push(report.case);
            }
            CaseOutcome::GeneratorError(e) => {
                generator_errors += 1;
                let _ = writeln!(log, "case {index}: generator error: {e}");
            }
        }
        progress.unit_done(
            &format!("case{index}"),
            case_started.elapsed().as_secs_f64(),
            diverged,
        );
    }
    progress.finish();

    if let Some(corpus) = &corpus {
        corpus.save_coverage(&coverage)?;
    }
    let _ = writeln!(
        log,
        "coverage: {} keys (+{new_keys} new, {saved} cases saved)",
        coverage.len()
    );
    let _ = writeln!(
        log,
        "result: {divergences} divergences, {generator_errors} generator errors"
    );

    Ok(CampaignReport {
        log,
        shrunk,
        divergences,
        generator_errors,
        coverage,
        new_keys,
    })
}
