//! The fuzzing campaign: generate → execute → track coverage → shrink.
//!
//! This is the engine behind `fpgafuzz run`. It lives in the library so
//! integration tests and the CI smoke job exercise exactly the code the
//! CLI runs. The produced log is fully deterministic for a fresh run —
//! no wall-clock, no OS randomness, no hash-order iteration — so two
//! invocations with the same seed and case count emit bit-identical
//! output (the repo's reproducibility contract).

use crate::corpus::Corpus;
use crate::coverage::{missing_ops, CoverageMap};
use crate::exec::{run_case, CaseOutcome, ExecOptions, Injection};
use crate::gen::{generate_case, Budget, Case};
use crate::shrink::{line_count, shrink};
use std::fmt::Write as _;
use std::io;
use std::path::PathBuf;

/// Campaign knobs, mirroring the `fpgafuzz run` flags.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Root seed for the whole run.
    pub seed: u64,
    /// Number of cases to generate and execute.
    pub cases: u64,
    /// Design data width.
    pub width: u32,
    /// Where to persist coverage-increasing cases (`None` = in-memory
    /// only).
    pub corpus_dir: Option<PathBuf>,
    /// A deliberately planted bug, for validating the fuzzer itself.
    pub injection: Option<Injection>,
    /// Executor-invocation budget per shrink.
    pub max_shrink_evals: usize,
    /// Kernel-tick watchdog per configuration.
    pub max_ticks: u64,
    /// Live `fpgatest-events-v1` stream (`--events-out`). A separate
    /// channel from the deterministic log: events carry wall-clock
    /// rates/ETAs and never feed back into the log text, so the
    /// reproducibility contract holds with streaming on.
    pub events: fpgatest::events::EventSink,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            seed: 0,
            cases: 100,
            width: 16,
            corpus_dir: None,
            injection: None,
            max_shrink_evals: 500,
            max_ticks: 5_000_000,
            events: fpgatest::events::EventSink::disabled(),
        }
    }
}

/// What a campaign produced.
#[derive(Debug)]
pub struct CampaignReport {
    /// The deterministic human-readable log, ready to print.
    pub log: String,
    /// Cases that diverged, already shrunk.
    pub shrunk: Vec<Case>,
    /// Divergence count.
    pub divergences: usize,
    /// Generator-error count (invalid cases: *our* bugs, not the
    /// compiler's).
    pub generator_errors: usize,
    /// Accumulated coverage at the end of the run.
    pub coverage: CoverageMap,
    /// How many coverage keys this run added over the starting map.
    pub new_keys: usize,
}

/// Runs a campaign.
///
/// # Errors
///
/// Returns the underlying I/O error when the corpus directory cannot be
/// read or written; execution itself never errors (failures are counted
/// in the report).
pub fn run_campaign(opts: &CampaignOptions) -> io::Result<CampaignReport> {
    let corpus = match &opts.corpus_dir {
        Some(dir) => Some(Corpus::open(dir.clone())?),
        None => None,
    };
    let mut coverage = match &corpus {
        Some(corpus) => corpus.load_coverage()?,
        None => CoverageMap::new(),
    };
    let exec = ExecOptions {
        max_ticks: opts.max_ticks,
        injection: opts.injection,
        ..ExecOptions::default()
    };
    let mut budget = Budget {
        width: opts.width,
        ..Budget::default()
    };

    let mut log = String::new();
    let _ = writeln!(
        log,
        "fpgafuzz: seed {} cases {} width {}{}",
        opts.seed,
        opts.cases,
        opts.width,
        match opts.injection {
            Some(Injection::BranchPolarity) => " inject branch-polarity",
            Some(Injection::SignalFault) => " inject signal-fault",
            None => "",
        }
    );

    let mut shrunk = Vec::new();
    let mut divergences = 0usize;
    let mut generator_errors = 0usize;
    let mut new_keys = 0usize;
    let mut saved = 0usize;

    // Heartbeat every ~25 cases: fuzz cases are small and fast, so a
    // per-case heartbeat would dominate the stream.
    let mut progress = fpgatest::events::CampaignProgress::start(
        opts.events.clone(),
        "fuzz",
        &format!("seed{}", opts.seed),
        opts.cases,
    )
    .heartbeat_every(25);

    for index in 0..opts.cases {
        let case_started = std::time::Instant::now();
        // Coverage feedback: bias generation toward operator kinds the
        // accumulated map has not seen activated yet.
        budget.op_bias = missing_ops(&coverage);
        let case = match generate_case(opts.seed, index, &budget) {
            Ok(case) => case,
            Err(e) => {
                generator_errors += 1;
                let _ = writeln!(log, "case {index}: generator error: {e}");
                progress.unit_done(
                    &format!("case{index}"),
                    case_started.elapsed().as_secs_f64(),
                    false,
                );
                continue;
            }
        };
        let mut diverged = false;
        match run_case(&case, opts.width, &exec) {
            CaseOutcome::Pass { coverage: seen } => {
                let fresh: Vec<String> = seen
                    .iter()
                    .filter(|key| !coverage.contains(key))
                    .map(String::from)
                    .collect();
                if !fresh.is_empty() {
                    new_keys += fresh.len();
                    coverage.merge(seen);
                    if let Some(corpus) = &corpus {
                        corpus.save_case(&case, &fresh)?;
                        saved += 1;
                    }
                    let _ = writeln!(log, "case {index}: +{} coverage keys", fresh.len());
                }
            }
            CaseOutcome::Divergence(d) => {
                divergences += 1;
                diverged = true;
                if opts.events.is_enabled() {
                    opts.events.emit(&fpgatest::events::Event::FuzzDivergence {
                        index,
                        variant: d.variant.to_string(),
                        kind: format!("{:?}", d.kind),
                        detail: d.detail.clone(),
                    });
                }
                let _ = writeln!(
                    log,
                    "case {index}: DIVERGENCE [{}] {:?}: {}",
                    d.variant, d.kind, d.detail
                );
                let report = shrink(&case, opts.width, &exec, opts.max_shrink_evals);
                let _ = writeln!(
                    log,
                    "case {index}: shrunk {} -> {} lines in {} evals:",
                    line_count(&case),
                    line_count(&report.case),
                    report.evals
                );
                for line in report.case.source.lines() {
                    let _ = writeln!(log, "    {line}");
                }
                shrunk.push(report.case);
            }
            CaseOutcome::GeneratorError(e) => {
                generator_errors += 1;
                let _ = writeln!(log, "case {index}: generator error: {e}");
            }
        }
        progress.unit_done(
            &format!("case{index}"),
            case_started.elapsed().as_secs_f64(),
            diverged,
        );
    }
    progress.finish();

    if let Some(corpus) = &corpus {
        corpus.save_coverage(&coverage)?;
    }
    let _ = writeln!(
        log,
        "coverage: {} keys (+{new_keys} new, {saved} cases saved)",
        coverage.len()
    );
    let _ = writeln!(
        log,
        "result: {divergences} divergences, {generator_errors} generator errors"
    );

    Ok(CampaignReport {
        log,
        shrunk,
        divergences,
        generator_errors,
        coverage,
        new_keys,
    })
}

/// Knobs for [`run_campaign_sharded`] beyond the base
/// [`CampaignOptions`].
#[derive(Debug, Clone, Default)]
pub struct ShardedCampaignOptions {
    /// Worker-shard count (clamped to at least 1).
    pub shards: usize,
    /// Where to write `fpgatest-checkpoint-v1` snapshots (`None` = no
    /// checkpointing).
    pub checkpoint: Option<PathBuf>,
    /// Merged cases between snapshots (0 = every work chunk).
    pub checkpoint_every: u64,
    /// Resume from this checkpoint: its completed prefix is re-merged
    /// (log, coverage, corpus, events) without re-executing.
    pub resume: Option<PathBuf>,
    /// Cooperative stop flag (tests; SIGINT uses
    /// [`fpgatest::campaign::install_sigint`]).
    pub stop: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
    /// Stop when the process-wide SIGINT flag fires.
    pub sigint: bool,
}

/// What [`run_campaign_sharded`] produced.
#[derive(Debug)]
pub struct ShardedCampaignOutcome {
    /// The (possibly partial, when interrupted) campaign report. The log
    /// carries the footer lines only for completed campaigns.
    pub report: CampaignReport,
    /// Whether the run stopped early (stop flag / SIGINT).
    pub interrupted: bool,
    /// Cases skipped thanks to the resume checkpoint.
    pub resumed: u64,
    /// Salvage note when the resume checkpoint was torn and another
    /// generation was recovered (surfaced on stderr by the CLI).
    pub salvage: Option<String>,
}

/// Everything one executed case contributes to the merge, independent of
/// which shard ran it.
enum ShardCase {
    Pass {
        case: Case,
        seen: CoverageMap,
    },
    Diverged {
        variant: String,
        kind: String,
        detail: String,
        orig_lines: usize,
        evals: usize,
        shrunk: Case,
    },
    GenError {
        message: String,
    },
}

/// Merge-side campaign state, shared by the merge and checkpoint
/// callbacks.
struct MergeState {
    log: String,
    coverage: CoverageMap,
    shrunk: Vec<Case>,
    /// `(index, variant, kind, detail, orig_lines, evals)` per
    /// divergence, parallel to `shrunk` — what the checkpoint needs to
    /// re-merge the prefix.
    divergence_info: Vec<(u64, String, String, String, usize, usize)>,
    divergences: usize,
    generator_errors: usize,
    new_keys: usize,
    saved: usize,
    error: Option<io::Error>,
}

/// Deterministic heartbeat cadence for sharded runs (merged cases, same
/// spirit as the sequential path's ~25-case heartbeat).
const SHARD_HEARTBEAT: u64 = 25;

/// [`run_campaign`] across N work-stealing worker shards, with
/// checkpoint/resume.
///
/// Generation bias is **frozen** at campaign start (`missing_ops` of the
/// starting coverage) instead of evolving per case, so case `index` is
/// the same program at any shard count and across a resume — the price
/// of bit-determinism. With that freeze, the log, the merged coverage
/// map, the saved corpus, and the `fpgatest-events-v1` stream (wall-clock
/// fields zeroed) are all byte-identical across `--shards 1..N` and
/// across a killed-then-resumed run.
///
/// # Errors
///
/// Returns the underlying I/O error for corpus or checkpoint trouble; a
/// malformed or mismatched resume checkpoint surfaces as
/// [`io::ErrorKind::InvalidData`].
pub fn run_campaign_sharded(
    opts: &CampaignOptions,
    shard: &ShardedCampaignOptions,
) -> io::Result<ShardedCampaignOutcome> {
    use crate::coverage::{op_from_kind_name, op_kind_name};
    use crate::gen::stimuli_for;
    use fpgatest::campaign::{Checkpoint, RangeSet, ShardOptions};
    use fpgatest::telemetry::Json;
    use std::cell::RefCell;

    let corpus = match &opts.corpus_dir {
        Some(dir) => Some(Corpus::open(dir.clone())?),
        None => None,
    };
    let start_coverage = match &corpus {
        Some(corpus) => corpus.load_coverage()?,
        None => CoverageMap::new(),
    };
    let exec = ExecOptions {
        max_ticks: opts.max_ticks,
        injection: opts.injection,
        ..ExecOptions::default()
    };
    let key = format!("seed{}", opts.seed);
    let injection_name = match opts.injection {
        Some(Injection::BranchPolarity) => "branch-polarity",
        Some(Injection::SignalFault) => "signal-fault",
        None => "none",
    };
    let invalid = |message: String| io::Error::new(io::ErrorKind::InvalidData, message);

    let mut state = MergeState {
        log: String::new(),
        coverage: start_coverage.clone(),
        shrunk: Vec::new(),
        divergence_info: Vec::new(),
        divergences: 0,
        generator_errors: 0,
        new_keys: 0,
        saved: 0,
        error: None,
    };
    let bias;
    let mut skip = RangeSet::new();
    let mut salvage = None;
    if let Some(path) = &shard.resume {
        // Salvage tolerates torn writes (falling back to the `.tmp` or
        // `.prev` generation); identity mismatches below still refuse.
        let salvaged = Checkpoint::load_salvage(path).map_err(invalid)?;
        let checkpoint = salvaged.checkpoint;
        salvage = salvaged.note;
        let bad = |what: &str| {
            invalid(format!(
                "checkpoint {}: {what} does not match this campaign",
                path.display()
            ))
        };
        if checkpoint.kind != "fuzz" {
            return Err(bad("kind"));
        }
        if checkpoint.key != key {
            return Err(bad("seed"));
        }
        if checkpoint.total != opts.cases {
            return Err(bad("cases"));
        }
        let doc = &checkpoint.state;
        if doc.get("width").and_then(Json::as_u64) != Some(u64::from(opts.width)) {
            return Err(bad("width"));
        }
        if doc.get("injection").and_then(Json::as_str) != Some(injection_name) {
            return Err(bad("injection"));
        }
        let ranges = checkpoint.completed.ranges();
        if ranges.len() > 1 || ranges.first().is_some_and(|&(s, _)| s != 0) {
            return Err(invalid(format!(
                "checkpoint {}: completed set is not a prefix",
                path.display()
            )));
        }
        let str_field = |name: &str| {
            doc.get(name)
                .and_then(Json::as_str)
                .ok_or_else(|| bad(name))
        };
        let count_field = |name: &str| {
            doc.get(name)
                .and_then(Json::as_u64)
                .map(|n| n as usize)
                .ok_or_else(|| bad(name))
        };
        bias = str_field("bias")?
            .split_whitespace()
            .map(|kind| op_from_kind_name(kind).ok_or_else(|| bad("bias")))
            .collect::<io::Result<Vec<_>>>()?;
        state.coverage = CoverageMap::parse(str_field("coverage")?);
        state.log = str_field("log")?.to_string();
        state.new_keys = count_field("new_keys")?;
        state.saved = count_field("saved")?;
        state.generator_errors = count_field("generator_errors")?;
        let list = doc
            .get("divergences")
            .and_then(Json::as_array)
            .ok_or_else(|| bad("divergences"))?;
        for entry in list {
            let text = |name: &str| {
                entry
                    .get(name)
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad(name))
            };
            let num = |name: &str| {
                entry
                    .get(name)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad(name))
            };
            let index = num("index")?;
            let source = text("source")?.to_string();
            let program = nenya::lang::parse(&source)
                .map_err(|e| invalid(format!("checkpoint shrunk case {index}: {e}")))?;
            let stimuli = stimuli_for(&program.mems, opts.seed, index, opts.width);
            state.divergence_info.push((
                index,
                text("variant")?.to_string(),
                text("kind")?.to_string(),
                text("detail")?.to_string(),
                num("orig_lines")? as usize,
                num("evals")? as usize,
            ));
            state.shrunk.push(Case {
                seed: opts.seed,
                index,
                source,
                program,
                stimuli,
            });
        }
        state.divergences = state.shrunk.len();
        skip = checkpoint.completed.clone();
    } else {
        bias = missing_ops(&start_coverage);
        let _ = writeln!(
            state.log,
            "fpgafuzz: seed {} cases {} width {}{}",
            opts.seed,
            opts.cases,
            opts.width,
            match opts.injection {
                Some(Injection::BranchPolarity) => " inject branch-polarity",
                Some(Injection::SignalFault) => " inject signal-fault",
                None => "",
            }
        );
    }
    let resumed = skip.covered();

    // Deterministic event stream: merge order only, wall-clock fields
    // zeroed. On resume the completed prefix is re-emitted first, so the
    // full stream matches an uninterrupted run byte for byte.
    let events = opts.events.clone();
    events.emit(&fpgatest::events::Event::CampaignStarted {
        kind: "fuzz".to_string(),
        key: key.clone(),
        total: opts.cases,
    });
    let emit_divergence = |index: u64, variant: &str, kind: &str, detail: &str| {
        if events.is_enabled() {
            events.emit(&fpgatest::events::Event::FuzzDivergence {
                index,
                variant: variant.to_string(),
                kind: kind.to_string(),
                detail: detail.to_string(),
            });
        }
    };
    let emit_heartbeat = |index: u64| {
        if events.is_enabled() && (index + 1).is_multiple_of(SHARD_HEARTBEAT) {
            events.emit(&fpgatest::events::Event::Heartbeat {
                done: index + 1,
                total: opts.cases,
                rate: 0.0,
                eta_seconds: 0.0,
                slowest: String::new(),
                slowest_seconds: 0.0,
            });
        }
    };
    {
        let mut divs = state.divergence_info.iter().peekable();
        for index in 0..resumed {
            while let Some((i, variant, kind, detail, _, _)) = divs.peek() {
                if *i != index {
                    break;
                }
                emit_divergence(index, variant, kind, detail);
                divs.next();
            }
            emit_heartbeat(index);
        }
    }

    let budget = Budget {
        width: opts.width,
        op_bias: bias.clone(),
        ..Budget::default()
    };
    let budget = &budget;
    let exec = &exec;
    let worker = move |start: u64, end: u64| -> Vec<ShardCase> {
        (start..end)
            .map(|index| match generate_case(opts.seed, index, budget) {
                Err(message) => ShardCase::GenError { message },
                Ok(case) => match run_case(&case, opts.width, exec) {
                    CaseOutcome::Pass { coverage: seen } => ShardCase::Pass { case, seen },
                    CaseOutcome::GeneratorError(message) => ShardCase::GenError { message },
                    CaseOutcome::Divergence(d) => {
                        let report = shrink(&case, opts.width, exec, opts.max_shrink_evals);
                        ShardCase::Diverged {
                            variant: d.variant.to_string(),
                            kind: format!("{:?}", d.kind),
                            detail: d.detail,
                            orig_lines: line_count(&case),
                            evals: report.evals,
                            shrunk: report.case,
                        }
                    }
                },
            })
            .collect()
    };

    let merged = RefCell::new(state);
    let corpus = &corpus;
    let fuzz_checkpoint = |state: &MergeState, completed: &RangeSet| Checkpoint {
        kind: "fuzz".to_string(),
        key: key.clone(),
        total: opts.cases,
        completed: completed.clone(),
        state: Json::obj([
            ("seed", opts.seed.into()),
            ("width", u64::from(opts.width).into()),
            ("injection", injection_name.into()),
            (
                "bias",
                bias.iter()
                    .filter_map(|op| op_kind_name(*op))
                    .collect::<Vec<_>>()
                    .join(" ")
                    .into(),
            ),
            ("coverage", state.coverage.render().into()),
            ("log", state.log.as_str().into()),
            ("new_keys", state.new_keys.into()),
            ("saved", state.saved.into()),
            ("generator_errors", state.generator_errors.into()),
            (
                "divergences",
                Json::Arr(
                    state
                        .divergence_info
                        .iter()
                        .zip(&state.shrunk)
                        .map(|((index, variant, kind, detail, orig_lines, evals), case)| {
                            Json::obj([
                                ("index", (*index).into()),
                                ("variant", variant.as_str().into()),
                                ("kind", kind.as_str().into()),
                                ("detail", detail.as_str().into()),
                                ("orig_lines", (*orig_lines).into()),
                                ("evals", (*evals).into()),
                                ("source", case.source.as_str().into()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
    };
    let outcome = fpgatest::campaign::run_sharded(
        opts.cases,
        &skip,
        &ShardOptions {
            shards: shard.shards.max(1),
            chunk: 8,
            checkpoint_every: if shard.checkpoint.is_some() {
                if shard.checkpoint_every == 0 {
                    8
                } else {
                    shard.checkpoint_every
                }
            } else {
                0
            },
            stop: shard.stop.clone(),
            sigint: shard.sigint,
        },
        worker,
        |index, result: ShardCase| {
            let mut state = merged.borrow_mut();
            match result {
                ShardCase::GenError { message } => {
                    state.generator_errors += 1;
                    let _ = writeln!(state.log, "case {index}: generator error: {message}");
                }
                ShardCase::Pass { case, seen } => {
                    let fresh: Vec<String> = seen
                        .iter()
                        .filter(|k| !state.coverage.contains(k))
                        .map(String::from)
                        .collect();
                    if !fresh.is_empty() {
                        state.new_keys += fresh.len();
                        state.coverage.merge(seen);
                        if let Some(corpus) = corpus {
                            match corpus.save_case(&case, &fresh) {
                                Ok(_) => state.saved += 1,
                                Err(e) => {
                                    state.error.get_or_insert(e);
                                }
                            }
                        }
                        let _ =
                            writeln!(state.log, "case {index}: +{} coverage keys", fresh.len());
                    }
                }
                ShardCase::Diverged {
                    variant,
                    kind,
                    detail,
                    orig_lines,
                    evals,
                    shrunk,
                } => {
                    state.divergences += 1;
                    emit_divergence(index, &variant, &kind, &detail);
                    let _ = writeln!(
                        state.log,
                        "case {index}: DIVERGENCE [{variant}] {kind}: {detail}"
                    );
                    let _ = writeln!(
                        state.log,
                        "case {index}: shrunk {orig_lines} -> {} lines in {evals} evals:",
                        shrunk.source.lines().count()
                    );
                    for line in shrunk.source.lines() {
                        let _ = writeln!(state.log, "    {line}");
                    }
                    state
                        .divergence_info
                        .push((index, variant, kind, detail, orig_lines, evals));
                    state.shrunk.push(shrunk);
                }
            }
            emit_heartbeat(index);
        },
        |completed| {
            let Some(path) = &shard.checkpoint else { return };
            let state = merged.borrow();
            if let Err(e) = fuzz_checkpoint(&state, completed).save(path) {
                drop(state);
                merged.borrow_mut().error.get_or_insert(io::Error::other(
                    format!("cannot save {}: {e}", path.display()),
                ));
            }
        },
    );

    let mut state = merged.into_inner();
    if let Some(error) = state.error.take() {
        return Err(error);
    }
    if !outcome.interrupted {
        events.emit(&fpgatest::events::Event::CampaignFinished {
            kind: "fuzz".to_string(),
            key: key.clone(),
            done: opts.cases,
            failed: state.divergences as u64,
            wall_seconds: 0.0,
        });
        if let Some(corpus) = corpus {
            corpus.save_coverage(&state.coverage)?;
        }
        let _ = writeln!(
            state.log,
            "coverage: {} keys (+{} new, {} cases saved)",
            state.coverage.len(),
            state.new_keys,
            state.saved
        );
        let _ = writeln!(
            state.log,
            "result: {} divergences, {} generator errors",
            state.divergences, state.generator_errors
        );
        if let Some(path) = &shard.checkpoint {
            fuzz_checkpoint(&state, &outcome.completed)
                .save(path)
                .map_err(|e| {
                    io::Error::other(
                        format!("cannot save {}: {e}", path.display()),
                    )
                })?;
        }
    }

    Ok(ShardedCampaignOutcome {
        report: CampaignReport {
            log: state.log,
            shrunk: state.shrunk,
            divergences: state.divergences,
            generator_errors: state.generator_errors,
            coverage: state.coverage,
            new_keys: state.new_keys,
        },
        interrupted: outcome.interrupted,
        resumed,
        salvage,
    })
}
