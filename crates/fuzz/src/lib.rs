//! `fpgafuzz`: coverage-guided differential fuzzing of the
//! compile→simulate flow.
//!
//! The paper's infrastructure rests on one oracle: run a program on the
//! golden software reference *and* on the compiled, event-driven
//! hardware simulation, then compare final memory images word for word.
//! This crate turns that oracle into a fuzzer:
//!
//! * [`gen`] emits random Nenya programs that are valid by construction
//!   — every case parses, lowers, and runs on the golden reference — so
//!   any disagreement indicts the compiler or simulator, not the input;
//! * [`exec`] runs each case through the full flow across schedule
//!   policies and temporal-partition counts, flagging any divergence;
//! * [`coverage`] extracts FSM state/transition and operator-activation
//!   coverage from the flow's telemetry layer, and [`corpus`] keeps
//!   coverage-increasing cases on disk while missing operators bias
//!   future generation;
//! * [`shrink`] deterministically minimizes a failing case while
//!   preserving how it fails;
//! * [`distill`] greedily minimizes a grown corpus while preserving its
//!   coverage union;
//! * [`campaign`] ties it all together into the reproducible loop behind
//!   the `fpgafuzz` CLI — single-threaded, or sharded across a
//!   work-stealing worker pool with checkpoint/resume
//!   ([`campaign::run_campaign_sharded`]).
//!
//! Everything is reproducible from a single `u64` seed ([`rng`]): no
//! wall-clock, no OS randomness, no hash-order iteration anywhere in the
//! hot loop.

pub mod campaign;
pub mod corpus;
pub mod coverage;
pub mod distill;
pub mod exec;
pub mod gen;
pub mod rng;
pub mod shrink;
