//! Random-program generation.
//!
//! Programs are built *valid by construction* so that every generated
//! case parses, lowers, and executes cleanly on the golden reference:
//!
//! * every variable is initialized at its declaration;
//! * memory addresses are masked with `& (size-1)` (sizes are powers of
//!   two), so loads and stores are always in range;
//! * every memory word is seeded by a stimulus, so no load reads `X`;
//! * divisors are wrapped as `(expr | 1)`, which is odd and hence
//!   nonzero;
//! * loops count a fresh variable up to a small bound, and that counter
//!   is never an assignment target inside the loop, so trip counts are
//!   finite;
//! * top-level variables are `int` only (booleans cannot transfer
//!   between temporal partitions); `boolean` locals appear in nested
//!   blocks.
//!
//! The generated AST is rendered to source text and re-parsed, so the
//! parser is part of the differential surface too.

use crate::rng::Rng;
use nenya::lang::{BinaryOp, Block, Expr, MemDecl, Program, Stmt, Type, UnaryOp};

/// Size/shape budgets for generation. The defaults keep cases small
/// enough that a full compile→simulate run takes milliseconds.
#[derive(Debug, Clone)]
pub struct Budget {
    /// Design data width in bits.
    pub width: u32,
    /// Maximum number of memories (at least 1 is always generated).
    pub max_mems: usize,
    /// Memory sizes are `2^k` words with `k` in `1..=max_mem_size_log2`.
    pub max_mem_size_log2: u32,
    /// Maximum top-level statement groups (beyond the variable prelude).
    pub max_top_stmts: usize,
    /// Maximum statement groups per nested block.
    pub max_block_stmts: usize,
    /// Maximum control-structure nesting depth.
    pub max_depth: usize,
    /// Maximum expression tree depth.
    pub max_expr_depth: usize,
    /// Maximum loop trip count.
    pub max_loop_iters: i64,
    /// Operators to weight extra (coverage feedback: kinds the corpus has
    /// not yet activated).
    pub op_bias: Vec<BinaryOp>,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            width: 16,
            max_mems: 3,
            max_mem_size_log2: 3,
            max_top_stmts: 5,
            max_block_stmts: 3,
            max_depth: 2,
            max_expr_depth: 3,
            max_loop_iters: 4,
            op_bias: Vec::new(),
        }
    }
}

/// One generated test case: the rendered source, its parsed AST, and the
/// full-coverage memory stimuli.
#[derive(Debug, Clone)]
pub struct Case {
    /// The fuzzer seed this case came from.
    pub seed: u64,
    /// The case index within the run.
    pub index: u64,
    /// Rendered source text.
    pub source: String,
    /// The program parsed back from `source`.
    pub program: Program,
    /// Initial contents for every memory (every word seeded).
    pub stimuli: Vec<(String, Vec<i64>)>,
}

/// Generates case `index` of a run seeded with `seed`.
///
/// # Errors
///
/// Returns a message when the rendered program fails to parse — by
/// construction that indicates a generator (or parser) bug, and the
/// executor reports it as such rather than a compiler divergence.
pub fn generate_case(seed: u64, index: u64, budget: &Budget) -> Result<Case, String> {
    let mut rng = Rng::new(seed).derive(index);
    let ast = Generator::new(&mut rng, budget).program();
    let source = render(&ast);
    let program = nenya::lang::parse(&source)
        .map_err(|e| format!("generated program does not parse: {e}\n{source}"))?;
    let stimuli = stimuli_for(&program.mems, seed, index, budget.width);
    Ok(Case {
        seed,
        index,
        source,
        program,
        stimuli,
    })
}

/// Deterministic full-coverage stimuli: every word of every memory gets a
/// width-truncated pseudo-random value. Keyed by memory *name*, so a
/// shrunk program (fewer memories, smaller sizes) still sees a prefix of
/// the same values.
pub fn stimuli_for(
    mems: &[MemDecl],
    seed: u64,
    index: u64,
    width: u32,
) -> Vec<(String, Vec<i64>)> {
    mems.iter()
        .map(|mem| {
            let mut lane = 0xcbf2_9ce4_8422_2325u64;
            for b in mem.name.bytes() {
                lane = (lane ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut rng = Rng::new(seed).derive(index).derive(lane);
            let values = (0..mem.size)
                .map(|_| nenya::interp::truncate(rng.next_u64() as i64, width))
                .collect();
            (mem.name.clone(), values)
        })
        .collect()
}

const INT_OPS: &[BinaryOp] = &[
    BinaryOp::Add,
    BinaryOp::Sub,
    BinaryOp::Mul,
    BinaryOp::Div,
    BinaryOp::Rem,
    BinaryOp::BitAnd,
    BinaryOp::BitOr,
    BinaryOp::BitXor,
    BinaryOp::Shl,
    BinaryOp::Shr,
    BinaryOp::Ushr,
];

const CMP_OPS: &[BinaryOp] = &[
    BinaryOp::Eq,
    BinaryOp::Ne,
    BinaryOp::Lt,
    BinaryOp::Le,
    BinaryOp::Gt,
    BinaryOp::Ge,
];

struct Generator<'a> {
    rng: &'a mut Rng,
    budget: &'a Budget,
    mems: Vec<(String, usize)>,
    /// Visible variables per scope (innermost last).
    scopes: Vec<Vec<(String, Type)>>,
    /// Counters of active loops — never assignment targets.
    loop_vars: Vec<String>,
    next_var: usize,
    int_ops: Vec<BinaryOp>,
    cmp_ops: Vec<BinaryOp>,
}

impl<'a> Generator<'a> {
    fn new(rng: &'a mut Rng, budget: &'a Budget) -> Self {
        // Coverage bias: unexercised operator kinds get triple weight.
        let mut int_ops = INT_OPS.to_vec();
        let mut cmp_ops = CMP_OPS.to_vec();
        for op in &budget.op_bias {
            let pool = if CMP_OPS.contains(op) {
                &mut cmp_ops
            } else {
                &mut int_ops
            };
            pool.push(*op);
            pool.push(*op);
        }
        Generator {
            rng,
            budget,
            mems: Vec::new(),
            scopes: vec![Vec::new()],
            loop_vars: Vec::new(),
            next_var: 0,
            int_ops,
            cmp_ops,
        }
    }

    fn program(&mut self) -> Program {
        let mem_count = 1 + self.rng.below(self.budget.max_mems as u64) as usize;
        let mems: Vec<MemDecl> = (0..mem_count)
            .map(|i| {
                let size = 1usize << (1 + self.rng.below(self.budget.max_mem_size_log2 as u64));
                MemDecl {
                    name: format!("m{i}"),
                    size,
                    width: None,
                }
            })
            .collect();
        self.mems = mems.iter().map(|m| (m.name.clone(), m.size)).collect();

        let mut stmts = Vec::new();
        // Prelude: 1–3 top-level int variables, all initialized.
        let var_count = 1 + self.rng.below(3) as usize;
        for _ in 0..var_count {
            let name = self.fresh("v");
            let init = Expr::Int(self.small_const());
            self.declare(&name, Type::Int);
            stmts.push(Stmt::Decl {
                ty: Type::Int,
                name,
                init: Some(init),
            });
        }
        let group_count = 1 + self.rng.below(self.budget.max_top_stmts as u64) as usize;
        for _ in 0..group_count {
            stmts.extend(self.stmt_group(0, false));
        }
        // Epilogue: dump every top-level variable into memory so the
        // differential comparison observes all of them.
        let outputs: Vec<String> = self.scopes[0]
            .iter()
            .filter(|(_, ty)| *ty == Type::Int)
            .map(|(name, _)| name.clone())
            .collect();
        let (mem, size) = self.mems[0].clone();
        for (slot, name) in outputs.into_iter().enumerate() {
            stmts.push(Stmt::MemStore {
                mem: mem.clone(),
                addr: Expr::Int((slot % size) as i64),
                value: Expr::Var(name),
            });
        }

        Program {
            mems,
            body: Block { stmts },
            source_lines: 0, // recomputed by the re-parse
        }
    }

    /// One "statement group": usually a single statement, but loops come
    /// with their counter declaration.
    fn stmt_group(&mut self, depth: usize, nested: bool) -> Vec<Stmt> {
        let can_nest = depth < self.budget.max_depth;
        loop {
            match self.rng.below(10) {
                0..=2 => {
                    if let Some(stmt) = self.assign() {
                        return vec![stmt];
                    }
                }
                3 | 4 => return vec![self.mem_store()],
                5 => {
                    let name = self.fresh("v");
                    let init = self.int_expr(self.budget.max_expr_depth);
                    self.declare(&name, Type::Int);
                    return vec![Stmt::Decl {
                        ty: Type::Int,
                        name,
                        init: Some(init),
                    }];
                }
                6 if nested => {
                    let name = self.fresh("b");
                    let init = self.bool_expr(2);
                    self.declare(&name, Type::Bool);
                    return vec![Stmt::Decl {
                        ty: Type::Bool,
                        name,
                        init: Some(init),
                    }];
                }
                7 if can_nest => return vec![self.if_stmt(depth)],
                8 if can_nest => return self.for_loop(depth),
                9 if can_nest => return self.while_loop(depth),
                _ => {}
            }
        }
    }

    fn block(&mut self, depth: usize) -> Block {
        self.scopes.push(Vec::new());
        let group_count = 1 + self.rng.below(self.budget.max_block_stmts as u64) as usize;
        let mut stmts = Vec::new();
        for _ in 0..group_count {
            stmts.extend(self.stmt_group(depth, true));
        }
        self.scopes.pop();
        Block { stmts }
    }

    fn if_stmt(&mut self, depth: usize) -> Stmt {
        let cond = self.bool_expr(2);
        let then_block = self.block(depth + 1);
        let else_block = if self.rng.chance(1, 2) {
            self.block(depth + 1)
        } else {
            Block::default()
        };
        Stmt::If {
            cond,
            then_block,
            else_block,
        }
    }

    fn for_loop(&mut self, depth: usize) -> Vec<Stmt> {
        let counter = self.fresh("i");
        self.declare(&counter, Type::Int);
        let decl = Stmt::Decl {
            ty: Type::Int,
            name: counter.clone(),
            init: Some(Expr::Int(0)),
        };
        let bound = self.rng.range_i64(1, self.budget.max_loop_iters);
        self.loop_vars.push(counter.clone());
        let body = self.block(depth + 1);
        self.loop_vars.pop();
        let for_stmt = Stmt::For {
            init: Box::new(Stmt::Assign {
                name: counter.clone(),
                value: Expr::Int(0),
            }),
            cond: Expr::Binary {
                op: BinaryOp::Lt,
                lhs: Box::new(Expr::Var(counter.clone())),
                rhs: Box::new(Expr::Int(bound)),
            },
            update: Box::new(Stmt::Assign {
                name: counter.clone(),
                value: Expr::Binary {
                    op: BinaryOp::Add,
                    lhs: Box::new(Expr::Var(counter)),
                    rhs: Box::new(Expr::Int(1)),
                },
            }),
            body,
        };
        vec![decl, for_stmt]
    }

    fn while_loop(&mut self, depth: usize) -> Vec<Stmt> {
        let counter = self.fresh("w");
        self.declare(&counter, Type::Int);
        let decl = Stmt::Decl {
            ty: Type::Int,
            name: counter.clone(),
            init: Some(Expr::Int(0)),
        };
        let bound = self.rng.range_i64(1, self.budget.max_loop_iters);
        self.loop_vars.push(counter.clone());
        let mut body = self.block(depth + 1);
        self.loop_vars.pop();
        body.stmts.push(Stmt::Assign {
            name: counter.clone(),
            value: Expr::Binary {
                op: BinaryOp::Add,
                lhs: Box::new(Expr::Var(counter.clone())),
                rhs: Box::new(Expr::Int(1)),
            },
        });
        let while_stmt = Stmt::While {
            cond: Expr::Binary {
                op: BinaryOp::Lt,
                lhs: Box::new(Expr::Var(counter)),
                rhs: Box::new(Expr::Int(bound)),
            },
            body,
        };
        vec![decl, while_stmt]
    }

    fn assign(&mut self) -> Option<Stmt> {
        let targets: Vec<String> = self
            .scopes
            .iter()
            .flatten()
            .filter(|(name, ty)| *ty == Type::Int && !self.loop_vars.contains(name))
            .map(|(name, _)| name.clone())
            .collect();
        if targets.is_empty() {
            return None;
        }
        let name = self.rng.pick(&targets).clone();
        let value = self.int_expr(self.budget.max_expr_depth);
        Some(Stmt::Assign { name, value })
    }

    fn mem_store(&mut self) -> Stmt {
        let (mem, size) = self.rng.pick(&self.mems).clone();
        let addr = self.addr_expr(size);
        let value = self.int_expr(self.budget.max_expr_depth);
        Stmt::MemStore { mem, addr, value }
    }

    /// An always-in-range address: `expr & (size-1)` (sizes are powers of
    /// two, so the mask is exact and the result non-negative).
    fn addr_expr(&mut self, size: usize) -> Expr {
        let inner = self.int_expr(1);
        Expr::Binary {
            op: BinaryOp::BitAnd,
            lhs: Box::new(inner),
            rhs: Box::new(Expr::Int(size as i64 - 1)),
        }
    }

    fn small_const(&mut self) -> i64 {
        let cap = 1i64 << (self.budget.width.saturating_sub(2).min(8));
        self.rng.range_i64(-cap, cap)
    }

    fn int_var(&mut self) -> Option<Expr> {
        let vars: Vec<String> = self
            .scopes
            .iter()
            .flatten()
            .filter(|(_, ty)| *ty == Type::Int)
            .map(|(name, _)| name.clone())
            .collect();
        if vars.is_empty() {
            return None;
        }
        Some(Expr::Var(self.rng.pick(&vars).clone()))
    }

    fn int_expr(&mut self, depth: usize) -> Expr {
        if depth == 0 || self.rng.chance(1, 4) {
            return match self.rng.below(3) {
                0 => Expr::Int(self.small_const()),
                1 => self.int_var().unwrap_or(Expr::Int(1)),
                _ => {
                    let (mem, size) = self.rng.pick(&self.mems).clone();
                    let addr = if depth == 0 {
                        Expr::Int(self.rng.below(size as u64) as i64)
                    } else {
                        self.addr_expr(size)
                    };
                    Expr::MemLoad {
                        mem,
                        addr: Box::new(addr),
                    }
                }
            };
        }
        if self.rng.chance(1, 6) {
            let op = *self.rng.pick(&[UnaryOp::Neg, UnaryOp::BitNot]);
            return Expr::Unary {
                op,
                expr: Box::new(self.int_expr(depth - 1)),
            };
        }
        let ops = self.int_ops.clone();
        let op = *self.rng.pick(&ops);
        let lhs = Box::new(self.int_expr(depth - 1));
        let rhs = match op {
            // Odd, hence nonzero: division can never trap.
            BinaryOp::Div | BinaryOp::Rem => Box::new(Expr::Binary {
                op: BinaryOp::BitOr,
                lhs: Box::new(self.int_expr(depth - 1)),
                rhs: Box::new(Expr::Int(1)),
            }),
            // Small literal shift amounts keep both sides in the defined
            // range (the interpreter masks with & 63 anyway).
            BinaryOp::Shl | BinaryOp::Shr | BinaryOp::Ushr => {
                Expr::Int(self.rng.below(self.budget.width.min(8) as u64) as i64).into()
            }
            _ => Box::new(self.int_expr(depth - 1)),
        };
        Expr::Binary { op, lhs, rhs }
    }

    fn bool_expr(&mut self, depth: usize) -> Expr {
        let bools: Vec<String> = self
            .scopes
            .iter()
            .flatten()
            .filter(|(_, ty)| *ty == Type::Bool)
            .map(|(name, _)| name.clone())
            .collect();
        if !bools.is_empty() && self.rng.chance(1, 5) {
            return Expr::Var(self.rng.pick(&bools).clone());
        }
        if depth > 0 && self.rng.chance(1, 4) {
            return match self.rng.below(3) {
                0 => Expr::Binary {
                    op: BinaryOp::LogAnd,
                    lhs: Box::new(self.bool_expr(depth - 1)),
                    rhs: Box::new(self.bool_expr(depth - 1)),
                },
                1 => Expr::Binary {
                    op: BinaryOp::LogOr,
                    lhs: Box::new(self.bool_expr(depth - 1)),
                    rhs: Box::new(self.bool_expr(depth - 1)),
                },
                _ => Expr::Unary {
                    op: UnaryOp::LogNot,
                    expr: Box::new(self.bool_expr(depth - 1)),
                },
            };
        }
        let ops = self.cmp_ops.clone();
        let op = *self.rng.pick(&ops);
        Expr::Binary {
            op,
            lhs: Box::new(self.int_expr(2)),
            rhs: Box::new(self.int_expr(2)),
        }
    }

    fn fresh(&mut self, prefix: &str) -> String {
        let name = format!("{prefix}{}", self.next_var);
        self.next_var += 1;
        name
    }

    fn declare(&mut self, name: &str, ty: Type) {
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .push((name.to_string(), ty));
    }
}

// ---------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------

/// Renders a program as parseable source text, one statement per line.
pub fn render(program: &Program) -> String {
    let mut out = String::new();
    for mem in &program.mems {
        match mem.width {
            Some(w) => out.push_str(&format!("mem {}[{}] width {};\n", mem.name, mem.size, w)),
            None => out.push_str(&format!("mem {}[{}];\n", mem.name, mem.size)),
        }
    }
    out.push_str("void main() {\n");
    for stmt in &program.body.stmts {
        render_stmt(&mut out, stmt, 1);
    }
    out.push_str("}\n");
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn render_stmt(out: &mut String, stmt: &Stmt, level: usize) {
    indent(out, level);
    match stmt {
        Stmt::Decl { ty, name, init } => {
            match init {
                Some(expr) => out.push_str(&format!("{ty} {name} = {};\n", render_expr(expr))),
                None => out.push_str(&format!("{ty} {name};\n")),
            };
        }
        Stmt::Assign { name, value } => {
            out.push_str(&format!("{name} = {};\n", render_expr(value)));
        }
        Stmt::MemStore { mem, addr, value } => {
            out.push_str(&format!(
                "{mem}[{}] = {};\n",
                render_expr(addr),
                render_expr(value)
            ));
        }
        Stmt::If {
            cond,
            then_block,
            else_block,
        } => {
            out.push_str(&format!("if ({}) {{\n", render_expr(cond)));
            for inner in &then_block.stmts {
                render_stmt(out, inner, level + 1);
            }
            indent(out, level);
            if else_block.stmts.is_empty() {
                out.push_str("}\n");
            } else {
                out.push_str("} else {\n");
                for inner in &else_block.stmts {
                    render_stmt(out, inner, level + 1);
                }
                indent(out, level);
                out.push_str("}\n");
            }
        }
        Stmt::While { cond, body } => {
            out.push_str(&format!("while ({}) {{\n", render_expr(cond)));
            for inner in &body.stmts {
                render_stmt(out, inner, level + 1);
            }
            indent(out, level);
            out.push_str("}\n");
        }
        Stmt::For {
            init,
            cond,
            update,
            body,
        } => {
            out.push_str(&format!(
                "for ({}; {}; {}) {{\n",
                render_assign_header(init),
                render_expr(cond),
                render_assign_header(update)
            ));
            for inner in &body.stmts {
                render_stmt(out, inner, level + 1);
            }
            indent(out, level);
            out.push_str("}\n");
        }
    }
}

fn render_assign_header(stmt: &Stmt) -> String {
    match stmt {
        Stmt::Assign { name, value } => format!("{name} = {}", render_expr(value)),
        other => unreachable!("for-header is always an assignment, got {other:?}"),
    }
}

/// Renders an expression fully parenthesized, so operator precedence can
/// never disagree between the AST and its re-parse.
pub fn render_expr(expr: &Expr) -> String {
    match expr {
        Expr::Int(v) => {
            if *v < 0 {
                format!("({v})")
            } else {
                format!("{v}")
            }
        }
        Expr::Bool(b) => b.to_string(),
        Expr::Var(name) => name.clone(),
        Expr::MemLoad { mem, addr } => format!("{mem}[{}]", render_expr(addr)),
        Expr::Unary { op, expr } => {
            let symbol = match op {
                UnaryOp::Neg => "-",
                UnaryOp::BitNot => "~",
                UnaryOp::LogNot => "!",
            };
            format!("({symbol}{})", render_expr(expr))
        }
        Expr::Binary { op, lhs, rhs } => format!(
            "({} {} {})",
            render_expr(lhs),
            op.symbol(),
            render_expr(rhs)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_cases_are_reproducible() {
        let budget = Budget::default();
        for index in 0..20 {
            let a = generate_case(11, index, &budget).unwrap();
            let b = generate_case(11, index, &budget).unwrap();
            assert_eq!(a.source, b.source, "index {index}");
            assert_eq!(a.stimuli, b.stimuli, "index {index}");
        }
    }

    #[test]
    fn different_indices_differ() {
        let budget = Budget::default();
        let a = generate_case(11, 0, &budget).unwrap();
        let b = generate_case(11, 1, &budget).unwrap();
        assert_ne!(a.source, b.source);
    }

    #[test]
    fn render_parse_round_trips() {
        let budget = Budget::default();
        for index in 0..50 {
            let case = generate_case(3, index, &budget).unwrap();
            // The AST parsed back from the rendering re-renders identically:
            // rendering is a faithful inverse of parsing.
            assert_eq!(render(&case.program), case.source, "index {index}");
        }
    }

    #[test]
    fn stimuli_cover_every_word_and_respect_width() {
        let budget = Budget::default();
        let case = generate_case(5, 0, &budget).unwrap();
        assert_eq!(case.stimuli.len(), case.program.mems.len());
        for ((mem, values), decl) in case.stimuli.iter().zip(&case.program.mems) {
            assert_eq!(mem, &decl.name);
            assert_eq!(values.len(), decl.size);
            for v in values {
                assert_eq!(*v, nenya::interp::truncate(*v, budget.width));
            }
        }
    }

    #[test]
    fn stimuli_are_stable_per_memory_name() {
        // Shrinking may drop memories; the survivors must keep their values
        // so a shrunk case reproduces the same execution.
        let mems = vec![
            MemDecl {
                name: "m0".into(),
                size: 4,
                width: None,
            },
            MemDecl {
                name: "m1".into(),
                size: 8,
                width: None,
            },
        ];
        let full = stimuli_for(&mems, 9, 2, 16);
        let reduced = stimuli_for(&mems[1..], 9, 2, 16);
        assert_eq!(full[1], reduced[0]);
    }
}
