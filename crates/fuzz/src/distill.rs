//! Corpus distillation: a greedy minimal subset preserving coverage.
//!
//! Mega-campaigns accrete corpora where late cases subsume early ones: a
//! case saved for one fresh key may be fully covered by a later, richer
//! case. Distillation re-executes every saved case to recover its *full*
//! coverage set (the `.meta` files only record the keys that were new at
//! save time, which is useless for set cover), then greedily picks the
//! case covering the most still-uncovered keys until the union is
//! preserved. Ties break toward the lexicographically smallest file
//! name, so the result is deterministic.
//!
//! Re-execution is exact: saved sources are re-parsed and their stimuli
//! re-derived from the `(seed, index)` encoded in the file name — the
//! same derivation ([`stimuli_for`]) the campaign used.

use crate::corpus::Corpus;
use crate::coverage::CoverageMap;
use crate::exec::{run_case, CaseOutcome, ExecOptions};
use crate::gen::{stimuli_for, Case};
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

/// Knobs for [`distill`].
#[derive(Debug, Clone)]
pub struct DistillOptions {
    /// The corpus to distill.
    pub corpus_dir: PathBuf,
    /// Design data width the corpus was fuzzed at (stimuli derivation
    /// depends on it).
    pub width: u32,
    /// Where to write the distilled corpus (`None` = report only).
    pub out_dir: Option<PathBuf>,
    /// Kernel-tick watchdog per configuration while re-executing.
    pub max_ticks: u64,
}

impl Default for DistillOptions {
    fn default() -> Self {
        DistillOptions {
            corpus_dir: PathBuf::new(),
            width: 16,
            out_dir: None,
            max_ticks: 5_000_000,
        }
    }
}

/// What [`distill`] produced.
#[derive(Debug)]
pub struct DistillReport {
    /// Deterministic human-readable log, ready to print.
    pub log: String,
    /// Kept case file names, in greedy pick order.
    pub kept: Vec<String>,
    /// Total saved cases examined.
    pub examined: usize,
    /// The preserved coverage union.
    pub coverage: CoverageMap,
}

/// One re-executed corpus case.
struct Candidate {
    name: String,
    case: Case,
    coverage: CoverageMap,
}

/// Distills a corpus to a greedy minimal subset with the same coverage
/// union.
///
/// # Errors
///
/// Returns the underlying I/O error for unreadable corpus files or an
/// unwritable output directory; a saved case that no longer parses
/// surfaces as [`io::ErrorKind::InvalidData`].
pub fn distill(opts: &DistillOptions) -> io::Result<DistillReport> {
    let corpus = Corpus::open(&opts.corpus_dir)?;
    let exec = ExecOptions {
        max_ticks: opts.max_ticks,
        ..ExecOptions::default()
    };

    let mut log = String::new();
    let mut candidates = Vec::new();
    for path in corpus.cases()? {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let candidate = load_case(&path, opts.width)?;
        match run_case(&candidate, opts.width, &exec) {
            CaseOutcome::Pass { coverage } => candidates.push(Candidate {
                name,
                case: candidate,
                coverage,
            }),
            CaseOutcome::Divergence(d) => {
                // A diverging case is kept unconditionally: it is a
                // repro, not a coverage carrier.
                let _ = writeln!(log, "keep {name} (diverges: {:?})", d.kind);
                candidates.push(Candidate {
                    name,
                    case: candidate,
                    coverage: CoverageMap::new(),
                });
            }
            CaseOutcome::GeneratorError(e) => {
                let _ = writeln!(log, "drop {name} (no longer executes: {e})");
            }
        }
    }
    let examined = candidates.len();

    let mut target = CoverageMap::new();
    for candidate in &candidates {
        target.merge(candidate.coverage.clone());
    }
    let _ = writeln!(
        log,
        "fpgafuzz distill: {examined} cases, {} coverage keys",
        target.len()
    );

    // Greedy set cover: most still-uncovered keys first, ties to the
    // lexicographically smallest name (candidates arrive name-sorted, so
    // a strict `>` keeps the earliest maximum).
    let mut covered = CoverageMap::new();
    let mut kept: Vec<usize> = Vec::new();
    // Diverging repros (empty coverage) are always kept, first.
    for (i, candidate) in candidates.iter().enumerate() {
        if candidate.coverage.is_empty() {
            kept.push(i);
        }
    }
    while covered.len() < target.len() {
        let mut best: Option<(usize, usize)> = None;
        for (i, candidate) in candidates.iter().enumerate() {
            if kept.contains(&i) {
                continue;
            }
            let gain = candidate
                .coverage
                .iter()
                .filter(|k| !covered.contains(k))
                .count();
            if gain > 0 && best.is_none_or(|(_, g)| gain > g) {
                best = Some((i, gain));
            }
        }
        let Some((i, gain)) = best else { break };
        covered.merge(candidates[i].coverage.clone());
        let _ = writeln!(log, "keep {} (+{gain} keys)", candidates[i].name);
        kept.push(i);
    }
    kept.sort_unstable();
    let _ = writeln!(
        log,
        "distilled: {}/{examined} cases preserve {} keys",
        kept.len(),
        covered.len()
    );

    if let Some(out_dir) = &opts.out_dir {
        let out = Corpus::open(out_dir)?;
        let mut incremental = CoverageMap::new();
        for &i in &kept {
            let candidate = &candidates[i];
            let fresh: Vec<String> = candidate
                .coverage
                .iter()
                .filter(|k| !incremental.contains(k))
                .map(String::from)
                .collect();
            incremental.merge(candidate.coverage.clone());
            out.save_case(&candidate.case, &fresh)?;
        }
        out.save_coverage(&covered)?;
        let _ = writeln!(log, "wrote {} cases to {}", kept.len(), out_dir.display());
    }

    Ok(DistillReport {
        kept: kept.iter().map(|&i| candidates[i].name.clone()).collect(),
        examined,
        coverage: covered,
        log,
    })
}

/// Reconstructs a [`Case`] from a saved `seedS-caseI.src` file: the
/// program from the source text, the stimuli from the name-encoded
/// `(seed, index)` — exactly what the campaign executed.
fn load_case(path: &Path, width: u32) -> io::Result<Case> {
    let invalid = |message: String| io::Error::new(io::ErrorKind::InvalidData, message);
    let stem = path
        .file_stem()
        .and_then(|s| s.to_str())
        .ok_or_else(|| invalid(format!("{}: unreadable file name", path.display())))?;
    let bad_stem = || invalid(format!("{}: expected seedS-caseI.src", path.display()));
    let (seed_part, case_part) = stem.split_once('-').ok_or_else(bad_stem)?;
    let seed: u64 = seed_part
        .strip_prefix("seed")
        .and_then(|s| s.parse().ok())
        .ok_or_else(bad_stem)?;
    let index: u64 = case_part
        .strip_prefix("case")
        .and_then(|s| s.parse().ok())
        .ok_or_else(bad_stem)?;
    let source = std::fs::read_to_string(path)?;
    let program = nenya::lang::parse(&source)
        .map_err(|e| invalid(format!("{}: {e}", path.display())))?;
    let stimuli = stimuli_for(&program.mems, seed, index, width);
    Ok(Case {
        seed,
        index,
        source,
        program,
        stimuli,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, CampaignOptions};

    #[test]
    fn distilled_corpus_preserves_the_coverage_union() {
        let dir = std::env::temp_dir().join("fpgafuzz_distill_test");
        let _ = std::fs::remove_dir_all(&dir);
        let report = run_campaign(&CampaignOptions {
            seed: 7,
            cases: 30,
            corpus_dir: Some(dir.clone()),
            ..CampaignOptions::default()
        })
        .unwrap();
        assert!(report.new_keys > 0, "campaign saved nothing to distill");

        let out = dir.join("distilled");
        let distilled = distill(&DistillOptions {
            corpus_dir: dir.clone(),
            out_dir: Some(out.clone()),
            ..DistillOptions::default()
        })
        .unwrap();
        assert!(!distilled.kept.is_empty());
        assert!(distilled.kept.len() <= distilled.examined);

        // The written subset re-distills to itself: same union, and no
        // case is droppable.
        let again = distill(&DistillOptions {
            corpus_dir: out,
            out_dir: None,
            ..DistillOptions::default()
        })
        .unwrap();
        assert_eq!(again.coverage, distilled.coverage);
        assert_eq!(again.kept.len(), distilled.kept.len());

        // Deterministic: identical up to the `wrote N cases` line that
        // only the `--out` invocation appends.
        let repeat = distill(&DistillOptions {
            corpus_dir: dir,
            out_dir: None,
            ..DistillOptions::default()
        })
        .unwrap();
        let sans_wrote: String = distilled
            .log
            .lines()
            .filter(|line| !line.starts_with("wrote "))
            .map(|line| format!("{line}\n"))
            .collect();
        assert_eq!(repeat.log, sans_wrote);
        let _ = std::fs::remove_dir_all(std::env::temp_dir().join("fpgafuzz_distill_test"));
    }
}
