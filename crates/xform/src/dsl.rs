//! The stylesheet text syntax — the analogue of writing an `.xsl` file.
//!
//! ```text
//! // datapath to hds
//! template datapath {
//!   emit "hds {@name}\n"
//!   apply signals/signal
//!   apply cells/cell
//! }
//! template signal { emit "signal {@name} {@width}\n" }
//! template cell {
//!   emit "inst {@name} {@kind}"
//!   for-each param { emit " {@key}={@value}" }
//!   for-each conn  { emit " {@port}:{@signal}" }
//!   emit "\n"
//! }
//! ```
//!
//! Actions: `emit "…"` (with `{…}` interpolation), `apply [path]`,
//! `for-each path { … }`, and `if <cond> { … } [else { … }]` where a
//! condition is a value reference optionally compared with `== "literal"`
//! (bare form tests existence/non-emptiness). Value references: `@attr`,
//! `../@attr` (any number of `../` hops), `name()`, `text()`,
//! `position()`, or an [`xmlite::path`] expression. String escapes:
//! `\n`, `\t`, `\"`, `\\`; literal braces as `{{` and `}}`.

use crate::ast::{Action, Cond, EmitPiece, Pattern, Rule, SelectPath, Stylesheet, ValueRef};
use std::error::Error;
use std::fmt;

/// Error produced for malformed stylesheet text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDslError {
    message: String,
    line: usize,
}

impl ParseDslError {
    fn new(message: impl Into<String>, line: usize) -> Self {
        ParseDslError {
            message: message.into(),
            line,
        }
    }

    /// 1-based line of the error.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseDslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (line {})", self.message, self.line)
    }
}

impl Error for ParseDslError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Word(String),
    Str(String),
    Open,
    Close,
}

fn tokenize(source: &str) -> Result<Vec<(Token, usize)>, ParseDslError> {
    let mut tokens = Vec::new();
    let mut chars = source.chars().peekable();
    let mut line = 1;
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '/' => {
                chars.next();
                if chars.peek() == Some(&'/') {
                    for c in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                            break;
                        }
                    }
                } else {
                    // A path may begin with '/': treat as word start.
                    let mut word = String::from("/");
                    while let Some(&c) = chars.peek() {
                        if c.is_whitespace() || c == '{' || c == '}' || c == '"' {
                            break;
                        }
                        word.push(c);
                        chars.next();
                    }
                    tokens.push((Token::Word(word), line));
                }
            }
            '{' => {
                chars.next();
                tokens.push((Token::Open, line));
            }
            '}' => {
                chars.next();
                tokens.push((Token::Close, line));
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        None => return Err(ParseDslError::new("unterminated string", line)),
                        Some('"') => break,
                        Some('\\') => match chars.next() {
                            Some('n') => s.push('\n'),
                            Some('t') => s.push('\t'),
                            Some('"') => s.push('"'),
                            Some('\\') => s.push('\\'),
                            other => {
                                return Err(ParseDslError::new(
                                    format!("unknown escape '\\{}'", other.unwrap_or(' ')),
                                    line,
                                ))
                            }
                        },
                        Some('\n') => {
                            return Err(ParseDslError::new("newline inside string", line))
                        }
                        Some(c) => s.push(c),
                    }
                }
                tokens.push((Token::Str(s), line));
            }
            _ => {
                let mut word = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_whitespace() || c == '{' || c == '}' || c == '"' {
                        break;
                    }
                    word.push(c);
                    chars.next();
                }
                tokens.push((Token::Word(word), line));
            }
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<(Token, usize)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|(_, l)| *l)
            .unwrap_or(1)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseDslError> {
        Err(ParseDslError::new(message, self.line()))
    }

    fn expect_word(&mut self, expected: &str) -> Result<(), ParseDslError> {
        match self.bump() {
            Some(Token::Word(w)) if w == expected => Ok(()),
            other => self.err(format!("expected '{expected}', found {other:?}")),
        }
    }

    fn expect_open(&mut self) -> Result<(), ParseDslError> {
        match self.bump() {
            Some(Token::Open) => Ok(()),
            other => self.err(format!("expected '{{', found {other:?}")),
        }
    }

    fn stylesheet(&mut self) -> Result<Stylesheet, ParseDslError> {
        let mut rules = Vec::new();
        while self.peek().is_some() {
            self.expect_word("template")?;
            let pattern = match self.bump() {
                Some(Token::Word(w)) => parse_pattern(&w).map_err(|m| {
                    ParseDslError::new(m, self.line())
                })?,
                other => return self.err(format!("expected pattern, found {other:?}")),
            };
            self.expect_open()?;
            let body = self.actions()?;
            rules.push(Rule { pattern, body });
        }
        if rules.is_empty() {
            return self.err("stylesheet has no templates");
        }
        Ok(Stylesheet { rules })
    }

    /// Parses actions until the matching `}` (consumed).
    fn actions(&mut self) -> Result<Vec<Action>, ParseDslError> {
        let mut actions = Vec::new();
        loop {
            match self.bump() {
                Some(Token::Close) => return Ok(actions),
                Some(Token::Word(w)) if w == "emit" => match self.bump() {
                    Some(Token::Str(s)) => {
                        let pieces =
                            parse_emit(&s).map_err(|m| ParseDslError::new(m, self.line()))?;
                        actions.push(Action::Emit(pieces));
                    }
                    other => return self.err(format!("emit needs a string, found {other:?}")),
                },
                Some(Token::Word(w)) if w == "apply" => {
                    // Optional path before the next action/close.
                    let select = match self.peek() {
                        Some(Token::Word(next)) if !is_action_keyword(next) => {
                            let Some(Token::Word(w)) = self.bump() else {
                                unreachable!("peeked a word")
                            };
                            Some(
                                parse_select(&w)
                                    .map_err(|m| ParseDslError::new(m, self.line()))?,
                            )
                        }
                        _ => None,
                    };
                    actions.push(Action::Apply { select });
                }
                Some(Token::Word(w)) if w == "for-each" => {
                    let select = match self.bump() {
                        Some(Token::Word(w)) => {
                            parse_select(&w).map_err(|m| ParseDslError::new(m, self.line()))?
                        }
                        other => {
                            return self.err(format!("for-each needs a path, found {other:?}"))
                        }
                    };
                    self.expect_open()?;
                    let body = self.actions()?;
                    actions.push(Action::ForEach { select, body });
                }
                Some(Token::Word(w)) if w == "if" => {
                    let operand = match self.bump() {
                        Some(Token::Word(w)) => parse_value_ref(&w)
                            .map_err(|m| ParseDslError::new(m, self.line()))?,
                        other => return self.err(format!("if needs an operand, found {other:?}")),
                    };
                    let cond = if matches!(self.peek(), Some(Token::Word(w)) if w == "==") {
                        self.bump();
                        match self.bump() {
                            Some(Token::Str(s)) => Cond::Equals(operand, s),
                            other => {
                                return self
                                    .err(format!("'==' needs a string literal, found {other:?}"))
                            }
                        }
                    } else {
                        Cond::Exists(operand)
                    };
                    self.expect_open()?;
                    let then_body = self.actions()?;
                    let else_body = if matches!(self.peek(), Some(Token::Word(w)) if w == "else") {
                        self.bump();
                        self.expect_open()?;
                        self.actions()?
                    } else {
                        Vec::new()
                    };
                    actions.push(Action::If {
                        cond,
                        then_body,
                        else_body,
                    });
                }
                other => return self.err(format!("expected action, found {other:?}")),
            }
        }
    }
}

fn is_action_keyword(word: &str) -> bool {
    matches!(word, "emit" | "apply" | "for-each" | "if" | "else" | "template")
}

fn parse_pattern(text: &str) -> Result<Pattern, String> {
    let (name_part, mut rest) = match text.find('[') {
        Some(i) => (&text[..i], &text[i..]),
        None => (text, ""),
    };
    if name_part.is_empty() {
        return Err("pattern has no name".to_string());
    }
    let mut predicates = Vec::new();
    while !rest.is_empty() {
        let end = rest
            .find(']')
            .ok_or_else(|| "unterminated pattern predicate".to_string())?;
        let inner = &rest[1..end];
        let (attr, value) = inner
            .split_once('=')
            .ok_or_else(|| format!("pattern predicate '{inner}' is not attr=value"))?;
        predicates.push((attr.to_string(), value.to_string()));
        rest = &rest[end + 1..];
    }
    Ok(Pattern {
        name: name_part.to_string(),
        predicates,
    })
}

fn strip_parents(text: &str) -> (usize, &str) {
    let mut parents = 0;
    let mut rest = text;
    while let Some(r) = rest.strip_prefix("../") {
        parents += 1;
        rest = r;
    }
    (parents, rest)
}

fn parse_select(text: &str) -> Result<SelectPath, String> {
    let (parents, rest) = strip_parents(text);
    let path = xmlite::path::Path::parse(rest).map_err(|e| e.to_string())?;
    if path.selects_attribute() {
        return Err(format!("selection '{text}' must select elements, not attributes"));
    }
    Ok(SelectPath {
        parents,
        source: text.to_string(),
        path,
    })
}

fn parse_value_ref(text: &str) -> Result<ValueRef, String> {
    let (parents, rest) = strip_parents(text);
    if let Some(attr) = rest.strip_prefix('@') {
        if attr.is_empty() {
            return Err("empty attribute reference".to_string());
        }
        return Ok(ValueRef::Attr {
            parents,
            name: attr.to_string(),
        });
    }
    match rest {
        "name()" if parents == 0 => return Ok(ValueRef::Name),
        "text()" if parents == 0 => return Ok(ValueRef::Text),
        "position()" if parents == 0 => return Ok(ValueRef::Position),
        _ => {}
    }
    let path = xmlite::path::Path::parse(rest).map_err(|e| e.to_string())?;
    Ok(ValueRef::Path {
        parents,
        source: text.to_string(),
        path,
    })
}

fn parse_emit(text: &str) -> Result<Vec<EmitPiece>, String> {
    let mut pieces = Vec::new();
    let mut literal = String::new();
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '{' if chars.peek() == Some(&'{') => {
                chars.next();
                literal.push('{');
            }
            '}' if chars.peek() == Some(&'}') => {
                chars.next();
                literal.push('}');
            }
            '{' => {
                if !literal.is_empty() {
                    pieces.push(EmitPiece::Literal(std::mem::take(&mut literal)));
                }
                let mut expr = String::new();
                loop {
                    match chars.next() {
                        None => return Err("unterminated '{' interpolation".to_string()),
                        Some('}') => break,
                        Some(c) => expr.push(c),
                    }
                }
                pieces.push(EmitPiece::Value(parse_value_ref(expr.trim())?));
            }
            '}' => return Err("stray '}' in emit string (use '}}')".to_string()),
            c => literal.push(c),
        }
    }
    if !literal.is_empty() {
        pieces.push(EmitPiece::Literal(literal));
    }
    Ok(pieces)
}

/// Parses stylesheet text into a [`Stylesheet`].
///
/// # Errors
///
/// Returns [`ParseDslError`] with the offending line for syntax errors.
pub fn parse_stylesheet(source: &str) -> Result<Stylesheet, ParseDslError> {
    let tokens = tokenize(source)?;
    let mut parser = Parser { tokens, pos: 0 };
    parser.stylesheet()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_stylesheet() {
        let sheet = parse_stylesheet(r#"template a { emit "hi" }"#).unwrap();
        assert_eq!(sheet.rules.len(), 1);
        assert_eq!(sheet.rules[0].pattern.name, "a");
        assert_eq!(
            sheet.rules[0].body,
            vec![Action::Emit(vec![EmitPiece::Literal("hi".into())])]
        );
    }

    #[test]
    fn parses_interpolations() {
        let sheet = parse_stylesheet(r#"template a { emit "{@x} {name()} {text()} {position()} {../@y} {b/@z}" }"#)
            .unwrap();
        let Action::Emit(pieces) = &sheet.rules[0].body[0] else {
            panic!()
        };
        let values: Vec<&EmitPiece> = pieces
            .iter()
            .filter(|p| matches!(p, EmitPiece::Value(_)))
            .collect();
        assert_eq!(values.len(), 6);
        assert!(matches!(
            values[4],
            EmitPiece::Value(ValueRef::Attr { parents: 1, .. })
        ));
        assert!(matches!(
            values[5],
            EmitPiece::Value(ValueRef::Path { .. })
        ));
    }

    #[test]
    fn brace_escapes() {
        let sheet = parse_stylesheet(r#"template a { emit "digraph {{ x }}" }"#).unwrap();
        let Action::Emit(pieces) = &sheet.rules[0].body[0] else {
            panic!()
        };
        assert_eq!(pieces, &[EmitPiece::Literal("digraph { x }".into())]);
    }

    #[test]
    fn string_escapes() {
        let sheet = parse_stylesheet(r#"template a { emit "line\n\tquote \"q\" back\\slash" }"#).unwrap();
        let Action::Emit(pieces) = &sheet.rules[0].body[0] else {
            panic!()
        };
        assert_eq!(
            pieces,
            &[EmitPiece::Literal("line\n\tquote \"q\" back\\slash".into())]
        );
    }

    #[test]
    fn parses_control_actions() {
        let src = r#"
            // comment
            template cell[kind=add] {
                apply
                apply conn
                for-each param { emit "{@key}" }
                if @port == "y" { emit "out" } else { emit "in" }
                if sub { emit "has sub" }
            }
        "#;
        let sheet = parse_stylesheet(src).unwrap();
        let body = &sheet.rules[0].body;
        assert!(matches!(body[0], Action::Apply { select: None }));
        assert!(matches!(body[1], Action::Apply { select: Some(_) }));
        assert!(matches!(body[2], Action::ForEach { .. }));
        assert!(matches!(
            body[3],
            Action::If {
                cond: Cond::Equals(_, _),
                ..
            }
        ));
        assert!(matches!(
            body[4],
            Action::If {
                cond: Cond::Exists(_),
                ..
            }
        ));
        assert_eq!(
            sheet.rules[0].pattern.predicates,
            vec![("kind".to_string(), "add".to_string())]
        );
    }

    #[test]
    fn apply_before_close_and_keywords() {
        // `apply` directly followed by `}` and by another action keyword.
        let sheet =
            parse_stylesheet(r#"template a { apply } template b { apply emit "x" }"#).unwrap();
        assert!(matches!(sheet.rules[0].body[0], Action::Apply { select: None }));
        assert_eq!(sheet.rules[1].body.len(), 2);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_stylesheet("").is_err());
        assert!(parse_stylesheet("template").is_err());
        assert!(parse_stylesheet("template a {").is_err());
        assert!(parse_stylesheet(r#"template a { emit }"#).is_err());
        assert!(parse_stylesheet(r#"template a { emit "unclosed {x" }"#).is_err());
        assert!(parse_stylesheet(r#"template a { emit "stray }" }"#).is_err());
        assert!(parse_stylesheet(r#"template a { bogus }"#).is_err());
        assert!(parse_stylesheet(r#"template a { if @x == y { } }"#).is_err());
        assert!(parse_stylesheet(r#"template a { for-each { } }"#).is_err());
        assert!(parse_stylesheet(r#"template a[unclosed { }"#).is_err());
        assert!(parse_stylesheet(r#"template a { emit "\q" }"#).is_err());
        let err = parse_stylesheet("template a {\n  emit\n}").unwrap_err();
        assert!(err.line() >= 2, "line was {}", err.line());
    }

    #[test]
    fn selection_must_be_elements() {
        assert!(parse_stylesheet(r#"template a { for-each b/@attr { } }"#).is_err());
    }
}
