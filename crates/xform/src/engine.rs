//! The transformation engine: instantiating template rules over a
//! document.

use crate::ast::{Action, Cond, EmitPiece, Stylesheet, ValueRef};
use std::error::Error;
use std::fmt;
use xmlite::Element;

/// Error raised while applying a stylesheet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApplyError {
    /// A `../` reference climbed past the document root.
    ParentOfRoot {
        /// The reference's source text.
        reference: String,
    },
    /// Template recursion exceeded the safety limit (an `apply` with an
    /// upward selection can loop).
    DepthLimit,
}

impl fmt::Display for ApplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApplyError::ParentOfRoot { reference } => {
                write!(f, "reference '{reference}' climbs past the document root")
            }
            ApplyError::DepthLimit => f.write_str("template recursion limit exceeded"),
        }
    }
}

impl Error for ApplyError {}

const DEPTH_LIMIT: usize = 1000;

/// Applies a stylesheet to an element tree, returning the produced text.
///
/// Matching follows first-rule-wins; elements without a matching rule get
/// the built-in behaviour (emit text children, recurse into element
/// children), so sparse stylesheets work like sparse XSLT.
///
/// # Errors
///
/// Returns [`ApplyError`] for upward references past the root or runaway
/// recursion.
pub fn apply(sheet: &Stylesheet, root: &Element) -> Result<String, ApplyError> {
    let mut out = String::new();
    let mut stack = Vec::new();
    walk(sheet, &mut stack, root, 1, &mut out)?;
    Ok(out)
}

fn walk<'a>(
    sheet: &Stylesheet,
    stack: &mut Vec<&'a Element>,
    element: &'a Element,
    position: usize,
    out: &mut String,
) -> Result<(), ApplyError> {
    if stack.len() >= DEPTH_LIMIT {
        return Err(ApplyError::DepthLimit);
    }
    stack.push(element);
    let result = match sheet.rule_for(element) {
        Some(rule) => run_actions(sheet, stack, &rule.body, position, out),
        None => {
            // Built-in rule: text content, then recurse into children.
            let text = element.text();
            if !text.is_empty() {
                out.push_str(&text);
            }
            let children: Vec<&Element> = element.child_elements().collect();
            let mut r = Ok(());
            for (i, child) in children.iter().enumerate() {
                r = walk(sheet, stack, child, i + 1, out);
                if r.is_err() {
                    break;
                }
            }
            r
        }
    };
    stack.pop();
    result
}

fn context<'a>(
    stack: &[&'a Element],
    parents: usize,
    reference: &str,
) -> Result<&'a Element, ApplyError> {
    if parents >= stack.len() {
        return Err(ApplyError::ParentOfRoot {
            reference: reference.to_string(),
        });
    }
    Ok(stack[stack.len() - 1 - parents])
}

fn resolve(
    stack: &[&Element],
    value: &ValueRef,
    position: usize,
) -> Result<String, ApplyError> {
    let current = *stack.last().expect("walk pushed the current element");
    Ok(match value {
        ValueRef::Attr { parents, name } => context(stack, *parents, &format!("../@{name}"))?
            .attr(name)
            .unwrap_or("")
            .to_string(),
        ValueRef::Name => current.name().to_string(),
        ValueRef::Text => current.text(),
        ValueRef::Position => position.to_string(),
        ValueRef::Path {
            parents,
            source,
            path,
        } => {
            let base = context(stack, *parents, source)?;
            path.select_values(base).into_iter().next().unwrap_or_default()
        }
    })
}

fn run_actions(
    sheet: &Stylesheet,
    stack: &mut Vec<&Element>,
    actions: &[Action],
    position: usize,
    out: &mut String,
) -> Result<(), ApplyError> {
    let current = *stack.last().expect("current element present");
    for action in actions {
        match action {
            Action::Emit(pieces) => {
                for piece in pieces {
                    match piece {
                        EmitPiece::Literal(text) => out.push_str(text),
                        EmitPiece::Value(value) => {
                            let v = resolve(stack, value, position)?;
                            out.push_str(&v);
                        }
                    }
                }
            }
            Action::Apply { select } => {
                let targets: Vec<&Element> = match select {
                    None => current.child_elements().collect(),
                    Some(sel) => {
                        let base = context(stack, sel.parents, &sel.source)?;
                        sel.path.select(base)
                    }
                };
                for (i, target) in targets.iter().enumerate() {
                    walk(sheet, stack, target, i + 1, out)?;
                }
            }
            Action::ForEach { select, body } => {
                let base = context(stack, select.parents, &select.source)?;
                let targets = select.path.select(base);
                for (i, target) in targets.iter().enumerate() {
                    if stack.len() >= DEPTH_LIMIT {
                        return Err(ApplyError::DepthLimit);
                    }
                    stack.push(target);
                    let r = run_actions(sheet, stack, body, i + 1, out);
                    stack.pop();
                    r?;
                }
            }
            Action::If {
                cond,
                then_body,
                else_body,
            } => {
                let truth = match cond {
                    Cond::Exists(value) => match value {
                        // Existence of an attribute is presence, not
                        // non-emptiness of its value.
                        ValueRef::Attr { parents, name } => {
                            context(stack, *parents, &format!("../@{name}"))?
                                .attr(name)
                                .is_some()
                        }
                        ValueRef::Path {
                            parents,
                            source,
                            path,
                        } => {
                            let base = context(stack, *parents, source)?;
                            !path.select(base).is_empty()
                        }
                        other => !resolve(stack, other, position)?.is_empty(),
                    },
                    Cond::Equals(value, literal) => resolve(stack, value, position)? == *literal,
                };
                let body = if truth { then_body } else { else_body };
                run_actions(sheet, stack, body, position, out)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::parse_stylesheet;
    use xmlite::Document;

    fn transform(sheet: &str, xml: &str) -> String {
        let sheet = parse_stylesheet(sheet).unwrap();
        let doc = Document::parse(xml).unwrap();
        apply(&sheet, doc.root()).unwrap()
    }

    #[test]
    fn emit_with_interpolation() {
        let out = transform(
            r#"template a { emit "name={name()} x={@x} missing={@zz}\n" }"#,
            "<a x='1'/>",
        );
        assert_eq!(out, "name=a x=1 missing=\n");
    }

    #[test]
    fn apply_recurses_with_matching_rules() {
        let out = transform(
            r#"
                template list { emit "[" apply item emit "]" }
                template item { emit "({@v})" }
            "#,
            "<list><item v='1'/><item v='2'/><skip/></list>",
        );
        assert_eq!(out, "[(1)(2)]");
    }

    #[test]
    fn builtin_rule_emits_text_and_recurses() {
        let out = transform(
            r#"template leaf { emit "L" }"#,
            "<root>hello <mid><leaf/></mid></root>",
        );
        assert_eq!(out, "hello L");
    }

    #[test]
    fn for_each_and_position() {
        let out = transform(
            r#"template r { for-each e { emit "{position()}:{@n} " } }"#,
            "<r><e n='a'/><e n='b'/><e n='c'/></r>",
        );
        assert_eq!(out, "1:a 2:b 3:c ");
    }

    #[test]
    fn parent_references() {
        let out = transform(
            r#"template r { for-each e { emit "{../@name}/{@n} " } }"#,
            "<r name='top'><e n='a'/><e n='b'/></r>",
        );
        assert_eq!(out, "top/a top/b ");
    }

    #[test]
    fn conditionals() {
        let out = transform(
            r#"
                template r { apply e }
                template e {
                    if @kind == "x" { emit "X" } else { emit "o" }
                    if @extra { emit "+" }
                }
            "#,
            "<r><e kind='x'/><e kind='y' extra=''/><e kind='x' extra='1'/></r>",
        );
        assert_eq!(out, "Xo+X+");
    }

    #[test]
    fn exists_on_path() {
        let out = transform(
            r#"template r { if sub { emit "yes" } else { emit "no" } }"#,
            "<r><sub/></r>",
        );
        assert_eq!(out, "yes");
        let out = transform(
            r#"template r { if sub { emit "yes" } else { emit "no" } }"#,
            "<r/>",
        );
        assert_eq!(out, "no");
    }

    #[test]
    fn path_interpolation_takes_first() {
        let out = transform(
            r#"template r { emit "{e/@n}" }"#,
            "<r><e n='first'/><e n='second'/></r>",
        );
        assert_eq!(out, "first");
    }

    #[test]
    fn apply_with_explicit_selection() {
        let out = transform(
            r#"
                template r { apply deep/e }
                template e { emit "{@n}" }
            "#,
            "<r><deep><e n='1'/></deep><e n='skip'/></r>",
        );
        assert_eq!(out, "1");
    }

    #[test]
    fn parent_of_root_is_an_error() {
        let sheet = parse_stylesheet(r#"template a { emit "{../@x}" }"#).unwrap();
        let doc = Document::parse("<a/>").unwrap();
        let err = apply(&sheet, doc.root()).unwrap_err();
        assert!(matches!(err, ApplyError::ParentOfRoot { .. }));
    }

    #[test]
    fn first_matching_rule_wins() {
        let out = transform(
            r#"
                template e[kind=special] { emit "S" }
                template e { emit "e" }
                template r { apply }
            "#,
            "<r><e/><e kind='special'/></r>",
        );
        assert_eq!(out, "eS");
    }
}
