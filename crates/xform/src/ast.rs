//! The stylesheet object model: rules, patterns, and template actions.

use std::fmt;

/// A compiled stylesheet: an ordered list of template rules.
///
/// Rules are tried in order; the first whose [`Pattern`] matches the
/// current element is instantiated (first-match, like an XSLT stylesheet
/// with explicit priorities).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stylesheet {
    /// Template rules in priority order.
    pub rules: Vec<Rule>,
}

impl Stylesheet {
    /// Finds the first rule matching an element name/attribute view.
    pub(crate) fn rule_for(&self, element: &xmlite::Element) -> Option<&Rule> {
        self.rules.iter().find(|r| r.pattern.matches(element))
    }
}

/// One template rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// What elements the rule applies to.
    pub pattern: Pattern,
    /// The actions instantiated for a matching element.
    pub body: Vec<Action>,
}

/// An element pattern: a tag name (or `*`) plus attribute-equality
/// predicates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    /// Tag name; `"*"` matches anything.
    pub name: String,
    /// `[attr=value]` predicates, all of which must hold.
    pub predicates: Vec<(String, String)>,
}

impl Pattern {
    /// Whether the pattern matches an element.
    pub fn matches(&self, element: &xmlite::Element) -> bool {
        (self.name == "*" || element.name() == self.name)
            && self
                .predicates
                .iter()
                .all(|(attr, value)| element.attr(attr) == Some(value.as_str()))
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        for (attr, value) in &self.predicates {
            write!(f, "[{attr}={value}]")?;
        }
        Ok(())
    }
}

/// A value reference inside `{…}` interpolation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValueRef {
    /// `{@attr}` — attribute of the context element (after `parents`
    /// upward hops for `{../@attr}` forms).
    Attr {
        /// Number of `../` hops.
        parents: usize,
        /// Attribute name.
        name: String,
    },
    /// `{name()}` — the context element's tag name.
    Name,
    /// `{text()}` — concatenated text children.
    Text,
    /// `{position()}` — 1-based index within the current apply/for-each
    /// selection.
    Position,
    /// `{path}` or `{path/@attr}` — first value selected by an xmlite
    /// path relative to the context element (after upward hops).
    Path {
        /// Number of `../` hops.
        parents: usize,
        /// The path expression source (kept for display).
        source: String,
        /// The parsed path.
        path: xmlite::path::Path,
    },
}

/// A condition in an `if` action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cond {
    /// True when the value reference produces a non-empty value.
    Exists(ValueRef),
    /// True when the value reference equals a literal.
    Equals(ValueRef, String),
}

/// One template action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Emit literal text with `{…}` interpolations already split out.
    Emit(Vec<EmitPiece>),
    /// Apply templates to a selection of descendant elements (or all
    /// child elements when `select` is `None`).
    Apply {
        /// Optional selection path.
        select: Option<SelectPath>,
    },
    /// Iterate a selection, instantiating the body for each element.
    ForEach {
        /// Selection path.
        select: SelectPath,
        /// Body instantiated per selected element.
        body: Vec<Action>,
    },
    /// Conditional.
    If {
        /// The condition.
        cond: Cond,
        /// Actions when true.
        then_body: Vec<Action>,
        /// Actions when false.
        else_body: Vec<Action>,
    },
}

/// A piece of an `emit` string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmitPiece {
    /// Literal text (escapes already processed).
    Literal(String),
    /// An interpolated value.
    Value(ValueRef),
}

/// A selection path with optional upward hops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectPath {
    /// Number of `../` hops before applying the path.
    pub parents: usize,
    /// Source text (for diagnostics).
    pub source: String,
    /// The parsed path.
    pub path: xmlite::path::Path,
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlite::Element;

    #[test]
    fn pattern_matching() {
        let e = Element::new("cell").with_attr("kind", "add");
        assert!(Pattern {
            name: "cell".into(),
            predicates: vec![]
        }
        .matches(&e));
        assert!(Pattern {
            name: "*".into(),
            predicates: vec![("kind".into(), "add".into())]
        }
        .matches(&e));
        assert!(!Pattern {
            name: "cell".into(),
            predicates: vec![("kind".into(), "mul".into())]
        }
        .matches(&e));
        assert!(!Pattern {
            name: "signal".into(),
            predicates: vec![]
        }
        .matches(&e));
    }

    #[test]
    fn pattern_display() {
        let p = Pattern {
            name: "cell".into(),
            predicates: vec![("kind".into(), "add".into())],
        };
        assert_eq!(p.to_string(), "cell[kind=add]");
    }

    #[test]
    fn first_match_wins() {
        let sheet = Stylesheet {
            rules: vec![
                Rule {
                    pattern: Pattern {
                        name: "a".into(),
                        predicates: vec![("x".into(), "1".into())],
                    },
                    body: vec![],
                },
                Rule {
                    pattern: Pattern {
                        name: "a".into(),
                        predicates: vec![],
                    },
                    body: vec![Action::Apply { select: None }],
                },
            ],
        };
        let specific = Element::new("a").with_attr("x", "1");
        let generic = Element::new("a");
        assert!(sheet.rule_for(&specific).unwrap().body.is_empty());
        assert_eq!(sheet.rule_for(&generic).unwrap().body.len(), 1);
        assert!(sheet.rule_for(&Element::new("b")).is_none());
    }
}
