//! # xform — a template-rule XML transformation engine
//!
//! The XSLT analogue of the DATE'05 test infrastructure: declarative
//! template rules that translate the compiler's XML dialects into the
//! simulator input format (`.hds`), behavioral source code, and Graphviz
//! `dot` — the three arrows fanning out of each XML file in the paper's
//! Figure 1.
//!
//! * [`dsl`] — the stylesheet text syntax (`template … { emit … }`).
//! * [`engine`] — first-match rule application over an
//!   [`xmlite::Element`] tree.
//! * [`stylesheets`] — the six stock translations; users add their own by
//!   writing stylesheet text, exactly as the paper lets users supply XSL
//!   rules for their chosen output language.
//!
//! ## Example
//!
//! ```
//! use xform::{dsl::parse_stylesheet, engine::apply};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let sheet = parse_stylesheet(r#"
//!     template dp   { emit "design {@name}\n" apply unit }
//!     template unit { emit "- {@kind}\n" }
//! "#)?;
//! let doc = xmlite::Document::parse(
//!     "<dp name='x'><unit kind='add'/><unit kind='mul'/></dp>")?;
//! let text = apply(&sheet, doc.root())?;
//! assert_eq!(text, "design x\n- add\n- mul\n");
//! # Ok(())
//! # }
//! ```

mod ast;
pub mod dsl;
pub mod engine;
pub mod stylesheets;

pub use ast::{Action, Cond, EmitPiece, Pattern, Rule, SelectPath, Stylesheet, ValueRef};
pub use dsl::{parse_stylesheet, ParseDslError};
pub use engine::{apply, ApplyError};

/// Parses a stylesheet and applies it to a document in one step.
///
/// # Errors
///
/// Returns the textual form of parse or apply errors; use the two-step
/// API ([`parse_stylesheet`] + [`apply`]) to distinguish them.
pub fn transform(stylesheet_src: &str, doc: &xmlite::Document) -> Result<String, String> {
    let sheet = parse_stylesheet(stylesheet_src).map_err(|e| e.to_string())?;
    apply(&sheet, doc.root()).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transform_one_step() {
        let doc = xmlite::Document::parse("<a x='7'/>").unwrap();
        let out = transform(r#"template a { emit "x={@x}" }"#, &doc).unwrap();
        assert_eq!(out, "x=7");
    }

    #[test]
    fn transform_reports_both_error_kinds() {
        let doc = xmlite::Document::parse("<a/>").unwrap();
        assert!(transform("template", &doc).is_err());
        assert!(transform(r#"template a { emit "{../@x}" }"#, &doc).is_err());
    }
}
