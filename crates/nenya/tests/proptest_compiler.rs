//! Property tests over the compiler pipeline.
//!
//! The central invariant: **temporal partitioning preserves semantics** —
//! executing a program split into k configurations (with scalar transfer
//! through the `__xfer` memory) leaves every user memory with exactly the
//! contents the unpartitioned program produces.
//!
//! Random programs come from the fuzzer's valid-by-construction generator
//! (`fpgafuzz::gen`) rather than ad-hoc string templates: the strategy
//! draws a `(seed, index)` pair and materializes the deterministic case
//! for it, so every program here covers the full statement and operator
//! surface the fuzzer knows how to emit, and any failure is reproducible
//! with `fpgafuzz repro --seed S --index I`.

use fpgafuzz::gen::{generate_case, render, Budget, Case};
use nenya::{compile, CompileOptions};
use proptest::prelude::*;

fn arb_case() -> impl Strategy<Value = Case> {
    (any::<u64>(), 0u64..1024).prop_map(|(seed, index)| {
        generate_case(seed, index, &Budget::default()).expect("generator emits valid programs")
    })
}

fn options() -> CompileOptions {
    CompileOptions {
        width: Budget::default().width,
        ..CompileOptions::default()
    }
}

/// Seeds a design's blank images with the case's stimuli (every word of
/// every user memory defined; internal memories like `__xfer` stay
/// blank, exactly as the flow runs them).
fn seeded_images(
    design: &nenya::Design,
    case: &Case,
) -> std::collections::BTreeMap<String, Vec<Option<i64>>> {
    let mut images = design.blank_images();
    for (mem, values) in &case.stimuli {
        let image = images.get_mut(mem).expect("stimulus memory exists");
        for (word, value) in image.iter_mut().zip(values) {
            *word = Some(*value);
        }
    }
    images
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every fpgafuzz-generated program parses (the generator re-parses
    /// its own rendering), lowers, and interprets without panicking —
    /// the generator/compiler contract the fuzzer's divergence triage
    /// rests on.
    #[test]
    fn fuzz_cases_parse_lower_and_interpret(case in arb_case()) {
        prop_assert_eq!(render(&case.program), case.source.clone());
        let design = compile("gen", &case.source, &options()).unwrap();
        let mut images = seeded_images(&design, &case);
        design
            .execute_golden(&mut images, 2_000_000)
            .expect("golden interpretation terminates");
    }

    /// Partitioned execution (2- and 3-way) matches unpartitioned
    /// execution on every user memory.
    #[test]
    fn partitioning_preserves_semantics(case in arb_case()) {
        let reference = compile("ref", &case.source, &options()).unwrap();
        let mut ref_images = seeded_images(&reference, &case);
        reference
            .execute_golden(&mut ref_images, 2_000_000)
            .expect("reference executes");

        for k in [2usize, 3] {
            let opts = CompileOptions { partitions: k, ..options() };
            let design = compile("part", &case.source, &opts).unwrap();
            let mut images = seeded_images(&design, &case);
            design
                .execute_golden(&mut images, 2_000_000)
                .expect("partitioned design executes");
            for (mem, _) in &case.stimuli {
                prop_assert_eq!(
                    &images[mem], &ref_images[mem],
                    "memory '{}' diverged with k={} for source:\n{}", mem, k, case.source
                );
            }
        }
    }

    /// The compiler never panics and always produces internally
    /// consistent artifacts on generated programs.
    #[test]
    fn compile_produces_consistent_artifacts(case in arb_case()) {
        let design = compile("gen", &case.source, &options()).unwrap();
        for config in &design.configs {
            prop_assert_eq!(config.tac.validate(), Ok(()));
            prop_assert_eq!(config.schedule.validate(&config.tac), Ok(()));
            prop_assert_eq!(config.fsm.validate(&config.datapath), Ok(()));
            prop_assert_eq!(config.datapath.operator_count(), config.tac.operator_count());
        }
        prop_assert_eq!(design.rtg.validate(), Ok(()));
    }

    /// XML serialization round-trips for generated designs.
    #[test]
    fn xml_roundtrips_for_generated_designs(case in arb_case()) {
        let design = compile("gen", &case.source, &options()).unwrap();
        for config in &design.configs {
            let dp_doc = nenya::xml::emit_datapath(&config.datapath);
            let reparsed = xmlite::Document::parse(&dp_doc.to_pretty_string()).unwrap();
            prop_assert_eq!(
                nenya::xml::parse_datapath(&reparsed).unwrap(),
                config.datapath.clone()
            );
            let fsm_doc = nenya::xml::emit_fsm(&config.fsm);
            let reparsed = xmlite::Document::parse(&fsm_doc.to_pretty_string()).unwrap();
            prop_assert_eq!(nenya::xml::parse_fsm(&reparsed).unwrap(), config.fsm.clone());
        }
        let rtg_doc = nenya::xml::emit_rtg(&design.rtg);
        let reparsed = xmlite::Document::parse(&rtg_doc.to_pretty_string()).unwrap();
        prop_assert_eq!(nenya::xml::parse_rtg(&reparsed).unwrap(), design.rtg);
    }

    /// Optimization preserves semantics: the optimized design leaves the
    /// same memory contents as the unoptimized one, while never growing
    /// the design.
    #[test]
    fn optimization_preserves_semantics(case in arb_case()) {
        let plain = compile("plain", &case.source, &options()).unwrap();
        let optimized = compile("opt", &case.source, &CompileOptions {
            optimize: true,
            ..options()
        }).unwrap();

        prop_assert!(
            optimized.configs[0].tac.instrs.len() <= plain.configs[0].tac.instrs.len()
        );
        prop_assert!(optimized.operator_count() <= plain.operator_count());

        let mut a = seeded_images(&plain, &case);
        plain.execute_golden(&mut a, 2_000_000).expect("plain executes");
        let mut b = seeded_images(&optimized, &case);
        optimized.execute_golden(&mut b, 2_000_000).expect("optimized executes");
        for (mem, _) in &case.stimuli {
            prop_assert_eq!(
                &a[mem], &b[mem],
                "memory '{}' diverged for:\n{}", mem, case.source
            );
        }
    }

    /// List scheduling never produces more states than one-op-per-state.
    #[test]
    fn list_schedule_never_worse(case in arb_case()) {
        let packed = compile("p", &case.source, &options()).unwrap();
        let naive = compile("n", &case.source, &CompileOptions {
            policy: nenya::schedule::SchedulePolicy::OneOpPerState,
            ..options()
        }).unwrap();
        prop_assert!(
            packed.configs[0].schedule.state_count()
                <= naive.configs[0].schedule.state_count()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The front end never panics, whatever bytes it is fed.
    #[test]
    fn parser_never_panics(input in "\\PC{0,200}") {
        let _ = nenya::lang::parse(&input);
    }

    /// Deleting a random chunk from a valid generated program either
    /// still compiles or produces a proper error — never a panic.
    #[test]
    fn mutated_programs_never_panic(
        case in arb_case(),
        start in any::<prop::sample::Index>(),
        len in 1usize..40
    ) {
        let src = &case.source;
        let begin = start.index(src.len());
        let end = (begin + len).min(src.len());
        let mut mutated = String::with_capacity(src.len());
        mutated.push_str(&src[..begin]);
        mutated.push_str(&src[end..]);
        let _ = compile("m", &mutated, &options());
    }
}
