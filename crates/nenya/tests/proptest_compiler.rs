//! Property tests over the compiler pipeline.
//!
//! The central invariant: **temporal partitioning preserves semantics** —
//! executing a program split into k configurations (with scalar transfer
//! through the `__xfer` memory) leaves every user memory with exactly the
//! contents the unpartitioned program produces.

use nenya::{compile, CompileOptions};
use proptest::prelude::*;

/// Generates random but always-valid programs: four pre-initialized `int`
/// variables, one input memory and one output memory, and 4–8 top-level
/// statements drawn from assignments, guarded stores, bounded loops, and
/// conditionals. Addresses are masked with `& 15`, divisors avoided, so
/// the only possible runtime error path is exercised deliberately
/// elsewhere.
#[derive(Debug, Clone)]
struct ProgramSpec {
    stmts: Vec<String>,
}

fn arb_expr(depth: u32) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        (0i64..64).prop_map(|v| v.to_string()),
        prop_oneof![Just("v0"), Just("v1"), Just("v2"), Just("v3")].prop_map(str::to_string),
        (0i64..16).prop_map(|i| format!("inp[{i}]")),
    ];
    if depth == 0 {
        leaf.boxed()
    } else {
        let sub = arb_expr(depth - 1);
        prop_oneof![
            leaf,
            (sub.clone(), prop_oneof![
                Just("+"), Just("-"), Just("*"), Just("&"), Just("|"), Just("^")
            ], sub.clone())
                .prop_map(|(a, op, b)| format!("({a} {op} {b})")),
            sub.clone().prop_map(|a| format!("(-{a})")),
            sub.prop_map(|a| format!("(~{a})")),
        ]
        .boxed()
    }
}

fn arb_stmt() -> BoxedStrategy<String> {
    let var = prop_oneof![Just("v0"), Just("v1"), Just("v2"), Just("v3")];
    prop_oneof![
        (var.clone(), arb_expr(2)).prop_map(|(v, e)| format!("{v} = {e};")),
        (arb_expr(1), arb_expr(2)).prop_map(|(a, e)| format!("out[({a}) & 15] = {e};")),
        (var.clone(), 1i64..5, arb_expr(1), arb_expr(1)).prop_map(|(v, n, a, e)| {
            format!(
                "for ({v} = 0; {v} < {n}; {v} = {v} + 1) {{ out[({a} + {v}) & 15] = {e}; }}"
            )
        }),
        (arb_expr(1), arb_expr(1), var).prop_map(|(a, b, v)| {
            format!("if (({a}) < ({b})) {{ {v} = {a}; }} else {{ {v} = {b}; }}")
        }),
    ]
    .boxed()
}

fn arb_program() -> impl Strategy<Value = ProgramSpec> {
    proptest::collection::vec(arb_stmt(), 4..9).prop_map(|stmts| ProgramSpec { stmts })
}

fn render(spec: &ProgramSpec) -> String {
    let mut src = String::from("mem inp[16];\nmem out[16];\nvoid main() {\n");
    src.push_str("int v0 = 1;\nint v1 = 2;\nint v2 = 3;\nint v3 = 4;\n");
    for stmt in &spec.stmts {
        src.push_str(stmt);
        src.push('\n');
    }
    src.push('}');
    src
}

fn seeded_images(design: &nenya::Design) -> std::collections::BTreeMap<String, Vec<Option<i64>>> {
    let mut images = design.blank_images();
    let inp = images.get_mut("inp").expect("inp memory exists");
    for (i, word) in inp.iter_mut().enumerate() {
        *word = Some((i as i64 * 7 - 20) % 100);
    }
    // `out` starts zeroed so every program leaves deterministic contents.
    let out = images.get_mut("out").expect("out memory exists");
    for word in out.iter_mut() {
        *word = Some(0);
    }
    images
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Partitioned execution (2- and 3-way) matches unpartitioned
    /// execution on every user memory.
    #[test]
    fn partitioning_preserves_semantics(spec in arb_program()) {
        let src = render(&spec);
        let reference = compile("ref", &src, &CompileOptions::default()).unwrap();
        let mut ref_images = seeded_images(&reference);
        reference
            .execute_golden(&mut ref_images, 2_000_000)
            .expect("reference executes");

        for k in [2usize, 3] {
            let options = CompileOptions { partitions: k, ..CompileOptions::default() };
            let design = compile("part", &src, &options).unwrap();
            let mut images = seeded_images(&design);
            design
                .execute_golden(&mut images, 2_000_000)
                .expect("partitioned design executes");
            for mem in ["inp", "out"] {
                prop_assert_eq!(
                    &images[mem], &ref_images[mem],
                    "memory '{}' diverged with k={} for source:\n{}", mem, k, src
                );
            }
        }
    }

    /// The compiler never panics and always produces internally
    /// consistent artifacts on generated programs.
    #[test]
    fn compile_produces_consistent_artifacts(spec in arb_program()) {
        let src = render(&spec);
        let design = compile("gen", &src, &CompileOptions::default()).unwrap();
        for config in &design.configs {
            prop_assert_eq!(config.tac.validate(), Ok(()));
            prop_assert_eq!(config.schedule.validate(&config.tac), Ok(()));
            prop_assert_eq!(config.fsm.validate(&config.datapath), Ok(()));
            prop_assert_eq!(config.datapath.operator_count(), config.tac.operator_count());
        }
        prop_assert_eq!(design.rtg.validate(), Ok(()));
    }

    /// XML serialization round-trips for generated designs.
    #[test]
    fn xml_roundtrips_for_generated_designs(spec in arb_program()) {
        let src = render(&spec);
        let design = compile("gen", &src, &CompileOptions::default()).unwrap();
        for config in &design.configs {
            let dp_doc = nenya::xml::emit_datapath(&config.datapath);
            let reparsed = xmlite::Document::parse(&dp_doc.to_pretty_string()).unwrap();
            prop_assert_eq!(
                nenya::xml::parse_datapath(&reparsed).unwrap(),
                config.datapath.clone()
            );
            let fsm_doc = nenya::xml::emit_fsm(&config.fsm);
            let reparsed = xmlite::Document::parse(&fsm_doc.to_pretty_string()).unwrap();
            prop_assert_eq!(nenya::xml::parse_fsm(&reparsed).unwrap(), config.fsm.clone());
        }
        let rtg_doc = nenya::xml::emit_rtg(&design.rtg);
        let reparsed = xmlite::Document::parse(&rtg_doc.to_pretty_string()).unwrap();
        prop_assert_eq!(nenya::xml::parse_rtg(&reparsed).unwrap(), design.rtg);
    }

    /// Optimization preserves semantics: the optimized design leaves the
    /// same memory contents as the unoptimized one, while never growing
    /// the design.
    #[test]
    fn optimization_preserves_semantics(spec in arb_program()) {
        let src = render(&spec);
        let plain = compile("plain", &src, &CompileOptions::default()).unwrap();
        let optimized = compile("opt", &src, &CompileOptions {
            optimize: true,
            ..CompileOptions::default()
        }).unwrap();

        prop_assert!(
            optimized.configs[0].tac.instrs.len() <= plain.configs[0].tac.instrs.len()
        );
        prop_assert!(optimized.operator_count() <= plain.operator_count());

        let mut a = seeded_images(&plain);
        plain.execute_golden(&mut a, 2_000_000).expect("plain executes");
        let mut b = seeded_images(&optimized);
        optimized.execute_golden(&mut b, 2_000_000).expect("optimized executes");
        for mem in ["inp", "out"] {
            prop_assert_eq!(&a[mem], &b[mem], "memory '{}' diverged for:\n{}", mem, src);
        }
    }

    /// List scheduling never produces more states than one-op-per-state.
    #[test]
    fn list_schedule_never_worse(spec in arb_program()) {
        let src = render(&spec);
        let packed = compile("p", &src, &CompileOptions::default()).unwrap();
        let naive = compile("n", &src, &CompileOptions {
            policy: nenya::schedule::SchedulePolicy::OneOpPerState,
            ..CompileOptions::default()
        }).unwrap();
        prop_assert!(
            packed.configs[0].schedule.state_count()
                <= naive.configs[0].schedule.state_count()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The front end never panics, whatever bytes it is fed.
    #[test]
    fn parser_never_panics(input in "\\PC{0,200}") {
        let _ = nenya::lang::parse(&input);
    }

    /// Deleting a random chunk from a valid program either still compiles
    /// or produces a proper error — never a panic.
    #[test]
    fn mutated_programs_never_panic(
        spec in arb_program(),
        start in any::<prop::sample::Index>(),
        len in 1usize..40
    ) {
        let src = render(&spec);
        let begin = start.index(src.len());
        let end = (begin + len).min(src.len());
        let mut mutated = String::with_capacity(src.len());
        mutated.push_str(&src[..begin]);
        mutated.push_str(&src[end..]);
        let _ = compile("m", &mutated, &CompileOptions::default());
    }
}
