//! The XML dialects: serialization of datapaths, FSMs, and RTGs.
//!
//! These are the interchange files at the heart of the paper's flow — the
//! compiler writes `datapath.xml`, `fsm.xml`, and `rtg.xml`; the test
//! infrastructure (and any user-supplied XSL rules) consumes them. Every
//! structure round-trips: `parse_*(emit_*(x)) == x`.

use crate::datapath::{Cell, Datapath};
use crate::fsm::{Fsm, FsmStateDesc, FsmTransitionDesc};
use crate::rtg::{Rtg, RtgNode};
use std::error::Error;
use std::fmt;
use xmlite::{Document, Element};

/// Error produced when an XML document does not match its dialect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DialectError(String);

impl DialectError {
    fn new(message: impl Into<String>) -> Self {
        DialectError(message.into())
    }
}

impl fmt::Display for DialectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed dialect document: {}", self.0)
    }
}

impl Error for DialectError {}

impl From<String> for DialectError {
    fn from(message: String) -> Self {
        DialectError(message)
    }
}

impl From<xmlite::ParseXmlError> for DialectError {
    fn from(e: xmlite::ParseXmlError) -> Self {
        DialectError(e.to_string())
    }
}

// ---------------------------------------------------------------- datapath

/// Serializes a datapath to its XML dialect.
pub fn emit_datapath(dp: &Datapath) -> Document {
    let mut root = Element::new("datapath")
        .with_attr("name", &dp.name)
        .with_attr("width", dp.width.to_string())
        .with_attr("clock", &dp.clock);

    let mut signals = Element::new("signals");
    for (name, width) in &dp.signals {
        signals.push(
            Element::new("signal")
                .with_attr("name", name)
                .with_attr("width", width.to_string()),
        );
    }
    root.push(signals);

    let mut cells = Element::new("cells");
    for cell in &dp.cells {
        let mut e = Element::new("cell")
            .with_attr("name", &cell.name)
            .with_attr("kind", &cell.kind);
        for (key, value) in &cell.params {
            e.push(
                Element::new("param")
                    .with_attr("key", key)
                    .with_attr("value", value),
            );
        }
        for (port, signal) in &cell.conns {
            e.push(
                Element::new("conn")
                    .with_attr("port", port)
                    .with_attr("signal", signal),
            );
        }
        cells.push(e);
    }
    root.push(cells);

    let mut interface = Element::new("interface");
    for (name, width) in &dp.controls {
        interface.push(
            Element::new("control")
                .with_attr("signal", name)
                .with_attr("width", width.to_string()),
        );
    }
    for name in &dp.conditions {
        interface.push(Element::new("condition").with_attr("signal", name));
    }
    root.push(interface);

    Document::new(root)
}

/// Parses a datapath from its XML dialect.
///
/// # Errors
///
/// Returns [`DialectError`] for missing elements or attributes.
pub fn parse_datapath(doc: &Document) -> Result<Datapath, DialectError> {
    let root = doc.root();
    if root.name() != "datapath" {
        return Err(DialectError::new(format!(
            "expected <datapath>, found <{}>",
            root.name()
        )));
    }
    let mut dp = Datapath {
        name: root.attr_required("name")?.to_string(),
        width: root.attr_parse("width")?,
        clock: root.attr_required("clock")?.to_string(),
        signals: Vec::new(),
        cells: Vec::new(),
        controls: Vec::new(),
        conditions: Vec::new(),
    };
    let signals = root
        .first_child_named("signals")
        .ok_or_else(|| DialectError::new("missing <signals>"))?;
    for signal in signals.children_named("signal") {
        dp.signals.push((
            signal.attr_required("name")?.to_string(),
            signal.attr_parse("width")?,
        ));
    }
    let cells = root
        .first_child_named("cells")
        .ok_or_else(|| DialectError::new("missing <cells>"))?;
    for cell in cells.children_named("cell") {
        let mut c = Cell {
            name: cell.attr_required("name")?.to_string(),
            kind: cell.attr_required("kind")?.to_string(),
            params: Vec::new(),
            conns: Vec::new(),
        };
        for param in cell.children_named("param") {
            c.params.push((
                param.attr_required("key")?.to_string(),
                param.attr_required("value")?.to_string(),
            ));
        }
        for conn in cell.children_named("conn") {
            c.conns.push((
                conn.attr_required("port")?.to_string(),
                conn.attr_required("signal")?.to_string(),
            ));
        }
        dp.cells.push(c);
    }
    let interface = root
        .first_child_named("interface")
        .ok_or_else(|| DialectError::new("missing <interface>"))?;
    for control in interface.children_named("control") {
        dp.controls.push((
            control.attr_required("signal")?.to_string(),
            control.attr_parse("width")?,
        ));
    }
    for condition in interface.children_named("condition") {
        dp.conditions
            .push(condition.attr_required("signal")?.to_string());
    }
    Ok(dp)
}

// --------------------------------------------------------------------- fsm

/// Serializes an FSM to its XML dialect.
pub fn emit_fsm(fsm: &Fsm) -> Document {
    let mut root = Element::new("fsm")
        .with_attr("name", &fsm.name)
        .with_attr("initial", &fsm.initial);

    let mut inputs = Element::new("inputs");
    for input in &fsm.inputs {
        inputs.push(Element::new("input").with_attr("signal", input));
    }
    root.push(inputs);

    let mut outputs = Element::new("outputs");
    for (name, width) in &fsm.outputs {
        outputs.push(
            Element::new("output")
                .with_attr("signal", name)
                .with_attr("width", width.to_string()),
        );
    }
    root.push(outputs);

    let mut states = Element::new("states");
    for state in &fsm.states {
        let mut e = Element::new("state")
            .with_attr("name", &state.name)
            .with_attr("terminal", if state.terminal { "true" } else { "false" });
        for (signal, value) in &state.asserts {
            e.push(
                Element::new("assert")
                    .with_attr("output", signal)
                    .with_attr("value", value.to_string()),
            );
        }
        for transition in &state.transitions {
            let mut t = Element::new("transition").with_attr("target", &transition.target);
            if let Some((signal, when)) = &transition.cond {
                t.set_attr("cond", signal);
                t.set_attr("when", if *when { "true" } else { "false" });
            }
            e.push(t);
        }
        states.push(e);
    }
    root.push(states);

    Document::new(root)
}

/// Parses an FSM from its XML dialect.
///
/// # Errors
///
/// Returns [`DialectError`] for missing elements or attributes.
pub fn parse_fsm(doc: &Document) -> Result<Fsm, DialectError> {
    let root = doc.root();
    if root.name() != "fsm" {
        return Err(DialectError::new(format!(
            "expected <fsm>, found <{}>",
            root.name()
        )));
    }
    let mut fsm = Fsm {
        name: root.attr_required("name")?.to_string(),
        initial: root.attr_required("initial")?.to_string(),
        inputs: Vec::new(),
        outputs: Vec::new(),
        states: Vec::new(),
    };
    let inputs = root
        .first_child_named("inputs")
        .ok_or_else(|| DialectError::new("missing <inputs>"))?;
    for input in inputs.children_named("input") {
        fsm.inputs.push(input.attr_required("signal")?.to_string());
    }
    let outputs = root
        .first_child_named("outputs")
        .ok_or_else(|| DialectError::new("missing <outputs>"))?;
    for output in outputs.children_named("output") {
        fsm.outputs.push((
            output.attr_required("signal")?.to_string(),
            output.attr_parse("width")?,
        ));
    }
    let states = root
        .first_child_named("states")
        .ok_or_else(|| DialectError::new("missing <states>"))?;
    for state in states.children_named("state") {
        let terminal = match state.attr("terminal") {
            Some("true") => true,
            Some("false") | None => false,
            Some(other) => {
                return Err(DialectError::new(format!(
                    "bad terminal flag '{other}'"
                )))
            }
        };
        let mut desc = FsmStateDesc {
            name: state.attr_required("name")?.to_string(),
            asserts: Vec::new(),
            transitions: Vec::new(),
            terminal,
        };
        for a in state.children_named("assert") {
            desc.asserts.push((
                a.attr_required("output")?.to_string(),
                a.attr_parse("value")?,
            ));
        }
        for t in state.children_named("transition") {
            let cond = match t.attr("cond") {
                Some(signal) => {
                    let when = match t.attr_required("when")? {
                        "true" => true,
                        "false" => false,
                        other => {
                            return Err(DialectError::new(format!("bad when flag '{other}'")))
                        }
                    };
                    Some((signal.to_string(), when))
                }
                None => None,
            };
            desc.transitions.push(FsmTransitionDesc {
                cond,
                target: t.attr_required("target")?.to_string(),
            });
        }
        fsm.states.push(desc);
    }
    Ok(fsm)
}

// --------------------------------------------------------------------- rtg

/// Serializes an RTG to its XML dialect.
pub fn emit_rtg(rtg: &Rtg) -> Document {
    let mut root = Element::new("rtg").with_attr("name", &rtg.name);
    let mut configs = Element::new("configs");
    for node in &rtg.nodes {
        configs.push(
            Element::new("config")
                .with_attr("id", &node.id)
                .with_attr("datapath", &node.datapath)
                .with_attr("fsm", &node.fsm),
        );
    }
    root.push(configs);
    let mut edges = Element::new("edges");
    for (from, to) in &rtg.edges {
        edges.push(
            Element::new("edge")
                .with_attr("from", from)
                .with_attr("to", to),
        );
    }
    root.push(edges);
    Document::new(root)
}

/// Parses an RTG from its XML dialect.
///
/// # Errors
///
/// Returns [`DialectError`] for missing elements or attributes.
pub fn parse_rtg(doc: &Document) -> Result<Rtg, DialectError> {
    let root = doc.root();
    if root.name() != "rtg" {
        return Err(DialectError::new(format!(
            "expected <rtg>, found <{}>",
            root.name()
        )));
    }
    let mut rtg = Rtg {
        name: root.attr_required("name")?.to_string(),
        nodes: Vec::new(),
        edges: Vec::new(),
    };
    let configs = root
        .first_child_named("configs")
        .ok_or_else(|| DialectError::new("missing <configs>"))?;
    for config in configs.children_named("config") {
        rtg.nodes.push(RtgNode {
            id: config.attr_required("id")?.to_string(),
            datapath: config.attr_required("datapath")?.to_string(),
            fsm: config.attr_required("fsm")?.to_string(),
        });
    }
    let edges = root
        .first_child_named("edges")
        .ok_or_else(|| DialectError::new("missing <edges>"))?;
    for edge in edges.children_named("edge") {
        rtg.edges.push((
            edge.attr_required("from")?.to_string(),
            edge.attr_required("to")?.to_string(),
        ));
    }
    Ok(rtg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datapath::generate;
    use crate::fsm::generate_fsm;
    use crate::lang::parse;
    use crate::lower::lower;
    use crate::schedule::{schedule, SchedulePolicy};

    fn sample() -> (Datapath, Fsm) {
        let prog = lower(
            &parse("mem d[8]; void main() { int i = 0; while (i < 8) { d[i] = i; i = i + 1; } }")
                .unwrap(),
            "demo",
            16,
        )
        .unwrap();
        let sched = schedule(&prog, SchedulePolicy::List);
        let (dp, plan) = generate(&prog, &sched);
        let fsm = generate_fsm(&prog, &sched, &plan, &dp);
        (dp, fsm)
    }

    #[test]
    fn datapath_roundtrip() {
        let (dp, _) = sample();
        let doc = emit_datapath(&dp);
        let back = parse_datapath(&doc).unwrap();
        assert_eq!(dp, back);
        // Reparse from rendered text, as the real flow does.
        let text = doc.to_pretty_string();
        let back2 = parse_datapath(&Document::parse(&text).unwrap()).unwrap();
        assert_eq!(dp, back2);
    }

    #[test]
    fn fsm_roundtrip() {
        let (_, fsm) = sample();
        let doc = emit_fsm(&fsm);
        let back = parse_fsm(&doc).unwrap();
        assert_eq!(fsm, back);
        let text = doc.to_pretty_string();
        let back2 = parse_fsm(&Document::parse(&text).unwrap()).unwrap();
        assert_eq!(fsm, back2);
    }

    #[test]
    fn rtg_roundtrip() {
        let rtg = Rtg::chain(
            "fdct2",
            &[
                ("dp0".to_string(), "fsm0".to_string()),
                ("dp1".to_string(), "fsm1".to_string()),
            ],
        );
        let doc = emit_rtg(&rtg);
        assert_eq!(parse_rtg(&doc).unwrap(), rtg);
    }

    #[test]
    fn wrong_root_rejected() {
        let doc = Document::parse("<bogus/>").unwrap();
        assert!(parse_datapath(&doc).is_err());
        assert!(parse_fsm(&doc).is_err());
        assert!(parse_rtg(&doc).is_err());
    }

    #[test]
    fn missing_sections_rejected() {
        let doc = Document::parse("<datapath name='x' width='16' clock='clk'/>").unwrap();
        let err = parse_datapath(&doc).unwrap_err();
        assert!(err.to_string().contains("signals"), "{err}");

        let doc = Document::parse("<fsm name='x' initial='s0'><inputs/><outputs/></fsm>").unwrap();
        assert!(parse_fsm(&doc).unwrap_err().to_string().contains("states"));

        let doc = Document::parse("<rtg name='x'><configs/></rtg>").unwrap();
        assert!(parse_rtg(&doc).unwrap_err().to_string().contains("edges"));
    }

    #[test]
    fn missing_attributes_rejected() {
        let doc =
            Document::parse("<datapath name='x' width='16' clock='c'><signals><signal name='a'/></signals><cells/><interface/></datapath>")
                .unwrap();
        let err = parse_datapath(&doc).unwrap_err();
        assert!(err.to_string().contains("width"), "{err}");
    }

    #[test]
    fn loxml_metrics_are_positive() {
        let (dp, fsm) = sample();
        assert!(xmlite::loc(&emit_datapath(&dp)) > 20);
        assert!(xmlite::loc(&emit_fsm(&fsm)) > 10);
    }
}
