//! The golden software reference: a direct TAC interpreter.
//!
//! The paper executes the original Java algorithm over the same memory
//! files and compares memory contents afterwards. Here the lowered TAC is
//! executed directly with semantics chosen to match the generated hardware
//! bit for bit:
//!
//! * all arithmetic wraps at the design width (two's complement),
//! * boolean temps are 1-bit values (true reads back as all-ones, exactly
//!   like a 1-bit register),
//! * uninitialized scalars and memory words are `X` (`None`) and propagate
//!   through operators; *using* an `X` where hardware would fail (branch
//!   conditions, memory addresses, stored values) is an execution error,
//!   mirroring the simulator's fail-the-run semantics.

use crate::tac::{BinKind, Instr, TacProgram, UnKind};
use std::error::Error;
use std::fmt;

/// A memory image: one optional word per address (`None` = uninitialized).
pub type MemImage = Vec<Option<i64>>;

/// Execution statistics of a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecStats {
    /// TAC instructions executed.
    pub instructions: u64,
    /// Memory loads performed.
    pub loads: u64,
    /// Memory stores performed.
    pub stores: u64,
    /// Conditional branches executed.
    pub branches: u64,
}

/// Errors surfaced by the interpreter. Each corresponds to a condition the
/// hardware simulation also reports as a failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// `div`/`rem` with a zero divisor.
    DivisionByZero {
        /// Instruction index.
        at: usize,
    },
    /// A branch condition was `X`.
    XCondition {
        /// Instruction index.
        at: usize,
    },
    /// A memory address operand was `X`.
    XAddress {
        /// Instruction index.
        at: usize,
    },
    /// A stored value was `X`.
    XStore {
        /// Instruction index.
        at: usize,
    },
    /// Address outside the memory.
    AddressOutOfRange {
        /// Instruction index.
        at: usize,
        /// Offending address.
        addr: i64,
        /// Memory size.
        size: usize,
    },
    /// The step budget was exhausted (runaway loop).
    StepLimit {
        /// The exhausted budget.
        limit: u64,
    },
    /// The caller supplied the wrong number or shape of memory images.
    MemShape(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::DivisionByZero { at } => write!(f, "division by zero at instruction {at}"),
            ExecError::XCondition { at } => write!(f, "branch on X condition at instruction {at}"),
            ExecError::XAddress { at } => write!(f, "X memory address at instruction {at}"),
            ExecError::XStore { at } => write!(f, "store of X value at instruction {at}"),
            ExecError::AddressOutOfRange { at, addr, size } => write!(
                f,
                "address {addr} out of range (size {size}) at instruction {at}"
            ),
            ExecError::StepLimit { limit } => write!(f, "step limit of {limit} exhausted"),
            ExecError::MemShape(message) => write!(f, "memory image mismatch: {message}"),
        }
    }
}

impl Error for ExecError {}

fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Truncates `value` to `width` bits with sign extension (the canonical
/// value representation at a given design width).
pub fn truncate(value: i64, width: u32) -> i64 {
    let bits = (value as u64) & mask(width);
    if width >= 64 {
        bits as i64
    } else {
        let shift = 64 - width;
        ((bits << shift) as i64) >> shift
    }
}

/// Evaluates one binary operator at the given width, with the same
/// semantics as the simulator's functional units.
///
/// # Errors
///
/// Returns [`ExecError::DivisionByZero`] (with `at` = `usize::MAX`; the
/// interpreter rewrites it) for zero divisors.
pub fn eval_bin(kind: BinKind, a: i64, b: i64, width: u32) -> Result<i64, ExecError> {
    let raw = match kind {
        BinKind::Add => a.wrapping_add(b),
        BinKind::Sub => a.wrapping_sub(b),
        BinKind::Mul => a.wrapping_mul(b),
        BinKind::Div => {
            if b == 0 {
                return Err(ExecError::DivisionByZero { at: usize::MAX });
            }
            a.wrapping_div(b)
        }
        BinKind::Rem => {
            if b == 0 {
                return Err(ExecError::DivisionByZero { at: usize::MAX });
            }
            a.wrapping_rem(b)
        }
        BinKind::And => a & b,
        BinKind::Or => a | b,
        BinKind::Xor => a ^ b,
        BinKind::Shl => a.wrapping_shl((b & 63) as u32),
        BinKind::Shr => a.wrapping_shr((b & 63) as u32),
        BinKind::Ushr => {
            let ua = (a as u64) & mask(width);
            (ua >> ((b & 63) as u32)) as i64
        }
        BinKind::Eq => (a == b) as i64,
        BinKind::Ne => (a != b) as i64,
        BinKind::Lt => (a < b) as i64,
        BinKind::Le => (a <= b) as i64,
        BinKind::Gt => (a > b) as i64,
        BinKind::Ge => (a >= b) as i64,
    };
    let out_width = if kind.yields_bool() { 1 } else { width };
    Ok(truncate(raw, out_width))
}

/// Evaluates one unary operator at the given width.
pub fn eval_un(kind: UnKind, a: i64, width: u32) -> i64 {
    let raw = match kind {
        UnKind::Not => !a,
        UnKind::Neg => a.wrapping_neg(),
    };
    truncate(raw, width)
}

/// Executes `prog` over the given memory images, mutating them in place.
///
/// `mems[i]` corresponds to `prog.mems[i]` and must have exactly that
/// memory's size. `step_limit` bounds execution (hardware has watchdog
/// time limits; the reference needs one too).
///
/// # Errors
///
/// Returns [`ExecError`] for the failure conditions listed on the type.
pub fn execute(
    prog: &TacProgram,
    mems: &mut [MemImage],
    step_limit: u64,
) -> Result<ExecStats, ExecError> {
    if mems.len() != prog.mems.len() {
        return Err(ExecError::MemShape(format!(
            "program has {} memories, {} images supplied",
            prog.mems.len(),
            mems.len()
        )));
    }
    for (spec, image) in prog.mems.iter().zip(mems.iter()) {
        if image.len() != spec.size {
            return Err(ExecError::MemShape(format!(
                "memory '{}' has size {}, image has {}",
                spec.name,
                spec.size,
                image.len()
            )));
        }
    }

    let mut temps: Vec<Option<i64>> = vec![None; prog.temps.len()];
    let mut stats = ExecStats {
        instructions: 0,
        loads: 0,
        stores: 0,
        branches: 0,
    };
    let mut pc = 0usize;
    loop {
        if stats.instructions >= step_limit {
            return Err(ExecError::StepLimit { limit: step_limit });
        }
        stats.instructions += 1;
        let at = pc;
        match &prog.instrs[pc] {
            Instr::Const { dst, value } => {
                temps[dst.0] = Some(truncate(*value, prog.temp_width(*dst)));
                pc += 1;
            }
            Instr::Bin { kind, dst, a, b } => {
                temps[dst.0] = match (temps[a.0], temps[b.0]) {
                    (Some(a), Some(b)) => {
                        Some(eval_bin(*kind, a, b, prog.width).map_err(|e| match e {
                            ExecError::DivisionByZero { .. } => ExecError::DivisionByZero { at },
                            other => other,
                        })?)
                    }
                    _ => None,
                };
                pc += 1;
            }
            Instr::Un { kind, dst, a } => {
                temps[dst.0] = temps[a.0].map(|a| eval_un(*kind, a, prog.temp_width(*dst)));
                pc += 1;
            }
            Instr::Copy { dst, src } => {
                temps[dst.0] = temps[src.0].map(|v| truncate(v, prog.temp_width(*dst)));
                pc += 1;
            }
            Instr::Load { dst, mem, addr } => {
                let addr_value = temps[addr.0].ok_or(ExecError::XAddress { at })?;
                let spec = &prog.mems[*mem];
                let index = check_addr(addr_value, spec.size, at)?;
                stats.loads += 1;
                temps[dst.0] = mems[*mem][index].map(|v| truncate(v, prog.temp_width(*dst)));
                pc += 1;
            }
            Instr::Store { mem, addr, value } => {
                let addr_value = temps[addr.0].ok_or(ExecError::XAddress { at })?;
                let spec = &prog.mems[*mem];
                let index = check_addr(addr_value, spec.size, at)?;
                let v = temps[value.0].ok_or(ExecError::XStore { at })?;
                stats.stores += 1;
                mems[*mem][index] = Some(truncate(v, spec.width));
                pc += 1;
            }
            Instr::Jump { target } => pc = *target,
            Instr::Branch {
                cond,
                if_true,
                if_false,
            } => {
                stats.branches += 1;
                let c = temps[cond.0].ok_or(ExecError::XCondition { at })?;
                pc = if c != 0 { *if_true } else { *if_false };
            }
            Instr::Halt => return Ok(stats),
        }
    }
}

fn check_addr(addr: i64, size: usize, at: usize) -> Result<usize, ExecError> {
    if addr < 0 || addr as usize >= size {
        Err(ExecError::AddressOutOfRange { at, addr, size })
    } else {
        Ok(addr as usize)
    }
}

/// Builds empty (uninitialized) images matching a program's memories.
pub fn blank_images(prog: &TacProgram) -> Vec<MemImage> {
    prog.mems.iter().map(|m| vec![None; m.size]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parse;
    use crate::lower::lower;

    fn run(src: &str) -> (TacProgram, Vec<MemImage>, Result<ExecStats, ExecError>) {
        let prog = lower(&parse(src).unwrap(), "t", 16).unwrap();
        let mut mems = blank_images(&prog);
        let result = execute(&prog, &mut mems, 1_000_000);
        (prog, mems, result)
    }

    #[test]
    fn straight_line_arithmetic() {
        let (_, mems, result) = run("mem out[1]; void main() { out[0] = (3 + 4) * 2 - 1; }");
        result.unwrap();
        assert_eq!(mems[0][0], Some(13));
    }

    #[test]
    fn loops_and_memory() {
        let (_, mems, result) = run(
            "mem d[8]; void main() { int i; for (i = 0; i < 8; i = i + 1) { d[i] = i * i; } }",
        );
        let stats = result.unwrap();
        let values: Vec<i64> = mems[0].iter().map(|v| v.unwrap()).collect();
        assert_eq!(values, [0, 1, 4, 9, 16, 25, 36, 49]);
        assert_eq!(stats.stores, 8);
        assert_eq!(stats.branches, 9);
    }

    #[test]
    fn wrapping_at_design_width() {
        let (_, mems, result) = run("mem out[2]; void main() { out[0] = 30000 + 30000; out[1] = 200 * 300; }");
        result.unwrap();
        assert_eq!(mems[0][0], Some(truncate(60000, 16)));
        assert_eq!(mems[0][1], Some(truncate(60000, 16)));
        assert_eq!(truncate(60000, 16), -5536);
    }

    #[test]
    fn branching_and_boolean_logic() {
        let (_, mems, result) = run(
            "mem out[3]; void main() {
                int a = 5; int b = 9;
                if (a < b && !(a == b)) { out[0] = 1; } else { out[0] = 0; }
                boolean t = true; boolean f = false;
                if (t || f) { out[1] = 1; }
                if (t == !f) { out[2] = 1; }
            }",
        );
        result.unwrap();
        assert_eq!(mems[0][0], Some(1));
        assert_eq!(mems[0][1], Some(1));
        assert_eq!(mems[0][2], Some(1));
    }

    #[test]
    fn java_shift_semantics() {
        let (_, mems, result) = run(
            "mem out[3]; void main() {
                int m = 0 - 32; // -32
                out[0] = m >> 2;   // arithmetic: -8
                out[1] = m >>> 2;  // logical at width 16
                out[2] = 3 << 3;   // 24
            }",
        );
        result.unwrap();
        assert_eq!(mems[0][0], Some(-8));
        // -32 at width 16 is 0xFFE0; >>> 2 = 0x3FF8 = 16376.
        assert_eq!(mems[0][1], Some(16376));
        assert_eq!(mems[0][2], Some(24));
    }

    #[test]
    fn division_semantics_match_java() {
        let (_, mems, result) = run(
            "mem out[2]; void main() { int m = 0 - 7; out[0] = m / 2; out[1] = m % 2; }",
        );
        result.unwrap();
        assert_eq!(mems[0][0], Some(-3)); // truncating division
        assert_eq!(mems[0][1], Some(-1));
    }

    #[test]
    fn division_by_zero_reported() {
        let (_, _, result) = run("mem out[1]; void main() { int z = 0; out[0] = 1 / z; }");
        assert!(matches!(result, Err(ExecError::DivisionByZero { .. })));
    }

    #[test]
    fn x_propagation_and_failures() {
        // Reading an uninitialized variable is fine until it reaches a
        // failure point.
        let (_, _, result) = run("mem out[1]; void main() { int x; out[0] = x + 1; }");
        assert!(matches!(result, Err(ExecError::XStore { .. })));

        let (_, _, result) = run("mem d[2]; void main() { int x; d[x] = 1; }");
        assert!(matches!(result, Err(ExecError::XAddress { .. })));

        let (_, _, result) = run("void main() { boolean b; if (b) { } }");
        assert!(matches!(result, Err(ExecError::XCondition { .. })));

        // Loading an uninitialized memory word yields X.
        let (_, _, result) = run("mem a[2]; mem out[1]; void main() { out[0] = a[0]; }");
        assert!(matches!(result, Err(ExecError::XStore { .. })));
    }

    #[test]
    fn address_out_of_range() {
        let (_, _, result) = run("mem d[4]; void main() { d[9] = 1; }");
        assert!(matches!(
            result,
            Err(ExecError::AddressOutOfRange { addr: 9, size: 4, .. })
        ));
        let (_, _, result) = run("mem d[4]; void main() { d[0 - 1] = 1; }");
        assert!(matches!(result, Err(ExecError::AddressOutOfRange { .. })));
    }

    #[test]
    fn step_limit_stops_runaway_loops() {
        let prog = lower(
            &parse("void main() { int i = 0; while (i == 0) { i = 0; } }").unwrap(),
            "t",
            16,
        )
        .unwrap();
        let mut mems = blank_images(&prog);
        let result = execute(&prog, &mut mems, 500);
        assert_eq!(result, Err(ExecError::StepLimit { limit: 500 }));
    }

    #[test]
    fn mem_shape_validated() {
        let prog = lower(&parse("mem d[4]; void main() { }").unwrap(), "t", 16).unwrap();
        let mut wrong_count: Vec<MemImage> = vec![];
        assert!(matches!(
            execute(&prog, &mut wrong_count, 10),
            Err(ExecError::MemShape(_))
        ));
        let mut wrong_size = vec![vec![None; 3]];
        assert!(matches!(
            execute(&prog, &mut wrong_size, 10),
            Err(ExecError::MemShape(_))
        ));
    }

    #[test]
    fn memory_width_truncation() {
        let (_, mems, result) =
            run("mem d[1] width 4; void main() { d[0] = 100; }"); // 100 & 0xF = 4
        result.unwrap();
        assert_eq!(mems[0][0], Some(4));
    }
}
