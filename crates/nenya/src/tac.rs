//! The three-address-code (TAC) intermediate representation.
//!
//! The compiler lowers the AST into a flat instruction list with virtual
//! registers ([`Temp`]s). Every downstream stage — the golden interpreter,
//! the scheduler, datapath and FSM generation, and temporal partitioning —
//! consumes this IR.

use std::fmt;

/// A virtual register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Temp(pub usize);

impl fmt::Display for Temp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Binary operator kinds. `name()` spells the shared vocabulary used in
/// the datapath XML, the `.hds` format, and the simulator's operator
/// library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinKind {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Ushr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl BinKind {
    /// Canonical lower-case name.
    pub fn name(&self) -> &'static str {
        match self {
            BinKind::Add => "add",
            BinKind::Sub => "sub",
            BinKind::Mul => "mul",
            BinKind::Div => "div",
            BinKind::Rem => "rem",
            BinKind::And => "and",
            BinKind::Or => "or",
            BinKind::Xor => "xor",
            BinKind::Shl => "shl",
            BinKind::Shr => "shr",
            BinKind::Ushr => "ushr",
            BinKind::Eq => "eq",
            BinKind::Ne => "ne",
            BinKind::Lt => "lt",
            BinKind::Le => "le",
            BinKind::Gt => "gt",
            BinKind::Ge => "ge",
        }
    }

    /// Whether the result is a 1-bit boolean.
    pub fn yields_bool(&self) -> bool {
        matches!(
            self,
            BinKind::Eq | BinKind::Ne | BinKind::Lt | BinKind::Le | BinKind::Gt | BinKind::Ge
        )
    }
}

impl fmt::Display for BinKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Unary operator kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnKind {
    /// Bitwise complement; on 1-bit operands this is logical not.
    Not,
    /// Arithmetic negation.
    Neg,
}

impl UnKind {
    /// Canonical lower-case name.
    pub fn name(&self) -> &'static str {
        match self {
            UnKind::Not => "not",
            UnKind::Neg => "neg",
        }
    }
}

impl fmt::Display for UnKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Role of a memory in the design, inferred from access patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemRole {
    /// Only read by the program: input stimulus.
    Input,
    /// Only written: result memory.
    Output,
    /// Read and written: working storage (the FDCT's intermediate image).
    Intermediate,
    /// Never accessed.
    Unused,
}

impl fmt::Display for MemRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemRole::Input => "input",
            MemRole::Output => "output",
            MemRole::Intermediate => "intermediate",
            MemRole::Unused => "unused",
        };
        f.write_str(s)
    }
}

impl std::str::FromStr for MemRole {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "input" => Ok(MemRole::Input),
            "output" => Ok(MemRole::Output),
            "intermediate" => Ok(MemRole::Intermediate),
            "unused" => Ok(MemRole::Unused),
            other => Err(format!("unknown memory role '{other}'")),
        }
    }
}

/// A memory as seen by one TAC program (SRAM-mapped).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemSpec {
    /// Memory name (SRAM instance name).
    pub name: String,
    /// Words.
    pub size: usize,
    /// Word width in bits.
    pub width: u32,
    /// Inferred role.
    pub role: MemRole,
}

/// Information about one virtual register.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TempInfo {
    /// Source variable name, if the temp holds a named variable.
    pub name: Option<String>,
    /// Whether the temp is a 1-bit boolean.
    pub is_bool: bool,
}

/// One TAC instruction. Jump targets are instruction indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instr {
    /// `dst = value`
    Const {
        /// Destination.
        dst: Temp,
        /// Literal value.
        value: i64,
    },
    /// `dst = a <kind> b`
    Bin {
        /// Operator.
        kind: BinKind,
        /// Destination.
        dst: Temp,
        /// Left operand.
        a: Temp,
        /// Right operand.
        b: Temp,
    },
    /// `dst = <kind> a`
    Un {
        /// Operator.
        kind: UnKind,
        /// Destination.
        dst: Temp,
        /// Operand.
        a: Temp,
    },
    /// `dst = src`
    Copy {
        /// Destination.
        dst: Temp,
        /// Source.
        src: Temp,
    },
    /// `dst = mem[addr]`
    Load {
        /// Destination.
        dst: Temp,
        /// Memory index into [`TacProgram::mems`].
        mem: usize,
        /// Address operand.
        addr: Temp,
    },
    /// `mem[addr] = value`
    Store {
        /// Memory index into [`TacProgram::mems`].
        mem: usize,
        /// Address operand.
        addr: Temp,
        /// Stored operand.
        value: Temp,
    },
    /// Unconditional jump to an instruction index.
    Jump {
        /// Target instruction index.
        target: usize,
    },
    /// Two-way branch on a boolean temp.
    Branch {
        /// Condition (1-bit temp).
        cond: Temp,
        /// Target when true.
        if_true: usize,
        /// Target when false.
        if_false: usize,
    },
    /// Program end.
    Halt,
}

impl Instr {
    /// The destination temp, if the instruction defines one.
    pub fn dst(&self) -> Option<Temp> {
        match self {
            Instr::Const { dst, .. }
            | Instr::Bin { dst, .. }
            | Instr::Un { dst, .. }
            | Instr::Copy { dst, .. }
            | Instr::Load { dst, .. } => Some(*dst),
            _ => None,
        }
    }

    /// The temps the instruction reads.
    pub fn sources(&self) -> Vec<Temp> {
        match self {
            Instr::Const { .. } | Instr::Jump { .. } | Instr::Halt => Vec::new(),
            Instr::Bin { a, b, .. } => vec![*a, *b],
            Instr::Un { a, .. } => vec![*a],
            Instr::Copy { src, .. } => vec![*src],
            Instr::Load { addr, .. } => vec![*addr],
            Instr::Store { addr, value, .. } => vec![*addr, *value],
            Instr::Branch { cond, .. } => vec![*cond],
        }
    }

    /// Whether this instruction transfers control.
    pub fn is_terminator(&self) -> bool {
        matches!(self, Instr::Jump { .. } | Instr::Branch { .. } | Instr::Halt)
    }

    /// Whether this instruction instantiates a datapath functional unit
    /// (the Table I "operators" metric).
    pub fn is_operator(&self) -> bool {
        matches!(self, Instr::Bin { .. } | Instr::Un { .. })
    }

    /// The memory index accessed, if any.
    pub fn mem(&self) -> Option<usize> {
        match self {
            Instr::Load { mem, .. } | Instr::Store { mem, .. } => Some(*mem),
            _ => None,
        }
    }
}

/// A lowered program: memories, temps, and a flat instruction list ending
/// in [`Instr::Halt`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TacProgram {
    /// Program (configuration) name.
    pub name: String,
    /// Design data width in bits.
    pub width: u32,
    /// Memories, indexed by [`Instr::Load`]/[`Instr::Store`].
    pub mems: Vec<MemSpec>,
    /// Virtual register metadata, indexed by [`Temp`].
    pub temps: Vec<TempInfo>,
    /// Instructions; jump targets index into this list.
    pub instrs: Vec<Instr>,
}

impl TacProgram {
    /// Width of a temp in bits (1 for booleans, the design width
    /// otherwise).
    pub fn temp_width(&self, temp: Temp) -> u32 {
        if self.temps[temp.0].is_bool {
            1
        } else {
            self.width
        }
    }

    /// Number of functional units a no-sharing datapath needs (the
    /// "operators" column of Table I).
    pub fn operator_count(&self) -> usize {
        self.instrs.iter().filter(|i| i.is_operator()).count()
    }

    /// Validates internal consistency (jump targets, temp and memory
    /// indices in range, terminated by `Halt`).
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        if !matches!(self.instrs.last(), Some(Instr::Halt)) {
            return Err("program does not end in Halt".to_string());
        }
        for (index, instr) in self.instrs.iter().enumerate() {
            for temp in instr.sources().into_iter().chain(instr.dst()) {
                if temp.0 >= self.temps.len() {
                    return Err(format!("instruction {index} references missing {temp}"));
                }
            }
            if let Some(mem) = instr.mem() {
                if mem >= self.mems.len() {
                    return Err(format!("instruction {index} references missing memory {mem}"));
                }
            }
            let targets: Vec<usize> = match instr {
                Instr::Jump { target } => vec![*target],
                Instr::Branch {
                    if_true, if_false, ..
                } => vec![*if_true, *if_false],
                _ => vec![],
            };
            for t in targets {
                if t >= self.instrs.len() {
                    return Err(format!("instruction {index} jumps to missing index {t}"));
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for TacProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "; tac program '{}' (width {})", self.name, self.width)?;
        for (i, mem) in self.mems.iter().enumerate() {
            writeln!(f, "; mem {} = {} [{} x {}] ({})", i, mem.name, mem.size, mem.width, mem.role)?;
        }
        for (index, instr) in self.instrs.iter().enumerate() {
            let text = match instr {
                Instr::Const { dst, value } => format!("{dst} = {value}"),
                Instr::Bin { kind, dst, a, b } => format!("{dst} = {kind} {a}, {b}"),
                Instr::Un { kind, dst, a } => format!("{dst} = {kind} {a}"),
                Instr::Copy { dst, src } => format!("{dst} = {src}"),
                Instr::Load { dst, mem, addr } => {
                    format!("{dst} = load {}[{addr}]", self.mems[*mem].name)
                }
                Instr::Store { mem, addr, value } => {
                    format!("store {}[{addr}] = {value}", self.mems[*mem].name)
                }
                Instr::Jump { target } => format!("jump @{target}"),
                Instr::Branch {
                    cond,
                    if_true,
                    if_false,
                } => format!("branch {cond} ? @{if_true} : @{if_false}"),
                Instr::Halt => "halt".to_string(),
            };
            writeln!(f, "{index:4}: {text}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TacProgram {
        TacProgram {
            name: "t".into(),
            width: 16,
            mems: vec![MemSpec {
                name: "m".into(),
                size: 4,
                width: 16,
                role: MemRole::Output,
            }],
            temps: vec![
                TempInfo {
                    name: Some("x".into()),
                    is_bool: false,
                },
                TempInfo {
                    name: None,
                    is_bool: true,
                },
            ],
            instrs: vec![
                Instr::Const {
                    dst: Temp(0),
                    value: 7,
                },
                Instr::Bin {
                    kind: BinKind::Lt,
                    dst: Temp(1),
                    a: Temp(0),
                    b: Temp(0),
                },
                Instr::Store {
                    mem: 0,
                    addr: Temp(0),
                    value: Temp(0),
                },
                Instr::Halt,
            ],
        }
    }

    #[test]
    fn accessors() {
        let p = tiny();
        assert_eq!(p.temp_width(Temp(0)), 16);
        assert_eq!(p.temp_width(Temp(1)), 1);
        assert_eq!(p.operator_count(), 1);
        assert_eq!(p.instrs[1].dst(), Some(Temp(1)));
        assert_eq!(p.instrs[2].sources(), vec![Temp(0), Temp(0)]);
        assert_eq!(p.instrs[2].mem(), Some(0));
        assert!(p.instrs[3].is_terminator());
        assert!(p.instrs[1].is_operator());
        assert!(!p.instrs[0].is_operator());
    }

    #[test]
    fn validate_accepts_consistent_program() {
        assert_eq!(tiny().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_problems() {
        let mut p = tiny();
        p.instrs.pop();
        assert!(p.validate().unwrap_err().contains("Halt"));

        let mut p = tiny();
        p.instrs[1] = Instr::Jump { target: 99 };
        assert!(p.validate().unwrap_err().contains("missing index"));

        let mut p = tiny();
        p.instrs[0] = Instr::Const {
            dst: Temp(9),
            value: 0,
        };
        assert!(p.validate().unwrap_err().contains("missing t9"));

        let mut p = tiny();
        p.instrs[2] = Instr::Store {
            mem: 5,
            addr: Temp(0),
            value: Temp(0),
        };
        assert!(p.validate().unwrap_err().contains("missing memory"));
    }

    #[test]
    fn display_renders_each_form() {
        let text = tiny().to_string();
        assert!(text.contains("t0 = 7"));
        assert!(text.contains("t1 = lt t0, t0"));
        assert!(text.contains("store m[t0] = t0"));
        assert!(text.contains("halt"));
    }

    #[test]
    fn mem_role_parse_roundtrip() {
        for role in [MemRole::Input, MemRole::Output, MemRole::Intermediate, MemRole::Unused] {
            assert_eq!(role.to_string().parse::<MemRole>().unwrap(), role);
        }
        assert!("bogus".parse::<MemRole>().is_err());
    }
}
