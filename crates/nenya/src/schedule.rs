//! State assignment: mapping TAC instructions onto control-FSM states.
//!
//! The FSMD timing model: every temp lives in a register that latches on
//! the clock edge ending the state that issues its defining instruction.
//! Within one state, reads observe *pre-edge* register values, so the
//! scheduler enforces:
//!
//! * **RAW** — an instruction may not read a temp written in its own state;
//! * **WAW** — two instructions may not write the same temp in one state
//!   (one register, one latch per edge);
//! * **memory port** — at most one access per (single-port) SRAM per state;
//! * **branch timing** — a branch tests a condition *register*, so the
//!   condition must be latched before the state whose edge takes the
//!   branch; if it is computed in a block's final state, an extra state is
//!   appended.
//!
//! Two policies implement the ablation of DESIGN.md experiment A1:
//! [`SchedulePolicy::OneOpPerState`] (the naive baseline) and
//! [`SchedulePolicy::List`] (greedy packing under the rules above).

use crate::tac::{Instr, TacProgram, Temp};
use std::collections::HashSet;
use std::fmt;

/// Scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulePolicy {
    /// One instruction per state: maximal states, trivially hazard-free.
    OneOpPerState,
    /// Greedy list scheduling: pack independent instructions into the same
    /// state (the compiler "optimization technique" whose effect the test
    /// infrastructure is meant to re-verify).
    #[default]
    List,
}

impl fmt::Display for SchedulePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulePolicy::OneOpPerState => f.write_str("one-op-per-state"),
            SchedulePolicy::List => f.write_str("list"),
        }
    }
}

/// How control leaves a state at its ending clock edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Exit {
    /// Unconditionally to another state.
    Goto(usize),
    /// Two-way branch on a condition register.
    Branch {
        /// The 1-bit condition temp (read as a register output).
        cond: Temp,
        /// State when the condition is true.
        if_true: usize,
        /// State when the condition is false.
        if_false: usize,
    },
    /// Computation complete (enter the terminal FSM state).
    Done,
}

/// One control state: the instructions issued during it and its exit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledState {
    /// Indices into [`TacProgram::instrs`] of non-terminator instructions
    /// issued (and latched at the ending edge) in this state.
    pub ops: Vec<usize>,
    /// Where control goes at the ending edge.
    pub exit: Exit,
}

/// A complete schedule: state 0 is the initial state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Policy used to build the schedule.
    pub policy: SchedulePolicy,
    /// The control states.
    pub states: Vec<ScheduledState>,
}

impl Schedule {
    /// Number of control states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Average instructions issued per state (the packing factor the list
    /// scheduler buys).
    pub fn ops_per_state(&self) -> f64 {
        if self.states.is_empty() {
            return 0.0;
        }
        let ops: usize = self.states.iter().map(|s| s.ops.len()).sum();
        ops as f64 / self.states.len() as f64
    }

    /// Checks the hazard rules documented on the module.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated rule.
    pub fn validate(&self, prog: &TacProgram) -> Result<(), String> {
        for (index, state) in self.states.iter().enumerate() {
            let mut written: HashSet<Temp> = HashSet::new();
            let mut mems_used: HashSet<usize> = HashSet::new();
            for &op in &state.ops {
                let instr = &prog.instrs[op];
                if instr.is_terminator() {
                    return Err(format!("state {index} issues terminator instruction {op}"));
                }
                for src in instr.sources() {
                    if written.contains(&src) {
                        return Err(format!(
                            "state {index}: RAW hazard on {src} at instruction {op}"
                        ));
                    }
                }
                if let Some(dst) = instr.dst() {
                    if !written.insert(dst) {
                        return Err(format!(
                            "state {index}: WAW hazard on {dst} at instruction {op}"
                        ));
                    }
                }
                if let Some(mem) = instr.mem() {
                    if !mems_used.insert(mem) {
                        return Err(format!(
                            "state {index}: memory port conflict on '{}'",
                            prog.mems[mem].name
                        ));
                    }
                }
            }
            match &state.exit {
                Exit::Goto(t) => {
                    if *t >= self.states.len() {
                        return Err(format!("state {index} exits to missing state {t}"));
                    }
                }
                Exit::Branch {
                    cond,
                    if_true,
                    if_false,
                } => {
                    for t in [if_true, if_false] {
                        if *t >= self.states.len() {
                            return Err(format!("state {index} branches to missing state {t}"));
                        }
                    }
                    if written.contains(cond) {
                        return Err(format!(
                            "state {index}: branch tests {cond} written in the same state"
                        ));
                    }
                    if prog.temp_width(*cond) != 1 {
                        return Err(format!("state {index}: branch condition {cond} is not 1-bit"));
                    }
                }
                Exit::Done => {}
            }
        }
        Ok(())
    }
}

/// Builds a schedule for `prog` under `policy`.
///
/// # Panics
///
/// Panics when `prog` fails [`TacProgram::validate`] — callers lower
/// through this crate, which always produces valid programs.
pub fn schedule(prog: &TacProgram, policy: SchedulePolicy) -> Schedule {
    prog.validate().expect("schedule input must be valid TAC");

    // Basic blocks: leaders are instruction 0, every jump/branch target,
    // and every instruction after a terminator.
    let mut leaders = vec![false; prog.instrs.len()];
    leaders[0] = true;
    for (i, instr) in prog.instrs.iter().enumerate() {
        match instr {
            Instr::Jump { target } => {
                leaders[*target] = true;
                if i + 1 < prog.instrs.len() {
                    leaders[i + 1] = true;
                }
            }
            Instr::Branch {
                if_true, if_false, ..
            } => {
                leaders[*if_true] = true;
                leaders[*if_false] = true;
                if i + 1 < prog.instrs.len() {
                    leaders[i + 1] = true;
                }
            }
            Instr::Halt
                if i + 1 < prog.instrs.len() => {
                    leaders[i + 1] = true;
                }
            _ => {}
        }
    }
    let block_starts: Vec<usize> = (0..prog.instrs.len()).filter(|&i| leaders[i]).collect();
    let block_of = |instr: usize| -> usize {
        match block_starts.binary_search(&instr) {
            Ok(b) => b,
            Err(b) => b - 1,
        }
    };

    // Group each block's straight-line instructions into states.
    struct BlockPlan {
        groups: Vec<Vec<usize>>,
        terminator: Option<usize>,
    }
    let mut plans = Vec::with_capacity(block_starts.len());
    for (b, &start) in block_starts.iter().enumerate() {
        let end = block_starts
            .get(b + 1)
            .copied()
            .unwrap_or(prog.instrs.len());
        let mut groups: Vec<Vec<usize>> = Vec::new();
        let mut terminator = None;
        for i in start..end {
            let instr = &prog.instrs[i];
            if instr.is_terminator() {
                terminator = Some(i);
                break;
            }
            let fits = match policy {
                SchedulePolicy::OneOpPerState => false,
                SchedulePolicy::List => groups.last().is_some_and(|group| {
                    let mut written: HashSet<Temp> = HashSet::new();
                    let mut mems: HashSet<usize> = HashSet::new();
                    for &g in group {
                        if let Some(d) = prog.instrs[g].dst() {
                            written.insert(d);
                        }
                        if let Some(m) = prog.instrs[g].mem() {
                            mems.insert(m);
                        }
                    }
                    let raw = instr.sources().iter().any(|s| written.contains(s));
                    let waw = instr.dst().is_some_and(|d| written.contains(&d));
                    let port = instr.mem().is_some_and(|m| mems.contains(&m));
                    !(raw || waw || port)
                }),
            };
            if fits {
                groups.last_mut().expect("fits implies a group").push(i);
            } else {
                groups.push(vec![i]);
            }
        }
        // Branch timing: the condition must be latched strictly before the
        // state whose edge takes the branch.
        if let Some(t) = terminator {
            if let Instr::Branch { cond, .. } = &prog.instrs[t] {
                let cond_in_last_group = groups
                    .last()
                    .is_some_and(|g| g.iter().any(|&i| prog.instrs[i].dst() == Some(*cond)));
                if cond_in_last_group {
                    groups.push(Vec::new());
                }
            }
        }
        if groups.is_empty() {
            // Every block anchors at least one state so control flow has a
            // target.
            groups.push(Vec::new());
        }
        plans.push(BlockPlan { groups, terminator });
    }

    // Assign global state indices.
    let mut offsets = Vec::with_capacity(plans.len());
    let mut total = 0;
    for plan in &plans {
        offsets.push(total);
        total += plan.groups.len();
    }

    let mut states = Vec::with_capacity(total);
    for (b, plan) in plans.iter().enumerate() {
        let base = offsets[b];
        for (g, group) in plan.groups.iter().enumerate() {
            let is_last = g + 1 == plan.groups.len();
            let exit = if !is_last {
                Exit::Goto(base + g + 1)
            } else {
                match plan.terminator.map(|t| &prog.instrs[t]) {
                    Some(Instr::Jump { target }) => Exit::Goto(offsets[block_of(*target)]),
                    Some(Instr::Branch {
                        cond,
                        if_true,
                        if_false,
                    }) => Exit::Branch {
                        cond: *cond,
                        if_true: offsets[block_of(*if_true)],
                        if_false: offsets[block_of(*if_false)],
                    },
                    Some(Instr::Halt) => Exit::Done,
                    Some(_) => unreachable!("terminator slot holds a terminator"),
                    // Fallthrough into the next block.
                    None => Exit::Goto(offsets.get(b + 1).copied().unwrap_or(base + g)),
                }
            };
            states.push(ScheduledState {
                ops: group.clone(),
                exit,
            });
        }
    }

    let result = Schedule { policy, states };
    debug_assert_eq!(result.validate(prog), Ok(()));
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parse;
    use crate::lower::lower;

    fn prog(src: &str) -> TacProgram {
        lower(&parse(src).unwrap(), "t", 16).unwrap()
    }

    #[test]
    fn one_op_per_state_isolates_every_instruction() {
        let p = prog("mem out[1]; void main() { out[0] = 1 + 2; }");
        let s = schedule(&p, SchedulePolicy::OneOpPerState);
        assert_eq!(s.validate(&p), Ok(()));
        for state in &s.states {
            assert!(state.ops.len() <= 1);
        }
        // const, const, add, store, plus halt handling.
        assert!(s.state_count() >= 4);
    }

    #[test]
    fn list_schedule_packs_independent_ops() {
        let p = prog("mem out[2]; void main() { int a = 1; int b = 2; out[0] = a + a; out[1] = b * b; }");
        let baseline = schedule(&p, SchedulePolicy::OneOpPerState);
        let packed = schedule(&p, SchedulePolicy::List);
        assert_eq!(packed.validate(&p), Ok(()));
        assert!(
            packed.state_count() < baseline.state_count(),
            "list {} vs baseline {}",
            packed.state_count(),
            baseline.state_count()
        );
        assert!(packed.ops_per_state() > 1.0);
    }

    #[test]
    fn memory_port_conflicts_split_states() {
        // Two independent stores to the same memory cannot share a state.
        let p = prog("mem d[4]; void main() { d[0] = 1; d[1] = 2; }");
        let s = schedule(&p, SchedulePolicy::List);
        assert_eq!(s.validate(&p), Ok(()));
        for state in &s.states {
            let stores = state
                .ops
                .iter()
                .filter(|&&i| matches!(p.instrs[i], Instr::Store { .. }))
                .count();
            assert!(stores <= 1);
        }
    }

    #[test]
    fn different_memories_can_share_a_state() {
        // Operands are latched well before the stores, so the two stores
        // (to distinct SRAMs) pack into one state.
        let p = prog(
            "mem a[2]; mem b[2]; void main() { int x = 1; int y = 2; int i = 0; a[i] = x; b[i] = y; }",
        );
        let s = schedule(&p, SchedulePolicy::List);
        let max_stores = s
            .states
            .iter()
            .map(|state| {
                state
                    .ops
                    .iter()
                    .filter(|&&i| matches!(p.instrs[i], Instr::Store { .. }))
                    .count()
            })
            .max()
            .unwrap();
        assert_eq!(max_stores, 2, "independent stores to distinct SRAMs pack");
    }

    #[test]
    fn branch_condition_latched_before_branch_state() {
        let p = prog("void main() { int i = 0; while (i < 5) { i = i + 1; } }");
        for policy in [SchedulePolicy::OneOpPerState, SchedulePolicy::List] {
            let s = schedule(&p, policy);
            assert_eq!(s.validate(&p), Ok(()), "policy {policy}");
            // Find the branching state and check its ops don't write cond.
            let branch_state = s
                .states
                .iter()
                .find(|st| matches!(st.exit, Exit::Branch { .. }))
                .expect("loop has a branch");
            let Exit::Branch { cond, .. } = branch_state.exit else {
                unreachable!()
            };
            for &op in &branch_state.ops {
                assert_ne!(p.instrs[op].dst(), Some(cond));
            }
        }
    }

    #[test]
    fn loops_terminate_in_done() {
        let p = prog("void main() { int i = 0; }");
        let s = schedule(&p, SchedulePolicy::List);
        assert!(matches!(s.states.last().unwrap().exit, Exit::Done));
    }

    #[test]
    fn empty_program_schedules() {
        let p = prog("void main() { }");
        let s = schedule(&p, SchedulePolicy::List);
        assert_eq!(s.validate(&p), Ok(()));
        assert_eq!(s.state_count(), 1);
        assert!(matches!(s.states[0].exit, Exit::Done));
    }

    #[test]
    fn if_else_routes_both_arms() {
        let p = prog("void main() { int x = 0; if (x == 0) { x = 1; } else { x = 2; } x = 3; }");
        let s = schedule(&p, SchedulePolicy::List);
        assert_eq!(s.validate(&p), Ok(()));
        let Exit::Branch {
            if_true, if_false, ..
        } = s
            .states
            .iter()
            .find_map(|st| match st.exit {
                Exit::Branch { .. } => Some(st.exit.clone()),
                _ => None,
            })
            .unwrap()
        else {
            unreachable!()
        };
        assert_ne!(if_true, if_false);
    }

    #[test]
    fn validate_catches_raw_hazard() {
        let p = prog("mem out[1]; void main() { int a = 1; out[0] = a + 1; }");
        let mut s = schedule(&p, SchedulePolicy::OneOpPerState);
        // Merge all ops into state 0 to fabricate hazards.
        let all_ops: Vec<usize> = s.states.iter().flat_map(|st| st.ops.clone()).collect();
        s.states[0].ops = all_ops;
        for st in &mut s.states[1..] {
            st.ops.clear();
        }
        assert!(s.validate(&p).is_err());
    }
}
