//! Control-unit FSM generation and its name-based IR.
//!
//! The FSM IR uses signal *names* (not indices) because it is serialized
//! to the `fsm.xml` dialect and must survive round trips through XML; the
//! test infrastructure maps names back to simulator signal ids when it
//! elaborates a run.

use crate::datapath::{ControlPlan, Datapath};
use crate::schedule::{Exit, Schedule};
use crate::tac::TacProgram;
use std::collections::BTreeMap;

/// One outgoing transition: optional `(condition signal, expected truth)`
/// guard plus a target state name. Guards are evaluated in order; a `None`
/// guard is the default.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsmTransitionDesc {
    /// Guard, or `None` for the default transition.
    pub cond: Option<(String, bool)>,
    /// Target state name.
    pub target: String,
}

/// One FSM state: Moore output assignments plus ordered transitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsmStateDesc {
    /// State name.
    pub name: String,
    /// `(output signal, value)` asserted while in this state; outputs not
    /// listed are zero.
    pub asserts: Vec<(String, i64)>,
    /// Transitions, first match wins, evaluated on each clock edge.
    pub transitions: Vec<FsmTransitionDesc>,
    /// Whether this state completes the computation.
    pub terminal: bool,
}

/// The control-unit FSM of one configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fsm {
    /// FSM name (conventionally `<config>_ctrl`).
    pub name: String,
    /// Condition input signal names (datapath register outputs).
    pub inputs: Vec<String>,
    /// Control output signals with widths (mirrors
    /// [`Datapath::controls`]).
    pub outputs: Vec<(String, u32)>,
    /// Initial state name.
    pub initial: String,
    /// States; the terminal state is conventionally named `done`.
    pub states: Vec<FsmStateDesc>,
}

impl Fsm {
    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Looks a state up by name.
    pub fn state(&self, name: &str) -> Option<&FsmStateDesc> {
        self.states.iter().find(|s| s.name == name)
    }

    /// Checks internal consistency and agreement with a datapath
    /// interface.
    ///
    /// # Errors
    ///
    /// Returns the first problem found: unknown transition targets,
    /// asserts of undeclared outputs, conditions not exported by the
    /// datapath, missing initial state, duplicate state names, or a
    /// default transition that is not last.
    pub fn validate(&self, dp: &Datapath) -> Result<(), String> {
        let mut names = std::collections::HashSet::new();
        for state in &self.states {
            if !names.insert(&state.name) {
                return Err(format!("duplicate state name '{}'", state.name));
            }
        }
        if self.state(&self.initial).is_none() {
            return Err(format!("initial state '{}' missing", self.initial));
        }
        let output_names: std::collections::HashSet<&str> =
            self.outputs.iter().map(|(n, _)| n.as_str()).collect();
        let dp_controls: std::collections::HashSet<&str> =
            dp.controls.iter().map(|(n, _)| n.as_str()).collect();
        for (name, _) in &self.outputs {
            if !dp_controls.contains(name.as_str()) {
                return Err(format!("output '{name}' is not a datapath control"));
            }
        }
        for input in &self.inputs {
            if !dp.conditions.contains(input) {
                return Err(format!("input '{input}' is not a datapath condition"));
            }
        }
        for state in &self.states {
            for (signal, _) in &state.asserts {
                if !output_names.contains(signal.as_str()) {
                    return Err(format!(
                        "state '{}' asserts undeclared output '{}'",
                        state.name, signal
                    ));
                }
            }
            for (t, transition) in state.transitions.iter().enumerate() {
                if self.state(&transition.target).is_none() {
                    return Err(format!(
                        "state '{}' transitions to missing state '{}'",
                        state.name, transition.target
                    ));
                }
                match &transition.cond {
                    Some((signal, _)) => {
                        if !self.inputs.contains(signal) {
                            return Err(format!(
                                "state '{}' tests undeclared input '{}'",
                                state.name, signal
                            ));
                        }
                    }
                    None => {
                        if t + 1 != state.transitions.len() {
                            return Err(format!(
                                "state '{}' has transitions after its default",
                                state.name
                            ));
                        }
                    }
                }
            }
            if !state.terminal && state.transitions.is_empty() {
                return Err(format!(
                    "non-terminal state '{}' has no transitions",
                    state.name
                ));
            }
        }
        Ok(())
    }
}

/// Generates the control FSM for a scheduled program.
///
/// `plan` and `dp` come from [`crate::datapath::generate`] on the same
/// `(prog, schedule)` pair.
pub fn generate_fsm(
    prog: &TacProgram,
    schedule: &Schedule,
    plan: &ControlPlan,
    dp: &Datapath,
) -> Fsm {
    let _ = prog;
    let state_name = |i: usize| format!("s{i}");

    let mut states = Vec::with_capacity(schedule.states.len() + 1);
    for (i, sched_state) in schedule.states.iter().enumerate() {
        // Deterministic assert order via a BTreeMap keyed by signal name.
        let mut asserts: BTreeMap<String, i64> = BTreeMap::new();
        for &op in &sched_state.ops {
            if let Some(write) = plan.reg_writes.get(&op) {
                merge_assert(&mut asserts, &write.enable, 1, &state_name(i));
                if let Some((sel, value)) = &write.select {
                    merge_assert(&mut asserts, sel, *value, &state_name(i));
                }
            }
            if let Some(access) = plan.mem_accesses.get(&op) {
                merge_assert(&mut asserts, &access.enable, 1, &state_name(i));
                merge_assert(
                    &mut asserts,
                    &access.write_enable,
                    access.is_store as i64,
                    &state_name(i),
                );
                if let Some((sel, value)) = &access.addr_select {
                    merge_assert(&mut asserts, sel, *value, &state_name(i));
                }
                if let Some((sel, value)) = &access.din_select {
                    merge_assert(&mut asserts, sel, *value, &state_name(i));
                }
            }
        }
        let transitions = match &sched_state.exit {
            Exit::Goto(j) => vec![FsmTransitionDesc {
                cond: None,
                target: state_name(*j),
            }],
            Exit::Branch {
                cond,
                if_true,
                if_false,
            } => vec![
                FsmTransitionDesc {
                    cond: Some((crate::datapath::temp_q(*cond), true)),
                    target: state_name(*if_true),
                },
                FsmTransitionDesc {
                    cond: None,
                    target: state_name(*if_false),
                },
            ],
            Exit::Done => vec![FsmTransitionDesc {
                cond: None,
                target: "done".to_string(),
            }],
        };
        states.push(FsmStateDesc {
            name: state_name(i),
            asserts: asserts.into_iter().collect(),
            transitions,
            terminal: false,
        });
    }
    states.push(FsmStateDesc {
        name: "done".to_string(),
        asserts: vec![("done".to_string(), 1)],
        transitions: Vec::new(),
        terminal: true,
    });

    let fsm = Fsm {
        name: format!("{}_ctrl", dp.name),
        inputs: dp.conditions.clone(),
        outputs: dp.controls.clone(),
        initial: "s0".to_string(),
        states,
    };
    debug_assert_eq!(fsm.validate(dp), Ok(()));
    fsm
}

fn merge_assert(asserts: &mut BTreeMap<String, i64>, signal: &str, value: i64, state: &str) {
    if let Some(existing) = asserts.get(signal) {
        assert_eq!(
            *existing, value,
            "conflicting assert of '{signal}' in state '{state}'"
        );
        return;
    }
    asserts.insert(signal.to_string(), value);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datapath::generate;
    use crate::lang::parse;
    use crate::lower::lower;
    use crate::schedule::{schedule, SchedulePolicy};

    fn build(src: &str, policy: SchedulePolicy) -> (TacProgram, Datapath, Fsm) {
        let prog = lower(&parse(src).unwrap(), "t", 16).unwrap();
        let sched = schedule(&prog, policy);
        let (dp, plan) = generate(&prog, &sched);
        let fsm = generate_fsm(&prog, &sched, &plan, &dp);
        (prog, dp, fsm)
    }

    #[test]
    fn straight_line_fsm_has_chain_plus_done() {
        let (_, dp, fsm) = build("void main() { int x = 1; }", SchedulePolicy::OneOpPerState);
        assert_eq!(fsm.validate(&dp), Ok(()));
        assert_eq!(fsm.initial, "s0");
        let done = fsm.state("done").unwrap();
        assert!(done.terminal);
        assert_eq!(done.asserts, vec![("done".to_string(), 1)]);
        // Every non-terminal state has exactly one unconditional exit.
        for state in fsm.states.iter().filter(|s| !s.terminal) {
            assert_eq!(state.transitions.len(), 1);
        }
    }

    #[test]
    fn loop_fsm_branches_on_condition_register() {
        let (_, dp, fsm) = build(
            "void main() { int i = 0; while (i < 3) { i = i + 1; } }",
            SchedulePolicy::List,
        );
        assert_eq!(fsm.validate(&dp), Ok(()));
        assert_eq!(fsm.inputs.len(), 1);
        let branching: Vec<_> = fsm
            .states
            .iter()
            .filter(|s| s.transitions.len() == 2)
            .collect();
        assert_eq!(branching.len(), 1);
        let t = &branching[0].transitions[0];
        assert_eq!(t.cond.as_ref().unwrap().0, fsm.inputs[0]);
        assert!(t.cond.as_ref().unwrap().1);
        assert!(branching[0].transitions[1].cond.is_none());
    }

    #[test]
    fn store_state_asserts_memory_controls() {
        let (_, dp, fsm) = build("mem d[4]; void main() { d[2] = 9; }", SchedulePolicy::OneOpPerState);
        assert_eq!(fsm.validate(&dp), Ok(()));
        let store_state = fsm
            .states
            .iter()
            .find(|s| s.asserts.iter().any(|(n, v)| n == "d_we" && *v == 1))
            .expect("a state asserts the write enable");
        assert!(store_state.asserts.iter().any(|(n, v)| n == "d_en" && *v == 1));
    }

    #[test]
    fn load_state_keeps_we_low() {
        let (_, _, fsm) = build(
            "mem d[4]; mem out[4]; void main() { out[0] = d[0]; }",
            SchedulePolicy::OneOpPerState,
        );
        let load_state = fsm
            .states
            .iter()
            .find(|s| s.asserts.iter().any(|(n, v)| n == "d_en" && *v == 1))
            .unwrap();
        let we = load_state
            .asserts
            .iter()
            .find(|(n, _)| n == "d_we")
            .map(|(_, v)| *v)
            .unwrap_or(0);
        assert_eq!(we, 0);
        // The load's destination register is enabled in the same state.
        assert!(load_state.asserts.iter().any(|(n, v)| n.ends_with("_en") && n.starts_with('t') && *v == 1));
    }

    #[test]
    fn outputs_match_datapath_controls() {
        let (_, dp, fsm) = build(
            "mem a[4]; void main() { int i = 0; while (i < 4) { a[i] = i; i = i + 1; } }",
            SchedulePolicy::List,
        );
        assert_eq!(fsm.outputs, dp.controls);
        assert_eq!(fsm.validate(&dp), Ok(()));
    }

    #[test]
    fn validate_rejects_inconsistencies() {
        let (_, dp, mut fsm) = build("void main() { int x = 1; }", SchedulePolicy::List);
        fsm.states[0].transitions[0].target = "nowhere".into();
        assert!(fsm.validate(&dp).unwrap_err().contains("missing state"));

        let (_, dp, mut fsm) = build("void main() { int x = 1; }", SchedulePolicy::List);
        fsm.states[0].asserts.push(("bogus".into(), 1));
        assert!(fsm.validate(&dp).unwrap_err().contains("undeclared output"));

        let (_, dp, mut fsm) = build("void main() { int x = 1; }", SchedulePolicy::List);
        fsm.initial = "zzz".into();
        assert!(fsm.validate(&dp).unwrap_err().contains("initial"));

        let (_, dp, mut fsm) = build("void main() { int x = 1; }", SchedulePolicy::List);
        let dup = fsm.states[0].clone();
        fsm.states.push(dup);
        assert!(fsm.validate(&dp).unwrap_err().contains("duplicate"));
    }
}
