//! Lowering from the AST to TAC, including Java-style type checking.

use crate::lang::{BinaryOp, Block, Expr, Program, Stmt, Type, UnaryOp};
use crate::tac::{BinKind, Instr, MemRole, MemSpec, TacProgram, Temp, TempInfo, UnKind};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Semantic error raised during lowering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError(String);

impl LowerError {
    fn new(message: impl Into<String>) -> Self {
        LowerError(message.into())
    }
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl Error for LowerError {}

/// Lowers a parsed program (or a slice of its top-level statements) to TAC.
///
/// `width` is the design data width. When `stmts` is `None` the whole body
/// of `main` is lowered; the partitioner passes explicit subranges plus
/// spill prologue/epilogue via [`lower_partition`].
///
/// # Errors
///
/// Returns [`LowerError`] for type errors, undeclared or redeclared
/// variables, and unknown memories.
pub fn lower(program: &Program, name: &str, width: u32) -> Result<TacProgram, LowerError> {
    lower_partition(program, name, width, &program.body.stmts, &[], &[], None)
}

/// Lowers a statement slice, loading `restore` variables from the transfer
/// memory first and storing `save` variables to it at the end.
///
/// `xfer` is `(name, size)` of the transfer memory, appended to the memory
/// list whenever it is provided; `restore`/`save` are `(variable, slot)`
/// pairs — slots are a *global* layout shared by every partition of a
/// design, so a value saved by one configuration is restored from the same
/// address by a later one.
///
/// # Errors
///
/// As for [`lower`]; additionally, transferred variables must be `int`s
/// declared at the top level of `main`.
pub fn lower_partition(
    program: &Program,
    name: &str,
    width: u32,
    stmts: &[Stmt],
    restore: &[(String, usize)],
    save: &[(String, usize)],
    xfer: Option<(&str, usize)>,
) -> Result<TacProgram, LowerError> {
    let mut ctx = Lowerer::new(program, name, width)?;

    // Pre-declare every top-level variable of `main` so that cross-
    // partition variables resolve to stable temps; inner-block declarations
    // still shadow lexically.
    for stmt in &program.body.stmts {
        if let Stmt::Decl { ty, name, .. } = stmt {
            ctx.declare(name, *ty)?;
        }
    }

    if (!restore.is_empty() || !save.is_empty()) && xfer.is_none() {
        return Err(LowerError::new("spill lists require a transfer memory"));
    }
    let xfer_index = match xfer {
        Some((xfer_name, size)) => {
            for (var, slot) in restore.iter().chain(save) {
                if *slot >= size {
                    return Err(LowerError::new(format!(
                        "transfer slot {slot} of '{var}' exceeds transfer memory size {size}"
                    )));
                }
            }
            ctx.prog.mems.push(MemSpec {
                name: xfer_name.to_string(),
                size: size.max(1),
                width,
                role: MemRole::Intermediate,
            });
            Some(ctx.prog.mems.len() - 1)
        }
        None => None,
    };

    if let Some(mem) = xfer_index {
        for (var, slot) in restore {
            let (temp, ty) = ctx.lookup(var)?;
            if ty != Type::Int {
                return Err(LowerError::new(format!(
                    "cannot transfer boolean variable '{var}' between configurations"
                )));
            }
            let addr = ctx.fresh_const(*slot as i64);
            ctx.emit(Instr::Load {
                dst: temp,
                mem,
                addr,
            });
        }
    }

    for stmt in stmts {
        ctx.stmt(stmt)?;
    }

    if let Some(mem) = xfer_index {
        for (var, slot) in save {
            let (temp, ty) = ctx.lookup(var)?;
            if ty != Type::Int {
                return Err(LowerError::new(format!(
                    "cannot transfer boolean variable '{var}' between configurations"
                )));
            }
            let addr = ctx.fresh_const(*slot as i64);
            ctx.emit(Instr::Store {
                mem,
                addr,
                value: temp,
            });
        }
    }

    ctx.emit(Instr::Halt);
    let mut prog = ctx.prog;
    infer_mem_roles(&mut prog);
    debug_assert_eq!(prog.validate(), Ok(()));
    Ok(prog)
}

/// Re-derives [`MemRole`]s from the access pattern of the instruction
/// list.
pub fn infer_mem_roles(prog: &mut TacProgram) {
    let mut reads = vec![false; prog.mems.len()];
    let mut writes = vec![false; prog.mems.len()];
    for instr in &prog.instrs {
        match instr {
            Instr::Load { mem, .. } => reads[*mem] = true,
            Instr::Store { mem, .. } => writes[*mem] = true,
            _ => {}
        }
    }
    for (i, mem) in prog.mems.iter_mut().enumerate() {
        mem.role = match (reads[i], writes[i]) {
            (true, true) => MemRole::Intermediate,
            (true, false) => MemRole::Input,
            (false, true) => MemRole::Output,
            (false, false) => MemRole::Unused,
        };
    }
}

struct Lowerer {
    prog: TacProgram,
    scopes: Vec<HashMap<String, (Temp, Type)>>,
    mem_index: HashMap<String, usize>,
}

impl Lowerer {
    fn new(program: &Program, name: &str, width: u32) -> Result<Self, LowerError> {
        if !(2..=64).contains(&width) {
            return Err(LowerError::new(format!(
                "design width {width} out of range 2..=64"
            )));
        }
        let mut mem_index = HashMap::new();
        let mut mems = Vec::new();
        for decl in &program.mems {
            if mem_index.insert(decl.name.clone(), mems.len()).is_some() {
                return Err(LowerError::new(format!(
                    "memory '{}' declared twice",
                    decl.name
                )));
            }
            mems.push(MemSpec {
                name: decl.name.clone(),
                size: decl.size,
                width: decl.width.unwrap_or(width),
                role: MemRole::Unused,
            });
        }
        Ok(Lowerer {
            prog: TacProgram {
                name: name.to_string(),
                width,
                mems,
                temps: Vec::new(),
                instrs: Vec::new(),
            },
            scopes: vec![HashMap::new()],
            mem_index,
        })
    }

    fn fresh(&mut self, is_bool: bool) -> Temp {
        let temp = Temp(self.prog.temps.len());
        self.prog.temps.push(TempInfo {
            name: None,
            is_bool,
        });
        temp
    }

    fn fresh_const(&mut self, value: i64) -> Temp {
        let temp = self.fresh(false);
        self.emit(Instr::Const { dst: temp, value });
        temp
    }

    fn emit(&mut self, instr: Instr) -> usize {
        self.prog.instrs.push(instr);
        self.prog.instrs.len() - 1
    }

    fn here(&self) -> usize {
        self.prog.instrs.len()
    }

    fn declare(&mut self, name: &str, ty: Type) -> Result<Temp, LowerError> {
        let scope = self.scopes.last_mut().expect("scope stack non-empty");
        if scope.contains_key(name) {
            return Err(LowerError::new(format!(
                "variable '{name}' declared twice in the same scope"
            )));
        }
        let temp = Temp(self.prog.temps.len());
        self.prog.temps.push(TempInfo {
            name: Some(name.to_string()),
            is_bool: ty == Type::Bool,
        });
        scope.insert(name.to_string(), (temp, ty));
        Ok(temp)
    }

    fn lookup(&self, name: &str) -> Result<(Temp, Type), LowerError> {
        for scope in self.scopes.iter().rev() {
            if let Some(&entry) = scope.get(name) {
                return Ok(entry);
            }
        }
        Err(LowerError::new(format!("undeclared variable '{name}'")))
    }

    fn mem(&self, name: &str) -> Result<usize, LowerError> {
        self.mem_index
            .get(name)
            .copied()
            .ok_or_else(|| LowerError::new(format!("undeclared memory '{name}'")))
    }

    fn block(&mut self, block: &Block) -> Result<(), LowerError> {
        self.scopes.push(HashMap::new());
        for stmt in &block.stmts {
            self.stmt(stmt)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn stmt(&mut self, stmt: &Stmt) -> Result<(), LowerError> {
        match stmt {
            Stmt::Decl { ty, name, init } => {
                // Top-level declarations were pre-registered; re-declaring
                // in the same (top) scope is fine then, otherwise declare.
                let temp = match self.scopes.last().expect("scope").get(name) {
                    Some(&(temp, existing_ty)) if self.scopes.len() == 1 => {
                        if existing_ty != *ty {
                            return Err(LowerError::new(format!(
                                "variable '{name}' redeclared with a different type"
                            )));
                        }
                        temp
                    }
                    _ => self.declare(name, *ty)?,
                };
                if let Some(init) = init {
                    let (value, value_ty) = self.expr(init)?;
                    self.check_type(*ty, value_ty, &format!("initializer of '{name}'"))?;
                    self.emit(Instr::Copy {
                        dst: temp,
                        src: value,
                    });
                }
                Ok(())
            }
            Stmt::Assign { name, value } => {
                let (temp, ty) = self.lookup(name)?;
                let (src, value_ty) = self.expr(value)?;
                self.check_type(ty, value_ty, &format!("assignment to '{name}'"))?;
                self.emit(Instr::Copy { dst: temp, src });
                Ok(())
            }
            Stmt::MemStore { mem, addr, value } => {
                let mem = self.mem(mem)?;
                let (addr, addr_ty) = self.expr(addr)?;
                self.check_type(Type::Int, addr_ty, "memory address")?;
                let (value, value_ty) = self.expr(value)?;
                self.check_type(Type::Int, value_ty, "stored value")?;
                self.emit(Instr::Store { mem, addr, value });
                Ok(())
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
            } => {
                let (cond, cond_ty) = self.expr(cond)?;
                self.check_type(Type::Bool, cond_ty, "if condition")?;
                let branch = self.emit(Instr::Branch {
                    cond,
                    if_true: 0,
                    if_false: 0,
                });
                let then_start = self.here();
                self.block(then_block)?;
                if else_block.stmts.is_empty() {
                    let end = self.here();
                    self.patch_branch(branch, then_start, end);
                } else {
                    let skip_else = self.emit(Instr::Jump { target: 0 });
                    let else_start = self.here();
                    self.block(else_block)?;
                    let end = self.here();
                    self.patch_branch(branch, then_start, else_start);
                    self.patch_jump(skip_else, end);
                }
                Ok(())
            }
            Stmt::While { cond, body } => {
                let head = self.here();
                let (cond, cond_ty) = self.expr(cond)?;
                self.check_type(Type::Bool, cond_ty, "while condition")?;
                let branch = self.emit(Instr::Branch {
                    cond,
                    if_true: 0,
                    if_false: 0,
                });
                let body_start = self.here();
                self.block(body)?;
                self.emit(Instr::Jump { target: head });
                let end = self.here();
                self.patch_branch(branch, body_start, end);
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                update,
                body,
            } => {
                self.stmt(init)?;
                let head = self.here();
                let (cond, cond_ty) = self.expr(cond)?;
                self.check_type(Type::Bool, cond_ty, "for condition")?;
                let branch = self.emit(Instr::Branch {
                    cond,
                    if_true: 0,
                    if_false: 0,
                });
                let body_start = self.here();
                self.block(body)?;
                self.stmt(update)?;
                self.emit(Instr::Jump { target: head });
                let end = self.here();
                self.patch_branch(branch, body_start, end);
                Ok(())
            }
        }
    }

    fn patch_branch(&mut self, index: usize, if_true: usize, if_false: usize) {
        if let Instr::Branch {
            if_true: t,
            if_false: f,
            ..
        } = &mut self.prog.instrs[index]
        {
            *t = if_true;
            *f = if_false;
        } else {
            unreachable!("patch target is a branch");
        }
    }

    fn patch_jump(&mut self, index: usize, target: usize) {
        if let Instr::Jump { target: t } = &mut self.prog.instrs[index] {
            *t = target;
        } else {
            unreachable!("patch target is a jump");
        }
    }

    fn check_type(&self, expected: Type, found: Type, what: &str) -> Result<(), LowerError> {
        if expected == found {
            Ok(())
        } else {
            Err(LowerError::new(format!(
                "{what}: expected {expected}, found {found}"
            )))
        }
    }

    fn expr(&mut self, expr: &Expr) -> Result<(Temp, Type), LowerError> {
        match expr {
            Expr::Int(value) => Ok((self.fresh_const(*value), Type::Int)),
            Expr::Bool(b) => {
                let temp = self.fresh(true);
                self.emit(Instr::Const {
                    dst: temp,
                    value: *b as i64,
                });
                Ok((temp, Type::Bool))
            }
            Expr::Var(name) => self.lookup(name),
            Expr::MemLoad { mem, addr } => {
                let mem = self.mem(mem)?;
                let (addr, addr_ty) = self.expr(addr)?;
                self.check_type(Type::Int, addr_ty, "memory address")?;
                let dst = self.fresh(false);
                self.emit(Instr::Load { dst, mem, addr });
                Ok((dst, Type::Int))
            }
            Expr::Unary { op, expr } => {
                let (a, ty) = self.expr(expr)?;
                match op {
                    UnaryOp::Neg => {
                        self.check_type(Type::Int, ty, "operand of unary '-'")?;
                        let dst = self.fresh(false);
                        self.emit(Instr::Un {
                            kind: UnKind::Neg,
                            dst,
                            a,
                        });
                        Ok((dst, Type::Int))
                    }
                    UnaryOp::BitNot => {
                        self.check_type(Type::Int, ty, "operand of '~'")?;
                        let dst = self.fresh(false);
                        self.emit(Instr::Un {
                            kind: UnKind::Not,
                            dst,
                            a,
                        });
                        Ok((dst, Type::Int))
                    }
                    UnaryOp::LogNot => {
                        self.check_type(Type::Bool, ty, "operand of '!'")?;
                        // 1-bit bitwise complement == logical not.
                        let dst = self.fresh(true);
                        self.emit(Instr::Un {
                            kind: UnKind::Not,
                            dst,
                            a,
                        });
                        Ok((dst, Type::Bool))
                    }
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                let (a, lhs_ty) = self.expr(lhs)?;
                let (b, rhs_ty) = self.expr(rhs)?;
                let (kind, operand_ty, result_ty) = match op {
                    BinaryOp::Add => (BinKind::Add, Type::Int, Type::Int),
                    BinaryOp::Sub => (BinKind::Sub, Type::Int, Type::Int),
                    BinaryOp::Mul => (BinKind::Mul, Type::Int, Type::Int),
                    BinaryOp::Div => (BinKind::Div, Type::Int, Type::Int),
                    BinaryOp::Rem => (BinKind::Rem, Type::Int, Type::Int),
                    BinaryOp::BitAnd => (BinKind::And, Type::Int, Type::Int),
                    BinaryOp::BitOr => (BinKind::Or, Type::Int, Type::Int),
                    BinaryOp::BitXor => (BinKind::Xor, Type::Int, Type::Int),
                    BinaryOp::Shl => (BinKind::Shl, Type::Int, Type::Int),
                    BinaryOp::Shr => (BinKind::Shr, Type::Int, Type::Int),
                    BinaryOp::Ushr => (BinKind::Ushr, Type::Int, Type::Int),
                    BinaryOp::Lt => (BinKind::Lt, Type::Int, Type::Bool),
                    BinaryOp::Le => (BinKind::Le, Type::Int, Type::Bool),
                    BinaryOp::Gt => (BinKind::Gt, Type::Int, Type::Bool),
                    BinaryOp::Ge => (BinKind::Ge, Type::Int, Type::Bool),
                    BinaryOp::LogAnd => (BinKind::And, Type::Bool, Type::Bool),
                    BinaryOp::LogOr => (BinKind::Or, Type::Bool, Type::Bool),
                    BinaryOp::Eq | BinaryOp::Ne => {
                        // Java allows == / != on matching types, including
                        // booleans.
                        if lhs_ty != rhs_ty {
                            return Err(LowerError::new(format!(
                                "operands of '{}' have mismatched types {lhs_ty} and {rhs_ty}",
                                op.symbol()
                            )));
                        }
                        let kind = if *op == BinaryOp::Eq {
                            BinKind::Eq
                        } else {
                            BinKind::Ne
                        };
                        (kind, lhs_ty, Type::Bool)
                    }
                };
                self.check_type(
                    operand_ty,
                    lhs_ty,
                    &format!("left operand of '{}'", op.symbol()),
                )?;
                self.check_type(
                    operand_ty,
                    rhs_ty,
                    &format!("right operand of '{}'", op.symbol()),
                )?;
                let dst = self.fresh(result_ty == Type::Bool);
                self.emit(Instr::Bin { kind, dst, a, b });
                Ok((dst, result_ty))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parse;

    fn lower_src(src: &str) -> Result<TacProgram, LowerError> {
        lower(&parse(src).unwrap(), "t", 16)
    }

    #[test]
    fn lowers_straight_line_code() {
        let p = lower_src("mem m[4]; void main() { int x = 1 + 2; m[0] = x; }").unwrap();
        assert_eq!(p.validate(), Ok(()));
        assert_eq!(p.operator_count(), 1);
        assert!(matches!(p.instrs.last(), Some(Instr::Halt)));
        assert_eq!(p.mems[0].role, MemRole::Output);
    }

    #[test]
    fn mem_roles_inferred() {
        let p =
            lower_src("mem a[4]; mem b[4]; mem c[4]; mem d[4]; void main() { b[0] = a[0]; c[1] = c[0]; }")
                .unwrap();
        assert_eq!(p.mems[0].role, MemRole::Input);
        assert_eq!(p.mems[1].role, MemRole::Output);
        assert_eq!(p.mems[2].role, MemRole::Intermediate);
        assert_eq!(p.mems[3].role, MemRole::Unused);
    }

    #[test]
    fn while_loop_shape() {
        let p = lower_src("void main() { int i = 0; while (i < 3) { i = i + 1; } }").unwrap();
        assert_eq!(p.validate(), Ok(()));
        let branches: Vec<_> = p
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::Branch { .. }))
            .collect();
        assert_eq!(branches.len(), 1);
        let jumps = p
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::Jump { .. }))
            .count();
        assert_eq!(jumps, 1, "back edge");
    }

    #[test]
    fn if_else_targets_resolve() {
        let p = lower_src(
            "void main() { int x = 0; if (x == 0) { x = 1; } else { x = 2; } x = 3; }",
        )
        .unwrap();
        assert_eq!(p.validate(), Ok(()));
        // Both arms must converge on the trailing assignment.
        let Instr::Branch {
            if_true, if_false, ..
        } = p
            .instrs
            .iter()
            .find(|i| matches!(i, Instr::Branch { .. }))
            .unwrap()
        else {
            unreachable!()
        };
        assert_ne!(if_true, if_false);
    }

    #[test]
    fn booleans_are_one_bit() {
        let p = lower_src("void main() { boolean b = 1 < 2; boolean c = !b; }").unwrap();
        let bools = p.temps.iter().filter(|t| t.is_bool).count();
        assert!(bools >= 2);
        for (i, t) in p.temps.iter().enumerate() {
            if t.is_bool {
                assert_eq!(p.temp_width(Temp(i)), 1);
            }
        }
    }

    #[test]
    fn type_errors() {
        for (src, needle) in [
            ("void main() { int x = true; }", "initializer"),
            ("void main() { if (1) { } }", "if condition"),
            ("void main() { while (1 + 2) { } }", "while condition"),
            ("void main() { boolean b = 1 + true; }", "right operand"),
            ("void main() { boolean b = true < false; }", "operand of '<'"),
            ("void main() { int x = -true; }", "unary '-'"),
            ("void main() { boolean b = !1; }", "operand of '!'"),
            ("void main() { boolean b = 1 == true; }", "mismatched"),
            ("mem m[2]; void main() { m[true] = 1; }", "memory address"),
            ("mem m[2]; void main() { m[0] = true; }", "stored value"),
            ("void main() { x = 1; }", "undeclared variable"),
            ("void main() { int x; int x; }", "declared twice"),
            ("mem m[2]; mem m[2]; void main() { }", "declared twice"),
            ("void main() { m[0] = 1; }", "undeclared memory"),
        ] {
            let err = lower_src(src).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "source {src:?} produced: {err}"
            );
        }
    }

    #[test]
    fn boolean_equality_allowed() {
        assert!(lower_src("void main() { boolean b = true == false; }").is_ok());
        assert!(lower_src("void main() { boolean b = true && (1 < 2); }").is_ok());
    }

    #[test]
    fn shadowing_in_inner_scope() {
        let p = lower_src("void main() { int x = 1; if (x == 1) { int x = 2; x = 3; } x = 4; }")
            .unwrap();
        assert_eq!(p.validate(), Ok(()));
        // Two distinct named temps called x.
        let xs = p
            .temps
            .iter()
            .filter(|t| t.name.as_deref() == Some("x"))
            .count();
        assert_eq!(xs, 2);
    }

    #[test]
    fn partition_spill_code_is_emitted() {
        let program = parse(
            "mem out[4]; void main() { int a = 5; int b = 7; out[0] = a + b; }",
        )
        .unwrap();
        // Partition 1: declarations; saves a and b.
        let p1 = lower_partition(
            &program,
            "p1",
            16,
            &program.body.stmts[..2],
            &[],
            &[("a".into(), 0), ("b".into(), 1)],
            Some(("xfer", 2)),
        )
        .unwrap();
        assert_eq!(p1.mems.last().unwrap().name, "xfer");
        assert_eq!(p1.mems.last().unwrap().size, 2);
        let stores = p1
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::Store { .. }))
            .count();
        assert_eq!(stores, 2);

        // Partition 2: restores a and b, then computes.
        let p2 = lower_partition(
            &program,
            "p2",
            16,
            &program.body.stmts[2..],
            &[("a".into(), 0), ("b".into(), 1)],
            &[],
            Some(("xfer", 2)),
        )
        .unwrap();
        let loads = p2
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::Load { .. }))
            .count();
        assert_eq!(loads, 2);
        assert_eq!(p2.validate(), Ok(()));
    }

    #[test]
    fn width_out_of_range_rejected() {
        let program = parse("void main() { }").unwrap();
        assert!(lower(&program, "t", 1).is_err());
        assert!(lower(&program, "t", 65).is_err());
    }
}
