//! TAC optimization passes.
//!
//! The paper motivates the test infrastructure with exactly this: each
//! time "new optimization techniques are included or changes in the
//! compiler are performed", the whole test suite must be re-verified.
//! These passes are those changes: enabling them alters the generated
//! datapaths and FSMs, and the flow re-proves functional equivalence
//! (see the `ablation_optimize` bench and the optimization tests).
//!
//! Passes (run to fixpoint by [`optimize`]):
//!
//! * **constant folding** — operators whose operands are known constants
//!   within a basic block become constants, including algebraic
//!   identities (`x+0`, `x*1`, `x*0`, shifts by 0);
//! * **copy coalescing** — the `tmp = a ⊕ b; var = tmp` pattern the
//!   expression lowerer emits collapses into `var = a ⊕ b`, saving a
//!   control step and a register write per assignment;
//! * **dead-code elimination** — instructions whose results are never
//!   used disappear (`div`/`rem` and memory operations are kept: they
//!   can fault, and removing a fault would change observable behaviour).

use crate::tac::{BinKind, Instr, TacProgram, Temp};
use std::collections::HashMap;

/// What the optimizer did (for reports and ablation tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptStats {
    /// Operators folded to constants (including identities).
    pub folded: usize,
    /// Copies coalesced away.
    pub coalesced: usize,
    /// Dead instructions removed.
    pub removed: usize,
    /// Fixpoint iterations.
    pub iterations: usize,
}

impl OptStats {
    /// Total rewrites performed.
    pub fn total(&self) -> usize {
        self.folded + self.coalesced + self.removed
    }
}

/// Runs all passes to fixpoint, preserving program semantics.
///
/// The result always satisfies [`TacProgram::validate`]; callers can
/// re-verify semantics with the golden interpreter (the test suite and
/// the property tests do).
pub fn optimize(prog: &mut TacProgram) -> OptStats {
    let mut stats = OptStats::default();
    loop {
        stats.iterations += 1;
        let folded = fold_constants(prog);
        let coalesced = coalesce_copies(prog);
        let removed = eliminate_dead_code(prog);
        stats.folded += folded;
        stats.coalesced += coalesced;
        stats.removed += removed;
        if folded + coalesced + removed == 0 || stats.iterations > 100 {
            break;
        }
    }
    debug_assert_eq!(prog.validate(), Ok(()));
    stats
}

/// Basic-block leader flags (instruction 0, jump/branch targets, and
/// instructions after terminators).
fn leaders(prog: &TacProgram) -> Vec<bool> {
    let mut leaders = vec![false; prog.instrs.len()];
    if !leaders.is_empty() {
        leaders[0] = true;
    }
    for (i, instr) in prog.instrs.iter().enumerate() {
        match instr {
            Instr::Jump { target } => {
                leaders[*target] = true;
                if i + 1 < prog.instrs.len() {
                    leaders[i + 1] = true;
                }
            }
            Instr::Branch {
                if_true, if_false, ..
            } => {
                leaders[*if_true] = true;
                leaders[*if_false] = true;
                if i + 1 < prog.instrs.len() {
                    leaders[i + 1] = true;
                }
            }
            Instr::Halt
                if i + 1 < prog.instrs.len() => {
                    leaders[i + 1] = true;
                }
            _ => {}
        }
    }
    leaders
}

/// Folds operators with constant operands, per basic block.
///
/// Returns the number of instructions rewritten.
pub fn fold_constants(prog: &mut TacProgram) -> usize {
    let leaders = leaders(prog);
    let mut rewritten = 0;
    let mut known: HashMap<Temp, i64> = HashMap::new();
    #[allow(clippy::needless_range_loop)] // i indexes leaders and instrs in tandem
    for i in 0..prog.instrs.len() {
        if leaders[i] {
            known.clear();
        }
        let replacement = match &prog.instrs[i] {
            Instr::Bin { kind, dst, a, b } => {
                let (ka, kb) = (known.get(a).copied(), known.get(b).copied());
                match (ka, kb) {
                    (Some(va), Some(vb)) => {
                        // Both constant: evaluate unless it would fault.
                        crate::interp::eval_bin(*kind, va, vb, prog.width)
                            .ok()
                            .map(|value| Instr::Const { dst: *dst, value })
                    }
                    _ => fold_identity(*kind, *dst, *a, *b, ka, kb),
                }
            }
            Instr::Un { kind, dst, a } => known.get(a).map(|&va| Instr::Const {
                dst: *dst,
                value: crate::interp::eval_un(*kind, va, prog.temp_width(*dst)),
            }),
            _ => None,
        };
        if let Some(new_instr) = replacement {
            prog.instrs[i] = new_instr;
            rewritten += 1;
        }
        // Update the known-constants map.
        match &prog.instrs[i] {
            Instr::Const { dst, value } => {
                known.insert(*dst, crate::interp::truncate(*value, prog.temp_width(*dst)));
            }
            instr => {
                if let Some(dst) = instr.dst() {
                    known.remove(&dst);
                }
            }
        }
    }
    rewritten
}

/// Identity folds when exactly one operand is a known constant.
fn fold_identity(
    kind: BinKind,
    dst: Temp,
    a: Temp,
    b: Temp,
    ka: Option<i64>,
    kb: Option<i64>,
) -> Option<Instr> {
    match (kind, ka, kb) {
        // x + 0, x - 0, x << 0, x >> 0, x >>> 0, x | 0, x ^ 0
        (
            BinKind::Add | BinKind::Sub | BinKind::Shl | BinKind::Shr | BinKind::Ushr
            | BinKind::Or | BinKind::Xor,
            None,
            Some(0),
        ) => Some(Instr::Copy { dst, src: a }),
        // 0 + x, 0 | x, 0 ^ x
        (BinKind::Add | BinKind::Or | BinKind::Xor, Some(0), None) => {
            Some(Instr::Copy { dst, src: b })
        }
        // x * 1, x / 1
        (BinKind::Mul | BinKind::Div, None, Some(1)) => Some(Instr::Copy { dst, src: a }),
        // 1 * x
        (BinKind::Mul, Some(1), None) => Some(Instr::Copy { dst, src: b }),
        // x * 0, 0 * x, x & 0, 0 & x
        (BinKind::Mul | BinKind::And, _, Some(0)) | (BinKind::Mul | BinKind::And, Some(0), _) => {
            Some(Instr::Const { dst, value: 0 })
        }
        _ => None,
    }
}

/// Collapses `src = a ⊕ b; dst = src` into `dst = a ⊕ b` when `src` is a
/// compiler temporary defined by the immediately preceding instruction
/// and used nowhere else.
///
/// The producer is retargeted in place and the copy becomes a self-copy
/// (`dst = dst`), which keeps every jump target stable;
/// [`eliminate_dead_code`] then removes the self-copy and remaps targets.
///
/// Returns the number of copies coalesced.
pub fn coalesce_copies(prog: &mut TacProgram) -> usize {
    // Global use counts.
    let mut uses: HashMap<Temp, usize> = HashMap::new();
    for instr in &prog.instrs {
        for src in instr.sources() {
            *uses.entry(src).or_default() += 1;
        }
    }
    let leaders = leaders(prog);
    let mut coalesced = 0;
    #[allow(clippy::needless_range_loop)] // i-1/i pairs over instrs and leaders
    for i in 1..prog.instrs.len() {
        if leaders[i] {
            continue; // the producer must be in the same block
        }
        let Instr::Copy { dst, src } = prog.instrs[i] else {
            continue;
        };
        if dst == src {
            continue;
        }
        // `src` must be a single-use unnamed temporary produced by the
        // previous instruction.
        if prog.temps[src.0].name.is_some() || uses.get(&src) != Some(&1) {
            continue;
        }
        if prog.instrs[i - 1].dst() != Some(src) {
            continue;
        }
        // Widths must agree, or the retargeted producer would write at the
        // wrong width (bool vs int temps).
        if prog.temp_width(src) != prog.temp_width(dst) {
            continue;
        }
        // Retarget the producer and neutralize the copy.
        match &mut prog.instrs[i - 1] {
            Instr::Const { dst: d, .. }
            | Instr::Bin { dst: d, .. }
            | Instr::Un { dst: d, .. }
            | Instr::Copy { dst: d, .. }
            | Instr::Load { dst: d, .. } => *d = dst,
            _ => unreachable!("dst() returned Some"),
        }
        prog.instrs[i] = Instr::Copy { dst, src: dst };
        coalesced += 1;
    }
    coalesced
}

/// Removes instructions whose results are never used and that cannot
/// fault or store. Self-copies (`x = x`) are always dead. Jump targets
/// are remapped around removed instructions.
///
/// Returns the number of instructions removed.
pub fn eliminate_dead_code(prog: &mut TacProgram) -> usize {
    let mut used = vec![false; prog.temps.len()];
    for instr in &prog.instrs {
        for src in instr.sources() {
            used[src.0] = true;
        }
    }
    let removable: Vec<bool> = prog
        .instrs
        .iter()
        .map(|instr| match instr {
            Instr::Copy { dst, src } if dst == src => true,
            Instr::Const { dst, .. } | Instr::Copy { dst, .. } => !used[dst.0],
            Instr::Bin { kind, dst, .. } => {
                // div/rem can fault: removing them would hide a bug.
                !used[dst.0] && !matches!(kind, BinKind::Div | BinKind::Rem)
            }
            Instr::Un { dst, .. } => !used[dst.0],
            // Loads can fault on bad addresses; stores are side effects.
            _ => false,
        })
        .collect();
    let removed = removable.iter().filter(|&&r| r).count();
    if removed == 0 {
        return 0;
    }

    // Remap: new index of old instruction i = survivors before i; a
    // removed jump target lands on the next surviving instruction.
    let mut new_index = Vec::with_capacity(prog.instrs.len());
    let mut survivors = 0;
    for &r in &removable {
        new_index.push(survivors);
        if !r {
            survivors += 1;
        }
    }
    let mut instrs = Vec::with_capacity(survivors);
    for (i, instr) in prog.instrs.drain(..).enumerate() {
        if removable[i] {
            continue;
        }
        instrs.push(match instr {
            Instr::Jump { target } => Instr::Jump {
                target: new_index[target],
            },
            Instr::Branch {
                cond,
                if_true,
                if_false,
            } => Instr::Branch {
                cond,
                if_true: new_index[if_true],
                if_false: new_index[if_false],
            },
            other => other,
        });
    }
    prog.instrs = instrs;
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{blank_images, execute};
    use crate::lang::parse;
    use crate::lower::lower;

    fn prog(src: &str) -> TacProgram {
        lower(&parse(src).unwrap(), "t", 16).unwrap()
    }

    fn outputs(p: &TacProgram) -> Vec<Option<i64>> {
        let mut mems = blank_images(p);
        execute(p, &mut mems, 1_000_000).unwrap();
        mems.into_iter().flatten().collect()
    }

    #[test]
    fn folding_collapses_constant_expressions() {
        let mut p = prog("mem out[1]; void main() { out[0] = (2 + 3) * 4 - 1; }");
        let before_ops = p.operator_count();
        let expected = outputs(&p);
        let stats = optimize(&mut p);
        assert!(stats.folded >= 3, "{stats:?}");
        assert!(p.operator_count() < before_ops);
        assert_eq!(p.operator_count(), 0, "fully constant expression folds away");
        assert_eq!(outputs(&p), expected);
    }

    #[test]
    fn identities_simplify() {
        let mut p = prog(
            "mem inp[1]; mem out[4]; void main() {
                int x = inp[0];
                out[0] = x + 0;
                out[1] = x * 1;
                out[2] = x * 0;
                out[3] = 0 + x;
            }",
        );
        let before = p.operator_count();
        let stats = optimize(&mut p);
        assert!(stats.folded >= 4, "{stats:?}");
        assert_eq!(p.operator_count(), 0, "all four identities fold");
        assert!(before >= 4);
    }

    #[test]
    fn coalescing_removes_expression_copies() {
        let mut p = prog("mem out[1]; void main() { int a = 1; int b = 2; out[0] = a + b; }");
        let copies_before = p
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::Copy { .. }))
            .count();
        let stats = optimize(&mut p);
        let copies_after = p
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::Copy { .. }))
            .count();
        assert!(stats.coalesced >= 2, "{stats:?}");
        assert!(copies_after < copies_before);
    }

    #[test]
    fn dce_keeps_faulting_operations() {
        // The division's result is unused, but removing it would hide the
        // divide-by-zero fault.
        let mut p = prog("mem inp[1]; void main() { int unused = 5 / inp[0]; }");
        optimize(&mut p);
        assert!(
            p.instrs
                .iter()
                .any(|i| matches!(i, Instr::Bin { kind: BinKind::Div, .. })),
            "division survived DCE"
        );
        // Loads also survive (they can fault on bad addresses).
        assert!(p.instrs.iter().any(|i| matches!(i, Instr::Load { .. })));
    }

    #[test]
    fn dce_remaps_jump_targets() {
        let mut p = prog(
            "mem out[1]; void main() {
                int dead = 1 + 2;
                int i = 0;
                while (i < 3) { int dead2 = 9; i = i + 1; }
                out[0] = i;
            }",
        );
        let expected = outputs(&p);
        let stats = optimize(&mut p);
        assert!(stats.removed > 0, "{stats:?}");
        assert_eq!(p.validate(), Ok(()));
        assert_eq!(outputs(&p), expected);
    }

    #[test]
    fn loop_semantics_survive_optimization() {
        let src = "mem out[8]; void main() {
            int i;
            for (i = 0; i < 8; i = i + 1) {
                out[i] = (i * 1 + 0) * i;
            }
        }";
        let reference = outputs(&prog(src));
        let mut p = prog(src);
        let stats = optimize(&mut p);
        assert!(stats.total() > 0);
        assert_eq!(outputs(&p), reference);
    }

    #[test]
    fn optimizer_reaches_fixpoint() {
        let mut p = prog("mem out[1]; void main() { out[0] = ((1 + 1) + (1 + 1)) * (0 + 1); }");
        let stats = optimize(&mut p);
        assert!(stats.iterations >= 2, "cascading folds need iterations: {stats:?}");
        // Re-running does nothing.
        let again = optimize(&mut p);
        assert_eq!(again.total(), 0);
    }

    #[test]
    fn bool_width_mismatch_is_not_coalesced() {
        // cond temp (1-bit) copied into boolean var (1-bit): same width,
        // fine; but a comparison feeding an int variable cannot occur by
        // typing. This test pins that coalescing never breaks validation
        // on a branch-heavy program.
        let mut p = prog(
            "void main() {
                boolean b = 1 < 2;
                if (b) { int x = 1; } else { int y = 2; }
            }",
        );
        optimize(&mut p);
        assert_eq!(p.validate(), Ok(()));
    }
}
