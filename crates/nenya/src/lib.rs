//! # nenya — the compiler substrate of the fpgatest infrastructure
//!
//! A from-scratch reproduction of the role Galadriel & Nenya play in the
//! DATE'05 paper: compiling a Java-like algorithm into the specific
//! architectures the test infrastructure verifies — a structural
//! **datapath**, a behavioral control **FSM**, and (for temporally
//! partitioned designs) a **Reconfiguration Transition Graph** — all
//! exchanged as XML dialects.
//!
//! Pipeline: [`lang`] (front end) → [`lower`] ([`tac`] IR) →
//! [`schedule::schedule`] (state assignment) → [`datapath::generate`] +
//! [`fsm::generate_fsm`] → [`xml`] emission. The [`interp`] module
//! executes the TAC directly and is the golden software reference the
//! hardware simulation is compared against. [`partition`] splits programs
//! into temporal partitions chained by an [`rtg::Rtg`].
//!
//! ## Example
//!
//! ```
//! use nenya::{compile, CompileOptions};
//!
//! # fn main() -> Result<(), nenya::CompileError> {
//! let design = compile(
//!     "square",
//!     "mem out[8]; void main() { int i; for (i = 0; i < 8; i = i + 1) { out[i] = i * i; } }",
//!     &CompileOptions::default(),
//! )?;
//! assert_eq!(design.configs.len(), 1);
//! assert!(design.configs[0].datapath.operator_count() > 0);
//! # Ok(())
//! # }
//! ```

pub mod datapath;
pub mod fsm;
pub mod interp;
pub mod lang;
mod lower;
pub mod opt;
pub mod partition;
pub mod rtg;
pub mod schedule;
pub mod tac;
pub mod xml;

pub use lower::{infer_mem_roles, lower, lower_partition, LowerError};

use crate::datapath::Datapath;
use crate::fsm::Fsm;
use crate::partition::{PartitionError, XFER_MEM};
use crate::rtg::Rtg;
use crate::schedule::{Schedule, SchedulePolicy};
use crate::tac::{MemRole, MemSpec, TacProgram};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Options controlling compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileOptions {
    /// Design data width in bits (default 16).
    pub width: u32,
    /// Scheduling policy (default [`SchedulePolicy::List`]).
    pub policy: SchedulePolicy,
    /// Number of temporal partitions (default 1 = single configuration).
    pub partitions: usize,
    /// Run the [`opt`] passes (constant folding, copy coalescing, dead
    /// code elimination) on each configuration's TAC (default off, to
    /// match the paper's baseline compiler).
    pub optimize: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            width: 16,
            policy: SchedulePolicy::List,
            partitions: 1,
            optimize: false,
        }
    }
}

/// One compiled configuration (temporal partition).
#[derive(Debug, Clone)]
pub struct Configuration {
    /// Configuration name.
    pub name: String,
    /// What the optimizer did (zero when optimization is off).
    pub opt_stats: opt::OptStats,
    /// The lowered TAC of this partition (including spill code).
    pub tac: TacProgram,
    /// Its state assignment.
    pub schedule: Schedule,
    /// Its structural datapath.
    pub datapath: Datapath,
    /// Its control FSM.
    pub fsm: Fsm,
}

/// A fully compiled design: every artifact the test infrastructure
/// consumes.
#[derive(Debug, Clone)]
pub struct Design {
    /// Design name.
    pub name: String,
    /// Data width.
    pub width: u32,
    /// `loJava`: non-empty source lines of the input program.
    pub source_lines: usize,
    /// The configurations in RTG declaration order.
    pub configs: Vec<Configuration>,
    /// The reconfiguration transition graph.
    pub rtg: Rtg,
    /// Union of all memories across configurations (by name), with merged
    /// roles.
    pub mems: Vec<MemSpec>,
}

impl Design {
    /// Total operator count across configurations.
    pub fn operator_count(&self) -> usize {
        self.configs
            .iter()
            .map(|c| c.datapath.operator_count())
            .sum()
    }

    /// Looks a configuration up by name.
    pub fn config(&self, name: &str) -> Option<&Configuration> {
        self.configs.iter().find(|c| c.name == name)
    }

    /// Creates blank (uninitialized) memory images for every design
    /// memory, keyed by name.
    pub fn blank_images(&self) -> BTreeMap<String, interp::MemImage> {
        self.mems
            .iter()
            .map(|m| (m.name.clone(), vec![None; m.size]))
            .collect()
    }

    /// Runs the golden software reference over the whole design:
    /// configurations execute in RTG order, sharing memory contents by
    /// name — the software analogue of reconfiguring the FPGA between
    /// temporal partitions while SRAMs persist.
    ///
    /// `images` supplies initial memory contents and receives the final
    /// ones; memories absent from the map start uninitialized.
    ///
    /// # Errors
    ///
    /// Returns the textual form of the first execution or RTG error.
    pub fn execute_golden(
        &self,
        images: &mut BTreeMap<String, interp::MemImage>,
        step_limit: u64,
    ) -> Result<interp::ExecStats, String> {
        for mem in &self.mems {
            images
                .entry(mem.name.clone())
                .or_insert_with(|| vec![None; mem.size]);
        }
        let mut total = interp::ExecStats {
            instructions: 0,
            loads: 0,
            stores: 0,
            branches: 0,
        };
        let order = self.rtg.execution_order().map_err(|e| e.to_string())?;
        for node in order {
            let config = self
                .configs
                .iter()
                .find(|c| c.datapath.name == node.datapath)
                .ok_or_else(|| format!("rtg references unknown datapath '{}'", node.datapath))?;
            let mut local: Vec<interp::MemImage> = config
                .tac
                .mems
                .iter()
                .map(|m| images[&m.name].clone())
                .collect();
            let stats = interp::execute(&config.tac, &mut local, step_limit)
                .map_err(|e| format!("configuration '{}': {e}", config.name))?;
            total.instructions += stats.instructions;
            total.loads += stats.loads;
            total.stores += stats.stores;
            total.branches += stats.branches;
            for (m, image) in config.tac.mems.iter().zip(local) {
                images.insert(m.name.clone(), image);
            }
        }
        Ok(total)
    }
}

/// Errors from [`compile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The source failed to parse.
    Parse(lang::ParseError),
    /// The program is semantically invalid.
    Lower(LowerError),
    /// The partitioning request cannot be satisfied.
    Partition(PartitionError),
    /// Memories disagree between configurations (compiler bug guard).
    MemMismatch(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "parse error: {e}"),
            CompileError::Lower(e) => write!(f, "semantic error: {e}"),
            CompileError::Partition(e) => write!(f, "partitioning error: {e}"),
            CompileError::MemMismatch(m) => write!(f, "memory mismatch: {m}"),
        }
    }
}

impl Error for CompileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompileError::Parse(e) => Some(e),
            CompileError::Lower(e) => Some(e),
            CompileError::Partition(e) => Some(e),
            CompileError::MemMismatch(_) => None,
        }
    }
}

impl From<lang::ParseError> for CompileError {
    fn from(e: lang::ParseError) -> Self {
        CompileError::Parse(e)
    }
}

impl From<LowerError> for CompileError {
    fn from(e: LowerError) -> Self {
        CompileError::Lower(e)
    }
}

impl From<PartitionError> for CompileError {
    fn from(e: PartitionError) -> Self {
        CompileError::Partition(e)
    }
}

/// Compiles a source program into a [`Design`].
///
/// With `options.partitions == 1` the whole program becomes one
/// configuration named after the design; with more, the program is
/// temporally partitioned into `"{name}_c{i}"` configurations chained by
/// the RTG, communicating scalars through the `__xfer` SRAM.
///
/// # Errors
///
/// Returns [`CompileError`] for syntax, semantic, or partitioning
/// problems.
pub fn compile(name: &str, source: &str, options: &CompileOptions) -> Result<Design, CompileError> {
    let program = lang::parse(source)?;
    compile_program(name, &program, options)
}

/// [`compile`] for an already-parsed [`lang::Program`].
///
/// Lets callers that want to time or report the front end separately (the
/// flow telemetry layer) run [`lang::parse`] themselves and hand the AST
/// over for lowering, scheduling, and generation.
///
/// # Errors
///
/// Returns [`CompileError`] for semantic or partitioning problems.
pub fn compile_program(
    name: &str,
    program: &lang::Program,
    options: &CompileOptions,
) -> Result<Design, CompileError> {
    let mut configs = Vec::new();
    if options.partitions <= 1 {
        let tac = lower(program, name, options.width)?;
        configs.push(build_config(name.to_string(), tac, options));
    } else {
        let plan = partition::partition(program, options.partitions)?;
        for (i, chunk) in plan.chunks.iter().enumerate() {
            let config_name = format!("{name}_c{i}");
            let xfer = if chunk.restore.is_empty() && chunk.save.is_empty() {
                None
            } else {
                Some((XFER_MEM, plan.xfer_size))
            };
            let tac = lower_partition(
                program,
                &config_name,
                options.width,
                &program.body.stmts[chunk.stmts.clone()],
                &chunk.restore,
                &chunk.save,
                xfer,
            )?;
            configs.push(build_config(config_name, tac, options));
        }
    }

    let rtg = if configs.len() == 1 {
        Rtg::single(name, &configs[0].datapath.name, &configs[0].fsm.name)
    } else {
        let pairs: Vec<(String, String)> = configs
            .iter()
            .map(|c| (c.datapath.name.clone(), c.fsm.name.clone()))
            .collect();
        Rtg::chain(name, &pairs)
    };

    let mems = merge_mems(&configs)?;

    Ok(Design {
        name: name.to_string(),
        width: options.width,
        source_lines: program.source_lines,
        configs,
        rtg,
        mems,
    })
}

fn build_config(name: String, mut tac: TacProgram, options: &CompileOptions) -> Configuration {
    let opt_stats = if options.optimize {
        opt::optimize(&mut tac)
    } else {
        opt::OptStats::default()
    };
    let sched = schedule::schedule(&tac, options.policy);
    let (dp, plan) = datapath::generate(&tac, &sched);
    let fsm = fsm::generate_fsm(&tac, &sched, &plan, &dp);
    Configuration {
        name,
        opt_stats,
        tac,
        schedule: sched,
        datapath: dp,
        fsm,
    }
}

fn merge_mems(configs: &[Configuration]) -> Result<Vec<MemSpec>, CompileError> {
    let mut merged: BTreeMap<String, MemSpec> = BTreeMap::new();
    for config in configs {
        for mem in &config.tac.mems {
            match merged.get_mut(&mem.name) {
                None => {
                    merged.insert(mem.name.clone(), mem.clone());
                }
                Some(existing) => {
                    if existing.size != mem.size || existing.width != mem.width {
                        return Err(CompileError::MemMismatch(format!(
                            "memory '{}' has shape {}x{} in one configuration and {}x{} in another",
                            mem.name, existing.size, existing.width, mem.size, mem.width
                        )));
                    }
                    existing.role = merge_role(existing.role, mem.role);
                }
            }
        }
    }
    Ok(merged.into_values().collect())
}

fn merge_role(a: MemRole, b: MemRole) -> MemRole {
    let reads = matches!(a, MemRole::Input | MemRole::Intermediate)
        || matches!(b, MemRole::Input | MemRole::Intermediate);
    let writes = matches!(a, MemRole::Output | MemRole::Intermediate)
        || matches!(b, MemRole::Output | MemRole::Intermediate);
    match (reads, writes) {
        (true, true) => MemRole::Intermediate,
        (true, false) => MemRole::Input,
        (false, true) => MemRole::Output,
        (false, false) => MemRole::Unused,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const COPY_LOOP: &str = "
        mem a[8];
        mem b[8];
        void main() {
            int i;
            for (i = 0; i < 8; i = i + 1) { b[i] = a[i] + 1; }
        }
    ";

    #[test]
    fn single_config_compile() {
        let design = compile("copy", COPY_LOOP, &CompileOptions::default()).unwrap();
        assert_eq!(design.configs.len(), 1);
        assert_eq!(design.rtg.nodes.len(), 1);
        assert_eq!(design.mems.len(), 2);
        assert!(design.operator_count() > 0);
        assert!(design.source_lines >= 6);
        assert_eq!(design.configs[0].fsm.validate(&design.configs[0].datapath), Ok(()));
    }

    #[test]
    fn partitioned_compile_produces_chain() {
        let source = "
            mem out[4];
            void main() {
                int a = 2;
                int b = a * 3;
                out[0] = a;
                out[1] = b;
            }
        ";
        let design = compile(
            "split",
            source,
            &CompileOptions {
                partitions: 2,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        assert_eq!(design.configs.len(), 2);
        assert_eq!(design.rtg.edges.len(), 1);
        // Crossing scalars materialize the transfer memory.
        assert!(design.mems.iter().any(|m| m.name == XFER_MEM));
        let order: Vec<&str> = design
            .rtg
            .execution_order()
            .unwrap()
            .iter()
            .map(|n| n.id.as_str())
            .collect();
        assert_eq!(order, ["c0", "c1"]);
    }

    #[test]
    fn merged_roles_combine_across_configs() {
        // Partition so `a` is written in c0 and read in c1 → Intermediate.
        let source = "
            mem a[4];
            void main() {
                a[0] = 5;
                a[1] = 6;
                int x = a[0];
                a[2] = x;
            }
        ";
        let design = compile(
            "roles",
            source,
            &CompileOptions {
                partitions: 2,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        let a = design.mems.iter().find(|m| m.name == "a").unwrap();
        assert_eq!(a.role, MemRole::Intermediate);
    }

    #[test]
    fn errors_are_classified() {
        let opts = CompileOptions::default();
        assert!(matches!(
            compile("x", "void main() {", &opts),
            Err(CompileError::Parse(_))
        ));
        assert!(matches!(
            compile("x", "void main() { y = 1; }", &opts),
            Err(CompileError::Lower(_))
        ));
        assert!(matches!(
            compile(
                "x",
                "void main() { int a = 1; }",
                &CompileOptions {
                    partitions: 5,
                    ..opts
                }
            ),
            Err(CompileError::Partition(_))
        ));
    }

    #[test]
    fn policy_changes_schedule_not_structure() {
        let packed = compile("p", COPY_LOOP, &CompileOptions::default()).unwrap();
        let naive = compile(
            "p",
            COPY_LOOP,
            &CompileOptions {
                policy: SchedulePolicy::OneOpPerState,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        assert_eq!(packed.operator_count(), naive.operator_count());
        assert!(packed.configs[0].schedule.state_count() < naive.configs[0].schedule.state_count());
    }
}
