//! Datapath generation: TAC + schedule → structural datapath plus the
//! control interface the FSM drives.
//!
//! One functional unit is instantiated per TAC operation — no FU sharing,
//! matching the operator counts the paper reports (e.g. 169 operators for
//! FDCT1). Registers hold temps; multiplexers are inserted wherever a
//! register or memory port has several producers.

use crate::schedule::{Exit, Schedule};
use crate::tac::{Instr, TacProgram, Temp};
use std::collections::BTreeMap;

/// A component instantiation inside a [`Datapath`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// Instance name.
    pub name: String,
    /// Component kind (the shared operator vocabulary).
    pub kind: String,
    /// `key=value` parameters.
    pub params: Vec<(String, String)>,
    /// `port → signal` connections.
    pub conns: Vec<(String, String)>,
}

impl Cell {
    fn new(name: impl Into<String>, kind: impl Into<String>) -> Self {
        Cell {
            name: name.into(),
            kind: kind.into(),
            params: Vec::new(),
            conns: Vec::new(),
        }
    }

    fn param(mut self, key: &str, value: impl ToString) -> Self {
        self.params.push((key.to_string(), value.to_string()));
        self
    }

    fn conn(mut self, port: &str, signal: impl Into<String>) -> Self {
        self.conns.push((port.to_string(), signal.into()));
        self
    }
}

/// A generated datapath: signals, cells, and its FSM-facing interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datapath {
    /// Configuration name.
    pub name: String,
    /// Design data width.
    pub width: u32,
    /// Declared signals (`name`, width).
    pub signals: Vec<(String, u32)>,
    /// Component instances.
    pub cells: Vec<Cell>,
    /// The clock signal name.
    pub clock: String,
    /// Control signals driven by the FSM (`name`, width), in a stable
    /// order shared with FSM generation.
    pub controls: Vec<(String, u32)>,
    /// Condition signals read by the FSM (1-bit register outputs).
    pub conditions: Vec<String>,
}

/// The functional-unit kinds a datapath can instantiate (the shared
/// operator vocabulary; everything else is routing/storage: `reg`, `mux`,
/// `sram`, …).
pub const FU_KINDS: &[&str] = &[
    "add", "sub", "mul", "div", "rem", "and", "or", "xor", "shl", "shr", "ushr", "eq", "ne", "lt",
    "le", "gt", "ge", "not", "neg",
];

impl Datapath {
    /// Number of functional units (the Table I "operators" column).
    pub fn operator_count(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| FU_KINDS.contains(&c.kind.as_str()))
            .count()
    }

    /// Counts cells of a given kind (`"reg"`, `"mux"`, `"sram"`, …).
    pub fn cell_count(&self, kind: &str) -> usize {
        self.cells.iter().filter(|c| c.kind == kind).count()
    }
}

/// Per-writer routing information, shared by datapath and FSM generation.
///
/// For each multi-writer register or memory port, the FSM must assert the
/// mux select matching the issuing instruction; this table records the
/// select value of every instruction.
#[derive(Debug, Clone, Default)]
pub struct ControlPlan {
    /// instr index → (register enable signal, mux select signal + value).
    pub reg_writes: BTreeMap<usize, RegWrite>,
    /// instr index → memory access controls.
    pub mem_accesses: BTreeMap<usize, MemAccess>,
    /// Temp → its register-output signal name (condition lookups).
    pub temp_signal: BTreeMap<usize, String>,
}

/// Control actions to latch one instruction's destination register.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegWrite {
    /// The enable control signal.
    pub enable: String,
    /// `(select signal, value)` when the register input is multiplexed.
    pub select: Option<(String, i64)>,
}

/// Control actions for one memory access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemAccess {
    /// The port-enable control signal.
    pub enable: String,
    /// The write-enable control signal.
    pub write_enable: String,
    /// Whether this access is a store.
    pub is_store: bool,
    /// `(address-select signal, value)` when the address is multiplexed.
    pub addr_select: Option<(String, i64)>,
    /// `(data-select signal, value)` when the write data is multiplexed.
    pub din_select: Option<(String, i64)>,
}

fn sel_width(n: usize) -> u32 {
    let mut width = 1;
    while (1usize << width) < n {
        width += 1;
    }
    width
}

/// The name of the register-output signal of a temp.
pub fn temp_q(temp: Temp) -> String {
    format!("t{}_q", temp.0)
}

/// Generates the structural datapath and the control plan for `prog`
/// under `schedule`.
///
/// The schedule determines nothing structural except which instructions
/// exist (structure depends only on the TAC), but it is taken here so the
/// pair is constructed together and the control plan can be validated
/// against it downstream.
pub fn generate(prog: &TacProgram, schedule: &Schedule) -> (Datapath, ControlPlan) {
    let mut dp = Datapath {
        name: prog.name.clone(),
        width: prog.width,
        signals: Vec::new(),
        cells: Vec::new(),
        clock: "clk".to_string(),
        controls: Vec::new(),
        conditions: Vec::new(),
    };
    let mut plan = ControlPlan::default();

    dp.signals.push(("clk".to_string(), 1));
    dp.cells
        .push(Cell::new("clock0", "clock").param("period", 10).conn("y", "clk"));

    // The completion flag: asserted by the FSM's terminal state; test
    // benches watch it (the paper's "stop mechanisms").
    dp.signals.push(("done".to_string(), 1));
    dp.controls.push(("done".to_string(), 1));

    // Register-output signals exist for every temp (undriven = X, exactly
    // like a never-written variable).
    for (t, _info) in prog.temps.iter().enumerate() {
        let temp = Temp(t);
        let q = temp_q(temp);
        dp.signals.push((q.clone(), prog.temp_width(temp)));
        plan.temp_signal.insert(t, q);
    }

    // The output signal feeding a temp's register for each writing
    // instruction.
    let mut writer_signal: BTreeMap<usize, String> = BTreeMap::new();

    for (i, instr) in prog.instrs.iter().enumerate() {
        match instr {
            Instr::Const { dst, value } => {
                let y = format!("c{i}_y");
                let width = prog.temp_width(*dst);
                dp.signals.push((y.clone(), width));
                dp.cells.push(
                    Cell::new(format!("const{i}"), "const")
                        .param("width", width)
                        .param("value", *value)
                        .conn("y", y.clone()),
                );
                writer_signal.insert(i, y);
            }
            Instr::Bin { kind, dst, a, b } => {
                let y = format!("fu{i}_y");
                let width = prog.temp_width(*dst);
                // FUs operate at operand width: comparisons narrow wide
                // operands to a 1-bit result themselves, while logical
                // and/or over booleans must be 1-bit throughout — sizing
                // them at the design width would drive a wide result onto
                // the 1-bit output signal.
                let op_width = prog.temp_width(*a).max(prog.temp_width(*b));
                dp.signals.push((y.clone(), width));
                dp.cells.push(
                    Cell::new(format!("fu{i}"), kind.name())
                        .param("width", op_width)
                        .conn("a", temp_q(*a))
                        .conn("b", temp_q(*b))
                        .conn("y", y.clone()),
                );
                writer_signal.insert(i, y);
            }
            Instr::Un { kind, dst, a } => {
                let y = format!("fu{i}_y");
                let width = prog.temp_width(*dst);
                dp.signals.push((y.clone(), width));
                dp.cells.push(
                    Cell::new(format!("fu{i}"), kind.name())
                        .param("width", width)
                        .conn("a", temp_q(*a))
                        .conn("y", y.clone()),
                );
                writer_signal.insert(i, y);
            }
            Instr::Copy { src, .. } => {
                writer_signal.insert(i, temp_q(*src));
            }
            Instr::Load { mem, .. } => {
                writer_signal.insert(i, format!("{}_dout", prog.mems[*mem].name));
            }
            Instr::Store { .. } | Instr::Jump { .. } | Instr::Branch { .. } | Instr::Halt => {}
        }
    }

    // Registers with input muxes for every written temp.
    let mut writers_of: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (i, instr) in prog.instrs.iter().enumerate() {
        if let Some(dst) = instr.dst() {
            writers_of.entry(dst.0).or_default().push(i);
        }
    }
    for (&t, writers) in &writers_of {
        let temp = Temp(t);
        let width = prog.temp_width(temp);
        let enable = format!("t{t}_en");
        dp.signals.push((enable.clone(), 1));
        dp.controls.push((enable.clone(), 1));

        let d_signal = if writers.len() == 1 {
            writer_signal[&writers[0]].clone()
        } else {
            let sel = format!("t{t}_sel");
            let sw = sel_width(writers.len());
            let d = format!("t{t}_d");
            dp.signals.push((sel.clone(), sw));
            dp.signals.push((d.clone(), width));
            dp.controls.push((sel.clone(), sw));
            let mut mux = Cell::new(format!("mux_t{t}"), "mux")
                .param("width", width)
                .param("inputs", writers.len())
                .conn("sel", sel.clone())
                .conn("y", d.clone());
            for (k, &w) in writers.iter().enumerate() {
                mux = mux.conn(&format!("i{k}"), writer_signal[&w].clone());
            }
            dp.cells.push(mux);
            d
        };
        dp.cells.push(
            Cell::new(format!("reg_t{t}"), "reg")
                .param("width", width)
                .conn("clk", "clk")
                .conn("d", d_signal)
                .conn("q", temp_q(temp))
                .conn("en", enable.clone()),
        );
        for (k, &w) in writers.iter().enumerate() {
            let select = if writers.len() > 1 {
                Some((format!("t{t}_sel"), k as i64))
            } else {
                None
            };
            plan.reg_writes.insert(
                w,
                RegWrite {
                    enable: enable.clone(),
                    select,
                },
            );
        }
    }

    // Memories: one single-port SRAM per MemSpec, with address and
    // write-data muxes over the accessing instructions.
    for (m, spec) in prog.mems.iter().enumerate() {
        let accesses: Vec<usize> = prog
            .instrs
            .iter()
            .enumerate()
            .filter(|(_, instr)| instr.mem() == Some(m))
            .map(|(i, _)| i)
            .collect();

        let en = format!("{}_en", spec.name);
        let we = format!("{}_we", spec.name);
        let addr = format!("{}_addr", spec.name);
        let din = format!("{}_din", spec.name);
        let dout = format!("{}_dout", spec.name);
        for (signal, width) in [
            (en.clone(), 1),
            (we.clone(), 1),
            (addr.clone(), prog.width),
            (din.clone(), spec.width),
            (dout.clone(), spec.width),
        ] {
            dp.signals.push((signal, width));
        }
        dp.controls.push((en.clone(), 1));
        dp.controls.push((we.clone(), 1));

        // Address mux over all accesses; data mux over stores.
        let addr_sources: Vec<(usize, String)> = accesses
            .iter()
            .map(|&i| {
                let a = match &prog.instrs[i] {
                    Instr::Load { addr, .. } => *addr,
                    Instr::Store { addr, .. } => *addr,
                    _ => unreachable!("access list holds loads and stores"),
                };
                (i, temp_q(a))
            })
            .collect();
        let store_sources: Vec<(usize, String)> = accesses
            .iter()
            .filter_map(|&i| match &prog.instrs[i] {
                Instr::Store { value, .. } => Some((i, temp_q(*value))),
                _ => None,
            })
            .collect();

        let addr_select = build_port_mux(
            &mut dp,
            &format!("{}_amux", spec.name),
            &addr,
            prog.width,
            &addr_sources,
            &format!("{}_asel", spec.name),
        );
        let din_select = build_port_mux(
            &mut dp,
            &format!("{}_dmux", spec.name),
            &din,
            spec.width,
            &store_sources,
            &format!("{}_dsel", spec.name),
        );

        dp.cells.push(
            Cell::new(&spec.name, "sram")
                .param("width", spec.width)
                .param("size", spec.size)
                .conn("clk", "clk")
                .conn("en", en.clone())
                .conn("we", we.clone())
                .conn("addr", addr.clone())
                .conn("din", din.clone())
                .conn("dout", dout.clone()),
        );

        for &i in &accesses {
            let is_store = matches!(prog.instrs[i], Instr::Store { .. });
            plan.mem_accesses.insert(
                i,
                MemAccess {
                    enable: en.clone(),
                    write_enable: we.clone(),
                    is_store,
                    addr_select: addr_select
                        .as_ref()
                        .map(|sel| (sel.clone(), position(&addr_sources, i))),
                    din_select: din_select
                        .as_ref()
                        .and_then(|sel| {
                            if is_store {
                                Some((sel.clone(), position(&store_sources, i)))
                            } else {
                                None
                            }
                        }),
                },
            );
        }
    }

    // Condition signals: every branch's condition register output.
    let mut seen = std::collections::HashSet::new();
    for state in &schedule.states {
        if let Exit::Branch { cond, .. } = &state.exit {
            let q = temp_q(*cond);
            if seen.insert(q.clone()) {
                dp.conditions.push(q);
            }
        }
    }

    (dp, plan)
}

/// Builds a mux in front of a memory port (or ties the port directly when
/// there are zero or one sources). Returns the select signal name when a
/// mux was created; the select width is registered as a control.
fn build_port_mux(
    dp: &mut Datapath,
    mux_name: &str,
    port_signal: &str,
    width: u32,
    sources: &[(usize, String)],
    sel_name: &str,
) -> Option<String> {
    match sources.len() {
        0 => None,
        1 => {
            // Single source: alias via a width-matched mux-free connection.
            // The port signal is driven by a 1-input mux to keep the port
            // signal distinct (ports were declared already); a copy-mux
            // with constant select would need a control, so instead reuse
            // a trivial mux with select tied by the FSM to 0.
            let sw = 1;
            dp.signals.push((sel_name.to_string(), sw));
            dp.controls.push((sel_name.to_string(), sw));
            dp.cells.push(
                Cell::new(mux_name, "mux")
                    .param("width", width)
                    .param("inputs", 1)
                    .conn("sel", sel_name)
                    .conn("i0", sources[0].1.clone())
                    .conn("y", port_signal),
            );
            Some(sel_name.to_string())
        }
        n => {
            let sw = sel_width(n);
            dp.signals.push((sel_name.to_string(), sw));
            dp.controls.push((sel_name.to_string(), sw));
            let mut mux = Cell::new(mux_name, "mux")
                .param("width", width)
                .param("inputs", n)
                .conn("sel", sel_name)
                .conn("y", port_signal);
            for (k, (_, source)) in sources.iter().enumerate() {
                mux = mux.conn(&format!("i{k}"), source.clone());
            }
            dp.cells.push(mux);
            Some(sel_name.to_string())
        }
    }
}

fn position(sources: &[(usize, String)], instr: usize) -> i64 {
    sources
        .iter()
        .position(|(i, _)| *i == instr)
        .expect("instruction present in source list") as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parse;
    use crate::lower::lower;
    use crate::schedule::{schedule, SchedulePolicy};

    fn build(src: &str) -> (TacProgram, Datapath, ControlPlan) {
        let prog = lower(&parse(src).unwrap(), "t", 16).unwrap();
        let sched = schedule(&prog, SchedulePolicy::List);
        let (dp, plan) = generate(&prog, &sched);
        (prog, dp, plan)
    }

    #[test]
    fn one_fu_per_operation() {
        let (prog, dp, _) = build("mem out[1]; void main() { out[0] = (1 + 2) * (3 - 4); }");
        assert_eq!(dp.operator_count(), prog.operator_count());
        assert_eq!(dp.operator_count(), 3);
    }

    #[test]
    fn multi_writer_temp_gets_mux() {
        let (_, dp, plan) =
            build("void main() { int x = 1; x = 2; }");
        assert!(dp.cell_count("mux") >= 1);
        // Both writes route through distinct mux selects.
        let selects: Vec<_> = plan
            .reg_writes
            .values()
            .filter_map(|w| w.select.clone())
            .collect();
        assert_eq!(selects.len(), 2);
        assert_ne!(selects[0].1, selects[1].1);
    }

    #[test]
    fn single_writer_skips_mux() {
        let (_, dp, plan) = build("void main() { int x = 7; }");
        // x has a single writer (the copy of const) — its register input is
        // direct. Muxes exist only for ports if any.
        let x_reg = dp.cells.iter().find(|c| c.kind == "reg").unwrap();
        assert!(x_reg.conns.iter().any(|(p, _)| p == "d"));
        assert!(plan.reg_writes.values().any(|w| w.select.is_none()));
    }

    #[test]
    fn memory_ports_are_muxed_and_planned() {
        let (prog, dp, plan) = build(
            "mem d[8]; void main() { d[0] = 1; d[1] = d[0] + 1; }",
        );
        assert_eq!(dp.cell_count("sram"), 1);
        // Address mux over three accesses (two stores + one load).
        let amux = dp.cells.iter().find(|c| c.name == "d_amux").unwrap();
        assert_eq!(amux.param_value("inputs"), Some("3"));
        let accesses: Vec<_> = plan.mem_accesses.values().collect();
        assert_eq!(accesses.len(), 3);
        assert_eq!(accesses.iter().filter(|a| a.is_store).count(), 2);
        let _ = prog;
    }

    #[test]
    fn conditions_exported_for_branches() {
        let (_, dp, _) = build("void main() { int i = 0; while (i < 3) { i = i + 1; } }");
        assert_eq!(dp.conditions.len(), 1);
        assert!(dp.conditions[0].starts_with('t'));
        // Condition signals are 1-bit.
        let (_, w) = dp
            .signals
            .iter()
            .find(|(n, _)| *n == dp.conditions[0])
            .unwrap();
        assert_eq!(*w, 1);
    }

    #[test]
    fn controls_are_unique_and_declared() {
        let (_, dp, _) = build(
            "mem a[4]; mem b[4]; void main() { int i = 0; while (i < 4) { b[i] = a[i]; i = i + 1; } }",
        );
        let mut names = std::collections::HashSet::new();
        for (name, _) in &dp.controls {
            assert!(names.insert(name.clone()), "duplicate control {name}");
            assert!(
                dp.signals.iter().any(|(n, _)| n == name),
                "control {name} not declared"
            );
        }
    }

    #[test]
    fn clock_cell_present() {
        let (_, dp, _) = build("void main() { }");
        assert_eq!(dp.cell_count("clock"), 1);
        assert_eq!(dp.clock, "clk");
    }

    impl Cell {
        fn param_value(&self, key: &str) -> Option<&str> {
            self.params
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.as_str())
        }
    }
}
