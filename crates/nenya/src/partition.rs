//! Temporal partitioning: splitting a program into configurations.
//!
//! The partitioner cuts the top-level statement list of `main` into `k`
//! chunks of balanced estimated cost. Scalars that are live across a cut
//! are *spilled* to a dedicated transfer SRAM (`__xfer`) with a global
//! slot layout, so every configuration agrees on where each value lives —
//! the paper's "communication between configurations" through memories.

use crate::lang::{Block, Expr, Program, Stmt};
use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

/// Name of the implicit transfer memory.
pub const XFER_MEM: &str = "__xfer";

/// The plan for one chunk (configuration).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chunk {
    /// Range of top-level statement indices in `main`'s body.
    pub stmts: std::ops::Range<usize>,
    /// `(variable, slot)` pairs loaded from the transfer memory first.
    pub restore: Vec<(String, usize)>,
    /// `(variable, slot)` pairs stored to the transfer memory at the end.
    pub save: Vec<(String, usize)>,
}

/// A complete partitioning plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionPlan {
    /// The chunks, in execution order.
    pub chunks: Vec<Chunk>,
    /// Size of the shared transfer memory (0 = no scalar crosses a cut).
    pub xfer_size: usize,
}

/// Errors from [`partition`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// Fewer top-level statements than requested partitions.
    TooFewStatements {
        /// Top-level statements available.
        statements: usize,
        /// Partitions requested.
        requested: usize,
    },
    /// `k` was zero.
    ZeroPartitions,
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::TooFewStatements {
                statements,
                requested,
            } => write!(
                f,
                "cannot split {statements} top-level statements into {requested} partitions"
            ),
            PartitionError::ZeroPartitions => f.write_str("partition count must be at least 1"),
        }
    }
}

impl Error for PartitionError {}

/// Splits `program` into `k` chunks.
///
/// Statements are never reordered; cuts fall at top-level statement
/// boundaries chosen greedily so each chunk's estimated cost (statement
/// node count) approaches `total / k`.
///
/// # Errors
///
/// Returns [`PartitionError`] when `k` is zero or exceeds the number of
/// top-level statements.
pub fn partition(program: &Program, k: usize) -> Result<PartitionPlan, PartitionError> {
    if k == 0 {
        return Err(PartitionError::ZeroPartitions);
    }
    let stmts = &program.body.stmts;
    if stmts.len() < k {
        return Err(PartitionError::TooFewStatements {
            statements: stmts.len(),
            requested: k,
        });
    }

    // Greedy balanced cut by node count.
    let costs: Vec<usize> = stmts.iter().map(Stmt::node_count).collect();
    let total: usize = costs.iter().sum();
    let mut ranges = Vec::with_capacity(k);
    let mut start = 0;
    let mut consumed = 0usize;
    for chunk_index in 0..k {
        let remaining_chunks = k - chunk_index;
        let remaining_stmts = stmts.len() - start;
        if remaining_chunks == 1 {
            ranges.push(start..stmts.len());
            break;
        }
        let target = (total - consumed) / remaining_chunks;
        let mut end = start;
        let mut cost = 0;
        // Take statements until reaching the target, but always leave
        // enough statements for the remaining chunks.
        while end < stmts.len() - (remaining_chunks - 1) {
            cost += costs[end];
            end += 1;
            if cost >= target && end > start {
                break;
            }
        }
        if end == start {
            end = start + 1; // every chunk takes at least one statement
        }
        let _ = remaining_stmts;
        consumed += costs[start..end].iter().sum::<usize>();
        ranges.push(start..end);
        start = end;
    }

    // Per-chunk used/assigned sets over *top-level declared* variables.
    let top_level: BTreeSet<String> = stmts
        .iter()
        .filter_map(|s| match s {
            Stmt::Decl { name, .. } => Some(name.clone()),
            _ => None,
        })
        .collect();
    let mut used: Vec<BTreeSet<String>> = Vec::with_capacity(k);
    let mut assigned: Vec<BTreeSet<String>> = Vec::with_capacity(k);
    for range in &ranges {
        let mut u = BTreeSet::new();
        let mut a = BTreeSet::new();
        for stmt in &stmts[range.clone()] {
            collect_stmt(stmt, &mut u, &mut a);
        }
        u.retain(|v| top_level.contains(v));
        a.retain(|v| top_level.contains(v));
        used.push(u);
        assigned.push(a);
    }

    // Crossing variables and their global slots.
    let mut crossing = BTreeSet::new();
    #[allow(clippy::needless_range_loop)] // i/j index two sets in tandem
    for i in 0..k {
        for j in i + 1..k {
            for v in assigned[i].intersection(&used[j]) {
                crossing.insert(v.clone());
            }
        }
    }
    let slots: Vec<String> = crossing.iter().cloned().collect();
    let slot_of = |v: &str| -> usize {
        slots
            .iter()
            .position(|s| s == v)
            .expect("crossing variable has a slot")
    };

    let mut chunks = Vec::with_capacity(k);
    for (i, range) in ranges.iter().enumerate() {
        let restore: Vec<(String, usize)> = crossing
            .iter()
            .filter(|v| used[i].contains(*v) && assigned[..i].iter().any(|a| a.contains(*v)))
            .map(|v| (v.clone(), slot_of(v)))
            .collect();
        let save: Vec<(String, usize)> = crossing
            .iter()
            .filter(|v| {
                assigned[i].contains(*v) && used[i + 1..].iter().any(|u| u.contains(*v))
            })
            .map(|v| (v.clone(), slot_of(v)))
            .collect();
        chunks.push(Chunk {
            stmts: range.clone(),
            restore,
            save,
        });
    }

    Ok(PartitionPlan {
        chunks,
        xfer_size: slots.len(),
    })
}

fn collect_block(block: &Block, used: &mut BTreeSet<String>, assigned: &mut BTreeSet<String>) {
    for stmt in &block.stmts {
        collect_stmt(stmt, used, assigned);
    }
}

fn collect_stmt(stmt: &Stmt, used: &mut BTreeSet<String>, assigned: &mut BTreeSet<String>) {
    match stmt {
        Stmt::Decl { name, init, .. } => {
            if let Some(init) = init {
                collect_expr(init, used);
                assigned.insert(name.clone());
            }
        }
        Stmt::Assign { name, value } => {
            collect_expr(value, used);
            assigned.insert(name.clone());
        }
        Stmt::MemStore { addr, value, .. } => {
            collect_expr(addr, used);
            collect_expr(value, used);
        }
        Stmt::If {
            cond,
            then_block,
            else_block,
        } => {
            collect_expr(cond, used);
            collect_block(then_block, used, assigned);
            collect_block(else_block, used, assigned);
        }
        Stmt::While { cond, body } => {
            collect_expr(cond, used);
            collect_block(body, used, assigned);
        }
        Stmt::For {
            init,
            cond,
            update,
            body,
        } => {
            collect_stmt(init, used, assigned);
            collect_expr(cond, used);
            collect_stmt(update, used, assigned);
            collect_block(body, used, assigned);
        }
    }
}

fn collect_expr(expr: &Expr, used: &mut BTreeSet<String>) {
    match expr {
        Expr::Int(_) | Expr::Bool(_) => {}
        Expr::Var(name) => {
            used.insert(name.clone());
        }
        Expr::MemLoad { addr, .. } => collect_expr(addr, used),
        Expr::Unary { expr, .. } => collect_expr(expr, used),
        Expr::Binary { lhs, rhs, .. } => {
            collect_expr(lhs, used);
            collect_expr(rhs, used);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parse;

    #[test]
    fn single_partition_covers_everything() {
        let p = parse("void main() { int a = 1; int b = 2; }").unwrap();
        let plan = partition(&p, 1).unwrap();
        assert_eq!(plan.chunks.len(), 1);
        assert_eq!(plan.chunks[0].stmts, 0..2);
        assert_eq!(plan.xfer_size, 0);
        assert!(plan.chunks[0].restore.is_empty());
        assert!(plan.chunks[0].save.is_empty());
    }

    #[test]
    fn two_way_split_spills_crossing_scalars() {
        let p = parse(
            "mem out[2]; void main() {
                int a = 1;
                int b = a + 1;
                out[0] = a + b;
                out[1] = b;
            }",
        )
        .unwrap();
        let plan = partition(&p, 2).unwrap();
        assert_eq!(plan.chunks.len(), 2);
        // a and b cross the cut (used by the later chunk).
        assert!(plan.xfer_size >= 1);
        let first = &plan.chunks[0];
        let second = plan.chunks.last().unwrap();
        assert!(!first.save.is_empty());
        assert!(!second.restore.is_empty());
        // Slots agree between save and restore for the same variable.
        for (var, slot) in &second.restore {
            if let Some((_, save_slot)) = first.save.iter().find(|(v, _)| v == var) {
                assert_eq!(slot, save_slot, "{var}");
            }
        }
    }

    #[test]
    fn loop_local_variables_do_not_cross() {
        // Both loops fully contain their variables' live ranges except `d`.
        let p = parse(
            "mem d[8]; void main() {
                int i;
                for (i = 0; i < 8; i = i + 1) { d[i] = i; }
                int j;
                for (j = 0; j < 8; j = j + 1) { d[j] = d[j] + 1; }
            }",
        )
        .unwrap();
        // Split between the two loops (4 top-level statements).
        let plan = partition(&p, 2).unwrap();
        // `i` is not used after the first loop, `j` not before the second:
        // nothing crosses.
        assert_eq!(plan.xfer_size, 0, "plan: {plan:?}");
    }

    #[test]
    fn balanced_by_cost_not_count() {
        // One heavy loop among trivial statements: the cut should isolate
        // the heavy statement rather than splitting statements evenly.
        let p = parse(
            "mem d[8]; void main() {
                int i;
                for (i = 0; i < 8; i = i + 1) { d[i] = i; d[i] = d[i] + 1; d[i] = d[i] * 2; }
                int a = 1;
                int b = 2;
                int c = 3;
            }",
        )
        .unwrap();
        let plan = partition(&p, 2).unwrap();
        // First chunk = decl + loop (heavy), second = the trivial tail.
        assert_eq!(plan.chunks[0].stmts.end, 2);
    }

    #[test]
    fn every_chunk_gets_a_statement() {
        let p = parse("void main() { int a = 1; int b = 2; int c = 3; }").unwrap();
        let plan = partition(&p, 3).unwrap();
        for chunk in &plan.chunks {
            assert!(!chunk.stmts.is_empty());
        }
        assert_eq!(plan.chunks.last().unwrap().stmts.end, 3);
    }

    #[test]
    fn errors() {
        let p = parse("void main() { int a = 1; }").unwrap();
        assert_eq!(partition(&p, 0), Err(PartitionError::ZeroPartitions));
        assert_eq!(
            partition(&p, 2),
            Err(PartitionError::TooFewStatements {
                statements: 1,
                requested: 2
            })
        );
    }

    #[test]
    fn variable_reassigned_later_is_resaved() {
        let p = parse(
            "mem out[1]; void main() {
                int a = 1;
                a = a + 1;
                out[0] = a;
            }",
        )
        .unwrap();
        let plan = partition(&p, 3).unwrap();
        // Chunk 1 both restores and saves `a`.
        let middle = &plan.chunks[1];
        assert_eq!(middle.restore.len(), 1);
        assert_eq!(middle.save.len(), 1);
    }
}
