//! The source language front end.
//!
//! Galadriel & Nenya compile Java algorithms; this front end accepts the
//! Java-like subset those algorithms actually use (and that the paper's
//! FDCT and Hamming examples are written in): `int` and `boolean` scalars,
//! memories mapped to SRAMs, assignments, `if`/`else`, `while`, `for`, and
//! full expression syntax with Java operator semantics (wrapping
//! two's-complement arithmetic at the design width, `>>` arithmetic and
//! `>>>` logical shifts, non-short-circuit `&&`/`||`).
//!
//! ```
//! let program = nenya::lang::parse(r#"
//!     mem data[16];
//!     void main() {
//!         int i;
//!         for (i = 0; i < 16; i = i + 1) {
//!             data[i] = i * i;
//!         }
//!     }
//! "#).expect("valid program");
//! assert_eq!(program.mems.len(), 1);
//! ```

mod ast;
mod lexer;
mod parser;

pub use ast::{BinaryOp, Block, Expr, MemDecl, Program, Stmt, Type, UnaryOp};
pub use lexer::{lex, Token, TokenKind};
pub use parser::{parse, ParseError};
