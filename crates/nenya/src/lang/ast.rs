//! Abstract syntax tree of the source language.

use std::fmt;

/// A complete source program: memory declarations plus the body of
/// `void main()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Declared memories, in source order.
    pub mems: Vec<MemDecl>,
    /// The statements of `main`.
    pub body: Block,
    /// Number of non-empty source lines (the paper's `loJava` metric).
    pub source_lines: usize,
}

/// A memory declaration: `mem name[size];` or `mem name[size] width w;`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemDecl {
    /// Memory name (becomes the SRAM instance name).
    pub name: String,
    /// Number of words.
    pub size: usize,
    /// Word width in bits; `None` means the design width.
    pub width: Option<u32>,
}

/// Scalar types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    /// Design-width signed integer.
    Int,
    /// Single-bit boolean (Java-style: not interchangeable with `int`).
    Bool,
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => f.write_str("int"),
            Type::Bool => f.write_str("boolean"),
        }
    }
}

/// A `{ … }` statement list.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
}

/// Statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `int x;` / `boolean b = expr;`
    Decl {
        /// Declared type.
        ty: Type,
        /// Variable name.
        name: String,
        /// Optional initializer.
        init: Option<Expr>,
    },
    /// `x = expr;`
    Assign {
        /// Target variable.
        name: String,
        /// Assigned value.
        value: Expr,
    },
    /// `mem[addr] = expr;`
    MemStore {
        /// Target memory.
        mem: String,
        /// Address expression.
        addr: Expr,
        /// Stored value.
        value: Expr,
    },
    /// `if (cond) { … } else { … }`
    If {
        /// Condition (must be boolean).
        cond: Expr,
        /// Taken branch.
        then_block: Block,
        /// Else branch (possibly empty).
        else_block: Block,
    },
    /// `while (cond) { … }`
    While {
        /// Loop condition (must be boolean).
        cond: Expr,
        /// Loop body.
        body: Block,
    },
    /// `for (init; cond; update) { … }` — kept as a node (not desugared)
    /// so source metrics and dot output match the written program.
    For {
        /// Loop initializer (assignment).
        init: Box<Stmt>,
        /// Loop condition (must be boolean).
        cond: Expr,
        /// Per-iteration update (assignment).
        update: Box<Stmt>,
        /// Loop body.
        body: Block,
    },
}

/// Binary operators with Java spellings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    /// `>>` (arithmetic).
    Shr,
    /// `>>>` (logical).
    Ushr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// Non-short-circuit logical and (`&&` over booleans).
    LogAnd,
    /// Non-short-circuit logical or (`||` over booleans).
    LogOr,
}

impl BinaryOp {
    /// The operator's source spelling.
    pub fn symbol(&self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Rem => "%",
            BinaryOp::BitAnd => "&",
            BinaryOp::BitOr => "|",
            BinaryOp::BitXor => "^",
            BinaryOp::Shl => "<<",
            BinaryOp::Shr => ">>",
            BinaryOp::Ushr => ">>>",
            BinaryOp::Eq => "==",
            BinaryOp::Ne => "!=",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::LogAnd => "&&",
            BinaryOp::LogOr => "||",
        }
    }

    /// Whether the result is boolean.
    pub fn yields_bool(&self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::Ne
                | BinaryOp::Lt
                | BinaryOp::Le
                | BinaryOp::Gt
                | BinaryOp::Ge
                | BinaryOp::LogAnd
                | BinaryOp::LogOr
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Arithmetic negation `-`.
    Neg,
    /// Bitwise complement `~`.
    BitNot,
    /// Logical not `!` (booleans only).
    LogNot,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// `true` / `false`.
    Bool(bool),
    /// Variable reference.
    Var(String),
    /// `mem[addr]` load.
    MemLoad {
        /// Source memory.
        mem: String,
        /// Address expression.
        addr: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
}

impl Block {
    /// Total number of statement nodes in the subtree (used by the
    /// partitioner's cost estimates).
    pub fn stmt_count(&self) -> usize {
        self.stmts.iter().map(Stmt::node_count).sum()
    }
}

impl Stmt {
    /// Number of statement nodes in this subtree, including `self`.
    pub fn node_count(&self) -> usize {
        match self {
            Stmt::Decl { .. } | Stmt::Assign { .. } | Stmt::MemStore { .. } => 1,
            Stmt::If {
                then_block,
                else_block,
                ..
            } => 1 + then_block.stmt_count() + else_block.stmt_count(),
            Stmt::While { body, .. } => 1 + body.stmt_count(),
            Stmt::For { body, .. } => 2 + body.stmt_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_count_recurses() {
        let inner = Stmt::Assign {
            name: "x".into(),
            value: Expr::Int(1),
        };
        let loop_stmt = Stmt::While {
            cond: Expr::Bool(true),
            body: Block {
                stmts: vec![inner.clone(), inner.clone()],
            },
        };
        assert_eq!(loop_stmt.node_count(), 3);
        let if_stmt = Stmt::If {
            cond: Expr::Bool(true),
            then_block: Block {
                stmts: vec![loop_stmt],
            },
            else_block: Block::default(),
        };
        assert_eq!(if_stmt.node_count(), 4);
    }

    #[test]
    fn operator_metadata() {
        assert!(BinaryOp::Lt.yields_bool());
        assert!(!BinaryOp::Add.yields_bool());
        assert_eq!(BinaryOp::Ushr.symbol(), ">>>");
        assert_eq!(Type::Bool.to_string(), "boolean");
    }
}
