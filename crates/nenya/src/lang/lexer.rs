//! Tokenizer for the source language.

use std::fmt;

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Integer literal (decimal or `0x…` hexadecimal).
    Int(i64),
    /// Identifier or keyword.
    Ident(String),
    /// Punctuation or operator, e.g. `"+"`, `">>>"`, `"{"`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

/// A token with its source line (1-based) for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was read.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Int(v) => write!(f, "integer {v}"),
            TokenKind::Ident(s) => write!(f, "'{s}'"),
            TokenKind::Punct(s) => write!(f, "'{s}'"),
            TokenKind::Eof => f.write_str("end of input"),
        }
    }
}

/// Multi-character operators, longest first so maximal munch works.
const PUNCTS: &[&str] = &[
    ">>>", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+", "-", "*", "/", "%", "&", "|",
    "^", "~", "!", "<", ">", "=", ";", ",", "(", ")", "{", "}", "[", "]",
];

/// Tokenizes `source`. `//` line comments and `/* … */` block comments are
/// skipped.
///
/// # Errors
///
/// Returns a message with the line number for unknown characters,
/// malformed numbers, and unterminated block comments.
pub fn lex(source: &str) -> Result<Vec<Token>, String> {
    let mut tokens = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = source[i..].chars().next().expect("index is on a char boundary");
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += c.len_utf8();
            continue;
        }
        if source[i..].starts_with("//") {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if source[i..].starts_with("/*") {
            let start_line = line;
            i += 2;
            loop {
                if i >= bytes.len() {
                    return Err(format!("unterminated block comment starting on line {start_line}"));
                }
                if source[i..].starts_with("*/") {
                    i += 2;
                    break;
                }
                let inner = source[i..]
                    .chars()
                    .next()
                    .expect("index is on a char boundary");
                if inner == '\n' {
                    line += 1;
                }
                i += inner.len_utf8();
            }
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            if source[i..].starts_with("0x") || source[i..].starts_with("0X") {
                i += 2;
                while i < bytes.len() && (bytes[i] as char).is_ascii_hexdigit() {
                    i += 1;
                }
                let digits = &source[start + 2..i];
                if digits.is_empty() {
                    return Err(format!("malformed hex literal on line {line}"));
                }
                let value = i64::from_str_radix(digits, 16)
                    .map_err(|_| format!("hex literal out of range on line {line}"))?;
                tokens.push(Token {
                    kind: TokenKind::Int(value),
                    line,
                });
                continue;
            }
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            if i < bytes.len() && (bytes[i].is_ascii_alphabetic() || bytes[i] >= 0x80) {
                return Err(format!("malformed number on line {line}"));
            }
            let value: i64 = source[start..i]
                .parse()
                .map_err(|_| format!("integer literal out of range on line {line}"))?;
            tokens.push(Token {
                kind: TokenKind::Int(value),
                line,
            });
            continue;
        }
        // Identifiers are ASCII, as in the paper-era Java sources.
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Ident(source[start..i].to_string()),
                line,
            });
            continue;
        }
        if let Some(p) = PUNCTS.iter().find(|p| source[i..].starts_with(**p)) {
            tokens.push(Token {
                kind: TokenKind::Punct(p),
                line,
            });
            i += p.len();
            continue;
        }
        return Err(format!("unexpected character '{c}' on line {line}"));
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<TokenKind> {
        lex(source).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_mixed_tokens() {
        assert_eq!(
            kinds("x = a >>> 2;"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Punct("="),
                TokenKind::Ident("a".into()),
                TokenKind::Punct(">>>"),
                TokenKind::Int(2),
                TokenKind::Punct(";"),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn maximal_munch_on_shifts_and_comparisons() {
        assert_eq!(
            kinds("a>>b >> >>> <= < ="),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Punct(">>"),
                TokenKind::Ident("b".into()),
                TokenKind::Punct(">>"),
                TokenKind::Punct(">>>"),
                TokenKind::Punct("<="),
                TokenKind::Punct("<"),
                TokenKind::Punct("="),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn hex_and_decimal_literals() {
        assert_eq!(kinds("0x1F 255"), vec![TokenKind::Int(31), TokenKind::Int(255), TokenKind::Eof]);
    }

    #[test]
    fn comments_are_skipped_and_lines_tracked() {
        let tokens = lex("// header\nx /* mid \n comment */ = 1;").unwrap();
        assert_eq!(tokens[0].kind, TokenKind::Ident("x".into()));
        assert_eq!(tokens[0].line, 2);
        assert_eq!(tokens[1].line, 3); // '=' after multi-line comment
    }

    #[test]
    fn errors() {
        assert!(lex("@").is_err());
        assert!(lex("0x").is_err());
        assert!(lex("12ab").is_err());
        assert!(lex("/* never closed").is_err());
        assert!(lex("99999999999999999999").is_err());
    }

    #[test]
    fn empty_input_yields_eof() {
        assert_eq!(kinds(""), vec![TokenKind::Eof]);
    }
}
