//! Recursive-descent parser producing the [`Program`] AST.

use super::ast::{BinaryOp, Block, Expr, MemDecl, Program, Stmt, Type, UnaryOp};
use super::lexer::{lex, Token, TokenKind};
use std::error::Error;
use std::fmt;

/// Error produced for syntactically invalid programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    message: String,
    line: usize,
}

impl ParseError {
    /// 1-based source line of the error.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (line {})", self.message, self.line)
    }
}

impl Error for ParseError {}

/// Parses a complete program.
///
/// # Errors
///
/// Returns [`ParseError`] with the offending line for lexical and
/// syntactic problems. (Type errors are reported later, by
/// [`crate::lower`].)
pub fn parse(source: &str) -> Result<Program, ParseError> {
    let tokens = lex(source).map_err(|message| ParseError { message, line: 0 })?;
    let mut parser = Parser { tokens, pos: 0 };
    let program = parser.program()?;
    Ok(Program {
        source_lines: count_code_lines(source),
        ..program
    })
}

/// The `loJava` metric: non-empty, non-comment-only source lines.
fn count_code_lines(source: &str) -> usize {
    let mut in_block_comment = false;
    source
        .lines()
        .filter(|line| {
            let mut has_code = false;
            let mut chars = line.trim().chars().peekable();
            while let Some(c) = chars.next() {
                if in_block_comment {
                    if c == '*' && chars.peek() == Some(&'/') {
                        chars.next();
                        in_block_comment = false;
                    }
                    continue;
                }
                if c == '/' && chars.peek() == Some(&'/') {
                    break;
                }
                if c == '/' && chars.peek() == Some(&'*') {
                    chars.next();
                    in_block_comment = true;
                    continue;
                }
                if !c.is_whitespace() {
                    has_code = true;
                }
            }
            has_code
        })
        .count()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }


    fn line(&self) -> usize {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        kind
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: message.into(),
            line: self.line(),
        })
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), TokenKind::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            self.err(format!("expected '{}', found {}", p, self.peek()))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), TokenKind::Ident(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            self.err(format!("expected '{}', found {}", kw, self.peek()))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(name) if !is_keyword(&name) => {
                self.bump();
                Ok(name)
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn expect_int(&mut self) -> Result<i64, ParseError> {
        match *self.peek() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(v)
            }
            ref other => self.err(format!("expected integer, found {other}")),
        }
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut mems = Vec::new();
        while self.eat_keyword("mem") {
            let name = self.expect_ident()?;
            self.expect_punct("[")?;
            let size = self.expect_int()?;
            if size <= 0 {
                return self.err("memory size must be positive");
            }
            self.expect_punct("]")?;
            let width = if self.eat_keyword("width") {
                let w = self.expect_int()?;
                if !(1..=64).contains(&w) {
                    return self.err("memory width must be in 1..=64");
                }
                Some(w as u32)
            } else {
                None
            };
            self.expect_punct(";")?;
            mems.push(MemDecl {
                name,
                size: size as usize,
                width,
            });
        }
        self.expect_keyword("void")?;
        self.expect_keyword("main")?;
        self.expect_punct("(")?;
        self.expect_punct(")")?;
        let body = self.block()?;
        if !matches!(self.peek(), TokenKind::Eof) {
            return self.err(format!("unexpected {} after main", self.peek()));
        }
        Ok(Program {
            mems,
            body,
            source_lines: 0,
        })
    }

    fn block(&mut self) -> Result<Block, ParseError> {
        self.expect_punct("{")?;
        let mut stmts = Vec::new();
        while !self.eat_punct("}") {
            if matches!(self.peek(), TokenKind::Eof) {
                return self.err("unterminated block");
            }
            stmts.push(self.stmt()?);
        }
        Ok(Block { stmts })
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(kw) if kw == "int" || kw == "boolean" => {
                self.bump();
                let ty = if kw == "int" { Type::Int } else { Type::Bool };
                let name = self.expect_ident()?;
                let init = if self.eat_punct("=") {
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect_punct(";")?;
                Ok(Stmt::Decl { ty, name, init })
            }
            TokenKind::Ident(kw) if kw == "if" => self.if_stmt(),
            TokenKind::Ident(kw) if kw == "while" => {
                self.bump();
                self.expect_punct("(")?;
                let cond = self.expr()?;
                self.expect_punct(")")?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body })
            }
            TokenKind::Ident(kw) if kw == "for" => {
                self.bump();
                self.expect_punct("(")?;
                let init = Box::new(self.simple_assign()?);
                self.expect_punct(";")?;
                let cond = self.expr()?;
                self.expect_punct(";")?;
                let update = Box::new(self.simple_assign()?);
                self.expect_punct(")")?;
                let body = self.block()?;
                Ok(Stmt::For {
                    init,
                    cond,
                    update,
                    body,
                })
            }
            TokenKind::Ident(_) => {
                let stmt = self.simple_assign()?;
                self.expect_punct(";")?;
                Ok(stmt)
            }
            other => self.err(format!("expected statement, found {other}")),
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.expect_keyword("if")?;
        self.expect_punct("(")?;
        let cond = self.expr()?;
        self.expect_punct(")")?;
        let then_block = self.block()?;
        let else_block = if self.eat_keyword("else") {
            if matches!(self.peek(), TokenKind::Ident(kw) if kw == "if") {
                Block {
                    stmts: vec![self.if_stmt()?],
                }
            } else {
                self.block()?
            }
        } else {
            Block::default()
        };
        Ok(Stmt::If {
            cond,
            then_block,
            else_block,
        })
    }

    /// `name = expr` or `name[expr] = expr` (no trailing semicolon).
    fn simple_assign(&mut self) -> Result<Stmt, ParseError> {
        let name = self.expect_ident()?;
        if self.eat_punct("[") {
            let addr = self.expr()?;
            self.expect_punct("]")?;
            self.expect_punct("=")?;
            let value = self.expr()?;
            Ok(Stmt::MemStore {
                mem: name,
                addr,
                value,
            })
        } else {
            self.expect_punct("=")?;
            let value = self.expr()?;
            Ok(Stmt::Assign { name, value })
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.binary_expr(0)
    }

    fn binary_expr(&mut self, min_level: usize) -> Result<Expr, ParseError> {
        // Precedence levels, loosest first (Java order).
        const LEVELS: &[&[(&str, BinaryOp)]] = &[
            &[("||", BinaryOp::LogOr)],
            &[("&&", BinaryOp::LogAnd)],
            &[("|", BinaryOp::BitOr)],
            &[("^", BinaryOp::BitXor)],
            &[("&", BinaryOp::BitAnd)],
            &[("==", BinaryOp::Eq), ("!=", BinaryOp::Ne)],
            &[
                ("<=", BinaryOp::Le),
                (">=", BinaryOp::Ge),
                ("<", BinaryOp::Lt),
                (">", BinaryOp::Gt),
            ],
            &[
                (">>>", BinaryOp::Ushr),
                ("<<", BinaryOp::Shl),
                (">>", BinaryOp::Shr),
            ],
            &[("+", BinaryOp::Add), ("-", BinaryOp::Sub)],
            &[
                ("*", BinaryOp::Mul),
                ("/", BinaryOp::Div),
                ("%", BinaryOp::Rem),
            ],
        ];
        if min_level >= LEVELS.len() {
            return self.unary_expr();
        }
        let mut lhs = self.binary_expr(min_level + 1)?;
        'outer: loop {
            for (symbol, op) in LEVELS[min_level] {
                if matches!(self.peek(), TokenKind::Punct(p) if p == symbol) {
                    self.bump();
                    let rhs = self.binary_expr(min_level + 1)?;
                    lhs = Expr::Binary {
                        op: *op,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                    };
                    continue 'outer;
                }
            }
            return Ok(lhs);
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        for (symbol, op) in [
            ("-", UnaryOp::Neg),
            ("~", UnaryOp::BitNot),
            ("!", UnaryOp::LogNot),
        ] {
            if matches!(self.peek(), TokenKind::Punct(p) if *p == symbol) {
                self.bump();
                let expr = self.unary_expr()?;
                return Ok(Expr::Unary {
                    op,
                    expr: Box::new(expr),
                });
            }
        }
        self.primary_expr()
    }

    fn primary_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            TokenKind::Ident(kw) if kw == "true" => {
                self.bump();
                Ok(Expr::Bool(true))
            }
            TokenKind::Ident(kw) if kw == "false" => {
                self.bump();
                Ok(Expr::Bool(false))
            }
            TokenKind::Ident(name) if !is_keyword(&name) => {
                self.bump();
                if self.eat_punct("[") {
                    let addr = self.expr()?;
                    self.expect_punct("]")?;
                    Ok(Expr::MemLoad {
                        mem: name,
                        addr: Box::new(addr),
                    })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            TokenKind::Punct("(") => {
                self.bump();
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            other => self.err(format!("expected expression, found {other}")),
        }
    }
}

fn is_keyword(word: &str) -> bool {
    matches!(
        word,
        "int" | "boolean" | "if" | "else" | "while" | "for" | "mem" | "void" | "main" | "true"
            | "false" | "width"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_program() {
        let p = parse("void main() { }").unwrap();
        assert!(p.mems.is_empty());
        assert!(p.body.stmts.is_empty());
        assert_eq!(p.source_lines, 1);
    }

    #[test]
    fn parses_memories_with_width() {
        let p = parse("mem a[64]; mem b[16] width 8; void main() { }").unwrap();
        assert_eq!(p.mems.len(), 2);
        assert_eq!(p.mems[0].size, 64);
        assert_eq!(p.mems[0].width, None);
        assert_eq!(p.mems[1].width, Some(8));
    }

    #[test]
    fn precedence_is_java_like() {
        let p = parse("void main() { int x = 1 + 2 * 3; }").unwrap();
        let Stmt::Decl { init: Some(e), .. } = &p.body.stmts[0] else {
            panic!()
        };
        // 1 + (2 * 3)
        let Expr::Binary { op: BinaryOp::Add, rhs, .. } = e else {
            panic!("got {e:?}")
        };
        assert!(matches!(**rhs, Expr::Binary { op: BinaryOp::Mul, .. }));
    }

    #[test]
    fn shift_binds_tighter_than_comparison() {
        let p = parse("void main() { boolean b = 1 << 2 < 3; }").unwrap();
        let Stmt::Decl { init: Some(e), .. } = &p.body.stmts[0] else {
            panic!()
        };
        assert!(matches!(e, Expr::Binary { op: BinaryOp::Lt, .. }));
    }

    #[test]
    fn parses_control_flow() {
        let src = r#"
            mem d[8];
            void main() {
                int i;
                for (i = 0; i < 8; i = i + 1) {
                    if (d[i] > 3) { d[i] = 0; } else { d[i] = d[i] + 1; }
                }
                while (i > 0) { i = i - 1; }
            }
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.body.stmts.len(), 3);
        assert!(matches!(p.body.stmts[1], Stmt::For { .. }));
        assert!(matches!(p.body.stmts[2], Stmt::While { .. }));
    }

    #[test]
    fn else_if_chains() {
        let p = parse("void main() { int x = 0; if (x == 0) { x = 1; } else if (x == 1) { x = 2; } else { x = 3; } }")
            .unwrap();
        let Stmt::If { else_block, .. } = &p.body.stmts[1] else {
            panic!()
        };
        assert!(matches!(else_block.stmts[0], Stmt::If { .. }));
    }

    #[test]
    fn unary_operators_nest() {
        let p = parse("void main() { int x = - - 1; boolean b = !!true; int y = ~x; }").unwrap();
        assert_eq!(p.body.stmts.len(), 3);
    }

    #[test]
    fn mem_access_in_expressions() {
        let p = parse("mem a[4]; void main() { a[a[0]] = a[1] + 1; }").unwrap();
        let Stmt::MemStore { addr, .. } = &p.body.stmts[0] else {
            panic!()
        };
        assert!(matches!(addr, Expr::MemLoad { .. }));
    }

    #[test]
    fn syntax_errors_are_reported_with_lines() {
        let err = parse("void main() {\n  int x = ;\n}").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(parse("void main() {").is_err());
        assert!(parse("mem a[0]; void main() { }").is_err());
        assert!(parse("mem a[4] width 99; void main() { }").is_err());
        assert!(parse("void main() { } extra").is_err());
        assert!(parse("void main() { if = 3; }").is_err());
        assert!(parse("void main() { x = 1 }").is_err());
    }

    #[test]
    fn lo_java_metric_skips_comments_and_blanks() {
        let src = "\n// comment only\nvoid main() {\n\n  /* block */ int x = 1; // tail\n}\n";
        let p = parse(src).unwrap();
        assert_eq!(p.source_lines, 3); // 'void main() {', 'int x = 1;', '}'
    }

    #[test]
    fn keywords_cannot_be_identifiers() {
        assert!(parse("void main() { int if = 1; }").is_err());
        assert!(parse("void main() { while = 1; }").is_err());
    }
}
