//! The Reconfiguration Transition Graph (RTG).
//!
//! When a design does not fit one configuration, the compiler splits it
//! into *temporal partitions*; the RTG records the configurations and the
//! order in which the reconfiguration controller must load and run them.
//! The paper's compiler produces general graphs; sequential splits (its
//! FDCT2 example, and everything our partitioner emits) are chains.

use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;

/// One configuration (temporal partition) in the RTG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtgNode {
    /// Configuration id (unique).
    pub id: String,
    /// Name of the configuration's datapath.
    pub datapath: String,
    /// Name of the configuration's control FSM.
    pub fsm: String,
}

/// The reconfiguration transition graph of a design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rtg {
    /// Design name.
    pub name: String,
    /// Configurations.
    pub nodes: Vec<RtgNode>,
    /// `(from, to)` edges: `to` runs after `from` completes.
    pub edges: Vec<(String, String)>,
}

/// Errors detected by [`Rtg::validate`] / [`Rtg::execution_order`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtgError {
    /// Two nodes share an id.
    DuplicateNode(String),
    /// An edge references a missing node.
    UnknownNode(String),
    /// The graph contains a cycle (configurations cannot be re-entered in
    /// this model).
    Cycle,
    /// The graph is empty.
    Empty,
}

impl fmt::Display for RtgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtgError::DuplicateNode(id) => write!(f, "duplicate configuration id '{id}'"),
            RtgError::UnknownNode(id) => write!(f, "edge references unknown configuration '{id}'"),
            RtgError::Cycle => f.write_str("reconfiguration graph contains a cycle"),
            RtgError::Empty => f.write_str("reconfiguration graph has no configurations"),
        }
    }
}

impl Error for RtgError {}

impl Rtg {
    /// Builds the trivial single-configuration RTG.
    pub fn single(name: impl Into<String>, datapath: impl Into<String>, fsm: impl Into<String>) -> Self {
        let name = name.into();
        Rtg {
            nodes: vec![RtgNode {
                id: "c0".to_string(),
                datapath: datapath.into(),
                fsm: fsm.into(),
            }],
            edges: Vec::new(),
            name,
        }
    }

    /// Builds a chain RTG over `(datapath, fsm)` pairs, ids `c0..cN`.
    pub fn chain(name: impl Into<String>, configs: &[(String, String)]) -> Self {
        let nodes: Vec<RtgNode> = configs
            .iter()
            .enumerate()
            .map(|(i, (dp, fsm))| RtgNode {
                id: format!("c{i}"),
                datapath: dp.clone(),
                fsm: fsm.clone(),
            })
            .collect();
        let edges = (1..nodes.len())
            .map(|i| (format!("c{}", i - 1), format!("c{i}")))
            .collect();
        Rtg {
            name: name.into(),
            nodes,
            edges,
        }
    }

    /// Looks a node up by id.
    pub fn node(&self, id: &str) -> Option<&RtgNode> {
        self.nodes.iter().find(|n| n.id == id)
    }

    /// Checks well-formedness (ids unique, edges resolve, acyclic).
    ///
    /// # Errors
    ///
    /// Returns the first [`RtgError`] found.
    pub fn validate(&self) -> Result<(), RtgError> {
        self.execution_order().map(|_| ())
    }

    /// Topological execution order of the configurations.
    ///
    /// Ties (independent configurations) resolve in declaration order, so
    /// execution is deterministic.
    ///
    /// # Errors
    ///
    /// Returns [`RtgError`] when the graph is empty, inconsistent, or
    /// cyclic.
    pub fn execution_order(&self) -> Result<Vec<&RtgNode>, RtgError> {
        if self.nodes.is_empty() {
            return Err(RtgError::Empty);
        }
        let mut ids = HashSet::new();
        for node in &self.nodes {
            if !ids.insert(node.id.as_str()) {
                return Err(RtgError::DuplicateNode(node.id.clone()));
            }
        }
        let mut indegree: HashMap<&str, usize> =
            self.nodes.iter().map(|n| (n.id.as_str(), 0)).collect();
        let mut successors: HashMap<&str, Vec<&str>> = HashMap::new();
        for (from, to) in &self.edges {
            if !ids.contains(from.as_str()) {
                return Err(RtgError::UnknownNode(from.clone()));
            }
            if !ids.contains(to.as_str()) {
                return Err(RtgError::UnknownNode(to.clone()));
            }
            *indegree.get_mut(to.as_str()).expect("id checked") += 1;
            successors.entry(from.as_str()).or_default().push(to);
        }
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut ready: Vec<&RtgNode> = self
            .nodes
            .iter()
            .filter(|n| indegree[n.id.as_str()] == 0)
            .collect();
        // Declaration order among ready nodes: treat `ready` as a queue.
        let mut queue = std::collections::VecDeque::from(std::mem::take(&mut ready));
        while let Some(node) = queue.pop_front() {
            order.push(node);
            if let Some(next) = successors.get(node.id.as_str()) {
                for to in next {
                    let d = indegree.get_mut(to).expect("id checked");
                    *d -= 1;
                    if *d == 0 {
                        queue.push_back(self.node(to).expect("id checked"));
                    }
                }
            }
        }
        if order.len() != self.nodes.len() {
            return Err(RtgError::Cycle);
        }
        Ok(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_and_chain_constructors() {
        let s = Rtg::single("fdct1", "dp0", "fsm0");
        assert_eq!(s.nodes.len(), 1);
        assert!(s.edges.is_empty());
        assert_eq!(s.validate(), Ok(()));

        let c = Rtg::chain(
            "fdct2",
            &[
                ("dp0".to_string(), "fsm0".to_string()),
                ("dp1".to_string(), "fsm1".to_string()),
            ],
        );
        assert_eq!(c.nodes.len(), 2);
        assert_eq!(c.edges, vec![("c0".to_string(), "c1".to_string())]);
        let order: Vec<&str> = c.execution_order().unwrap().iter().map(|n| n.id.as_str()).collect();
        assert_eq!(order, ["c0", "c1"]);
    }

    #[test]
    fn diamond_order_is_deterministic() {
        let mut rtg = Rtg::chain(
            "d",
            &[
                ("a".into(), "fa".into()),
                ("b".into(), "fb".into()),
            ],
        );
        rtg.nodes.push(RtgNode {
            id: "c2".into(),
            datapath: "c".into(),
            fsm: "fc".into(),
        });
        rtg.edges = vec![
            ("c0".into(), "c1".into()),
            ("c0".into(), "c2".into()),
        ];
        let order: Vec<&str> = rtg.execution_order().unwrap().iter().map(|n| n.id.as_str()).collect();
        assert_eq!(order, ["c0", "c1", "c2"]);
    }

    #[test]
    fn error_cases() {
        let empty = Rtg {
            name: "e".into(),
            nodes: vec![],
            edges: vec![],
        };
        assert_eq!(empty.validate(), Err(RtgError::Empty));

        let mut dup = Rtg::single("d", "dp", "fsm");
        dup.nodes.push(dup.nodes[0].clone());
        assert_eq!(dup.validate(), Err(RtgError::DuplicateNode("c0".into())));

        let mut dangling = Rtg::single("d", "dp", "fsm");
        dangling.edges.push(("c0".into(), "zz".into()));
        assert_eq!(dangling.validate(), Err(RtgError::UnknownNode("zz".into())));

        let mut cyclic = Rtg::chain(
            "c",
            &[("a".into(), "fa".into()), ("b".into(), "fb".into())],
        );
        cyclic.edges.push(("c1".into(), "c0".into()));
        assert_eq!(cyclic.validate(), Err(RtgError::Cycle));
    }
}
