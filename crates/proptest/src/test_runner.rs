//! Test-runner support types: configuration, case errors, and the
//! deterministic RNG strategies draw from.

/// Per-test configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; draw fresh ones.
    Reject(String),
    /// `prop_assert*!` failed; the property is violated.
    Fail(String),
}

/// Deterministic splitmix64 generator.
///
/// Each test derives its stream from the test name so adding a test never
/// perturbs another test's inputs; `PROPTEST_SEED` reseeds every stream
/// for exploration.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        let mut seed: u64 = 0x9E37_79B9_7F4A_7C15;
        for b in name.bytes() {
            seed = seed.wrapping_mul(0x100_0000_01B3).wrapping_add(b as u64);
        }
        if let Ok(env) = std::env::var("PROPTEST_SEED") {
            if let Ok(extra) = env.trim().parse::<u64>() {
                seed ^= extra.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            }
        }
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Modulo bias is irrelevant for test-input generation.
        self.next_u64() % n
    }

    /// Uniform boolean.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_stream() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn different_names_differ() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("y");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_is_bounded() {
        let mut rng = TestRng::for_test("bounds");
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}
