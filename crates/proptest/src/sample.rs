//! Sampling helpers (`prop::sample::Index`).

/// An index into a collection whose length is only known at use time;
/// draw one with `any::<prop::sample::Index>()` and resolve it with
/// [`Index::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(pub(crate) u64);

impl Index {
    /// Maps the drawn raw value into `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics when `len` is zero.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on an empty collection");
        (self.0 % len as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_into_bounds() {
        assert_eq!(Index(10).index(3), 1);
        assert_eq!(Index(2).index(100), 2);
    }

    #[test]
    #[should_panic(expected = "empty collection")]
    fn zero_len_panics() {
        let _ = Index(0).index(0);
    }
}
