//! Option strategies (`proptest::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy generating `Option<T>` (`None` one time in four).
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// Wraps a strategy to generate optional values.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_both_variants() {
        let mut rng = TestRng::for_test("opt");
        let strat = of(0i64..10);
        let mut some = 0;
        let mut none = 0;
        for _ in 0..200 {
            match strat.generate(&mut rng) {
                Some(v) => {
                    assert!((0..10).contains(&v));
                    some += 1;
                }
                None => none += 1,
            }
        }
        assert!(some > 0 && none > 0);
    }
}
