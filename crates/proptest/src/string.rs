//! Regex-like string generation for `&str` strategies.
//!
//! Supports the subset this workspace's tests use: literal characters,
//! character classes with ranges (`[a-z0-9_.-]`), the `\PC`
//! printable-character escape, `.` (any printable), and the quantifiers
//! `{n}`, `{m,n}`, `*`, `+`, `?`.

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    /// Inclusive character ranges; singles are `(c, c)`.
    Class(Vec<(char, char)>),
    /// Any printable (non-control) character, ASCII-weighted.
    Printable,
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: u32,
    max: u32,
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                i += 1;
                let mut ranges = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let lo = chars[i];
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated character class in '{pattern}'");
                i += 1; // ']'
                Atom::Class(ranges)
            }
            '\\' => {
                i += 1;
                assert!(i < chars.len(), "dangling escape in '{pattern}'");
                let escaped = chars[i];
                i += 1;
                match escaped {
                    // \PC — complement of the Unicode control category.
                    'P' => {
                        assert!(i < chars.len(), "\\P needs a category in '{pattern}'");
                        i += 1; // the category letter (only C is used)
                        Atom::Printable
                    }
                    'd' => Atom::Class(vec![('0', '9')]),
                    'w' => Atom::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
                    'n' => Atom::Literal('\n'),
                    't' => Atom::Literal('\t'),
                    other => Atom::Literal(other),
                }
            }
            '.' => {
                i += 1;
                Atom::Printable
            }
            literal => {
                i += 1;
                Atom::Literal(literal)
            }
        };
        // Optional quantifier.
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    i += 1;
                    let mut first = String::new();
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        first.push(chars[i]);
                        i += 1;
                    }
                    let min: u32 = first.parse().expect("quantifier minimum");
                    let max = if i < chars.len() && chars[i] == ',' {
                        i += 1;
                        let mut second = String::new();
                        while i < chars.len() && chars[i].is_ascii_digit() {
                            second.push(chars[i]);
                            i += 1;
                        }
                        second.parse().expect("quantifier maximum")
                    } else {
                        min
                    };
                    assert!(i < chars.len() && chars[i] == '}', "unterminated quantifier");
                    i += 1;
                    (min, max)
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

/// A handful of multi-byte characters so "printable" strings exercise
/// UTF-8 handling, not just ASCII.
const UNICODE_POOL: &[char] = &['é', '名', 'Ω', '☃', '‽', 'ß'];

fn generate_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|(lo, hi)| (*hi as u64) - (*lo as u64) + 1)
                .sum();
            let mut pick = rng.below(total);
            for (lo, hi) in ranges {
                let span = (*hi as u64) - (*lo as u64) + 1;
                if pick < span {
                    return char::from_u32(*lo as u32 + pick as u32).unwrap_or(*lo);
                }
                pick -= span;
            }
            unreachable!("pick bounded by total")
        }
        Atom::Printable => {
            if rng.below(10) == 0 {
                UNICODE_POOL[rng.below(UNICODE_POOL.len() as u64) as usize]
            } else {
                // ASCII printable space..tilde.
                char::from_u32(0x20 + rng.below(0x5F) as u32).expect("ascii printable")
            }
        }
    }
}

/// Generates one string matching `pattern`.
pub(crate) fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in parse(pattern) {
        let count = piece.min + rng.below((piece.max - piece.min + 1) as u64) as u32;
        for _ in 0..count {
            out.push(generate_atom(&piece.atom, rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_pattern() {
        let mut rng = TestRng::for_test("lit");
        assert_eq!(generate_pattern("abc", &mut rng), "abc");
    }

    #[test]
    fn class_with_ranges_and_singles() {
        let mut rng = TestRng::for_test("class");
        for _ in 0..100 {
            let s = generate_pattern("[a-c_.-]", &mut rng);
            let c = s.chars().next().unwrap();
            assert!(matches!(c, 'a'..='c' | '_' | '.' | '-'), "got {c:?}");
        }
    }

    #[test]
    fn bounded_repetition() {
        let mut rng = TestRng::for_test("rep");
        for _ in 0..100 {
            let s = generate_pattern("[ab]{2,4}", &mut rng);
            assert!((2..=4).contains(&s.chars().count()));
        }
    }

    #[test]
    fn printable_never_control() {
        let mut rng = TestRng::for_test("pc");
        for _ in 0..50 {
            let s = generate_pattern("\\PC{0,40}", &mut rng);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }
}
